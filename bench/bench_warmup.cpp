// E17 — parallel deterministic warm-up + allocation-lean hot paths.
//
// Four tables:
//  1. determinism: run_warmup digests across warmup_threads in {1,2,4,8} must
//     be identical (the Lemma 4.9 state is pinned to PRF substreams, not to
//     threads) — a mismatch is a hard failure (exit 1);
//  2. CPU-bound warm-up wall time vs thread count (in-memory oracle).  The
//     >= 2x @ 4 threads prediction is only *asserted* when the machine has
//     >= 4 hardware threads; single-core hosts still print the table;
//  3. latency-modeled oracle: every draw sleeps ~25 us (a stand-in for a
//     remote input service), so thread overlap pays even on one core — the
//     >= 2x @ 4 threads assertion always applies here;
//  4. rational comparator microbench: the overflow-checked int64 fast path
//     (cmp_products) vs the always-128-bit reference (cmp_products_wide) on
//     realistic-scale operands (prediction: >= 1.3x).
//
// Also constructs a ServeEngine to exercise the warmup_duration_us /
// warmup_threads metrics and reports them.
//
// Flags: --smoke shrinks every budget for CI; --json PATH writes a one-object
// JSON summary (default BENCH_warmup.json when --json has no value).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "serve/engine.h"
#include "util/rational.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;
using lcaknap::util::Xoshiro256;

/// Latency-modeled oracle: forwards to an in-memory access but sleeps on
/// every counted operation, imitating a remote input service.  Warm-up
/// threads overlap these sleeps, which is the deployment story for the
/// parallel warm-up even on machines without spare cores.
class SleepyAccess final : public lcaknap::oracle::InstanceAccess {
 public:
  SleepyAccess(const lcaknap::oracle::InstanceAccess& inner,
               std::chrono::microseconds delay)
      : inner_(&inner), delay_(delay) {}

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

 protected:
  [[nodiscard]] lcaknap::knapsack::Item do_query(std::size_t i) const override {
    std::this_thread::sleep_for(delay_);
    return inner_->query(i);
  }
  [[nodiscard]] lcaknap::oracle::WeightedDraw do_sample(
      Xoshiro256& rng) const override {
    std::this_thread::sleep_for(delay_);
    return inner_->weighted_sample(rng);
  }

 private:
  const lcaknap::oracle::InstanceAccess* inner_;
  std::chrono::microseconds delay_;
};

double median_ms(int reps, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    times.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcaknap;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                          : "BENCH_warmup.json";
    } else {
      std::cerr << "usage: bench_warmup [--smoke] [--json [PATH]]\n";
      return 2;
    }
  }

  std::cout << "E17: parallel deterministic warm-up + allocation-lean hot "
               "paths" << (smoke ? " [smoke]" : "") << "\n\n";

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  bool ok = true;

  // --- 1. Determinism across thread counts. --------------------------------
  bool digests_equal = true;
  {
    const auto inst = knapsack::make_family(knapsack::Family::kNeedle,
                                            smoke ? 10'000 : 50'000, 41);
    const oracle::MaterializedAccess access(inst);
    core::LcaKpConfig config;
    config.eps = 0.25;
    config.seed = 0xE17;
    config.quantile_samples = smoke ? 100'000 : 1'000'000;
    const core::LcaKp lca(access, config);

    util::Table table({"warmup_threads", "digest", "matches t=1"});
    std::uint64_t baseline = 0;
    for (const std::size_t threads : {1, 2, 4, 8}) {
      const std::uint64_t digest = core::run_digest(lca.run_warmup(7, threads));
      if (threads == 1) baseline = digest;
      const bool match = digest == baseline;
      digests_equal &= match;
      table.row()
          .cell(static_cast<long long>(threads))
          .cell(std::to_string(digest))
          .cell(match ? "yes" : "NO");
    }
    table.print(std::cout,
                "determinism: (L(I~), EPS) digest vs warm-up thread count");
    std::cout << "\n";
    if (!digests_equal) {
      std::cerr << "FAIL: warm-up digest depends on thread count\n";
      ok = false;
    }
  }

  // --- 2. CPU-bound warm-up scaling (in-memory oracle). --------------------
  double cpu_ms[3] = {0, 0, 0};  // threads 1, 2, 4
  {
    const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated,
                                            smoke ? 20'000 : 100'000, 3);
    const oracle::MaterializedAccess access(inst);
    core::LcaKpConfig config;
    config.eps = 0.2;
    config.seed = 0xE17;
    config.quantile_samples = smoke ? 400'000 : 2'000'000;
    const core::LcaKp lca(access, config);

    util::Table table({"threads", "median ms", "speedup vs 1"});
    const int reps = smoke ? 1 : 3;
    const std::size_t counts[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      cpu_ms[i] = median_ms(reps, [&] { (void)lca.run_warmup(7, counts[i]); });
      table.row()
          .cell(static_cast<long long>(counts[i]))
          .cell(cpu_ms[i], 2)
          .cell(cpu_ms[0] / cpu_ms[i], 2);
    }
    table.print(std::cout, "CPU-bound warm-up wall time (in-memory oracle, " +
                               std::to_string(hw) + " hardware threads)");
    std::cout << "\n";
    if (hw >= 4 && cpu_ms[0] / cpu_ms[2] < 2.0) {
      std::cerr << "FAIL: CPU-bound speedup @4 threads below 2x on a >=4-way "
                   "machine\n";
      ok = false;
    }
  }

  // --- 3. Latency-modeled oracle: sleeps overlap across threads. -----------
  double sleepy_ms[2] = {0, 0};  // threads 1, 4
  {
    const auto inst =
        knapsack::make_family(knapsack::Family::kUncorrelated, 2'000, 3);
    const oracle::MaterializedAccess storage(inst);
    const SleepyAccess access(storage, std::chrono::microseconds(25));
    core::LcaKpConfig config;
    config.eps = 0.2;
    config.seed = 0xE17;
    config.large_samples = smoke ? 400 : 1'200;
    config.quantile_samples = smoke ? 800 : 2'400;
    const core::LcaKp lca(access, config);

    util::Table table({"threads", "median ms", "speedup vs 1"});
    const std::size_t counts[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
      sleepy_ms[i] =
          median_ms(smoke ? 1 : 3, [&] { (void)lca.run_warmup(7, counts[i]); });
      table.row()
          .cell(static_cast<long long>(counts[i]))
          .cell(sleepy_ms[i], 2)
          .cell(sleepy_ms[0] / sleepy_ms[i], 2);
    }
    table.print(std::cout,
                "latency-modeled oracle (~25 us per draw): sleep overlap");
    std::cout << "\n";
    if (sleepy_ms[0] / sleepy_ms[1] < 2.0) {
      std::cerr << "FAIL: latency-bound speedup @4 threads below 2x\n";
      ok = false;
    }
  }

  // --- 4. Rational comparator fast path vs wide reference. -----------------
  double fast_ns = 0.0;
  double wide_ns = 0.0;
  {
    const std::size_t n = smoke ? 400'000 : 4'000'000;
    std::vector<std::int64_t> operands(n * 4);
    Xoshiro256 rng(0xE17);
    for (auto& v : operands) {
      // Realistic profit/weight scale (< 2^31): the fast path never needs
      // the 128-bit fallback here, which is the case the sweep optimizes.
      v = static_cast<std::int64_t>(rng.next_below(2'000'000'000)) + 1;
    }
    std::uint64_t sink_fast = 0;
    std::uint64_t sink_wide = 0;
    const auto run_fast = [&] {
      for (std::size_t i = 0; i + 3 < operands.size(); i += 4) {
        sink_fast += util::cmp_products(operands[i], operands[i + 1],
                                        operands[i + 2], operands[i + 3]) ==
                     std::strong_ordering::less;
      }
    };
    const auto run_wide = [&] {
      for (std::size_t i = 0; i + 3 < operands.size(); i += 4) {
        sink_wide += util::cmp_products_wide(operands[i], operands[i + 1],
                                             operands[i + 2], operands[i + 3]) ==
                     std::strong_ordering::less;
      }
    };
    const int reps = smoke ? 3 : 5;
    const double fast_ms = median_ms(reps, run_fast);
    const double wide_ms = median_ms(reps, run_wide);
    fast_ns = fast_ms * 1e6 / static_cast<double>(n);
    wide_ns = wide_ms * 1e6 / static_cast<double>(n);

    util::Table table({"comparator", "ns/op", "speedup", "checksum"});
    table.row().cell("cmp_products_wide (128-bit)").cell(wide_ns, 3).cell(1.0, 2)
        .cell(std::to_string(sink_wide));
    table.row().cell("cmp_products (checked int64)").cell(fast_ns, 3)
        .cell(wide_ns / fast_ns, 2).cell(std::to_string(sink_fast));
    table.print(std::cout, "exact efficiency comparison microbench");
    std::cout << "\n";
    if (sink_fast != sink_wide) {
      std::cerr << "FAIL: fast/wide comparators disagree\n";
      ok = false;
    }
  }

  // --- Engine warm-up metrics. ---------------------------------------------
  double engine_warmup_us = 0.0;
  {
    const auto inst =
        knapsack::make_family(knapsack::Family::kUncorrelated, 10'000, 3);
    const oracle::MaterializedAccess access(inst);
    core::LcaKpConfig config;
    config.eps = 0.2;
    config.quantile_samples = smoke ? 50'000 : 200'000;
    const core::LcaKp lca(access, config);
    metrics::Registry registry;
    serve::EngineConfig engine_config;
    engine_config.workers = 2;
    engine_config.warmup_threads = 2;
    serve::ServeEngine engine(lca, engine_config, registry);
    engine.drain();
    const auto snapshot = registry.snapshot();
    util::Table table({"metric", "value"});
    for (const auto& h : snapshot.histograms) {
      if (h.name == "warmup_duration_us") engine_warmup_us = h.sum;
    }
    for (const auto& g : snapshot.gauges) {
      if (g.name == "warmup_threads") {
        table.row().cell("warmup_threads").cell(g.value, 0);
      }
    }
    table.row().cell("warmup_duration_us").cell(engine_warmup_us, 1);
    table.print(std::cout, "ServeEngine warm-up metrics (registry readout)");
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"warmup\",\n"
       << "  \"experiment\": \"E17\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"digests_equal_across_threads\": "
       << (digests_equal ? "true" : "false") << ",\n"
       << "  \"cpu_warmup_ms\": {\"t1\": " << cpu_ms[0] << ", \"t2\": "
       << cpu_ms[1] << ", \"t4\": " << cpu_ms[2] << "},\n"
       << "  \"sleepy_warmup_ms\": {\"t1\": " << sleepy_ms[0] << ", \"t4\": "
       << sleepy_ms[1] << ", \"speedup\": " << sleepy_ms[0] / sleepy_ms[1]
       << "},\n"
       << "  \"rational_ns_per_op\": {\"fast\": " << fast_ns << ", \"wide\": "
       << wide_ns << ", \"speedup\": " << wide_ns / fast_ns << "},\n"
       << "  \"engine_warmup_duration_us\": " << engine_warmup_us << ",\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }

  return ok ? 0 : 1;
}
