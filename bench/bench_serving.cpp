// E14 — the deployment view: the paper's guarantees expressed as serving
// SLOs.  A replica fleet serves uniform / zipf / hotspot query traces; the
// table reports warm-up cost, simulated per-query latency percentiles, and
// the consistency rate (answers matching the fleet consensus) — Lemma 4.9 as
// an operator metric.  The full-read row shows what the same SLO costs
// without weighted sampling.

#include <iostream>

#include "core/serving_sim.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "util/table.h"
#include "util/thread_pool.h"

int main() {
  using namespace lcaknap;

  std::cout << "E14: serving-fleet simulation (the deployment view)\n\n";

  constexpr std::size_t kN = 50'000;
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, kN, 141);
  util::ThreadPool pool;

  core::ServingConfig serving;
  serving.lca.eps = 0.1;
  serving.lca.seed = 0xE14;
  serving.lca.quantile_samples = 200'000;
  serving.replicas = 6;

  // Access accounting flows through two paths: the legacy per-oracle atomics
  // (report.oracle_*) and the metrics registry (the canonical read-out).
  // The two must agree exactly; the table's last column watches that.
  auto& registry = metrics::global_registry();
  const auto registry_accesses = [&registry] {
    return registry.counter_value("oracle_queries_total") +
           registry.counter_value("oracle_samples_total");
  };

  util::Table table({"workload", "queries", "p50 us", "p95 us", "p99 us",
                     "yes rate", "consistency", "registry==legacy"});
  for (const auto shape :
       {core::WorkloadConfig::Shape::kUniform, core::WorkloadConfig::Shape::kZipf,
        core::WorkloadConfig::Shape::kHotspot}) {
    core::WorkloadConfig workload;
    workload.shape = shape;
    workload.queries = 20'000;
    const auto registry_before = registry_accesses();
    const auto report = core::simulate_serving(inst, serving, workload, &pool);
    const auto registry_delta = registry_accesses() - registry_before;
    const auto legacy_total = report.oracle_queries + report.oracle_samples;
    const char* name = shape == core::WorkloadConfig::Shape::kUniform ? "uniform"
                       : shape == core::WorkloadConfig::Shape::kZipf  ? "zipf(1.1)"
                                                                      : "hotspot(90/16)";
    table.row()
        .cell(name)
        .cell(report.queries)
        .cell(report.p50_us, 1)
        .cell(report.p95_us, 1)
        .cell(report.p99_us, 1)
        .cell(report.yes_rate)
        .cell(report.consistency_rate)
        .cell(registry_delta == legacy_total ? "yes" : "MISMATCH");
  }
  table.print(std::cout, "6 replicas, n = 50000, eps = 0.1, RPC 80us + exp(30us)");

  // The SLO view, straight off the registry histogram that serving fed.
  {
    const auto snap = registry.snapshot();
    for (const auto& h : snap.histograms) {
      if (h.name != "serving_query_latency_us") continue;
      std::cout << "\nserving_query_latency_us (registry): count=" << h.count
                << "  sum_ms=" << h.sum / 1'000.0 << "\n";
    }
  }

  // Warm-up economics: the one-time pipeline vs the per-query price, and the
  // full-read alternative.
  core::WorkloadConfig workload;
  workload.queries = 20'000;
  const auto report = core::simulate_serving(inst, serving, workload, &pool);
  util::Table econ({"metric", "value"});
  econ.row().cell("warm-up samples / replica").cell(report.warmup_samples_per_replica, 0);
  econ.row().cell("warm-up simulated time / replica (ms)")
      .cell(report.warmup_sim_ms_per_replica, 1);
  econ.row().cell("steady-state oracle reads / query").cell(1.0, 0);
  econ.row().cell("full-read equivalent reads / query")
      .cell(static_cast<unsigned long long>(kN));
  econ.row().cell("full-read equivalent time / query (ms)")
      .cell(static_cast<double>(kN) * 0.110, 1);
  econ.print(std::cout, "warm-up economics");
  std::cout << "\nShape to check: consistency ~ 1 across every traffic shape (the\n"
               "rule is fixed per replica, so skew cannot create disagreement);\n"
               "after the one-time warm-up, serving costs one read per query where\n"
               "a full-read server would pay n = 50000 reads (~5.5 s) per query.\n";
  return 0;
}
