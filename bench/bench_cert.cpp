// E19 — answer certification: serving overhead and offline verify throughput.
//
// The claim of docs/CERTIFICATES.md, measured: emitting a 48-byte CRC-sealed
// certificate per answer is cheap enough to leave on in production, and the
// offline audit is fast enough to re-check whole logs routinely.
//
// Three tables:
//  1. serving overhead: the E15 hotspot workload replayed through two
//     engines sharing one warm state — certify off vs certify on — with the
//     median wall-time delta.  Prediction: <= 5% overhead (hard failure:
//     exit 1);
//  2. offline verify throughput: a certificate log re-validated from the
//     snapshot state alone, median over reps.  Predictions: >= 100k
//     records/s, zero oracle queries during verification, every record
//     accepted (all hard failures);
//  3. the written log's shape (records, segments, bytes) for context.
//
// Flags: --smoke shrinks every budget for CI; --json PATH writes a one-object
// JSON summary (default BENCH_cert.json when --json has no value).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cert/cert_log.h"
#include "cert/certificate.h"
#include "cert/verifier.h"
#include "core/lca_kp.h"
#include "core/serving_sim.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "serve/engine.h"
#include "store/snapshot.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcaknap;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                          : "BENCH_cert.json";
    } else {
      std::cerr << "usage: bench_cert [--smoke] [--json [PATH]]\n";
      return 2;
    }
  }

  std::cout << "E19: answer certification — serving overhead + verify throughput"
            << (smoke ? " [smoke]" : "") << "\n\n";

  const auto dir = std::filesystem::temp_directory_path() / "lcaknap_bench_cert";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const std::size_t n = smoke ? 20'000 : 100'000;
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, n, 3);
  const oracle::MaterializedAccess access(inst);
  core::LcaKpConfig config;
  config.eps = 0.2;
  config.seed = 0xE19;
  config.quantile_samples = smoke ? 400'000 : 2'000'000;
  const core::LcaKp lca(access, config);
  constexpr std::uint64_t kTape = 7;
  const auto fingerprint = store::fingerprint_of(lca, kTape);

  // One warm state shared by every engine below: the bench measures the
  // steady-state request path, not the warm-up (that is E17/E18's job).
  const auto warm =
      std::make_shared<const core::LcaKpRun>(lca.run_warmup(kTape));

  bool ok = true;

  // --- 1. Certify-on overhead on the E15 hotspot workload. ------------------
  core::WorkloadConfig workload;
  workload.shape = core::WorkloadConfig::Shape::kHotspot;
  workload.queries = smoke ? 20'000 : 200'000;
  workload.seed = 19;
  const auto trace = core::generate_workload(n, workload);

  // Windowed closed-loop replay, same client model as bench_serve_engine.
  const auto replay_ms = [&](bool certify, const std::string& cert_dir) {
    serve::EngineConfig engine_config;
    engine_config.workers = 4;
    engine_config.queue_capacity = trace.size();
    engine_config.batcher.max_batch_size = 64;
    engine_config.batcher.max_linger = std::chrono::microseconds(200);
    engine_config.cache.capacity = 1 << 14;
    engine_config.cache.shards = 8;
    engine_config.cache.paranoia_every = 64;
    engine_config.warmup_tape_seed = kTape;
    engine_config.warm_state = warm;
    engine_config.certify = certify;
    engine_config.cert_dir = cert_dir;
    metrics::Registry registry;
    serve::ServeEngine engine(lca, engine_config, registry);

    constexpr std::size_t kWindow = 1'024;
    std::vector<std::future<serve::Response>> window;
    window.reserve(kWindow);
    const auto t0 = Clock::now();
    for (const auto item : trace) {
      window.push_back(engine.submit(item));
      if (window.size() == kWindow) {
        for (auto& future : window) (void)future.get();
        window.clear();
      }
    }
    for (auto& future : window) (void)future.get();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    engine.drain();
    return std::pair<double, serve::EngineStats>(ms, engine.stats());
  };

  // Paired design: each rep runs certify-off and certify-on back to back
  // (order alternating), and the prediction is checked on the MEDIAN OF THE
  // PER-REP RATIOS — machine-load drift between reps hits both sides of a
  // pair and cancels, where independent medians would book it as overhead.
  const int reps = smoke ? 3 : 7;
  std::vector<double> off_times;
  std::vector<double> on_times;
  std::vector<double> rep_overheads;
  serve::EngineStats certified_stats;
  for (int r = 0; r < reps; ++r) {
    const auto cert_dir = dir / ("certs-" + std::to_string(r));
    std::filesystem::create_directories(cert_dir);
    double off;
    double on;
    if (r % 2 == 0) {
      off = replay_ms(false, "").first;
      const auto [ms, stats] = replay_ms(true, cert_dir.string());
      on = ms;
      certified_stats = stats;
    } else {
      const auto [ms, stats] = replay_ms(true, cert_dir.string());
      on = ms;
      certified_stats = stats;
      off = replay_ms(false, "").first;
    }
    off_times.push_back(off);
    on_times.push_back(on);
    rep_overheads.push_back((on - off) / off * 100.0);
  }
  const double off_ms = median(off_times);
  const double on_ms = median(on_times);
  const double overhead_pct = median(rep_overheads);
  {
    util::Table table({"engine", "median ms", "overhead %"});
    table.row().cell("certify off").cell(off_ms, 2).cell(0.0, 2);
    table.row().cell("certify on").cell(on_ms, 2).cell(overhead_pct, 2);
    table.print(std::cout,
                "serving overhead: E15 hotspot workload, shared warm state");
    std::cout << "\n";
    if (overhead_pct > 5.0) {
      std::cerr << "FAIL: certify-on overhead " << overhead_pct
                << "% above the predicted 5%\n";
      ok = false;
    }
  }

  // --- 2. Offline verify throughput. ----------------------------------------
  // A dedicated log of known size, built straight from the warm state (the
  // same records the engine would write), then re-validated from the
  // snapshot fingerprint alone.
  const std::uint64_t kRecords = smoke ? 10'000 : 100'000;
  const auto verify_dir = dir / "verify-log";
  std::filesystem::create_directories(verify_dir);
  {
    cert::CertLogConfig log_config;
    log_config.directory = verify_dir.string();
    cert::CertLog log(log_config, fingerprint);
    core::LcaKp::AnswerWitness witness;
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      const std::size_t item = static_cast<std::size_t>(i) % n;
      cert::CertRecord record;
      record.item = item;
      record.answer = lca.answer_with_witness(*warm, item, witness);
      record.profit = witness.profit;
      record.weight = witness.weight;
      record.case_tag = cert::case_of(witness);
      record.threshold_idx =
          witness.large ? -1 : cert::active_threshold_index(*warm);
      (void)log.append(record);
    }
  }

  const std::uint64_t queries_before = access.query_count();
  std::vector<double> verify_times;
  cert::VerifyReport report;
  for (int r = 0; r < reps; ++r) {
    const cert::LogVerifier verifier(fingerprint, *warm);
    const auto t0 = Clock::now();
    report = verifier.verify_path(verify_dir.string());
    verify_times.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  const double verify_ms = median(verify_times);
  const double records_per_s =
      static_cast<double>(report.records) / (verify_ms / 1'000.0);
  const std::uint64_t oracle_queries_during_verify =
      access.query_count() - queries_before;
  {
    util::Table table({"metric", "value"});
    table.row().cell("records verified").cell(report.records);
    table.row().cell("records rejected").cell(report.rejected);
    table.row().cell("median verify ms").cell(verify_ms, 2);
    table.row().cell("throughput (records/s)")
        .cell(static_cast<std::uint64_t>(records_per_s));
    table.row().cell("oracle queries during verify")
        .cell(oracle_queries_during_verify);
    table.print(std::cout, "offline audit: verify-log from the snapshot state");
    std::cout << "\n";
    if (!report.clean() || report.records != kRecords) {
      std::cerr << "FAIL: the audit rejected records from an honest log\n";
      ok = false;
    }
    if (records_per_s < 100'000.0) {
      std::cerr << "FAIL: verify throughput " << records_per_s
                << " records/s below the predicted 100k\n";
      ok = false;
    }
    if (oracle_queries_during_verify != 0) {
      std::cerr << "FAIL: verification touched the oracle\n";
      ok = false;
    }
  }

  // --- 3. The certified run's log shape, for context. ------------------------
  {
    util::Table table({"metric", "value"});
    table.row().cell("trace queries").cell(trace.size());
    table.row().cell("certificates written").cell(certified_stats.cert_records);
    table.row().cell("certificates skipped").cell(certified_stats.cert_skipped);
    table.row().cell("segments sealed").cell(certified_stats.cert_segments);
    table.row().cell("log bytes").cell(certified_stats.cert_bytes);
    table.print(std::cout, "certified run: log shape");
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"cert\",\n"
       << "  \"experiment\": \"E19\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"certify_off_ms\": " << off_ms << ",\n"
       << "  \"certify_on_ms\": " << on_ms << ",\n"
       << "  \"certify_overhead_pct\": " << overhead_pct << ",\n"
       << "  \"verify_records\": " << report.records << ",\n"
       << "  \"verify_ms\": " << verify_ms << ",\n"
       << "  \"verify_records_per_s\": " << records_per_s << ",\n"
       << "  \"oracle_queries_during_verify\": " << oracle_queries_during_verify
       << ",\n"
       << "  \"cert_records_written\": " << certified_stats.cert_records << ",\n"
       << "  \"cert_records_skipped\": " << certified_stats.cert_skipped << ",\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }

  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
