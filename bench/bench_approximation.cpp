// E5 + E6 — Lemmas 4.7 and 4.8: the solution LCA-KP serves is always
// feasible and its value clears the (1/2, 6*eps) floor.
//
// For each instance family and eps, several independent runs are
// materialized via MAPPING-GREEDY and audited: feasibility, normalized
// value, ratio against the exact optimum (or the [greedy, fractional]
// bracket when exact is out of reach), and whether the paper's floor holds.

#include <algorithm>
#include <iostream>

#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "knapsack/generators.h"
#include "knapsack/solvers/greedy.h"
#include "knapsack/solvers/solve.h"
#include "oracle/access.h"
#include "util/histogram.h"
#include "util/table.h"

int main() {
  using namespace lcaknap;

  std::cout << "E5/E6: feasibility (Lemma 4.7) and value (Lemma 4.8) of the "
               "served solution\n\n";

  constexpr std::size_t kN = 20'000;
  constexpr int kRuns = 5;

  util::Table table({"family", "eps", "feasible", "mean value", "min value",
                     "OPT (norm)", "mean ratio", "floor OPT/2-6eps", "floor ok"});
  for (const auto family :
       {knapsack::Family::kNeedle, knapsack::Family::kUncorrelated,
        knapsack::Family::kWeaklyCorrelated, knapsack::Family::kStronglyCorrelated,
        knapsack::Family::kSubsetSum, knapsack::Family::kSimilarWeights}) {
    const auto inst = knapsack::make_family(family, kN, 21);
    const double scale = static_cast<double>(inst.total_profit());
    const auto exact = knapsack::solve_exact(inst, 30'000'000);
    const double opt_norm =
        exact.proven_optimal
            ? static_cast<double>(exact.solution.value) / scale
            : knapsack::fractional_opt(inst) / scale;  // upper bound fallback

    for (const double eps : {0.05, 0.1, 0.15, 0.25}) {
      core::LcaKpConfig config;
      config.eps = eps;
      config.seed = 0xE5 + static_cast<std::uint64_t>(eps * 1000);
      config.quantile_samples = 300'000;
      const oracle::MaterializedAccess access(inst);
      const core::LcaKp lca(access, config);

      int feasible = 0;
      double value_sum = 0.0;
      double value_min = 1.0;
      bool floor_ok = true;
      const double floor = opt_norm / 2.0 - 6.0 * eps;
      for (int r = 0; r < kRuns; ++r) {
        util::Xoshiro256 tape(100 + static_cast<std::uint64_t>(r));
        const auto run = lca.run_pipeline(tape);
        const auto eval = core::evaluate_run(inst, lca, run);
        feasible += eval.feasible ? 1 : 0;
        value_sum += eval.norm_value;
        value_min = std::min(value_min, eval.norm_value);
        floor_ok = floor_ok && (eval.norm_value >= floor);
      }
      table.row()
          .cell(knapsack::family_name(family))
          .cell(eps, 2)
          .cell(std::to_string(feasible) + "/" + std::to_string(kRuns))
          .cell(value_sum / kRuns)
          .cell(value_min)
          .cell(opt_norm)
          .cell(value_sum / kRuns / opt_norm)
          .cell(floor)
          .cell(floor_ok ? "yes" : "NO");
    }
  }
  table.print(std::cout, "served-solution audit across families and eps");
  std::cout << "\nShape to check: feasible = 5/5 everywhere (Lemma 4.7 is\n"
               "unconditional); every run clears the (1/2, 6eps) floor; measured\n"
               "ratios sit far above the worst-case bound at small eps.\n"
               "Boundary regimes (documented in EXPERIMENTS.md): at eps >= 0.25\n"
               "the paper's own parameterization yields t = floor(1/q) <= 2 bands,\n"
               "so the k >= 3 backoff admits no small items (value ~ large items\n"
               "only); subset_sum has a single efficiency atom, for which no\n"
               "Equally Partitioning Sequence exists (Definition 4.3's implicit\n"
               "precondition), and the served solution degenerates to empty —\n"
               "both still satisfy the theorem's additive 6*eps guarantee.\n\n";

  // Distribution of served values over many independent runs: the values
  // concentrate (run-to-run variance is sampling noise only, not mode
  // switching) — visual companion to the consistency experiment E7.
  {
    const auto inst = knapsack::make_family(knapsack::Family::kNeedle, kN, 22);
    core::LcaKpConfig config;
    config.eps = 0.1;
    config.seed = 0xE5D;
    config.quantile_samples = 150'000;
    const oracle::MaterializedAccess access(inst);
    const core::LcaKp lca(access, config);
    util::Histogram hist(0.0, 1.0, 20);
    for (std::uint64_t r = 0; r < 30; ++r) {
      util::Xoshiro256 tape(900 + r);
      const auto run = lca.run_pipeline(tape);
      hist.add(core::evaluate_run(inst, lca, run).norm_value);
    }
    hist.print(std::cout,
               "served value across 30 independent runs (needle, eps = 0.1)");
  }
  return 0;
}
