// E4 — Theorem 4.1 / Lemma 4.10: LCA-KP's per-query cost is (essentially)
// independent of the instance size, against the Theta(n) full-read baseline.
//
// Two tables:
//  1. per-answer oracle accesses of LCA-KP vs full-read as n grows 1000x —
//     the LCA line is flat, the baseline is the identity;
//  2. the domain-size knob: sweeping log|X| (efficiency-grid bits) exposes
//     the only growth the reproducible machinery has — the paper's
//     exp(O(log* n)) factor, realized here as the search depth — while the
//     sampled budget stays capped.

#include <chrono>
#include <iostream>

#include "core/full_read_lca.h"
#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "oracle/instrumented.h"
#include "reproducible/rmedian.h"
#include "util/iterated_log.h"
#include "util/table.h"

namespace {

/// Total oracle accesses according to the metrics registry — the canonical
/// read-out path.  The benches take before/after deltas of this and check
/// them against the legacy per-object atomics; any drift between the two is
/// an instrumentation bug worth failing loudly on.
std::uint64_t registry_accesses() {
  const auto& registry = lcaknap::metrics::global_registry();
  return registry.counter_value("oracle_queries_total") +
         registry.counter_value("oracle_samples_total");
}

}  // namespace

int main() {
  using namespace lcaknap;

  std::cout << "E4: per-query cost — LCA-KP flat in n, full-read linear "
               "(Theorem 4.1)\n\n";

  core::LcaKpConfig config;
  config.eps = 0.1;
  config.seed = 0xE4;
  config.quantile_samples = 400'000;

  util::Table table({"n", "lca-kp accesses/answer", "registry delta",
                     "lca-kp ms/answer", "full-read accesses/answer",
                     "full-read ms/answer", "access ratio"});
  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto ms = [](auto start, auto stop) {
    return std::chrono::duration<double, std::milli>(stop - start).count();
  };
  bool registry_matches = true;
  for (const std::size_t n : {2'000UL, 20'000UL, 200'000UL, 2'000'000UL}) {
    const auto inst = knapsack::make_family(knapsack::Family::kNeedle, n, 11);
    const oracle::MaterializedAccess storage(inst);
    const oracle::InstrumentedAccess access(storage);

    const core::LcaKp lca(access, config);
    util::Xoshiro256 tape(12);
    access.reset_counters();
    const auto lca_registry_before = registry_accesses();
    const auto lca_start = now();
    (void)lca.answer(n / 2, tape);
    const double lca_ms = ms(lca_start, now());
    const auto lca_cost = access.access_count();
    const auto lca_registry = registry_accesses() - lca_registry_before;
    registry_matches = registry_matches && lca_registry == lca_cost;

    access.reset_counters();
    const core::FullReadLca baseline(access);
    const auto full_registry_before = registry_accesses();
    const auto full_start = now();
    (void)baseline.answer(n / 2, tape);
    const double full_ms = ms(full_start, now());
    const auto full_cost = access.access_count();
    registry_matches =
        registry_matches && registry_accesses() - full_registry_before == full_cost;

    table.row()
        .cell(static_cast<unsigned long long>(n))
        .cell(lca_cost)
        .cell(lca_registry)
        .cell(lca_ms, 1)
        .cell(full_cost)
        .cell(full_ms, 1)
        .cell(static_cast<double>(full_cost) / static_cast<double>(lca_cost));
  }
  table.print(std::cout, "per-answer oracle cost (needle family, eps = 0.1)");
  std::cout << "\nregistry vs legacy accessors: "
            << (registry_matches ? "identical" : "MISMATCH (instrumentation bug!)")
            << "\n";
  std::cout << "\nShape to check: the LCA column is constant while full-read is n\n"
               "(and equals its registry delta); the crossover sits at tiny n and\n"
               "the gap widens linearly.\n\n";

  // --- Amortized serving: warm-up vs marginal cost. ------------------------
  // A replica that executes the pipeline once and then serves from it pays
  // the sampling budget a single time; each further answer costs exactly one
  // query.  This is the deployment-relevant cost split.
  {
    util::Table amortized({"queries served", "total accesses (registry)",
                           "accesses/query", "full-read accesses/query"});
    const std::size_t n = 200'000;
    const auto inst = knapsack::make_family(knapsack::Family::kNeedle, n, 11);
    const oracle::MaterializedAccess storage(inst);
    const oracle::InstrumentedAccess access(storage);
    const core::LcaKp lca(access, config);
    util::Xoshiro256 tape(13);
    access.reset_counters();
    const auto registry_before = registry_accesses();
    const auto run = lca.run_pipeline(tape);
    std::uint64_t served = 0;
    for (const std::size_t batch : {1UL, 100UL, 10'000UL, 1'000'000UL}) {
      while (served < batch) {
        (void)lca.answer_from(run, served % n);
        ++served;
      }
      const auto registry_total = registry_accesses() - registry_before;
      if (registry_total != access.access_count()) {
        std::cout << "WARNING: registry (" << registry_total
                  << ") != legacy accessors (" << access.access_count() << ")\n";
      }
      amortized.row()
          .cell(batch)
          .cell(registry_total)
          .cell(static_cast<double>(registry_total) / static_cast<double>(batch))
          .cell(static_cast<unsigned long long>(n));
    }
    amortized.print(std::cout,
                    "amortized replica cost (n = 200000): one pipeline, then "
                    "one query per answer");
    std::cout << "\n";
  }

  // --- The domain-size dependence, isolated. ------------------------------
  util::Table domain_table({"log2|X| (grid bits)", "search depth (levels)",
                            "provable sample bound", "capped budget used"});
  for (const int bits : {8, 12, 16, 24, 32, 40}) {
    reproducible::RMedianParams mp;
    mp.domain_size = (std::int64_t{1} << bits) + 2;
    mp.tau = config.eps / 4.0;
    mp.rho = config.eps / 6.0;
    mp.beta = mp.rho / 2.0;
    mp.branching = config.branching;
    core::LcaKpConfig sweep = config;
    sweep.domain_bits = bits;
    const auto params = core::resolve_params(sweep);
    domain_table.row()
        .cell(static_cast<long long>(bits))
        .cell(static_cast<long long>(reproducible::rmedian_depth(mp)))
        .cell(reproducible::rmedian_sample_size(mp))
        .cell(params.quantile_samples);
  }
  domain_table.print(std::cout,
                     "domain-size dependence of the reproducible search "
                     "(our log|X|/log g stand-in for the paper's log* tower)");
  std::cout << "\nFor scale: the paper's bound pays (1/eps)^{O(log* n)}; "
               "log*(2^40) = " << util::log_star(std::pow(2.0, 40)) << ".\n";
  return 0;
}
