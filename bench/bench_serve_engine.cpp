// E15 — the concurrent serving engine vs sequential replay.  The engine's
// pitch is that the LCA serving model (answers are a deterministic function
// of the shared seed and the item, Definition 2.3) licenses batching and
// caching on top of plain parallelism.  To make that measurable, the oracle
// is wrapped in a delay decorator charging a fixed RPC-scale cost per
// *query* (weighted samples — the warm-up — stay in-memory): this is the
// remote-storage deployment the serving stack targets, where each cache
// miss costs a round trip.
//
// Baseline: one thread replaying the trace with `answer_from` (one delayed
// oracle read per query).  Engine: the same trace through submit() with
// batching + the sharded cache.  Shapes to check: >= 2x throughput at 4
// workers on hotspot traffic, cache hit rate > 50% on skewed shapes, and
// zero paranoia violations.

#include <chrono>
#include <iostream>
#include <vector>

#include "core/lca_kp.h"
#include "core/serving_sim.h"
#include "knapsack/generators.h"
#include "oracle/access.h"
#include "serve/engine.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace lcaknap;

/// Busy-waits: sleep_for cannot hit tens-of-microsecond targets reliably.
void spin_for(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

/// Charges a fixed latency on every per-index query, modelling the remote
/// input service the serving engine is built for.  Weighted samples pass
/// through undelayed so the one-time warm-up stays cheap to benchmark.
class DelayedAccess final : public oracle::InstanceAccess {
 public:
  DelayedAccess(const oracle::InstanceAccess& inner,
                std::chrono::microseconds query_cost)
      : inner_(&inner), query_cost_(query_cost) {}

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override {
    spin_for(query_cost_);
    return inner_->query(i);
  }
  [[nodiscard]] oracle::WeightedDraw do_sample(util::Xoshiro256& rng) const override {
    return inner_->weighted_sample(rng);
  }

 private:
  const oracle::InstanceAccess* inner_;
  std::chrono::microseconds query_cost_;
};

struct RunResult {
  double qps = 0.0;
  std::size_t yes = 0;
  std::size_t served_from_cache = 0;
};

RunResult sequential_replay(const core::LcaKp& lca,
                            const std::vector<std::size_t>& trace) {
  util::Xoshiro256 tape(util::mix64(7));  // same tape seed as the engine
  const auto run = lca.run_pipeline(tape);
  RunResult result;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto item : trace) result.yes += lca.answer_from(run, item) ? 1 : 0;
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  result.qps = static_cast<double>(trace.size()) / s;
  return result;
}

struct EngineResult {
  RunResult run;
  serve::EngineStats stats;
};

EngineResult engine_replay(const core::LcaKp& lca,
                           const std::vector<std::size_t>& trace,
                           std::size_t workers) {
  serve::EngineConfig config;
  config.workers = workers;
  config.queue_capacity = trace.size();  // admit the whole burst: this bench
                                         // measures throughput, not shedding
  config.batcher.max_batch_size = 64;
  config.batcher.max_linger = std::chrono::microseconds(200);
  config.cache.capacity = 1 << 14;
  config.cache.shards = 8;
  config.cache.paranoia_every = 64;
  serve::ServeEngine engine(lca, config);

  // Windowed closed-loop client: keep up to kWindow requests outstanding,
  // like a fleet of blocking callers.  A single unbounded burst would let
  // the batcher coalesce every duplicate before the cache ever warms, which
  // overstates batching and understates caching relative to paced traffic.
  constexpr std::size_t kWindow = 1'024;
  EngineResult result;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<serve::Response>> window;
  window.reserve(kWindow);
  const auto drain_window = [&] {
    for (auto& future : window) {
      const auto response = future.get();
      result.run.yes +=
          response.outcome == serve::Outcome::kOk && response.answer ? 1 : 0;
      result.run.served_from_cache += response.cache_hit ? 1 : 0;
    }
    window.clear();
  };
  for (const auto item : trace) {
    window.push_back(engine.submit(item));
    if (window.size() == kWindow) drain_window();
  }
  drain_window();
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  engine.drain();
  result.run.qps = static_cast<double>(trace.size()) / s;
  result.stats = engine.stats();
  return result;
}

}  // namespace

int main() {
  using namespace lcaknap;

  std::cout << "E15: concurrent serving engine vs sequential replay\n"
               "(oracle query cost 20 us: the remote-storage deployment)\n\n";

  constexpr std::size_t kN = 50'000;
  constexpr std::size_t kQueries = 20'000;
  constexpr auto kQueryCost = std::chrono::microseconds(20);
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, kN, 151);
  const oracle::MaterializedAccess storage(inst);
  const DelayedAccess access(storage, kQueryCost);

  core::LcaKpConfig lca_config;
  lca_config.eps = 0.1;
  lca_config.seed = 0xE15;
  lca_config.quantile_samples = 200'000;
  const core::LcaKp lca(access, lca_config);

  std::uint64_t paranoia_violations = 0;
  util::Table table({"workload", "seq qps", "engine qps", "speedup", "hit rate",
                     "mean batch", "answers match"});
  for (const auto shape :
       {core::WorkloadConfig::Shape::kUniform, core::WorkloadConfig::Shape::kZipf,
        core::WorkloadConfig::Shape::kHotspot}) {
    core::WorkloadConfig workload;
    workload.shape = shape;
    workload.queries = kQueries;
    const auto trace = core::generate_workload(kN, workload);
    const auto seq = sequential_replay(lca, trace);
    const auto eng = engine_replay(lca, trace, 4);
    paranoia_violations += eng.stats.paranoia_violations;
    const char* name = shape == core::WorkloadConfig::Shape::kUniform ? "uniform"
                       : shape == core::WorkloadConfig::Shape::kZipf  ? "zipf(1.1)"
                                                                      : "hotspot(90/16)";
    // Request-level hit rate: a single cache lookup serves a whole batch, so
    // the per-lookup counters understate how much traffic the cache absorbs.
    table.row()
        .cell(name)
        .cell(seq.qps, 0)
        .cell(eng.run.qps, 0)
        .cell(eng.run.qps / seq.qps, 2)
        .cell(static_cast<double>(eng.run.served_from_cache) /
              static_cast<double>(trace.size()))
        .cell(eng.stats.batches > 0
                  ? static_cast<double>(eng.stats.batched_requests) /
                        static_cast<double>(eng.stats.batches)
                  : 0.0,
              1)
        .cell(seq.yes == eng.run.yes ? "yes" : "MISMATCH");
  }
  table.print(std::cout,
              "4 workers, 20000 queries, n = 50000, cache 16384, batch <= 64");

  // Scaling on the skewed shape: parallelism, batching and caching compound.
  core::WorkloadConfig hotspot;
  hotspot.shape = core::WorkloadConfig::Shape::kHotspot;
  hotspot.queries = kQueries;
  const auto trace = core::generate_workload(kN, hotspot);
  const auto seq = sequential_replay(lca, trace);
  util::Table scaling({"workers", "engine qps", "speedup vs sequential"});
  for (const std::size_t workers : {1, 2, 4, 8}) {
    const auto eng = engine_replay(lca, trace, workers);
    paranoia_violations += eng.stats.paranoia_violations;
    scaling.row().cell(workers).cell(eng.run.qps, 0).cell(eng.run.qps / seq.qps, 2);
  }
  scaling.print(std::cout, "hotspot(90/16) worker scaling");

  std::cout << "\nparanoia violations across all runs: " << paranoia_violations
            << (paranoia_violations == 0 ? " (Definition 2.3 holds as an SLO)"
                                         : "  <-- CONSISTENCY BUG")
            << "\n\nShape to check: >= 2x sequential at 4 workers on the skewed\n"
               "shapes, with request-level hit rates past 50% — a cached answer\n"
               "costs no oracle read at all, which is exactly what determinism\n"
               "per (seed, item) licenses.  Uniform traffic has nothing to cache\n"
               "or batch, so its gain is parallelism alone (bounded by physical\n"
               "cores); on the skewed shapes the engine's structure — batching +\n"
               "caching — wins even on a single core, because it eliminates\n"
               "oracle reads instead of merely overlapping them.\n";
  return paranoia_violations == 0 ? 0 : 2;
}
