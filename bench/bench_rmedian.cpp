// E8 — Theorem 4.5 / [ILPS22] Theorem 2.7: the reproducible quantile
// machinery delivers tau-approximate quantiles that are *identical* across
// runs with probability ~1 - rho, at a cost whose only growth is a mild
// dependence on the domain size.
//
// Three tables: accuracy per target quantile across distribution shapes;
// measured reproducibility (paired fresh-sample runs) vs rho; and the
// domain-size sweep showing depth/sample growth — the observable stand-in
// for the paper's log*|X| factor (substitution documented in DESIGN.md).
//
// Flags: --smoke shrinks sample budgets for CI; --json PATH writes a
// one-object JSON summary (default BENCH_rmedian.json when --json is bare).

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/reproducible_large.h"
#include "knapsack/instance.h"
#include "oracle/access.h"
#include "reproducible/rquantile.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using lcaknap::util::Xoshiro256;

enum class Shape { kUniform, kSquared, kZipfish, kBimodal };

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kUniform: return "uniform";
    case Shape::kSquared: return "squared";
    case Shape::kZipfish: return "zipf-ish";
    case Shape::kBimodal: return "bimodal";
  }
  return "?";
}

std::int64_t draw(Shape shape, std::int64_t domain, Xoshiro256& rng) {
  const double u = rng.next_double();
  double v = u;
  switch (shape) {
    case Shape::kUniform: v = u; break;
    case Shape::kSquared: v = u * u; break;
    case Shape::kZipfish: v = std::pow(u, 4.0); break;
    case Shape::kBimodal: v = (rng.next_double() < 0.5) ? 0.25 * u : 0.75 + 0.25 * u; break;
  }
  return std::min<std::int64_t>(domain - 1,
                                static_cast<std::int64_t>(v * static_cast<double>(domain)));
}

/// True CDF at a value, estimated from a very large reference sample.
double reference_cdf(Shape shape, std::int64_t domain, std::int64_t value,
                     std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::size_t below = 0;
  constexpr std::size_t kRef = 400'000;
  for (std::size_t i = 0; i < kRef; ++i) {
    if (draw(shape, domain, rng) <= value) ++below;
  }
  return static_cast<double>(below) / kRef;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcaknap;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                          : "BENCH_rmedian.json";
    } else {
      std::cerr << "usage: bench_rmedian [--smoke] [--json [PATH]]\n";
      return 2;
    }
  }

  std::cout << "E8: reproducible quantiles — accuracy, reproducibility, and "
               "domain dependence (Theorem 4.5)"
            << (smoke ? " [smoke]" : "") << "\n\n";

  // Calibration per DESIGN.md: per-level straddle rate ~ 2*delta/(tau/2)
  // with delta = sqrt(ln(2/beta)/2n); branching 64 keeps the search at two
  // levels over 2^12 cells, and n = 10^6 puts the expected disagreement rate
  // at the rho target.
  reproducible::RQuantileParams params;
  params.domain_size = 1 << 12;
  params.tau = 0.1;
  params.rho = 0.15;
  params.beta = 0.05;
  params.branching = 64;
  const std::size_t kSamples = smoke ? 100'000 : 1'000'000;
  double max_abs_error = 0.0;
  int total_disagreements = 0;
  int total_pairs = 0;

  // --- Accuracy. -----------------------------------------------------------
  {
    util::Table table({"distribution", "p", "returned CDF", "|error|", "tau"});
    const util::Prf prf(0xE8);
    Xoshiro256 rng(1);
    for (const auto shape :
         {Shape::kUniform, Shape::kSquared, Shape::kZipfish, Shape::kBimodal}) {
      for (const double p : {0.25, 0.5, 0.9}) {
        std::vector<std::int64_t> samples(kSamples);
        for (auto& v : samples) v = draw(shape, params.domain_size, rng);
        const auto value = reproducible::rquantile(samples, p, params, prf, 0);
        const double cdf = reference_cdf(shape, params.domain_size, value, 999);
        max_abs_error = std::max(max_abs_error, std::abs(cdf - p));
        table.row()
            .cell(shape_name(shape))
            .cell(p, 2)
            .cell(cdf)
            .cell(std::abs(cdf - p))
            .cell(params.tau, 2);
      }
    }
    table.print(std::cout, "tau-approximate quantile accuracy");
    std::cout << "\n";
  }

  // --- Reproducibility. ------------------------------------------------------
  {
    util::Table table({"distribution", "pairs", "disagreements", "measured rate",
                       "target rho"});
    Xoshiro256 rng(2);
    const int kPairs = smoke ? 10 : 40;
    for (const auto shape :
         {Shape::kUniform, Shape::kSquared, Shape::kZipfish, Shape::kBimodal}) {
      int disagreements = 0;
      for (int pair = 0; pair < kPairs; ++pair) {
        const util::Prf prf(static_cast<std::uint64_t>(pair) * 6151 + 17);
        const auto sample_once = [&] {
          std::vector<std::int64_t> s(kSamples);
          for (auto& v : s) v = draw(shape, params.domain_size, rng);
          return s;
        };
        if (reproducible::rquantile(sample_once(), 0.7, params, prf, 0) !=
            reproducible::rquantile(sample_once(), 0.7, params, prf, 0)) {
          ++disagreements;
        }
      }
      total_disagreements += disagreements;
      total_pairs += kPairs;
      table.row()
          .cell(shape_name(shape))
          .cell(static_cast<long long>(kPairs))
          .cell(static_cast<long long>(disagreements))
          .cell(static_cast<double>(disagreements) / kPairs)
          .cell(params.rho, 2);
    }
    table.print(std::cout,
                "Definition 2.5 experiment: shared seed, fresh samples, p = 0.7");
    std::cout << "\n";
  }

  // --- Domain-size dependence. ---------------------------------------------
  {
    util::Table table({"log2|X|", "depth", "provable samples", "depth/log*|X| note"});
    for (const int bits : {8, 16, 24, 32, 40, 47}) {
      reproducible::RMedianParams mp;
      mp.domain_size = std::int64_t{1} << bits;
      mp.tau = params.tau / 2.0;
      mp.rho = params.rho;
      mp.beta = params.beta;
      mp.branching = params.branching;
      table.row()
          .cell(static_cast<long long>(bits))
          .cell(static_cast<long long>(reproducible::rmedian_depth(mp)))
          .cell(reproducible::rmedian_sample_size(mp))
          .cell(bits <= 16 ? "paper tower would be ~4 levels here"
                           : "ours grows log|X|/log g; paper stays ~5");
    }
    table.print(std::cout, "domain-size dependence (documented substitution)");
    std::cout << "\n";
  }

  // --- Extension: index-only large-item discovery via heavy hitters. -------
  {
    // eps = 0.25 -> threshold eps^2 = 1/16 of the profit.  Total profit 1600:
    // two clear large items (400), five straddlers at exactly 100 = eps^2,
    // and filler mass.  Plain per-run thresholding flickers on straddlers;
    // the shared randomized threshold decides them identically across runs.
    std::vector<knapsack::Item> items{{400, 1}, {400, 1}};
    for (int s = 0; s < 5; ++s) items.push_back({100, 1});
    for (int f = 0; f < 100; ++f) items.push_back({3, 1});
    const auto capacity = static_cast<std::int64_t>(items.size());
    const knapsack::Instance inst(std::move(items), capacity);
    const oracle::MaterializedAccess access(inst);

    core::ReproducibleLargeConfig config;
    config.eps = 0.25;
    config.samples = smoke ? 100'000 : 400'000;

    Xoshiro256 fresh(7);
    int identical = 0;
    int captured_clear = 0;
    const int kPairs = smoke ? 8 : 25;
    for (int pair = 0; pair < kPairs; ++pair) {
      const util::Prf prf(static_cast<std::uint64_t>(pair) * 75029 + 3);
      Xoshiro256 rng1(fresh()), rng2(fresh());
      const auto a = core::reproducible_large_items(access, config, prf, rng1);
      const auto b = core::reproducible_large_items(access, config, prf, rng2);
      if (a.indices == b.indices) ++identical;
      if (a.indices.size() >= 2 && a.indices[0] == 0 && a.indices[1] == 1) {
        ++captured_clear;
      }
    }
    util::Table table({"metric", "value"});
    table.row().cell("paired runs").cell(static_cast<long long>(kPairs));
    table.row().cell("identical output sets").cell(static_cast<long long>(identical));
    table.row().cell("runs capturing both clear large items")
        .cell(static_cast<long long>(captured_clear));
    table.print(std::cout,
                "extension: index-only L(I) discovery (reproducible heavy "
                "hitters; items planted AT the eps^2 boundary)");

    if (!json_path.empty()) {
      std::ofstream os(json_path);
      os << "{\n"
         << "  \"bench\": \"rmedian\",\n"
         << "  \"experiment\": \"E8\",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"samples\": " << kSamples << ",\n"
         << "  \"max_abs_quantile_error\": " << max_abs_error << ",\n"
         << "  \"tau\": " << params.tau << ",\n"
         << "  \"disagreements\": " << total_disagreements << ",\n"
         << "  \"pairs\": " << total_pairs << ",\n"
         << "  \"target_rho\": " << params.rho << ",\n"
         << "  \"heavy_hitters_identical_sets\": " << identical << ",\n"
         << "  \"heavy_hitters_pairs\": " << kPairs << "\n"
         << "}\n";
      std::cout << "\nwrote " << json_path << "\n";
    }
  }
  return 0;
}
