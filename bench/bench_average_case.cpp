// E11 (extension) — the paper's Section 5 future-work probe: average-case
// LCAs in the spirit of [BCPR24].
//
// When instances come from a known distribution, a membership threshold
// learned *once offline* transfers to fresh instances: `PriorLca` then
// answers with a single query and zero sampling — cheaper than LCA-KP and
// trivially consistent.  The flip side is the distributional assumption: on
// an off-distribution family (planted heavy items) the prior forfeits the
// heavy mass.  Both sides are measured, plus the per-query cost comparison
// against LCA-KP and full-read.

#include <algorithm>
#include <iostream>

#include "core/full_read_lca.h"
#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "core/prior_lca.h"
#include "knapsack/generators.h"
#include "oracle/access.h"
#include "util/table.h"

int main() {
  using namespace lcaknap;

  std::cout << "E11 (extension): average-case LCA via an offline prior "
               "([BCPR24] future-work probe)\n\n";

  constexpr std::size_t kN = 20'000;
  core::LcaKpConfig config;
  config.eps = 0.1;
  config.seed = 0xE11;
  config.quantile_samples = 300'000;

  // Learn once from a reference draw of the family.
  const auto reference = knapsack::make_family(knapsack::Family::kUncorrelated, kN, 301);
  const core::Prior prior = core::learn_prior(reference, config);

  // --- Transfer to fresh instances of the family. --------------------------
  {
    util::Table table({"fresh seed", "feasible", "value (norm)", "vs greedy"});
    for (std::uint64_t seed = 401; seed <= 408; ++seed) {
      const auto fresh =
          knapsack::make_family(knapsack::Family::kUncorrelated, kN, seed);
      const oracle::MaterializedAccess access(fresh);
      const core::PriorLca lca(access, prior);
      const auto eval = core::evaluate_prior(fresh, lca);
      table.row()
          .cell(seed)
          .cell(eval.feasible ? "yes" : "NO")
          .cell(eval.norm_value)
          .cell(eval.vs_greedy);
    }
    table.print(std::cout,
                "prior learned on one reference instance, served on 8 fresh draws");
    std::cout << "\n";
  }

  // --- Per-query cost comparison. ------------------------------------------
  {
    const auto fresh = knapsack::make_family(knapsack::Family::kUncorrelated, kN, 501);
    const oracle::MaterializedAccess access(fresh);
    util::Table table({"algorithm", "oracle accesses per answer"});

    const core::PriorLca prior_lca(access, prior);
    util::Xoshiro256 rng(502);
    access.reset_counters();
    (void)prior_lca.answer(0, rng);
    table.row().cell("prior-lca (average-case)").cell(access.access_count());

    access.reset_counters();
    const core::LcaKp lca_kp(access, config);
    (void)lca_kp.answer(0, rng);
    table.row().cell("lca-kp (worst-case)").cell(access.access_count());

    access.reset_counters();
    const core::FullReadLca full(access);
    (void)full.answer(0, rng);
    table.row().cell("full-read").cell(access.access_count());
    table.print(std::cout, "per-answer cost on a fresh in-distribution instance");
    std::cout << "\n";
  }

  // --- Off-distribution failure. --------------------------------------------
  {
    util::Table table({"family", "prior value", "lca-kp value", "prior loses"});
    for (const auto family :
         {knapsack::Family::kUncorrelated, knapsack::Family::kNeedle}) {
      const auto inst = knapsack::make_family(family, kN, 601);
      const oracle::MaterializedAccess access(inst);
      const core::PriorLca prior_lca(access, prior);
      const auto prior_eval = core::evaluate_prior(inst, prior_lca);

      const core::LcaKp lca_kp(access, config);
      util::Xoshiro256 tape(602);
      const auto run = lca_kp.run_pipeline(tape);
      const auto kp_eval = core::evaluate_run(inst, lca_kp, run);

      table.row()
          .cell(knapsack::family_name(family))
          .cell(prior_eval.norm_value)
          .cell(kp_eval.norm_value)
          .cell(prior_eval.norm_value + 0.05 < kp_eval.norm_value ? "yes" : "no");
    }
    table.print(std::cout,
                "the assumption is load-bearing: off-distribution (needle) the "
                "prior forfeits the planted heavy mass");
  }
  std::cout << "\nShape to check: in-distribution the prior is feasible with\n"
               "value comparable to greedy at 1 access/answer; on the needle\n"
               "family it loses the ~40% heavy mass that LCA-KP captures —\n"
               "average-case assumptions bypass the lower bounds only where\n"
               "they hold, as the paper's Section 5 anticipates.\n";
  return 0;
}
