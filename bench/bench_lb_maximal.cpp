// E3 — Theorem 3.4 / Lemma 3.5: even *maximal feasibility* needs Omega(n)
// queries.
//
// On the planted two-special-items distribution, the (s_i, s_j) round traps
// any budgeted memoryless strategy: forced "yes" answers collide with
// probability 1/2 unless the scan finds the other special item.  The table
// shows the success rate pinned near the predicted 1/2 + coverage/2 curve —
// in particular below the 4/5 bar at the paper's n/11 budget — for growing
// n, plus the ablation where dropping the shared seed loses the little
// coordination the strategy had.

#include <iostream>

#include "knapsack/generators.h"
#include "lowerbound/greedy_sim_lca.h"
#include "lowerbound/maximal_hard.h"
#include "oracle/access.h"
#include "util/table.h"

int main() {
  using namespace lcaknap;

  std::cout << "E3: no sublinear LCA for maximal-feasible Knapsack "
               "(Theorem 3.4)\n\n";

  const lowerbound::SharedScanStrategy shared;
  constexpr std::size_t kTrials = 4'000;

  util::Table table({"n", "budget", "success", "predicted", "below 4/5?"});
  for (const std::size_t n : {1'024UL, 8'192UL, 65'536UL}) {
    for (const double frac : {0.0, 1.0 / 11.0, 1.0 / 4.0, 1.0, 4.0}) {
      const auto budget = static_cast<std::uint64_t>(frac * static_cast<double>(n));
      const auto r = lowerbound::play_maximal_game(n, budget, kTrials, shared,
                                                   /*seed=*/n + budget);
      table.row()
          .cell(static_cast<unsigned long long>(n))
          .cell(budget)
          .cell(r.success_rate)
          .cell(r.predicted_success)
          .cell(r.success_rate < 0.8 ? "yes" : "no");
    }
  }
  table.print(std::cout, "success of the (s_i, s_j) round vs budget");
  std::cout << "\nShape to check: at budget n/11 success sits near 0.55 << 4/5 for\n"
               "every n; only budgets ~ n log n (scan covers everything) escape.\n\n";

  const lowerbound::FreshScanStrategy fresh;
  util::Table ablation({"n", "budget", "shared-seed success", "fresh-rand success"});
  for (const std::size_t n : {4'096UL, 32'768UL}) {
    // Budget ~ n so both runs usually find the other heavy item: the shared
    // random ranking then keeps the two answers consistent, fresh rankings
    // collide half the time.
    const std::uint64_t budget = n;
    const auto with_seed = lowerbound::play_maximal_game(n, budget, kTrials, shared, 7);
    const auto without = lowerbound::play_maximal_game(n, budget, kTrials, fresh, 7);
    ablation.row()
        .cell(static_cast<unsigned long long>(n))
        .cell(budget)
        .cell(with_seed.success_rate)
        .cell(without.success_rate);
  }
  ablation.print(std::cout, "ablation: the shared random seed is load-bearing");
  std::cout << "\n";

  // --- The theorem against a *real* LCA: random-order greedy simulation. ---
  // The classical technique ([NO08; MRVX12]) gives a correct, perfectly
  // consistent LCA for maximal feasibility; its measured per-answer query
  // cost grows linearly with n (as Theorem 3.4 proves it must), and capping
  // the budget trades correctness exactly as Lemma 3.5 predicts.
  {
    util::Table table({"n", "mean queries/answer", "queries/n",
                       "hard-dist success (budget n/11)",
                       "hard-dist success (unbounded)"});
    for (const std::size_t n : {512UL, 2'048UL, 8'192UL}) {
      // Cost on a benign random instance.
      const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, n, 91);
      const oracle::MaterializedAccess access(inst);
      const lowerbound::RandomOrderMaximalLca lca(access, 0x6E3);
      access.reset_counters();
      constexpr std::size_t kProbes = 40;
      for (std::size_t p = 0; p < kProbes; ++p) {
        (void)lca.answer((p * 131) % n);
      }
      const double mean_queries =
          static_cast<double>(access.query_count()) / kProbes;

      // Correctness on the hard distribution, capped vs unbounded.
      util::Xoshiro256 rng(92);
      std::size_t capped_ok = 0, exact_ok = 0;
      constexpr std::size_t kRounds = 400;
      for (std::size_t round = 0; round < kRounds; ++round) {
        const auto i = static_cast<std::size_t>(rng.next_below(n));
        std::size_t j = static_cast<std::size_t>(rng.next_below(n - 1));
        if (j >= i) ++j;
        const bool light = rng.next_double() < 0.5;
        const auto hard = lowerbound::make_maximal_instance(n, i, j, light);
        const oracle::MaterializedAccess hard_access(hard);
        const lowerbound::RandomOrderMaximalLca hard_lca(hard_access, 7'000 + round);
        const auto judge = [&](bool ai, bool aj) {
          return light ? (ai && aj) : (ai != aj);
        };
        if (judge(hard_lca.answer_budgeted(i, n / 11),
                  hard_lca.answer_budgeted(j, n / 11))) {
          ++capped_ok;
        }
        if (judge(hard_lca.answer(i), hard_lca.answer(j))) ++exact_ok;
      }
      table.row()
          .cell(static_cast<unsigned long long>(n))
          .cell(mean_queries, 1)
          .cell(mean_queries / static_cast<double>(n))
          .cell(static_cast<double>(capped_ok) / kRounds)
          .cell(static_cast<double>(exact_ok) / kRounds);
    }
    table.print(std::cout,
                "random-order greedy simulation: linear cost is real, and "
                "capping it breaks correctness");
  }
  return 0;
}
