// E21 — replica fleet: failover availability and snapshot-shipped bootstrap.
//
// The claims of docs/FLEET.md, measured over real loopback sockets and real
// snapshot files.  Two falsifiable predictions:
//
//  1. **Failover availability.**  Kill a 2-group fleet's home replica a
//     third of the way through a query stream: the fleet must serve every
//     remaining query via failover (availability 1.0), and every failed-over
//     answer must equal the warm run's answer bit-for-bit (Lemma 4.9 — the
//     hop is *correct*, not merely available).  The single-replica baseline
//     run under the identical kill schedule must lose queries — otherwise
//     the comparison is vacuous and the bench fails itself.
//  2. **Bootstrap-to-warm <= 10x a local snapshot restore.**  Shipping a
//     snapshot to a joining replica (copy + fsync + rename + fingerprint-
//     checked hydration) must cost at most 10x hydrating the same snapshot
//     in place.  Both are best-of-5 to keep filesystem jitter honest; the
//     live warm-up cost is reported alongside as the price bootstrap avoids.
//
// Flags: --smoke shrinks every budget for CI; --json PATH writes a one-object
// JSON summary (default BENCH_fleet.json when --json has no value).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/lca_kp.h"
#include "fleet/bootstrap.h"
#include "fleet/client.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "net/server.h"
#include "net/session.h"
#include "oracle/access.h"
#include "store/state_store.h"
#include "util/table.h"
#include "util/virtual_clock.h"

namespace {

using namespace lcaknap;
using Clock = std::chrono::steady_clock;

/// One in-process replica: store + router + server, replica_id stamped on
/// every response (the same stand-in tests/fleet/test_fleet_client.cpp uses).
struct Replica {
  metrics::Registry registry;
  store::StateStore store;
  net::TenantRouter router;
  std::unique_ptr<net::Server> server;

  Replica(const core::LcaKp* lca, std::uint64_t replica_id)
      : store({.capacity = 4}, registry), router(store, registry) {
    net::TenantConfig tenant;
    tenant.lca = lca;
    tenant.engine.workers = 2;
    tenant.engine.cache.capacity = 1'024;
    router.register_tenant("bench", tenant);
    router.warm_all();
    net::ServerConfig config;
    config.replica_id = replica_id;
    server = std::make_unique<net::Server>(router, config, registry);
  }
  ~Replica() {
    if (server) server->stop();
    router.drain();
  }
};

struct AvailabilityResult {
  std::uint64_t offered = 0;
  std::uint64_t served = 0;       ///< ok + failed_over + degraded
  std::uint64_t failed_over = 0;
  std::uint64_t mismatches = 0;   ///< served answers != the warm run's answer
  bool conserved = false;
};

/// Offers `queries` fleet queries and kills the tenant's home replica a
/// third of the way through.  `siblings` controls whether a failover
/// candidate exists (the fleet) or not (the single-replica baseline).
AvailabilityResult run_kill_drill(const core::LcaKp& lca, bool siblings,
                                  std::uint64_t queries,
                                  std::uint64_t items_max) {
  Replica a(&lca, 1);
  std::unique_ptr<Replica> b;
  fleet::FleetClientConfig config;
  config.replicas = {{.replica_id = 1, .group = 0, .port = a.server->port()}};
  if (siblings) {
    b = std::make_unique<Replica>(&lca, 2);
    config.replicas.push_back(
        {.replica_id = 2, .group = 1, .port = b->server->port()});
  }
  metrics::Registry registry;
  fleet::FleetClient client(config, util::system_clock(), registry);

  // The answers the whole fleet must agree on (every replica warmed the
  // same (instance, seed, tape), so one run speaks for all).
  const auto& run = a.router.engine("bench")->run();

  const auto home = client.map().group_of("bench");
  AvailabilityResult result;
  for (std::uint64_t q = 0; q < queries; ++q) {
    if (q == queries / 3) {
      // SIGKILL stand-in: the home replica's port goes dead mid-stream.
      (home == 0 || !siblings ? a : *b).server->stop();
    }
    const auto item = (q * 1'000'003ull) % items_max;
    const auto fleet_result = client.query("bench", item);
    ++result.offered;
    switch (fleet_result.disposition) {
      case fleet::Disposition::kOk:
      case fleet::Disposition::kFailedOver:
      case fleet::Disposition::kDegraded:
        ++result.served;
        if (fleet_result.answer != lca.answer_from(run, item)) {
          ++result.mismatches;
        }
        break;
      default:
        break;
    }
    if (fleet_result.disposition == fleet::Disposition::kFailedOver) {
      ++result.failed_over;
    }
  }
  result.conserved = client.stats().conserved();
  return result;
}

/// Wall time of `body` in microseconds.
template <typename F>
double timed_us(F&& body) {
  const auto t0 = Clock::now();
  body();
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                          : "BENCH_fleet.json";
    } else {
      std::cerr << "usage: bench_fleet [--smoke] [--json [PATH]]\n";
      return 2;
    }
  }

  std::cout << "E21: replica fleet — failover availability and "
               "snapshot-shipped bootstrap"
            << (smoke ? " [smoke]" : "") << "\n\n";

  const std::uint64_t kItems = smoke ? 2'000 : 10'000;
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle,
                                          static_cast<std::size_t>(kItems), 21);
  const oracle::MaterializedAccess access(inst);
  core::LcaKpConfig lca_config;
  lca_config.eps = 0.2;
  lca_config.seed = 0xE21;
  lca_config.quantile_samples = smoke ? 20'000 : 200'000;
  const core::LcaKp lca(access, lca_config);

  bool ok = true;

  // --- 1. Failover availability: fleet vs single replica. -------------------
  const std::uint64_t kQueries = smoke ? 600 : 3'000;
  const auto single = run_kill_drill(lca, /*siblings=*/false, kQueries, kItems);
  const auto fleet = run_kill_drill(lca, /*siblings=*/true, kQueries, kItems);
  const double single_avail =
      static_cast<double>(single.served) / static_cast<double>(single.offered);
  const double fleet_avail =
      static_cast<double>(fleet.served) / static_cast<double>(fleet.offered);
  {
    util::Table table({"fleet shape", "offered", "served", "failed over",
                       "availability", "answer mismatches", "conserved"});
    table.row().cell("1 replica (baseline)").cell(single.offered)
        .cell(single.served).cell(single.failed_over).cell(single_avail, 3)
        .cell(single.mismatches).cell(single.conserved ? "yes" : "NO");
    table.row().cell("2 groups, home killed").cell(fleet.offered)
        .cell(fleet.served).cell(fleet.failed_over).cell(fleet_avail, 3)
        .cell(fleet.mismatches).cell(fleet.conserved ? "yes" : "NO");
    table.print(std::cout, "kill the home replica at query N/3");
    std::cout << "\n";
  }
  if (!single.conserved || !fleet.conserved) {
    std::cerr << "FAIL: fleet conservation violated — a query went "
                 "unaccounted\n";
    ok = false;
  }
  if (single.served >= single.offered) {
    std::cerr << "FAIL: the baseline kill never bit (served == offered); "
                 "the availability comparison is vacuous\n";
    ok = false;
  }
  if (fleet.served != fleet.offered) {
    std::cerr << "FAIL: the fleet dropped " << (fleet.offered - fleet.served)
              << " queries despite a live sibling\n";
    ok = false;
  }
  if (fleet.failed_over == 0) {
    std::cerr << "FAIL: no query failed over — the kill missed the home "
                 "replica\n";
    ok = false;
  }
  if (single.mismatches != 0 || fleet.mismatches != 0) {
    std::cerr << "FAIL: a served answer diverged from the warm run "
                 "(Lemma 4.9 violation)\n";
    ok = false;
  }

  // --- 2. Bootstrap-to-warm vs local snapshot restore. ----------------------
  const auto tmp = std::filesystem::temp_directory_path() /
                   ("bench_fleet_" + std::to_string(::getpid()));
  std::filesystem::remove_all(tmp);
  const auto donor_dir = tmp / "donor";
  std::filesystem::create_directories(donor_dir);

  const std::uint64_t kTape = 77;
  double warmup_us = 0.0;
  {
    metrics::Registry registry;
    store::StateStore donor({.capacity = 4, .snapshot_dir = donor_dir.string()},
                            registry);
    warmup_us = timed_us([&] { (void)donor.get("bench", lca, kTape); });
  }

  const int kReps = 5;
  double restore_us = 0.0;
  double bootstrap_us = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      metrics::Registry registry;
      store::StateStore reader(
          {.capacity = 4, .snapshot_dir = donor_dir.string()}, registry);
      const double us =
          timed_us([&] { (void)reader.get("bench", lca, kTape); });
      if (reader.stats().snapshot_hydrations != 1) {
        std::cerr << "FAIL: local restore did not hydrate from snapshot\n";
        ok = false;
      }
      restore_us = rep == 0 ? us : std::min(restore_us, us);
    }
    {
      const auto joiner_dir = tmp / ("joiner_" + std::to_string(rep));
      std::filesystem::create_directories(joiner_dir);
      metrics::Registry registry;
      store::StateStore joiner(
          {.capacity = 4, .snapshot_dir = joiner_dir.string()}, registry);
      const double us = timed_us([&] {
        (void)fleet::ship_snapshot((donor_dir / "bench.snap").string(),
                                   joiner_dir.string(), "bench");
        (void)joiner.get("bench", lca, kTape);
      });
      if (joiner.stats().snapshot_hydrations != 1) {
        std::cerr << "FAIL: bootstrap did not hydrate from the shipped "
                     "snapshot\n";
        ok = false;
      }
      bootstrap_us = rep == 0 ? us : std::min(bootstrap_us, us);
    }
  }
  std::filesystem::remove_all(tmp);

  const double ratio = restore_us > 0 ? bootstrap_us / restore_us : 0.0;
  {
    util::Table table({"path to warm", "best of 5 (us)"});
    table.row().cell("live warm-up (what bootstrap avoids)").cell(warmup_us, 0);
    table.row().cell("local snapshot restore").cell(restore_us, 0);
    table.row().cell("ship + fingerprint-checked restore").cell(bootstrap_us,
                                                                0);
    table.print(std::cout, "bootstrap-to-warm, one tenant");
    std::cout << "bootstrap / restore = " << ratio
              << "  (prediction: <= 10)\n\n";
  }
  if (ratio > 10.0) {
    std::cerr << "FAIL: snapshot-shipped bootstrap cost " << ratio
              << "x a local restore (predicted <= 10x)\n";
    ok = false;
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"fleet\",\n"
       << "  \"experiment\": \"E21\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"offered\": " << fleet.offered << ",\n"
       << "  \"single_served\": " << single.served << ",\n"
       << "  \"single_availability\": " << single_avail << ",\n"
       << "  \"fleet_served\": " << fleet.served << ",\n"
       << "  \"fleet_failed_over\": " << fleet.failed_over << ",\n"
       << "  \"fleet_availability\": " << fleet_avail << ",\n"
       << "  \"answer_mismatches\": " << (single.mismatches + fleet.mismatches)
       << ",\n"
       << "  \"conserved\": "
       << (single.conserved && fleet.conserved ? "true" : "false") << ",\n"
       << "  \"warmup_us\": " << warmup_us << ",\n"
       << "  \"restore_us\": " << restore_us << ",\n"
       << "  \"bootstrap_us\": " << bootstrap_us << ",\n"
       << "  \"bootstrap_ratio\": " << ratio << ",\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  return ok ? 0 : 1;
}
