// E10 — substrate sanity/ablation: the offline solver suite LCA-KP stands
// on.  Agreement of all exact solvers, the greedy 1/2 and FPTAS (1-eps)
// guarantees measured, then google-benchmark timings vs n — the offline
// costs the LCA's sublinear access model avoids paying per query.

#include <benchmark/benchmark.h>

#include <iostream>

#include "knapsack/generators.h"
#include "knapsack/solvers/branch_bound.h"
#include "knapsack/solvers/brute_force.h"
#include "knapsack/solvers/dp.h"
#include "knapsack/solvers/fptas.h"
#include "knapsack/solvers/greedy.h"
#include "util/table.h"

namespace {

using namespace lcaknap;

knapsack::Instance bench_instance(std::size_t n, std::uint64_t seed = 51,
                                  std::int64_t max_value = 1'000) {
  util::Xoshiro256 rng(seed);
  knapsack::GeneratorConfig cfg;
  cfg.n = n;
  cfg.max_value = max_value;
  return knapsack::uncorrelated(cfg, rng);
}

void agreement_tables() {
  util::Table table({"family", "n", "OPT", "greedy/OPT", "fptas(0.1)/OPT",
                     "bb nodes"});
  for (const auto family :
       {knapsack::Family::kUncorrelated, knapsack::Family::kWeaklyCorrelated,
        knapsack::Family::kStronglyCorrelated, knapsack::Family::kSubsetSum}) {
    const auto inst = knapsack::make_family(family, 120, 52);
    // n*K small enough for the exact DP referee at this size/scale.
    const auto opt = knapsack::dp_by_weight(inst, 2'000'000'000);
    const auto greedy = knapsack::greedy_half(inst);
    const auto approx = knapsack::fptas(inst, 0.1, 2'000'000'000);
    const auto bb = knapsack::branch_bound(inst);
    if (bb.solution.value != opt.value) {
      std::cerr << "SOLVER DISAGREEMENT on " << knapsack::family_name(family)
                << "\n";
    }
    table.row()
        .cell(knapsack::family_name(family))
        .cell(static_cast<unsigned long long>(inst.size()))
        .cell(opt.value)
        .cell(static_cast<double>(greedy.solution.value) /
              static_cast<double>(opt.value))
        .cell(static_cast<double>(approx.value) / static_cast<double>(opt.value))
        .cell(bb.nodes_visited);
  }
  table.print(std::cout, "solver agreement and approximation ratios (n = 120)");
  std::cout << "\nShape to check: greedy >= 0.5, fptas(0.1) >= 0.9, branch &\n"
               "bound matches the DP on every family.\n\n";
}

void bm_greedy(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(knapsack::greedy_half(inst).solution.value);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_greedy)->Range(1'000, 1'000'000)->Complexity(benchmark::oNLogN);

void bm_branch_bound(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(knapsack::branch_bound(inst).solution.value);
  }
}
BENCHMARK(bm_branch_bound)->Range(1'000, 64'000);

void bm_dp_by_weight(benchmark::State& state) {
  // Small value scale keeps the table in cache-friendly territory.
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)), 53, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knapsack::dp_by_weight(inst, 2'000'000'000).value);
  }
}
BENCHMARK(bm_dp_by_weight)->Range(256, 4'096);

void bm_fptas(benchmark::State& state) {
  const auto inst = bench_instance(256, 54, 10'000);
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(knapsack::fptas(inst, eps, 2'000'000'000).value);
  }
}
BENCHMARK(bm_fptas)->Arg(30)->Arg(10)->Arg(5);

void bm_fractional(benchmark::State& state) {
  const auto inst = bench_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(knapsack::fractional_opt(inst));
  }
}
BENCHMARK(bm_fractional)->Range(1'000, 1'000'000);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "E10: offline solver substrate — agreement, guarantees, cost\n\n";
  agreement_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
