// E23 — dynamic instances: delta warm-up vs full re-warm across a churn x
// skew grid, plus a churn-under-load drill.
//
// Three parts:
//  1. churn x skew grid: for each (churn fraction, weight skew), apply a
//     weight-only batch (delta-eligible) and time EpochedState::advance on
//     the delta path vs a full run_warmup of the mutated instance.  Every
//     row's delta digest is checked byte-equal to the fresh warm-up digest —
//     a mismatch is a soundness bug and exits 2 immediately.  The headline
//     claim — delta >= 5x faster than re-warm at <= 1% churn — is printed
//     CONFIRMED or REFUTED per row; a refuted claim is reported honestly,
//     not failed.
//  2. fallback rows: one batch per non-delta-eligible mutation kind (insert,
//     delete, profit change) timed through the re-warm path, so the cost of
//     falling back is on the record next to the delta rows.
//  3. churn-under-load drill: a ServeEngine serves a query stream while
//     epochs advance mid-stream; every ok answer is re-checked against the
//     ground truth of the epoch it attributes (`Response::epoch_id`).  Any
//     disagreement is a stale-epoch answer; the drill requires exactly zero
//     and exits 2 otherwise.
//
// Flags: --smoke shrinks every budget for CI; --json PATH writes a one-object
// JSON summary (default BENCH_dyn.json when --json has no value).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/lca_kp.h"
#include "dyn/epoch_state.h"
#include "dyn/update.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "serve/engine.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;
using namespace lcaknap;

double median_ms(int reps, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    times.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// A weight-only batch touching `count` distinct indices.  `skew` < 1 keeps
/// the mutations inside the lightest-index prefix (hot items, if the family
/// sorts by anything); 1.0 spreads them uniformly.
dyn::UpdateBatch weight_batch(std::uint64_t epoch_id,
                              const knapsack::Instance& inst,
                              std::size_t count, double skew,
                              std::uint64_t seed) {
  dyn::UpdateBatch batch;
  batch.epoch_id = epoch_id;
  util::Xoshiro256 rng(seed);
  const auto range = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(inst.size()) * skew));
  std::vector<bool> used(inst.size(), false);
  while (batch.mutations.size() < count) {
    const std::size_t idx = rng.next_below(range);
    if (used[idx]) continue;
    used[idx] = true;
    // New weight in [1, capacity]: always a valid Instance, always a real
    // change to the sorted-by-weight prefix structure the LCA probes.
    const std::int64_t w = static_cast<std::int64_t>(rng.next_below(
                               static_cast<std::uint64_t>(inst.capacity()))) +
                           1;
    batch.mutations.push_back(dyn::Mutation{dyn::MutationKind::kWeightUpdate,
                                            idx, 0, w});
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                          : "BENCH_dyn.json";
    } else {
      std::cerr << "usage: bench_dyn [--smoke] [--json [PATH]]\n";
      return 2;
    }
  }

  std::cout << "E23: dynamic instances — delta warm-up vs full re-warm"
            << (smoke ? " [smoke]" : "") << "\n\n";

  const std::size_t n = smoke ? 5'000 : 40'000;
  const std::uint64_t tape_seed = 7;
  bool digests_ok = true;
  bool claim_confirmed = true;  // delta >= 5x at <= 1% churn

  // --- 1. churn x skew grid (delta-eligible weight-only batches). ----------
  struct GridRow {
    double churn;
    double skew;
    double delta_ms;
    double rewarm_ms;
    double speedup;
    bool digest_equal;
  };
  std::vector<GridRow> grid;
  {
    const double churns[] = {0.001, 0.01, 0.05};
    const double skews[] = {0.1, 1.0};
    util::Table table({"churn", "skew", "delta ms", "rewarm ms", "speedup",
                       "digest", "claim (>=5x @ <=1%)"});
    for (const double churn : churns) {
      for (const double skew : skews) {
        // A fresh state per cell: each advance is epoch 0 -> 1, so every
        // cell measures the same transition, not a chained drift.
        auto inst = knapsack::make_family(knapsack::Family::kUncorrelated,
                                          n, 0xE23);
        dyn::EpochConfig config;
        config.lca.eps = 0.2;
        config.lca.seed = 0xE23;
        config.lca.quantile_samples = smoke ? 50'000 : 400'000;
        config.tape_seed = tape_seed;
        metrics::Registry registry;
        dyn::EpochedState state(std::move(inst), config, registry);
        const auto epoch0 = state.current();

        const auto count = std::max<std::size_t>(
            1, static_cast<std::size_t>(static_cast<double>(n) * churn));
        const auto batch = weight_batch(1, *epoch0->instance, count, skew,
                                        0xBEEF + count);

        dyn::AdvanceReport report;
        const double delta_ms =
            median_ms(1, [&] { report = state.advance(batch); });
        const auto epoch1 = state.current();
        if (!report.delta) {
          std::cerr << "FAIL: weight-only batch fell back to re-warm ("
                    << report.reason << ")\n";
          return 2;
        }
        // Fresh warm-up of the mutated instance: the ground truth the delta
        // path must reproduce byte-for-byte, and the cost it must beat.
        std::uint64_t fresh_digest = 0;
        const double rewarm_ms = median_ms(smoke ? 1 : 3, [&] {
          fresh_digest =
              core::run_digest(epoch1->lca->run_warmup(tape_seed, 0));
        });
        const bool digest_equal = fresh_digest == report.digest;
        digests_ok = digests_ok && digest_equal;
        const double speedup = delta_ms > 0 ? rewarm_ms / delta_ms : 0.0;
        const bool in_claim = churn <= 0.01;
        const bool row_ok = !in_claim || speedup >= 5.0;
        if (in_claim) claim_confirmed = claim_confirmed && row_ok;
        grid.push_back(
            {churn, skew, delta_ms, rewarm_ms, speedup, digest_equal});
        table.row()
            .cell(churn, 3)
            .cell(skew, 1)
            .cell(delta_ms, 3)
            .cell(rewarm_ms, 2)
            .cell(speedup, 1)
            .cell(digest_equal ? "equal" : "MISMATCH")
            .cell(in_claim ? (row_ok ? "CONFIRMED" : "REFUTED") : "-");
      }
    }
    table.print(std::cout, "delta vs full re-warm, n=" + std::to_string(n));
    std::cout << "\n";
    if (!digests_ok) {
      std::cerr << "FAIL: delta warm-up digest != fresh warm-up digest "
                   "(soundness bug)\n";
      return 2;
    }
    if (!claim_confirmed) {
      std::cout << "claim REFUTED: delta speedup below 5x at <= 1% churn "
                   "(reported honestly; not a failure)\n\n";
    }
  }

  // --- 2. fallback rows: every non-delta mutation kind re-warms. -----------
  double fallback_ms = 0.0;
  {
    util::Table table({"mutation kind", "path", "advance ms", "reason"});
    struct Case {
      const char* name;
      dyn::Mutation mutation;
    };
    const Case cases[] = {
        {"insert", {dyn::MutationKind::kInsert, 0, 500, 300}},
        {"delete", {dyn::MutationKind::kDelete, 3, 0, 0}},
        {"profit", {dyn::MutationKind::kProfitUpdate, 5, 123'456, 0}},
    };
    for (const auto& c : cases) {
      auto inst =
          knapsack::make_family(knapsack::Family::kUncorrelated, n, 0xE23);
      dyn::EpochConfig config;
      config.lca.eps = 0.2;
      config.lca.seed = 0xE23;
      config.lca.quantile_samples = smoke ? 50'000 : 400'000;
      config.tape_seed = tape_seed;
      metrics::Registry registry;
      dyn::EpochedState state(std::move(inst), config, registry);
      dyn::UpdateBatch batch;
      batch.epoch_id = 1;
      batch.mutations.push_back(c.mutation);
      dyn::AdvanceReport report;
      const double ms = median_ms(1, [&] { report = state.advance(batch); });
      fallback_ms = std::max(fallback_ms, ms);
      if (report.delta) {
        std::cerr << "FAIL: " << c.name
                  << " batch took the delta path (soundness bug)\n";
        return 2;
      }
      table.row().cell(c.name).cell("rewarm").cell(ms, 2).cell(report.reason);
    }
    table.print(std::cout, "fallback path per mutation kind");
    std::cout << "\n";
  }

  // --- 3. churn-under-load drill: zero stale-epoch answers. ----------------
  std::uint64_t drill_requests = 0;
  std::uint64_t drill_stale = 0;
  std::map<std::uint64_t, std::uint64_t> drill_by_epoch;
  {
    const std::size_t drill_n = smoke ? 2'000 : 10'000;
    auto inst =
        knapsack::make_family(knapsack::Family::kUncorrelated, drill_n, 0xD11);
    dyn::EpochConfig config;
    config.lca.eps = 0.25;
    config.lca.seed = 0xD11;
    config.lca.quantile_samples = smoke ? 30'000 : 100'000;
    config.tape_seed = tape_seed;
    metrics::Registry registry;
    dyn::EpochedState state(std::move(inst), config, registry);
    // Keep every epoch alive so answers can be re-checked against the epoch
    // they attribute, long after newer epochs took over serving.
    std::map<std::uint64_t, std::shared_ptr<const dyn::EpochedState::Epoch>>
        epochs;
    epochs[0] = state.current();

    serve::EngineConfig engine_config;
    engine_config.workers = 4;
    engine_config.queue_capacity = smoke ? 8'192 : 65'536;
    engine_config.cache.capacity = 4'096;
    engine_config.warm_state = epochs[0]->run;
    engine_config.warmup_tape_seed = tape_seed;
    serve::ServeEngine engine(*epochs[0]->lca, engine_config, registry);

    struct Seen {
      std::uint64_t item;
      bool answer;
      std::uint64_t epoch_id;
    };
    std::mutex seen_mutex;
    std::vector<Seen> seen;
    util::Xoshiro256 rng(0xD11);
    const std::uint64_t total = smoke ? 6'000 : 60'000;
    const int advances = 4;
    const std::uint64_t per_segment = total / (advances + 1);
    std::uint64_t submitted = 0;
    std::vector<std::future<void>> pending;
    for (int seg = 0; seg <= advances; ++seg) {
      for (std::uint64_t q = 0; q < per_segment; ++q) {
        const std::size_t item = rng.next_below(drill_n);
        auto promise = std::make_shared<std::promise<void>>();
        pending.push_back(promise->get_future());
        engine.submit(item, [&, item, promise](const serve::Response& r) {
          if (r.outcome == serve::Outcome::kOk) {
            std::lock_guard<std::mutex> lock(seen_mutex);
            seen.push_back(Seen{item, r.answer, r.epoch_id});
          }
          promise->set_value();
        });
        ++submitted;
      }
      if (seg < advances) {
        // Advance mid-stream without waiting for in-flight requests: the
        // point of the drill is the mixed-epoch window.
        const auto batch = weight_batch(
            static_cast<std::uint64_t>(seg) + 1, *epochs[0]->instance,
            std::max<std::size_t>(1, drill_n / 100), 1.0, 0xD11 + seg);
        (void)state.advance(batch);
        const auto epoch = state.current();
        epochs[epoch->epoch_id] = epoch;
        engine.advance_epoch(epoch->epoch_id, *epoch->lca, epoch->run, epoch);
      }
    }
    for (auto& f : pending) f.get();
    engine.drain();
    drill_requests = submitted;

    // Ground truth per attributed epoch: a stale-epoch answer is one that
    // disagrees with the warm state of the epoch it claims served it.
    for (const auto& s : seen) {
      drill_by_epoch[s.epoch_id] += 1;
      const auto it = epochs.find(s.epoch_id);
      if (it == epochs.end()) {
        drill_stale += 1;  // attributed an epoch that never existed
        continue;
      }
      core::LcaKp::AnswerWitness witness;
      const bool truth = it->second->lca->answer_with_witness(
          *it->second->run, static_cast<std::size_t>(s.item), witness);
      if (truth != s.answer) drill_stale += 1;
    }

    util::Table table({"metric", "value"});
    table.row().cell("requests").cell(static_cast<long long>(drill_requests));
    table.row().cell("epoch advances").cell(static_cast<long long>(advances));
    std::string by_epoch;
    for (const auto& [epoch, count] : drill_by_epoch) {
      if (!by_epoch.empty()) by_epoch += ", ";
      by_epoch += "e" + std::to_string(epoch) + "=" + std::to_string(count);
    }
    table.row().cell("ok answers by served epoch").cell(by_epoch);
    table.row().cell("stale-epoch answers")
        .cell(static_cast<long long>(drill_stale));
    table.print(std::cout, "churn-under-load drill");
    std::cout << "\n";
    if (drill_stale != 0) {
      std::cerr << "FAIL: " << drill_stale
                << " answers disagree with their attributed epoch\n";
      return 2;
    }
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"dyn\",\n"
       << "  \"experiment\": \"E23\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"n\": " << n << ",\n"
       << "  \"grid\": [";
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& row = grid[i];
      os << (i > 0 ? "," : "") << "\n    {\"churn\": " << row.churn
         << ", \"skew\": " << row.skew << ", \"delta_ms\": " << row.delta_ms
         << ", \"rewarm_ms\": " << row.rewarm_ms
         << ", \"speedup\": " << row.speedup << ", \"digest_equal\": "
         << (row.digest_equal ? "true" : "false") << "}";
    }
    os << "\n  ],\n"
       << "  \"digests_equal\": " << (digests_ok ? "true" : "false") << ",\n"
       << "  \"claim_5x_at_1pct_churn\": "
       << (claim_confirmed ? "true" : "false") << ",\n"
       << "  \"drill_requests\": " << drill_requests << ",\n"
       << "  \"drill_stale_epoch_answers\": " << drill_stale << ",\n"
       << "  \"pass\": true\n"
       << "}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  return 0;
}
