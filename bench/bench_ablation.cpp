// E13 — ablations of the design choices DESIGN.md calls out: the branching
// factor of the reproducible search, the efficiency-grid resolution, the
// sampling budget split, and the coupon-collection amplification.  Each knob
// is swept in isolation on a fixed instance with fixed seeds so rows are
// comparable.

#include <iostream>

#include "core/consistency.h"
#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "iky/value_approx.h"
#include "knapsack/generators.h"
#include "oracle/access.h"
#include "reproducible/rmedian.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace lcaknap;

core::LcaKpConfig base_config() {
  core::LcaKpConfig config;
  config.eps = 0.1;
  config.seed = 0xE13;
  config.quantile_samples = 100'000;
  return config;
}

/// Averages the consistency metrics over several shared seeds: a single
/// (seed, instance) pair has high variance in the strict identical-pairs
/// metric, since one flipped threshold splits the replica set.
struct AveragedReport {
  double identical_pairs = 0.0;
  double pairwise = 0.0;
  double mean_value = 0.0;
  std::size_t feasible = 0;
  std::size_t replicas_total = 0;
};

AveragedReport measure(const knapsack::Instance& inst, core::LcaKpConfig config,
                       util::ThreadPool& pool) {
  AveragedReport avg;
  constexpr int kSeeds = 4;
  for (int s = 0; s < kSeeds; ++s) {
    config.seed = 0xE13 + static_cast<std::uint64_t>(s) * 0x1111;
    core::ConsistencyConfig experiment;
    experiment.replicas = 8;
    experiment.queries = 300;
    experiment.experiment_seed = 13 + static_cast<std::uint64_t>(s);
    const auto report = core::run_consistency(inst, config, experiment, 0.0, &pool);
    avg.identical_pairs += report.identical_pair_fraction / kSeeds;
    avg.pairwise += report.pairwise_agreement / kSeeds;
    avg.mean_value += report.mean_norm_value / kSeeds;
    avg.feasible += report.feasible_runs;
    avg.replicas_total += report.replicas;
  }
  return avg;
}

}  // namespace

int main() {
  std::cout << "E13: ablations of the design knobs\n\n";
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 20'000, 131);
  util::ThreadPool pool;

  // --- Branching factor: depth vs consistency. -----------------------------
  {
    util::Table table({"branching g", "search depth", "identical pairs",
                       "pairwise agree", "mean value"});
    for (const int g : {2, 4, 16, 64, 256}) {
      auto config = base_config();
      config.branching = g;
      reproducible::RMedianParams mp;
      mp.domain_size = (std::int64_t{1} << config.domain_bits) + 2;
      mp.tau = 0.025;
      mp.rho = 0.017;
      mp.beta = 0.008;
      mp.branching = g;
      const auto report = measure(inst, config, pool);
      table.row()
          .cell(static_cast<long long>(g))
          .cell(static_cast<long long>(reproducible::rmedian_depth(mp)))
          .cell(report.identical_pairs)
          .cell(report.pairwise)
          .cell(report.mean_value);
    }
    table.print(std::cout,
                "branching factor: fewer levels = fewer rounding hazards "
                "(depth is the substitution's cost driver)");
    std::cout << "\n";
  }

  // --- Grid resolution (log |X|). ------------------------------------------
  {
    util::Table table({"domain bits", "identical pairs", "pairwise agree",
                       "mean value"});
    for (const int bits : {6, 10, 14, 20, 28}) {
      auto config = base_config();
      config.domain_bits = bits;
      const auto report = measure(inst, config, pool);
      table.row()
          .cell(static_cast<long long>(bits))
          .cell(report.identical_pairs)
          .cell(report.pairwise)
          .cell(report.mean_value);
    }
    table.print(std::cout,
                "grid resolution: coarse grids merge distinct efficiencies "
                "(value risk), fine grids grow the search (consistency risk)");
    std::cout << "\n";
  }

  // --- Quantile sampling budget. --------------------------------------------
  {
    util::Table table({"samples/run", "identical pairs", "mean value",
                       "feasible runs"});
    for (const std::size_t budget : {10'000UL, 40'000UL, 160'000UL, 640'000UL}) {
      auto config = base_config();
      config.quantile_samples = budget;
      const auto report = measure(inst, config, pool);
      table.row()
          .cell(budget)
          .cell(report.identical_pairs)
          .cell(report.mean_value)
          .cell(std::to_string(report.feasible) + "/" +
                std::to_string(report.replicas_total));
    }
    table.print(std::cout, "sampling budget: consistency is the budget-hungry axis");
    std::cout << "\n";
  }

  // --- Coupon-collection sampling budget (Lemma 4.2). ----------------------
  {
    // An instance with 25 *barely-large* items (normalized profit ~0.011,
    // just above eps^2 = 0.01): the regime where the coupon-collector budget
    // actually decides whether L(I) is captured.  Budgets are fractions of
    // the Lemma 4.2 bound m = ceil(6/delta (ln(1/delta)+1)), delta = eps^2.
    std::vector<knapsack::Item> items;
    for (int b = 0; b < 25; ++b) items.push_back({1'100, 50});
    for (int f = 0; f < 5'000; ++f) items.push_back({14, 20});
    const auto capacity = static_cast<std::int64_t>(60'000);
    const knapsack::Instance barely(std::move(items), capacity);
    const oracle::MaterializedAccess access(barely);
    const std::size_t lemma_budget = iky::coupon_collector_samples(0.01, 1);

    util::Table table({"budget (x Lemma 4.2)", "samples",
                       "mean large mass captured", "worst of 8",
                       "target (all 25 items)"});
    const double target =
        25.0 * 1'100.0 / static_cast<double>(barely.total_profit());
    for (const double frac : {0.02, 0.1, 0.3, 1.0, 3.0}) {
      const auto m = static_cast<std::size_t>(frac * static_cast<double>(lemma_budget));
      auto config = base_config();
      config.large_samples = std::max<std::size_t>(m, 1);
      const core::LcaKp lca(access, config);
      double worst = 1.0;
      double mean = 0.0;
      for (std::uint64_t r = 0; r < 8; ++r) {
        util::Xoshiro256 tape(500 + r);
        const auto run = lca.run_pipeline(tape);
        worst = std::min(worst, run.large_mass);
        mean += run.large_mass / 8.0;
      }
      table.row()
          .cell(frac, 2)
          .cell(config.large_samples)
          .cell(mean)
          .cell(worst)
          .cell(target);
    }
    table.print(std::cout,
                "Lemma 4.2 budget: below the bound, barely-large items are "
                "missed (inconsistency risk); at/above it, capture is total");
  }
  return 0;
}
