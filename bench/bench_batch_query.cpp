// E22 — roofline of the vectorized batch answer path (core::BatchEval).
//
// The steady-state answer (Algorithm 2, lines 20-24) is two divisions and
// two compares per item once the warm state is fixed — so few flops per byte
// that the classify stage is memory-bound almost everywhere: the roofline
// says throughput is min(peak flops, bandwidth x arithmetic intensity), and
// at ~4 ops per 18 bytes the bandwidth term wins.  What vectorization buys
// is not flops but fewer instructions per lane (amortized loop control,
// branchless masks), which shows up as ns/item at batch sizes where the SoA
// columns stay cache-resident.
//
// Sections:
//   1. differential gate — every compiled+supported kernel must answer
//      byte-identically to the scalar reference (answers AND witness masks)
//      on randomized instances x ragged batch sizes; any mismatch exits 2.
//      This is the Lemma 4.9 determinism contract extended to the vector
//      unit, re-checked on the exact binary being benchmarked.
//   2. classify roofline — kernel x batch size: ns/item, Mitems/s, and the
//      effective column bandwidth (18 B/lane: two double reads, two byte
//      writes).
//   3. E22 prediction — an active SIMD kernel classifies >= 2x the scalar
//      items/s at batch >= 32.  Honestly gated (the E17 precedent): when the
//      build lacks LCAKNAP_NATIVE or the CPU lacks AVX2, the table still
//      prints but the check is SKIPPED and reported as such, never silently
//      passed.  The verdict is printed and recorded in the JSON either way;
//      the *hard* exit criterion is a 1.4x regression floor, because 2.0x
//      is the exact theoretical ceiling of a division-bound loop (the three
//      IEEE divisions per lane cannot be replaced without breaking
//      byte-equality, and x86 retires ymm divides at ~half the scalar
//      divider rate: 4 lanes x 1/2 rate = 2.0x) — a prediction sitting on
//      the roofline is refutable by overhead alone, and EXPERIMENTS.md
//      records the measured verdict rather than letting CI flap on it.
//   4. engine end-to-end — ServeEngine with batch_eval on vs off over the
//      same hotspot trace (informational: end-to-end includes gather, cache,
//      and batching, which dilute the classify-stage speedup).
//
// Flags: --smoke shrinks every budget for CI; --json PATH writes a one-object
// JSON summary (default BENCH_batch_query.json when --json has no value).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <span>
#include <iostream>
#include <string>
#include <vector>

#include "core/batch_eval.h"
#include "core/lca_kp.h"
#include "core/serving_sim.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "serve/engine.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace lcaknap;

std::vector<core::BatchKernel> available_kernels() {
  std::vector<core::BatchKernel> kernels;
  for (const auto kernel :
       {core::BatchKernel::kScalar, core::BatchKernel::kAvx2,
        core::BatchKernel::kAvx512}) {
    if (core::BatchEval::kernel_available(kernel)) kernels.push_back(kernel);
  }
  return kernels;
}

/// One warm instance + run the roofline sweeps share.
struct Substrate {
  explicit Substrate(knapsack::Family family, std::size_t n, std::uint64_t seed)
      : instance(knapsack::make_family(family, n, seed)),
        access(instance),
        lca(access, config_for(n)),
        run(lca.run_warmup(/*tape_seed=*/7, /*threads=*/1)) {}

  static core::LcaKpConfig config_for(std::size_t n) {
    core::LcaKpConfig config;
    config.eps = 0.15;
    config.seed = 0xE22;
    config.quantile_samples = n < 50'000 ? 100'000 : 400'000;
    return config;
  }

  knapsack::Instance instance;
  oracle::MaterializedAccess access;
  core::LcaKp lca;
  core::LcaKpRun run;
};

std::vector<std::size_t> random_items(std::size_t n, std::size_t count,
                                      std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::size_t> items(count);
  for (auto& item : items) item = static_cast<std::size_t>(rng.next_below(n));
  return items;
}

/// Byte-compares every available vector kernel against the scalar reference.
/// Returns the number of (kernel, batch) cells checked; exits on mismatch.
std::size_t differential_gate(const Substrate& sub, bool smoke,
                              bool& mismatch) {
  core::BatchEval eval(sub.lca, sub.run);
  const std::size_t rounds = smoke ? 4 : 16;
  std::size_t checked = 0;
  core::BatchScratch reference, candidate;
  for (const std::size_t batch : {1, 3, 8, 31, 32, 33, 256, 1'000}) {
    for (std::size_t round = 0; round < rounds; ++round) {
      const auto items = random_items(sub.instance.size(), batch,
                                      0xD1FF + 31 * batch + round);
      eval.gather(items, reference);
      eval.classify_scalar(items, reference);
      for (const auto kernel : available_kernels()) {
        if (kernel == core::BatchKernel::kScalar) continue;
        eval.set_kernel(kernel);
        eval.gather(items, candidate);
        eval.classify(items, candidate);
        ++checked;
        for (std::size_t lane = 0; lane < batch; ++lane) {
          if (candidate.answers[lane] != reference.answers[lane] ||
              candidate.large[lane] != reference.large[lane] ||
              candidate.profits[lane] != reference.profits[lane] ||
              candidate.weights[lane] != reference.weights[lane]) {
            mismatch = true;
            std::cerr << "DIFFERENTIAL MISMATCH: kernel "
                      << core::batch_kernel_name(kernel) << " batch " << batch
                      << " lane " << lane << " item " << items[lane] << "\n";
          }
        }
      }
    }
  }
  return checked;
}

struct ClassifyCell {
  double ns_per_item = 0.0;
  double mitems_per_s = 0.0;
  double gbps = 0.0;  ///< effective column traffic: 18 bytes per lane
};

/// Times the classify stage alone: gather once, then re-classify the same
/// resident SoA columns until `target_items` lanes have been processed.
/// Median of three timing passes — single-shot numbers on a busy CI box are
/// noisy enough to flip the prediction either way, which would make the
/// gate test scheduler jitter instead of the kernel.
ClassifyCell time_classify(core::BatchEval& eval,
                           std::span<const std::size_t> items,
                           core::BatchScratch& scratch,
                           std::size_t target_items) {
  eval.gather(items, scratch);
  const std::size_t reps =
      std::max<std::size_t>(1, target_items / std::max<std::size_t>(1, items.size()));
  // One untimed pass warms the columns and the large-index cache lines.
  eval.classify(items, scratch);
  std::vector<double> seconds;
  for (int pass = 0; pass < 3; ++pass) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r) eval.classify(items, scratch);
    seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  std::sort(seconds.begin(), seconds.end());
  const double lanes = static_cast<double>(reps * items.size());
  ClassifyCell cell;
  cell.ns_per_item = seconds[1] * 1e9 / lanes;
  cell.mitems_per_s = lanes / seconds[1] / 1e6;
  cell.gbps = lanes * 18.0 / seconds[1] / 1e9;
  return cell;
}

struct EngineRun {
  double qps = 0.0;
  std::uint64_t groups = 0;
};

EngineRun engine_replay(const core::LcaKp& lca,
                        const std::vector<std::size_t>& trace,
                        bool batch_eval) {
  metrics::Registry registry;
  serve::EngineConfig config;
  config.workers = 2;
  config.queue_capacity = trace.size();
  config.batcher.max_batch_size = 64;
  config.batcher.max_linger = std::chrono::microseconds(100);
  config.cache.capacity = 1 << 13;
  config.cache.shards = 8;
  config.batch_eval = batch_eval;
  serve::ServeEngine engine(lca, config, registry);
  constexpr std::size_t kWindow = 512;
  std::vector<std::future<serve::Response>> window;
  window.reserve(kWindow);
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto item : trace) {
    window.push_back(engine.submit(item));
    if (window.size() == kWindow) {
      for (auto& future : window) (void)future.get();
      window.clear();
    }
  }
  for (auto& future : window) (void)future.get();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  engine.drain();
  EngineRun result;
  result.qps = static_cast<double>(trace.size()) / seconds;
  result.groups = engine.stats().batch_eval_groups;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-')
                      ? argv[++i]
                      : "BENCH_batch_query.json";
    } else {
      std::cerr << "usage: bench_batch_query [--smoke] [--json [PATH]]\n";
      return 1;
    }
  }

  const auto best = core::BatchEval::best_kernel();
  std::cout << "E22: batch answer path roofline"
            << (smoke ? " [smoke]" : "") << "\n"
            << "best kernel here: " << core::batch_kernel_name(best) << "\n\n";

  const std::size_t n = smoke ? 20'000 : 100'000;
  Substrate needle(knapsack::Family::kNeedle, n, 151);
  Substrate uncorrelated(knapsack::Family::kUncorrelated, n, 77);

  // 1. Differential gate on this exact binary.
  bool mismatch = false;
  std::size_t checked = 0;
  checked += differential_gate(needle, smoke, mismatch);
  checked += differential_gate(uncorrelated, smoke, mismatch);
  std::cout << "differential gate: " << checked
            << " kernel x batch cells byte-compared against scalar -> "
            << (mismatch ? "MISMATCH" : "identical") << "\n\n";
  if (mismatch) return 2;
  if (checked == 0) {
    std::cout << "(scalar-only build: the gate has no vector kernel to "
                 "compare; the scalar reference IS the semantics)\n\n";
  }

  // 2. Classify roofline: kernel x batch size.
  const std::size_t target_items = smoke ? 400'000 : 8'000'000;
  const std::vector<std::size_t> batches = {1, 8, 32, 256, 4'096};
  double scalar_b32plus = 0.0;  // best scalar Mitems/s at batch >= 32
  double vector_b32plus = 0.0;  // best vector Mitems/s at batch >= 32
  for (auto* sub : {&needle, &uncorrelated}) {
    const char* name = sub == &needle ? "needle" : "uncorrelated";
    util::Table table({"kernel", "batch", "ns/item", "Mitems/s", "GB/s"});
    core::BatchEval eval(sub->lca, sub->run);
    core::BatchScratch scratch;
    for (const auto kernel : available_kernels()) {
      eval.set_kernel(kernel);
      for (const auto batch : batches) {
        const auto items =
            random_items(sub->instance.size(), batch, 0xB00F + batch);
        const auto cell = time_classify(eval, items, scratch, target_items);
        table.row()
            .cell(core::batch_kernel_name(kernel))
            .cell(batch)
            .cell(cell.ns_per_item, 2)
            .cell(cell.mitems_per_s, 1)
            .cell(cell.gbps, 2);
        if (batch >= 32) {
          auto& slot = kernel == core::BatchKernel::kScalar ? scalar_b32plus
                                                            : vector_b32plus;
          slot = std::max(slot, cell.mitems_per_s);
        }
      }
    }
    table.print(std::cout, std::string("classify roofline, ") + name +
                               ", n = " + std::to_string(n));
  }

  // 3. The falsifiable E22 prediction, honestly gated on hardware.
  bool prediction_checked = false;
  bool prediction_pass = false;
  bool floor_pass = true;  // the hard exit criterion when a kernel is active
  double speedup = 0.0;
  if (best != core::BatchKernel::kScalar && scalar_b32plus > 0.0) {
    prediction_checked = true;
    speedup = vector_b32plus / scalar_b32plus;
    prediction_pass = speedup >= 2.0;
    floor_pass = speedup >= 1.4;
    std::cout << "\nE22 prediction (vector classify >= 2x scalar items/s at "
                 "batch >= 32): "
              << speedup << "x -> "
              << (prediction_pass
                      ? "PASS"
                      : "REFUTED (recorded honestly per the E17 precedent: "
                        "2.0x is the divider-unit ceiling, see the header)")
              << "\n"
              << "hard regression floor (>= 1.4x): "
              << (floor_pass ? "PASS" : "FAIL") << "\n";
  } else {
    std::cout << "\nE22 prediction SKIPPED: no SIMD kernel active (build "
                 "without LCAKNAP_NATIVE or CPU without AVX2) — reported "
                 "honestly, not counted as a pass.\n";
  }

  // 4. End-to-end: the serving engine with the batch path on vs off.
  core::WorkloadConfig workload;
  workload.shape = core::WorkloadConfig::Shape::kHotspot;
  workload.queries = smoke ? 5'000 : 40'000;
  const auto trace = core::generate_workload(n, workload);
  const auto off = engine_replay(needle.lca, trace, /*batch_eval=*/false);
  const auto on = engine_replay(needle.lca, trace, /*batch_eval=*/true);
  util::Table engine_table({"path", "qps", "batch-eval groups"});
  engine_table.row().cell("per-request").cell(off.qps, 0).cell(off.groups);
  engine_table.row().cell("batch eval").cell(on.qps, 0).cell(on.groups);
  engine_table.print(std::cout, "ServeEngine end-to-end, hotspot trace "
                                "(informational: gather + cache dominate)");

  const bool ok = !mismatch && floor_pass;
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"batch_query\",\n"
       << "  \"experiment\": \"E22\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"best_kernel\": \"" << core::batch_kernel_name(best) << "\",\n"
       << "  \"differential_cells_checked\": " << checked << ",\n"
       << "  \"differential_identical\": " << (mismatch ? "false" : "true")
       << ",\n"
       << "  \"scalar_mitems_per_s_b32plus\": " << scalar_b32plus << ",\n"
       << "  \"vector_mitems_per_s_b32plus\": " << vector_b32plus << ",\n"
       << "  \"classify_speedup_b32plus\": " << speedup << ",\n"
       << "  \"prediction_checked\": " << (prediction_checked ? "true" : "false")
       << ",\n"
       << "  \"prediction_2x_pass\": " << (prediction_pass ? "true" : "false")
       << ",\n"
       << "  \"floor_1_4x_pass\": " << (floor_pass ? "true" : "false") << ",\n"
       << "  \"engine_qps\": {\"per_request\": " << off.qps
       << ", \"batch_eval\": " << on.qps << "},\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return ok ? 0 : 2;
}
