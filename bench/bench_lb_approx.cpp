// E2 — Theorem 3.3: the impossibility survives *any* approximation ratio
// alpha in (0, 1].
//
// The reduction only changes the safety item's profit to beta < alpha; the
// decision "is s_n in an alpha-approximate solution?" still computes
// OR_{n-1}.  For each alpha the sanity block verifies (by brute force) that
// {s_n} is an alpha-approximate solution iff OR(x) = 0, and the game shows
// the same budget/success line as E1 — the hardness is approximation-free.

#include <iostream>

#include "knapsack/solvers/brute_force.h"
#include "lowerbound/or_reduction.h"
#include "util/table.h"

int main() {
  using namespace lcaknap;

  std::cout << "E2: no sublinear LCA for alpha-approximate Knapsack, any alpha "
               "(Theorem 3.3)\n\n";

  struct Alpha {
    const char* name;
    std::int64_t beta_num;
    std::int64_t beta_den;  // beta = alpha / 2 expressed as a fraction
    double alpha;
  };
  const Alpha alphas[] = {
      {"alpha = 1 (optimal)", 1, 2, 1.0},
      {"alpha = 1/2", 1, 4, 0.5},
      {"alpha = 1/10", 1, 20, 0.1},
  };

  // --- Sanity: {s_n} is alpha-approximate iff OR(x) = 0, for every alpha. --
  {
    util::Table table({"alpha", "OR(x)", "OPT value", "{s_n} value",
                       "{s_n} alpha-approx?"});
    for (const auto& a : alphas) {
      for (int planted = 0; planted < 2; ++planted) {
        std::vector<std::uint8_t> x(12, 0);
        if (planted) x[3] = 1;
        const auto inst = lowerbound::make_or_instance(x, a.beta_num, a.beta_den);
        const auto opt = knapsack::brute_force(inst);
        const double sn_value = static_cast<double>(inst.item(x.size()).profit);
        const bool approx = sn_value + 1e-12 >=
                            a.alpha * static_cast<double>(opt.value);
        table.row()
            .cell(a.name)
            .cell(static_cast<long long>(planted))
            .cell(opt.value)
            .cell(static_cast<long long>(inst.item(x.size()).profit))
            .cell(approx ? "yes" : "no");
      }
    }
    table.print(std::cout, "reduction sanity across alpha");
    std::cout << "\n";
  }

  // --- The game: identical hardness line for every alpha. -----------------
  const lowerbound::RandomProbeStrategy probe;
  constexpr std::size_t kTrials = 4'000;
  constexpr std::size_t kN = 16'384;

  util::Table table({"alpha", "budget/n", "success", "predicted ceiling"});
  util::Xoshiro256 rng(3);
  for (const auto& a : alphas) {
    for (const double frac : {1.0 / 64, 1.0 / 8, 1.0 / 2}) {
      const auto budget = static_cast<std::uint64_t>(frac * kN);
      // The adversary's answer structure does not depend on beta, so the
      // measured curve is shared; we re-run per alpha to keep rows honest.
      const auto r = lowerbound::play_or_game(kN, budget, kTrials, probe, rng);
      table.row().cell(a.name).cell(frac).cell(r.success_rate).cell(
          r.predicted_ceiling);
    }
  }
  table.print(std::cout, "success vs budget, n = 16384 (same line for every alpha)");
  std::cout << "\nShape to check: rows for alpha = 1, 1/2, 1/10 coincide — relaxing\n"
               "the approximation target buys nothing without weighted sampling.\n";
  return 0;
}
