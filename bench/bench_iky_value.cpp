// E9 — Lemma 4.4 / [IKY12]: the constructed instance's optimum (minus eps)
// approximates OPT(I) within 6*eps, at a query cost independent of n.
//
// Tables: estimate vs exact optimum across families and eps; sample cost vs
// n (flat line); and the construction's size |I~| vs eps.

#include <cmath>
#include <iostream>

#include "iky/value_approx.h"
#include "knapsack/generators.h"
#include "knapsack/solvers/greedy.h"
#include "knapsack/solvers/solve.h"
#include "oracle/access.h"
#include "util/table.h"

int main() {
  using namespace lcaknap;

  std::cout << "E9: [IKY12] constant-time OPT-value estimation (Lemma 4.4)\n\n";

  {
    util::Table table({"family", "eps", "estimate", "OPT/bracket", "|error|",
                       "6*eps band", "in band?"});
    for (const auto family :
         {knapsack::Family::kNeedle, knapsack::Family::kUncorrelated,
          knapsack::Family::kWeaklyCorrelated, knapsack::Family::kSubsetSum}) {
      const auto inst = knapsack::make_family(family, 10'000, 41);
      const double scale = static_cast<double>(inst.total_profit());
      const auto exact = knapsack::solve_exact(inst, 30'000'000);
      const bool proven = exact.proven_optimal;
      const double opt_lo =
          proven ? static_cast<double>(exact.solution.value) / scale
                 : static_cast<double>(knapsack::greedy_half(inst).solution.value) / scale;
      const double opt_hi =
          proven ? opt_lo : knapsack::fractional_opt(inst) / scale;

      const oracle::MaterializedAccess access(inst);
      for (const double eps : {0.1, 0.2, 0.3}) {
        iky::ValueApproxConfig config;
        config.eps = eps;
        util::Xoshiro256 rng(42);
        const auto result = iky::approximate_opt_value(access, config, rng);
        const double err = result.estimate > opt_hi ? result.estimate - opt_hi
                           : result.estimate < opt_lo ? opt_lo - result.estimate
                                                      : 0.0;
        table.row()
            .cell(knapsack::family_name(family))
            .cell(eps, 2)
            .cell(result.estimate)
            .cell(proven ? util::format_double(opt_lo)
                         : "[" + util::format_double(opt_lo) + "," +
                               util::format_double(opt_hi) + "]")
            .cell(err)
            .cell(6.0 * eps, 2)
            .cell(err <= 6.0 * eps ? "yes" : "NO");
      }
    }
    table.print(std::cout, "estimate vs optimum, n = 10000");
    std::cout << "\n";
  }

  {
    util::Table table({"n", "samples used", "|I~|", "estimate"});
    for (const std::size_t n : {2'000UL, 20'000UL, 200'000UL, 1'000'000UL}) {
      const auto inst = knapsack::make_family(knapsack::Family::kNeedle, n, 43);
      const oracle::MaterializedAccess access(inst);
      iky::ValueApproxConfig config;
      config.eps = 0.2;
      util::Xoshiro256 rng(44);
      const auto result = iky::approximate_opt_value(access, config, rng);
      table.row()
          .cell(static_cast<unsigned long long>(n))
          .cell(result.samples_used)
          .cell(result.tilde_size)
          .cell(result.estimate);
    }
    table.print(std::cout, "query cost vs n (eps = 0.2): flat in n");
    std::cout << "\n";
  }

  {
    util::Table table({"eps", "|I~|", "bound 1/eps^2-ish"});
    const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 50'000, 45);
    const oracle::MaterializedAccess access(inst);
    for (const double eps : {0.1, 0.15, 0.2, 0.3, 0.4}) {
      iky::ValueApproxConfig config;
      config.eps = eps;
      util::Xoshiro256 rng(46);
      const auto result = iky::approximate_opt_value(access, config, rng);
      table.row()
          .cell(eps, 2)
          .cell(result.tilde_size)
          .cell(2.0 / (eps * eps), 1);
    }
    table.print(std::cout, "constructed instance size vs eps");
  }
  return 0;
}
