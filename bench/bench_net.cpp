// E20 — network front-end: closed-loop loopback serving, scaling and sheds.
//
// The claims of docs/NETWORKING.md, measured over real loopback sockets:
// the epoll front door turns concurrent connections into engine throughput,
// sheds overload with explicit kOverloaded rather than stalling, and keeps
// the wire-level conservation law — every decoded frame is answered — at
// every load point.
//
// Three tables:
//  1. closed-loop sweep: connections x window cells, each reporting achieved
//     qps and p50/p99 frame latency — prediction: qps grows with connection
//     count up to worker saturation (checked only on >= 4 hardware threads;
//     a 1-core container serializes everything and the comparison measures
//     the scheduler, not the server — E17 precedent);
//  2. overload probe: a burst against a tiny per-tenant quota must shed with
//     kOverloaded > 0, zero silent drops (hard failure otherwise);
//  3. conservation ledger: frames_in == sum(responses by status) - decode
//     errors across the whole bench (hard failure otherwise).
//
// Flags: --smoke shrinks every budget for CI; --json PATH writes a one-object
// JSON summary (default BENCH_net.json when --json has no value).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "net/client.h"
#include "net/server.h"
#include "net/session.h"
#include "oracle/access.h"
#include "store/state_store.h"
#include "util/table.h"

namespace {

using namespace lcaknap;
using Clock = std::chrono::steady_clock;

struct CellResult {
  std::size_t connections = 0;
  std::size_t window = 0;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// One closed-loop cell: `connections` clients, each keeping `window` frames
/// in flight until its share of `total` is answered.
CellResult run_cell(std::uint16_t port, const std::string& tenant,
                    std::size_t connections, std::size_t window,
                    std::uint64_t total, std::uint64_t items) {
  CellResult cell;
  cell.connections = connections;
  cell.window = window;
  const std::uint64_t per_conn = (total + connections - 1) / connections;
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::uint64_t> ok(connections, 0);
  std::vector<std::uint64_t> overloaded(connections, 0);
  std::vector<std::uint64_t> sent(connections, 0);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const auto t0 = Clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      net::Client client("127.0.0.1", port);
      std::uint64_t next_id = 1;
      std::uint64_t outstanding = 0;
      std::vector<std::pair<std::uint64_t, Clock::time_point>> inflight;
      while (sent[c] < per_conn || outstanding > 0) {
        while (outstanding < window && sent[c] < per_conn) {
          net::RequestFrame frame;
          frame.request_id = next_id++;
          frame.item = (sent[c] * 1'000'003ull + c * 7'919ull) % items;
          frame.tenant = tenant;
          inflight.emplace_back(frame.request_id, Clock::now());
          client.send(frame);
          ++sent[c];
          ++outstanding;
        }
        const auto response = client.recv();
        --outstanding;
        for (std::size_t i = 0; i < inflight.size(); ++i) {
          if (inflight[i].first == response.request_id) {
            latencies[c].push_back(std::chrono::duration<double, std::micro>(
                                       Clock::now() - inflight[i].second)
                                       .count());
            inflight.erase(inflight.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
        if (response.status == net::WireStatus::kOk) ++ok[c];
        if (response.status == net::WireStatus::kOverloaded) ++overloaded[c];
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  std::vector<double> all;
  for (std::size_t c = 0; c < connections; ++c) {
    cell.sent += sent[c];
    cell.ok += ok[c];
    cell.overloaded += overloaded[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  std::sort(all.begin(), all.end());
  cell.qps = elapsed_s > 0 ? static_cast<double>(cell.sent) / elapsed_s : 0.0;
  cell.p50_us = percentile(all, 0.50);
  cell.p99_us = percentile(all, 0.99);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path =
          (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i] : "BENCH_net.json";
    } else {
      std::cerr << "usage: bench_net [--smoke] [--json [PATH]]\n";
      return 2;
    }
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "E20: network front-end over loopback"
            << (smoke ? " [smoke]" : "") << " (" << hw
            << " hardware threads)\n\n";

  const std::uint64_t kItems = smoke ? 5'000 : 20'000;
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated,
                                          static_cast<std::size_t>(kItems), 3);
  const oracle::MaterializedAccess access(inst);
  core::LcaKpConfig lca_config;
  lca_config.eps = 0.2;
  lca_config.seed = 0xE20;
  lca_config.quantile_samples = smoke ? 100'000 : 400'000;
  const core::LcaKp lca(access, lca_config);

  bool ok = true;

  // --- 1. Closed-loop sweep: connections x window. --------------------------
  std::vector<CellResult> cells;
  std::uint64_t sweep_frames_in = 0;
  std::uint64_t sweep_responses = 0;
  {
    metrics::Registry registry;
    store::StateStore store({.capacity = 4}, registry);
    net::TenantRouter router(store, registry);
    net::TenantConfig tenant;
    tenant.lca = &lca;
    tenant.engine.workers = 2;
    tenant.engine.queue_capacity = 8'192;
    tenant.engine.batcher.max_batch_size = 32;
    tenant.engine.batcher.max_linger = std::chrono::microseconds(100);
    tenant.engine.cache.capacity = 4'096;
    tenant.engine.cache.shards = 4;
    router.register_tenant("bench", tenant);
    router.warm_all();
    net::Server server(router, net::ServerConfig{}, registry);

    const std::uint64_t per_cell = smoke ? 2'000 : 20'000;
    util::Table table(
        {"connections", "window", "qps", "p50 us", "p99 us", "ok", "shed"});
    for (const std::size_t connections : {1u, 2u, 4u}) {
      for (const std::size_t window : {1u, 8u}) {
        const auto cell =
            run_cell(server.port(), "bench", connections, window, per_cell,
                     kItems);
        table.row()
            .cell(cell.connections)
            .cell(cell.window)
            .cell(cell.qps, 0)
            .cell(cell.p50_us, 0)
            .cell(cell.p99_us, 0)
            .cell(cell.ok)
            .cell(cell.overloaded);
        cells.push_back(cell);
      }
    }
    table.print(std::cout, "closed-loop sweep (loopback)");
    std::cout << "\n";
    server.stop();
    router.drain();
    const auto stats = server.stats();
    sweep_frames_in = stats.frames_in;
    sweep_responses = stats.responses_to_frames();
    if (stats.decode_errors != 0) {
      std::cerr << "FAIL: decode errors on a clean client\n";
      ok = false;
    }

    // Prediction: more connections -> more throughput, until the workers
    // saturate.  On fewer than 4 hardware threads the client threads, the
    // event loop, and the workers all fight for the same core and the
    // comparison measures the scheduler, not the server (E17 precedent:
    // gate, report honestly, do not fail).
    double qps_1 = 0.0;
    double qps_4 = 0.0;
    for (const auto& cell : cells) {
      if (cell.window != 8) continue;
      if (cell.connections == 1) qps_1 = cell.qps;
      if (cell.connections == 4) qps_4 = cell.qps;
    }
    if (hw >= 4) {
      if (qps_4 <= qps_1) {
        std::cerr << "FAIL: qps did not grow with connection count ("
                  << qps_1 << " -> " << qps_4 << " at window 8)\n";
        ok = false;
      } else {
        std::cout << "scaling prediction: qps(4 conns) = " << qps_4
                  << " > qps(1 conn) = " << qps_1 << "  [checked]\n\n";
      }
    } else {
      std::cout << "scaling prediction: skipped (" << hw
                << " hardware threads < 4; sweep table reported as measured)"
                << "\n\n";
    }
  }

  // --- 2. Overload probe: tiny quota, honest sheds. -------------------------
  std::uint64_t probe_shed = 0;
  std::uint64_t probe_ok = 0;
  std::uint64_t probe_frames = 0;
  std::uint64_t probe_responses = 0;
  {
    metrics::Registry registry;
    store::StateStore store({.capacity = 4}, registry);
    net::TenantRouter router(store, registry);
    net::TenantConfig tenant;
    tenant.lca = &lca;
    tenant.engine.workers = 1;
    tenant.engine.queue_capacity = 64;
    tenant.max_inflight = 16;  // the quota the burst must overrun
    router.register_tenant("bench", tenant);
    router.warm_all();
    net::Server server(router, net::ServerConfig{}, registry);

    const auto cell = run_cell(server.port(), "bench", 4, 64,
                               smoke ? 4'000 : 20'000, kItems);
    server.stop();
    router.drain();
    const auto stats = server.stats();
    probe_shed = cell.overloaded;
    probe_ok = cell.ok;
    probe_frames = stats.frames_in;
    probe_responses = stats.responses_to_frames();
    util::Table table({"metric", "value"});
    table.row().cell("frames sent").cell(cell.sent);
    table.row().cell("ok").cell(cell.ok);
    table.row().cell("shed kOverloaded").cell(cell.overloaded);
    table.row().cell("frames in == answered").cell(
        probe_frames == probe_responses ? "yes" : "NO");
    table.print(std::cout, "overload probe: 4 conns x window 64 vs quota 16");
    std::cout << "\n";
    if (probe_shed == 0) {
      std::cerr << "FAIL: the burst never tripped the quota — overload was "
                   "not exercised\n";
      ok = false;
    }
    if (probe_ok == 0) {
      std::cerr << "FAIL: the probe starved entirely; sheds must not eat "
                   "every frame\n";
      ok = false;
    }
  }

  // --- 3. Conservation ledger. ----------------------------------------------
  {
    util::Table table({"phase", "frames in", "responses", "conserved"});
    table.row().cell("sweep").cell(sweep_frames_in).cell(sweep_responses).cell(
        sweep_frames_in == sweep_responses ? "yes" : "NO");
    table.row().cell("overload probe").cell(probe_frames).cell(probe_responses)
        .cell(probe_frames == probe_responses ? "yes" : "NO");
    table.print(std::cout,
                "wire conservation: frames_in == sum(by_status) - "
                "decode_errors");
    if (sweep_frames_in != sweep_responses ||
        probe_frames != probe_responses) {
      std::cerr << "FAIL: wire conservation violated — silent drops\n";
      ok = false;
    }
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"net\",\n"
       << "  \"experiment\": \"E20\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"cells\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto& cell = cells[i];
      os << (i ? ",\n    " : "\n    ") << "{\"connections\": "
         << cell.connections << ", \"window\": " << cell.window
         << ", \"qps\": " << cell.qps << ", \"p50_us\": " << cell.p50_us
         << ", \"p99_us\": " << cell.p99_us << ", \"ok\": " << cell.ok
         << ", \"overloaded\": " << cell.overloaded << "}";
    }
    os << "\n  ],\n"
       << "  \"scaling_checked\": " << (hw >= 4 ? "true" : "false") << ",\n"
       << "  \"overload_shed\": " << probe_shed << ",\n"
       << "  \"overload_ok\": " << probe_ok << ",\n"
       << "  \"conserved\": "
       << (sweep_frames_in == sweep_responses && probe_frames == probe_responses
               ? "true"
               : "false")
       << ",\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }

  return ok ? 0 : 1;
}
