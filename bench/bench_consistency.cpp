// E7 — Lemma 4.9: independent replicas answer consistently with one
// solution, and the reproducible quantiles are what buys it.
//
// The experiment sweeps the per-run sampling budget: at every budget the
// reproducible pipeline dominates the naive ablation (plain [IKY12]
// empirical quantiles, the paper's Section 1.1 "major issue"), reaching
// all-replicas-identical behaviour with ~4-20x fewer samples.  The strictest
// column — the fraction of replica *pairs* answering every query identically
// — is where naive estimation visibly falls apart.

#include <iostream>

#include "core/consistency.h"
#include "knapsack/generators.h"
#include "util/table.h"
#include "util/thread_pool.h"

int main() {
  using namespace lcaknap;

  std::cout << "E7: replica consistency (Lemma 4.9), reproducible vs naive "
               "quantiles\n\n";

  constexpr std::size_t kN = 20'000;
  util::ThreadPool pool;

  util::Table table({"family", "samples/run", "quantiles", "pairwise agree",
                     "unanimous", "identical pairs", "divergence from consensus"});
  for (const auto family :
       {knapsack::Family::kNeedle, knapsack::Family::kUncorrelated}) {
    const auto inst = knapsack::make_family(family, kN, 31);
    for (const std::size_t budget : {20'000UL, 50'000UL, 100'000UL, 400'000UL}) {
      for (const bool reproducible : {true, false}) {
        core::LcaKpConfig config;
        config.eps = 0.1;
        config.seed = 0xE7;
        config.domain_bits = 20;  // fine grid: nothing hides in coarse cells
        config.quantile_samples = budget;
        config.reproducible_quantiles = reproducible;

        core::ConsistencyConfig experiment;
        experiment.replicas = 8;
        experiment.queries = 400;
        experiment.experiment_seed = 32;

        const auto report =
            core::run_consistency(inst, config, experiment, 0.0, &pool);
        table.row()
            .cell(knapsack::family_name(family))
            .cell(budget)
            .cell(reproducible ? "reproducible" : "naive")
            .cell(report.pairwise_agreement)
            .cell(report.unanimous_fraction)
            .cell(report.identical_pair_fraction)
            .cell(report.mean_divergence_from_consensus);
      }
    }
  }
  table.print(std::cout,
              "8 replicas, 400 queries, eps = 0.1, log2|X| = 20 — sampling "
              "budget sweep");
  std::cout << "\nShape to check: both columns improve with budget, but at every\n"
               "budget 'reproducible' >= 'naive', and it reaches identical-pairs\n"
               "= 1.0 at ~100k samples where naive still sits near 0.5; pairwise\n"
               "agreement clears the paper's 1 - eps = 0.9 target everywhere.\n";
  return 0;
}
