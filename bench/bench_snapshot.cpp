// E18 — warm-state snapshot restore vs live warm-up.
//
// The claim of docs/PERSISTENCE.md, measured: once a Theorem 4.1 warm-up has
// been paid and persisted, a process restart restores `(L(I~), EPS)` from the
// snapshot at a tiny fraction of the warm-up cost, *and* the restored engine
// is answer-for-answer identical to one that re-ran the warm-up.
//
// Four tables:
//  1. restore vs warm-up wall time (median reps) with the speedup factor —
//     prediction: restore >= 10x faster than the live warm-up (hard failure
//     when violated: exit 1);
//  2. fidelity: run_digest of saved / restored / fresh-live state must agree
//     exactly (hard failure), plus snapshot size on disk;
//  3. engine equivalence: a ServeEngine warmed live and one warmed from the
//     snapshot answer a shared query stream — any answer mismatch is a hard
//     failure;
//  4. StateStore hydration: a cold store (first process) pays the warm-up and
//     persists; a second store (the restart) hydrates from the snapshot;
//     reported via its store_* stats.
//
// Flags: --smoke shrinks every budget for CI; --json PATH writes a one-object
// JSON summary (default BENCH_snapshot.json when --json has no value).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "serve/engine.h"
#include "store/snapshot.h"
#include "store/state_store.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double median_ms(int reps, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    times.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcaknap;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                          : "BENCH_snapshot.json";
    } else {
      std::cerr << "usage: bench_snapshot [--smoke] [--json [PATH]]\n";
      return 2;
    }
  }

  std::cout << "E18: warm-state snapshot restore vs live warm-up"
            << (smoke ? " [smoke]" : "") << "\n\n";

  const auto dir = std::filesystem::temp_directory_path() / "lcaknap_bench_snapshot";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string snap_path = (dir / "bench.snap").string();

  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated,
                                          smoke ? 20'000 : 100'000, 3);
  const oracle::MaterializedAccess access(inst);
  core::LcaKpConfig config;
  config.eps = 0.2;
  config.seed = 0xE18;
  config.quantile_samples = smoke ? 400'000 : 2'000'000;
  const core::LcaKp lca(access, config);
  constexpr std::uint64_t kTape = 7;
  const auto fingerprint = store::fingerprint_of(lca, kTape);

  bool ok = true;

  // --- 1. Restore vs warm-up wall time. ------------------------------------
  const auto run = lca.run_warmup(kTape);
  store::write_snapshot(snap_path, fingerprint, run);
  const int reps = smoke ? 3 : 5;
  const double warmup_ms = median_ms(reps, [&] { (void)lca.run_warmup(kTape); });
  const double restore_ms =
      median_ms(reps, [&] { (void)store::read_snapshot(snap_path, &fingerprint); });
  const double speedup = warmup_ms / restore_ms;
  {
    util::Table table({"path", "median ms", "speedup"});
    table.row().cell("live warm-up").cell(warmup_ms, 2).cell(1.0, 2);
    table.row().cell("snapshot restore").cell(restore_ms, 3).cell(speedup, 1);
    table.print(std::cout, "restart cost: snapshot restore vs live warm-up");
    std::cout << "\n";
    if (speedup < 10.0) {
      std::cerr << "FAIL: snapshot restore speedup " << speedup
                << "x below the predicted 10x\n";
      ok = false;
    }
  }

  // --- 2. Fidelity: digests agree, bytes are canonical. --------------------
  const auto restored = store::read_snapshot(snap_path, &fingerprint);
  const std::uint64_t digest_saved = core::run_digest(run);
  const std::uint64_t digest_restored = core::run_digest(restored);
  const std::uint64_t digest_fresh = core::run_digest(lca.run_warmup(kTape));
  const auto snapshot_bytes = std::filesystem::file_size(snap_path);
  {
    util::Table table({"state", "digest", "matches saved"});
    table.row().cell("saved (live warm-up)").cell(std::to_string(digest_saved))
        .cell("-");
    table.row().cell("restored from snapshot")
        .cell(std::to_string(digest_restored))
        .cell(digest_restored == digest_saved ? "yes" : "NO");
    table.row().cell("fresh live warm-up").cell(std::to_string(digest_fresh))
        .cell(digest_fresh == digest_saved ? "yes" : "NO");
    table.print(std::cout, "fidelity: run_digest equality (snapshot = " +
                               std::to_string(snapshot_bytes) + " bytes)");
    std::cout << "\n";
    if (digest_restored != digest_saved || digest_fresh != digest_saved) {
      std::cerr << "FAIL: restored state is not byte-identical to the live "
                   "warm-up\n";
      ok = false;
    }
  }

  // --- 3. Engine equivalence over a query stream. --------------------------
  std::size_t mismatches = 0;
  std::size_t queried = 0;
  {
    serve::EngineConfig live_config;
    live_config.workers = 2;
    live_config.warmup_tape_seed = kTape;
    live_config.warmup_threads = 1;
    metrics::Registry live_registry;
    serve::ServeEngine live(lca, live_config, live_registry);

    auto restored_config = live_config;
    restored_config.warm_state =
        std::make_shared<const core::LcaKpRun>(restored);
    metrics::Registry restored_registry;
    serve::ServeEngine from_snapshot(lca, restored_config, restored_registry);

    const std::size_t stride = smoke ? 97 : 31;
    for (std::size_t item = 0; item < inst.size(); item += stride) {
      const auto a = live.submit_wait(item);
      const auto b = from_snapshot.submit_wait(item);
      ++queried;
      if (a.outcome != serve::Outcome::kOk ||
          b.outcome != serve::Outcome::kOk || a.answer != b.answer) {
        ++mismatches;
      }
    }
    util::Table table({"metric", "value"});
    table.row().cell("queries compared").cell(queried);
    table.row().cell("answer mismatches").cell(mismatches);
    table.print(std::cout, "engine equivalence: live vs restored warm state");
    std::cout << "\n";
    if (mismatches != 0) {
      std::cerr << "FAIL: restored engine disagreed with the live engine\n";
      ok = false;
    }
  }

  // --- 4. StateStore hydration across "processes". -------------------------
  std::uint64_t cold_warmups = 0;
  std::uint64_t restart_hydrations = 0;
  {
    const std::string store_dir = (dir / "store").string();
    std::filesystem::create_directories(store_dir);
    metrics::Registry cold_registry;
    store::StateStore cold({.capacity = 4, .snapshot_dir = store_dir},
                           cold_registry);
    const auto t0 = Clock::now();
    (void)cold.get("tenant", lca, kTape);
    const double cold_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    cold_warmups = cold.stats().live_warmups;

    metrics::Registry restart_registry;
    store::StateStore restart({.capacity = 4, .snapshot_dir = store_dir},
                              restart_registry);
    const auto t1 = Clock::now();
    (void)restart.get("tenant", lca, kTape);
    const double restart_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t1).count();
    restart_hydrations = restart.stats().snapshot_hydrations;

    util::Table table({"process", "path", "ms"});
    table.row().cell("first (cold)")
        .cell(cold_warmups == 1 ? "live warm-up, persisted" : "UNEXPECTED")
        .cell(cold_ms, 2);
    table.row().cell("restart")
        .cell(restart_hydrations == 1 ? "restored from snapshot" : "UNEXPECTED")
        .cell(restart_ms, 3);
    table.print(std::cout, "StateStore: cold process vs restart");
    if (cold_warmups != 1 || restart_hydrations != 1) {
      std::cerr << "FAIL: StateStore did not take the expected hydration "
                   "paths\n";
      ok = false;
    }
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n"
       << "  \"bench\": \"snapshot\",\n"
       << "  \"experiment\": \"E18\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"warmup_ms\": " << warmup_ms << ",\n"
       << "  \"restore_ms\": " << restore_ms << ",\n"
       << "  \"restore_speedup\": " << speedup << ",\n"
       << "  \"snapshot_bytes\": " << snapshot_bytes << ",\n"
       << "  \"digest_equal\": "
       << (digest_restored == digest_saved && digest_fresh == digest_saved
               ? "true"
               : "false")
       << ",\n"
       << "  \"engine_queries_compared\": " << queried << ",\n"
       << "  \"engine_answer_mismatches\": " << mismatches << ",\n"
       << "  \"pass\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }

  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
