// E16 — chaos-soak: scripted outage vs the resilient client stack.
//
// Both runs serve the same paced trace through the same scripted storm
// (steady -> hard outage -> brownout -> recovered, wall-clock scheduled):
//
//   naive      storage -> chaos -> retrying(immediate, 16 attempts),
//              degradation off — the pre-resilience client, which answers
//              outage failures with kError after hammering the dead oracle;
//   resilient  storage -> chaos -> verifying -> retrying(backoff + jitter +
//              budget) -> circuit breaker, degradation on — outage requests
//              fall back to the warm-state rule and count as kDegraded.
//
// Falsifiable predictions (EXPERIMENTS.md E16): resilient goodput is
// strictly above naive during the outage window; the resilient stack wastes
// strictly fewer oracle calls on a dead oracle (the breaker stops paying to
// rediscover the outage); with corruption rate 0 the verifier never fires;
// and the outcome conservation law holds exactly for both runs.  Violations
// exit nonzero.

#include <chrono>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "core/lca_kp.h"
#include "core/serving_sim.h"
#include "fault/chaos.h"
#include "fault/circuit_breaker.h"
#include "fault/verifying.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/flaky.h"
#include "serve/engine.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace lcaknap;

fault::FaultPlan storm_plan() {
  // Wall-clock phases; the whole scripted storm lasts 700 ms.
  return fault::parse_fault_plan(
      "steady:150;outage:250:fail=1;brownout:300:fail=0.3,lat=50..200;"
      "recovered:0",
      /*seed=*/0xE16);
}

struct SoakResult {
  serve::EngineStats stats;
  double goodput_qps = 0.0;       // (ok + degraded) per wall second
  double p99_us = 0.0;            // engine-side request latency
  std::uint64_t wasted_calls = 0; // oracle calls answered by a fail-stop
  std::uint64_t corruptions_detected = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_rejected = 0;
  bool conserved = false;
};

struct SoakConfig {
  bool resilient = false;
  std::size_t requests = 16'000;
  std::size_t burst = 16;                       // submissions per pacing tick
  std::chrono::microseconds tick{1'000};        // open-loop pacing interval
};

SoakResult soak(const oracle::InstanceAccess& storage, const SoakConfig& soak_config,
                const std::vector<std::size_t>& trace) {
  metrics::Registry registry;
  fault::ChaosAccess chaos(storage, storm_plan(), util::system_clock(),
                           /*armed=*/false, registry);

  // Client-side policy, naive vs resilient.
  const fault::VerifyingAccess verified(chaos, registry);
  oracle::RetryConfig naive_retries;
  naive_retries.max_attempts = 16;  // immediate hammering, no backoff
  oracle::RetryConfig resilient_retries;
  resilient_retries.max_attempts = 5;
  resilient_retries.base_backoff_us = 200;
  resilient_retries.max_backoff_us = 20'000;
  resilient_retries.retry_budget_ratio = 0.1;
  resilient_retries.retry_budget_initial = 64;
  const oracle::RetryingAccess retrying(
      soak_config.resilient ? static_cast<const oracle::InstanceAccess&>(verified)
                            : chaos,
      soak_config.resilient ? resilient_retries : naive_retries,
      util::system_clock(), registry);
  fault::CircuitBreakerConfig breaker_config;
  breaker_config.consecutive_failures = 5;
  breaker_config.open_cooldown_us = 25'000;
  const fault::BreakerAccess guarded(retrying, breaker_config,
                                     util::system_clock(), registry);
  const oracle::InstanceAccess& client =
      soak_config.resilient ? static_cast<const oracle::InstanceAccess&>(guarded)
                            : retrying;

  core::LcaKpConfig lca_config;
  lca_config.eps = 0.15;
  lca_config.seed = 0xE16;
  lca_config.quantile_samples = 50'000;
  const core::LcaKp lca(client, lca_config);

  serve::EngineConfig engine_config;
  engine_config.workers = 4;
  engine_config.queue_capacity = soak_config.requests;
  engine_config.batcher.max_batch_size = 32;
  engine_config.batcher.max_linger = std::chrono::microseconds(200);
  engine_config.cache.capacity = 1 << 12;
  engine_config.cache.shards = 8;
  engine_config.degrade = soak_config.resilient;
  serve::ServeEngine engine(lca, engine_config, registry);

  chaos.arm();  // warm-up done: the storm begins with the first request

  // Open-loop pacing: submit a burst every tick regardless of completions,
  // like upstream traffic that does not slow down because we are failing.
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(soak_config.requests);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < soak_config.requests; ++i) {
    futures.push_back(engine.submit(trace[i % trace.size()]));
    if ((i + 1) % soak_config.burst == 0) {
      std::this_thread::sleep_for(soak_config.tick);
    }
  }
  std::uint64_t answered = 0;
  for (auto& future : futures) {
    const auto outcome = future.get().outcome;
    answered += outcome == serve::Outcome::kOk ||
                        outcome == serve::Outcome::kDegraded
                    ? 1
                    : 0;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  engine.drain();

  SoakResult result;
  result.stats = engine.stats();
  result.goodput_qps = static_cast<double>(answered) / seconds;
  result.p99_us =
      registry
          .histogram("serve_request_latency_us",
                     "End-to-end request latency in microseconds (admission to "
                     "completion)",
                     serve::serve_latency_buckets())
          .percentile(0.99);
  result.wasted_calls = chaos.failstops_injected();
  result.corruptions_detected = verified.corruptions_detected();
  result.breaker_trips = guarded.breaker().counters().to_open;
  result.breaker_rejected = guarded.breaker().counters().rejected;
  result.conserved =
      result.stats.submitted ==
      result.stats.ok + result.stats.overloaded + result.stats.deadline_exceeded +
          result.stats.degraded + result.stats.errors;
  return result;
}

}  // namespace

int main() {
  using namespace lcaknap;

  std::cout << "E16: chaos soak — naive retries vs backoff + breaker + degrade\n"
               "storm: " << storm_plan().describe() << "\n\n";

  constexpr std::size_t kN = 20'000;
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, kN, 161);
  const oracle::MaterializedAccess storage(inst);

  core::WorkloadConfig workload;
  workload.shape = core::WorkloadConfig::Shape::kZipf;
  workload.queries = 16'000;
  const auto trace = core::generate_workload(kN, workload);

  SoakConfig naive_config;
  SoakConfig resilient_config;
  resilient_config.resilient = true;
  const auto naive = soak(storage, naive_config, trace);
  const auto resilient = soak(storage, resilient_config, trace);

  util::Table table({"client", "goodput qps", "ok", "degraded", "errors",
                     "p99 us", "wasted calls", "trips", "fast-fails",
                     "conserved"});
  const auto emit = [&table](const char* name, const SoakResult& r) {
    table.row()
        .cell(name)
        .cell(r.goodput_qps, 0)
        .cell(r.stats.ok)
        .cell(r.stats.degraded)
        .cell(r.stats.errors)
        .cell(r.p99_us, 0)
        .cell(r.wasted_calls)
        .cell(r.breaker_trips)
        .cell(r.breaker_rejected)
        .cell(r.conserved ? "exact" : "VIOLATED");
  };
  emit("naive retry", naive);
  emit("resilient", resilient);
  table.print(std::cout,
              "16000 requests, zipf(1.1) trace, 4 workers, 700 ms scripted storm");

  bool pass = true;
  const auto check = [&pass](bool ok, const char* what) {
    std::cout << (ok ? "  pass  " : "  FAIL  ") << what << "\n";
    pass = pass && ok;
  };
  std::cout << "\nE16 predictions:\n";
  check(naive.conserved && resilient.conserved,
        "outcome conservation exact in both runs");
  check(resilient.goodput_qps > naive.goodput_qps,
        "resilient goodput strictly above naive under the same storm");
  check(resilient.stats.degraded > 0,
        "outage traffic was served degraded, not errored");
  check(resilient.wasted_calls < naive.wasted_calls,
        "breaker + backoff waste fewer calls on a dead oracle");
  check(naive.corruptions_detected == 0 && resilient.corruptions_detected == 0,
        "zero verifier detections under a corruption-free plan");

  std::cout << "\nShape to check: during the hard outage the naive client burns\n"
               "16 immediate attempts per request and still answers kError; the\n"
               "resilient client trips its breaker after a handful of failures,\n"
               "fast-fails the rest, and serves the warm-state fallback as\n"
               "kDegraded — goodput stays up and the dead oracle is left alone.\n";
  return pass ? 0 : 2;
}
