// E1 — Theorem 3.2 (and Figure 1): no sublinear-query LCA serves an optimal
// Knapsack solution.
//
// Reproduces the claim empirically: on the hard OR distribution the success
// rate of a budgeted strategy answering the single LCA query "is s_n in the
// optimal solution of I(x)?" is capped at ~1/2 + q/(2(n-1)), so reaching the
// 2/3 bar of the theorem requires a budget linear in n; the full-read
// baseline pays exactly n-1.  A reduction sanity block first re-verifies the
// instance mapping against brute force.

#include <iostream>

#include "knapsack/solvers/brute_force.h"
#include "lowerbound/or_reduction.h"
#include "oracle/access.h"
#include "util/table.h"

int main() {
  using namespace lcaknap;

  std::cout << "E1: LCA for *optimal* Knapsack requires Omega(n) queries "
               "(Theorem 3.2)\n\n";

  // --- Reduction sanity: OR(x) == 0  <=>  s_n uniquely optimal. ----------
  {
    util::Table table({"x", "OR(x)", "optimal item", "s_n optimal?"});
    util::Xoshiro256 rng(1);
    for (int planted = 0; planted < 2; ++planted) {
      std::vector<std::uint8_t> x(12, 0);
      if (planted) x[7] = 1;
      const auto inst = lowerbound::make_or_instance(x);
      const auto opt = knapsack::brute_force(inst);
      table.row()
          .cell(planted ? "single 1 at index 7" : "all zeros")
          .cell(static_cast<long long>(planted))
          .cell(static_cast<unsigned long long>(opt.items.at(0)))
          .cell(opt.items.at(0) == x.size() ? "yes" : "no");
    }
    table.print(std::cout, "reduction sanity (Figure 1 instance, n = 13)");
    std::cout << "\n";
  }

  // --- The query-complexity game. -----------------------------------------
  const lowerbound::RandomProbeStrategy probe;
  const lowerbound::FullReadStrategy full;
  constexpr std::size_t kTrials = 4'000;

  util::Table table({"n", "budget", "budget/n", "success", "predicted ceiling",
                     "mean queries"});
  util::Xoshiro256 rng(2);
  for (const std::size_t n : {1'024UL, 8'192UL, 65'536UL}) {
    for (const double frac : {1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0}) {
      const auto budget = static_cast<std::uint64_t>(frac * static_cast<double>(n));
      const auto r = lowerbound::play_or_game(n, budget, kTrials, probe, rng);
      table.row()
          .cell(static_cast<unsigned long long>(n))
          .cell(budget)
          .cell(frac)
          .cell(r.success_rate)
          .cell(r.predicted_ceiling)
          .cell(r.mean_queries, 1);
    }
    const auto fr = lowerbound::play_or_game(n, n, 500, full, rng);
    table.row()
        .cell(static_cast<unsigned long long>(n))
        .cell(static_cast<unsigned long long>(n))
        .cell("full-read")
        .cell(fr.success_rate)
        .cell(1.0)
        .cell(fr.mean_queries, 1);
  }
  table.print(std::cout,
              "success vs budget on the hard OR distribution "
              "(2/3 bar needs budget ~ n/3)");
  std::cout << "\nShape to check: success tracks 1/2 + (budget/n)/2 at every n —\n"
               "constant budgets stay at coin-flipping, only Omega(n) reaches 2/3.\n\n";

  // --- The escape hatch: the same distribution under weighted sampling. ----
  // Section 4's model change dissolves the hardness: on I(x), a weighted
  // sample lands on a planted profit-1 item with probability 2/3 per draw
  // (vs. beta = 1/2 on s_n), so O(1) samples decide OR with error 3^-k.
  // This single table is the paper's arc: Theta(n) queries, O(1) samples.
  {
    util::Table escape({"n", "weighted samples per decision", "success",
                        "query-model cost for same success"});
    util::Xoshiro256 rng(4);
    for (const std::size_t n : {1'024UL, 65'536UL}) {
      constexpr int kDraws = 20;
      constexpr std::size_t kTrials = 2'000;
      std::size_t successes = 0;
      for (std::size_t trial = 0; trial < kTrials; ++trial) {
        std::vector<std::uint8_t> x(n - 1, 0);
        const bool planted = rng.next_double() < 0.5;
        if (planted) x[rng.next_below(n - 1)] = 1;
        const auto inst = lowerbound::make_or_instance(x);
        const oracle::MaterializedAccess access(inst);
        bool saw_planted = false;
        for (int d = 0; d < kDraws && !saw_planted; ++d) {
          // A planted item has profit beta_den = 2; s_n has beta_num = 1.
          saw_planted = access.weighted_sample(rng).item.profit == 2;
        }
        const bool claim_s_n_optimal = !saw_planted;
        if (claim_s_n_optimal == !planted) ++successes;
      }
      escape.row()
          .cell(static_cast<unsigned long long>(n))
          .cell(static_cast<long long>(kDraws))
          .cell(static_cast<double>(successes) / kTrials)
          .cell("~" + std::to_string(n / 3) + " queries");
    }
    escape.print(std::cout,
                 "the Section 4 model change: weighted sampling decides the "
                 "same hard instances with O(1) draws");
  }
  return 0;
}
