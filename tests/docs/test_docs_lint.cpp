#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cert/cert_log.h"
#include "cert/verifier.h"
#include "core/lca_kp.h"
#include "core/serving_sim.h"
#include "dyn/epoch_state.h"
#include "fault/chaos.h"
#include "fault/circuit_breaker.h"
#include "fault/plan.h"
#include "fault/verifying.h"
#include "fleet/chaos.h"
#include "fleet/checker.h"
#include "fleet/client.h"
#include "fleet/map.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "net/client.h"
#include "net/server.h"
#include "net/session.h"
#include "oracle/access.h"
#include "oracle/flaky.h"
#include "oracle/instrumented.h"
#include "oracle/sharded.h"
#include "serve/engine.h"
#include "store/snapshot.h"
#include "store/state_store.h"
#include "util/virtual_clock.h"

/// Docs lint (ISSUE 6 satellite): the documentation is part of the operator
/// contract, so CI holds it to two machine-checkable invariants:
///
///  1. every metric family the serving stack can export has a row in
///     docs/OBSERVABILITY.md — enforced by instantiating every
///     metric-producing component against the registry and diffing the
///     registered family names against the doc text;
///  2. every relative markdown link in README.md and docs/ resolves to a
///     file that exists in the repo.
///
/// The source tree location comes in via the LCAKNAP_SOURCE_DIR compile
/// definition (see tests/CMakeLists.txt).

namespace lcaknap {
namespace {

std::filesystem::path source_dir() {
  return std::filesystem::path(LCAKNAP_SOURCE_DIR);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot read " << path;
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

TEST(DocsLint, EveryExportedMetricFamilyHasACatalogueRow) {
  const auto tmp = std::filesystem::temp_directory_path() /
                   ("lcaknap_docs_lint_" +
                    std::to_string(
                        ::testing::UnitTest::GetInstance()->random_seed()));
  std::filesystem::remove_all(tmp);
  std::filesystem::create_directories(tmp / "certs");
  std::filesystem::create_directories(tmp / "snaps");

  // Instantiate (and lightly exercise) every metric-producing component so
  // each family registers.  This test binary owns the global registry:
  // everything below lands there, including simulate_serving's families.
  auto& registry = metrics::global_registry();
  const auto inst =
      knapsack::make_family(knapsack::Family::kUncorrelated, 300, 4);
  const oracle::MaterializedAccess storage(inst);
  const oracle::InstrumentedAccess instrumented(
      storage, registry, oracle::LatencyModel{});  // + oracle_access_latency_us
  const oracle::FlakyAccess flaky(instrumented, 0.01, 0xF1A, registry);
  const oracle::RetryingAccess retrying(flaky, oracle::RetryConfig{},
                                        util::system_clock(), registry);
  const oracle::ShardedAccess sharded(inst, 4, registry);
  const fault::ChaosAccess chaos(
      instrumented, fault::parse_fault_plan("steady:0", 1),
      util::system_clock(), /*armed=*/false, registry);
  const fault::VerifyingAccess verifying(chaos, registry);
  const fault::BreakerAccess breaker(instrumented, fault::CircuitBreakerConfig{},
                                     util::system_clock(), registry);

  core::LcaKpConfig lca_config;
  lca_config.eps = 0.3;
  lca_config.seed = 0xFEED;
  lca_config.large_samples = 500;
  lca_config.quantile_samples = 1'024;
  const core::LcaKp lca(retrying, lca_config);

  {
    serve::EngineConfig engine_config;
    engine_config.workers = 2;
    engine_config.cache.capacity = 64;
    engine_config.certify = true;
    engine_config.cert_dir = (tmp / "certs").string();
    serve::ServeEngine engine(lca, engine_config, registry);
    (void)engine.submit_wait(1);
    engine.drain();
    const cert::LogVerifier verifier(
        store::fingerprint_of(lca, engine_config.warmup_tape_seed),
        engine.run(), {}, registry);
    (void)verifier.verify_path(engine_config.cert_dir);
  }
  {
    store::StateStoreConfig store_config;
    store_config.snapshot_dir = (tmp / "snaps").string();
    store::StateStore state_store(store_config, registry);
    (void)state_store.get("lint", lca, 7);
  }
  {
    // The network front-end: router + epoll server + one wire round-trip
    // registers every net_* family (src/net/, docs/NETWORKING.md).
    store::StateStoreConfig net_store_config;
    store::StateStore net_store(net_store_config, registry);
    net::TenantRouter router(net_store, registry);
    net::TenantConfig tenant;
    tenant.lca = &lca;
    tenant.engine.workers = 1;
    router.register_tenant("lint", tenant);
    net::Server server(router, net::ServerConfig{}, registry);
    net::Client client("127.0.0.1", server.port());
    net::RequestFrame frame;
    frame.tenant = "lint";
    (void)client.call(frame);
    server.stop();
    router.drain();
  }
  {
    // The fleet layer: placement map, failover client, replica chaos, and
    // the cross-replica checker register every fleet_* family
    // (src/fleet/, docs/FLEET.md).  Nothing listens on port 1, so the one
    // query settles kError instantly on the virtual clock — families
    // register at construction either way.
    util::VirtualClock fleet_clock;
    fleet::FleetClientConfig fleet_config;
    fleet_config.replicas = {{1, 0, "127.0.0.1", 1}, {2, 1, "127.0.0.1", 1}};
    fleet::FleetClient fleet_client(fleet_config, fleet_clock, registry);
    (void)fleet_client.query("lint", 1);
    fleet::ReplicaChaos replica_chaos(fault::parse_fault_plan("steady:0", 1),
                                      {{1, "lint"}}, fleet::ChaosHooks{},
                                      fleet_clock, registry);
    (void)replica_chaos.tick();
    fleet::ConsistencyChecker checker(
        {{1, "127.0.0.1", 1}, {2, "127.0.0.1", 1}}, registry);
    (void)checker.check("lint", 1);
  }
  {
    // Dynamic instances (src/dyn/, docs/DYNAMIC.md): every dyn_* family
    // registers at EpochedState construction.
    dyn::EpochConfig dyn_config;
    dyn_config.lca = lca_config;
    const dyn::EpochedState epoched(
        knapsack::make_family(knapsack::Family::kUncorrelated, 200, 5),
        dyn_config, registry);
  }
  {
    core::ServingConfig serving;
    serving.lca = lca_config;
    serving.replicas = 1;
    core::WorkloadConfig workload;
    workload.queries = 20;
    (void)core::simulate_serving(inst, serving, workload, nullptr);
  }
  std::filesystem::remove_all(tmp);

  const std::string doc = read_file(source_dir() / "docs" / "OBSERVABILITY.md");
  const auto snapshot = registry.snapshot();
  std::set<std::string> families;
  for (const auto& sample : snapshot.counters) families.insert(sample.name);
  for (const auto& sample : snapshot.gauges) families.insert(sample.name);
  for (const auto& sample : snapshot.histograms) families.insert(sample.name);
  // The harness registered a meaningful stack, or the lint proves nothing.
  ASSERT_GE(families.size(), 30u);

  for (const auto& family : families) {
    // A catalogue row always renders the family name in backticks.
    EXPECT_NE(doc.find("`" + family), std::string::npos)
        << "metric family `" << family
        << "` is exported but has no row in docs/OBSERVABILITY.md";
  }
}

/// Extracts markdown link targets: every `](target)` occurrence.
std::vector<std::string> link_targets(const std::string& text) {
  std::vector<std::string> targets;
  std::size_t at = 0;
  while ((at = text.find("](", at)) != std::string::npos) {
    const std::size_t start = at + 2;
    const std::size_t end = text.find(')', start);
    if (end == std::string::npos) break;
    targets.push_back(text.substr(start, end - start));
    at = end + 1;
  }
  return targets;
}

TEST(DocsLint, EveryRelativeMarkdownLinkResolves) {
  std::vector<std::filesystem::path> pages = {source_dir() / "README.md",
                                              source_dir() / "ROADMAP.md"};
  for (const auto& entry :
       std::filesystem::directory_iterator(source_dir() / "docs")) {
    if (entry.path().extension() == ".md") pages.push_back(entry.path());
  }
  ASSERT_GE(pages.size(), 5u);

  std::size_t checked = 0;
  for (const auto& page : pages) {
    const std::string text = read_file(page);
    for (const auto& raw : link_targets(text)) {
      if (raw.empty() || raw.front() == '#') continue;  // intra-page anchor
      if (raw.find("://") != std::string::npos) continue;  // external URL
      if (raw.rfind("mailto:", 0) == 0) continue;
      // Strip any trailing anchor: FILE.md#section -> FILE.md.
      const std::string target = raw.substr(0, raw.find('#'));
      const auto resolved = page.parent_path() / target;
      EXPECT_TRUE(std::filesystem::exists(resolved))
          << page.filename().string() << " links to " << raw
          << " but " << resolved << " does not exist";
      ++checked;
    }
  }
  // The docs index alone cross-links every page; a tiny count means the
  // extractor broke, not that the docs went quiet.
  EXPECT_GE(checked, 20u);
}

}  // namespace
}  // namespace lcaknap
