#include "iky/value_approx.h"

#include <gtest/gtest.h>

#include <cmath>

#include "knapsack/generators.h"
#include "knapsack/solvers/greedy.h"
#include "knapsack/solvers/solve.h"
#include "oracle/access.h"

namespace lcaknap::iky {
namespace {

TEST(CouponCollectorSamples, MatchesLemma42) {
  const double delta = 0.04;
  const auto base = static_cast<double>(coupon_collector_samples(delta, 1));
  EXPECT_NEAR(base, std::ceil(6.0 / delta * (std::log(1.0 / delta) + 1.0)), 1.0);
  EXPECT_EQ(coupon_collector_samples(delta, 3), 3 * coupon_collector_samples(delta, 1));
  EXPECT_THROW(coupon_collector_samples(0.0), std::invalid_argument);
  EXPECT_THROW(coupon_collector_samples(0.5, 0), std::invalid_argument);
}

class ValueApproxFamily : public ::testing::TestWithParam<knapsack::Family> {};

TEST_P(ValueApproxFamily, EstimateWithinSixEps) {
  const double eps = 0.25;
  const auto inst = knapsack::make_family(GetParam(), 3'000, 21);
  const auto exact = knapsack::solve_exact(inst, /*bb_node_budget=*/20'000'000);
  // When the referee cannot prove optimality, bracket OPT instead:
  // greedy_half <= OPT <= fractional_opt.
  const double scale = static_cast<double>(inst.total_profit());
  double opt_lo, opt_hi;
  if (exact.proven_optimal) {
    opt_lo = opt_hi = static_cast<double>(exact.solution.value) / scale;
  } else {
    opt_lo = static_cast<double>(knapsack::greedy_half(inst).solution.value) / scale;
    opt_hi = knapsack::fractional_opt(inst) / scale;
  }

  const oracle::MaterializedAccess access(inst);
  ValueApproxConfig config;
  config.eps = eps;
  util::Xoshiro256 rng(22);
  int failures = 0;
  constexpr int kRuns = 5;
  for (int run = 0; run < kRuns; ++run) {
    const auto result = approximate_opt_value(access, config, rng);
    // Lemma 4.4: OPT(Ĩ) - eps is a (1, 6 eps)-approximation of OPT(I); allow
    // a small sampling cushion on top of the bracket.
    if (result.estimate > opt_hi + 6.0 * eps + 0.05 ||
        result.estimate < opt_lo - 6.0 * eps - 0.05) {
      ++failures;
    }
  }
  EXPECT_LE(failures, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Families, ValueApproxFamily,
    ::testing::Values(knapsack::Family::kUncorrelated,
                      knapsack::Family::kWeaklyCorrelated,
                      knapsack::Family::kNeedle,
                      knapsack::Family::kSubsetSum),
    [](const auto& info) { return knapsack::family_name(info.param); });

TEST(ValueApprox, QueryCostIndependentOfN) {
  // The defining property of [IKY12]: the sample count does not grow with n.
  const double eps = 0.25;
  ValueApproxConfig config;
  config.eps = eps;
  std::uint64_t cost_small = 0, cost_large = 0;
  {
    const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 2'000, 23);
    const oracle::MaterializedAccess access(inst);
    util::Xoshiro256 rng(24);
    cost_small = approximate_opt_value(access, config, rng).samples_used;
  }
  {
    const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 200'000, 23);
    const oracle::MaterializedAccess access(inst);
    util::Xoshiro256 rng(24);
    cost_large = approximate_opt_value(access, config, rng).samples_used;
  }
  EXPECT_EQ(cost_small, cost_large);
}

TEST(ValueApprox, TildeSizeIsConstantInN) {
  ValueApproxConfig config;
  config.eps = 0.2;
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 50'000, 25);
  const oracle::MaterializedAccess access(inst);
  util::Xoshiro256 rng(26);
  const auto result = approximate_opt_value(access, config, rng);
  // |Ĩ| <= 1/eps^2 large + (1/eps) bands * floor(1/eps) copies.
  EXPECT_LE(result.tilde_size, static_cast<std::size_t>(2.0 / (0.2 * 0.2)));
  EXPECT_GT(result.tilde_size, 0u);
}

TEST(ValueApprox, RejectsBadEps) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 100, 27);
  const oracle::MaterializedAccess access(inst);
  util::Xoshiro256 rng(28);
  ValueApproxConfig config;
  config.eps = 0.0;
  EXPECT_THROW(approximate_opt_value(access, config, rng), std::invalid_argument);
}

TEST(ValueApprox, EstimateIsNonNegativeAndAtMostOne) {
  const auto inst = knapsack::make_family(knapsack::Family::kSubsetSum, 1'000, 29);
  const oracle::MaterializedAccess access(inst);
  util::Xoshiro256 rng(30);
  ValueApproxConfig config;
  config.eps = 0.3;
  const auto result = approximate_opt_value(access, config, rng);
  EXPECT_GE(result.estimate, 0.0);
  EXPECT_LE(result.estimate, 1.0 + 1e-9);
}

}  // namespace
}  // namespace lcaknap::iky
