#include "iky/construct.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lcaknap::iky {
namespace {

std::vector<NormLargeItem> two_large() {
  // Two large items: (0.3 profit, 0.2 weight) and (0.2, 0.1).
  NormLargeItem a{0, 0.3, 0.2, 1.5};
  NormLargeItem b{1, 0.2, 0.1, 2.0};
  return {a, b};
}

TEST(ConstructTilde, LargeItemsCopiedVerbatim) {
  const auto large = two_large();
  const TildeInstance tilde = construct_tilde(large, {}, 0.25, 0.5);
  ASSERT_EQ(tilde.items.size(), 2u);
  EXPECT_TRUE(tilde.items[0].is_large);
  EXPECT_EQ(tilde.items[0].source_index, 0u);
  EXPECT_DOUBLE_EQ(tilde.items[0].profit, 0.3);
  EXPECT_DOUBLE_EQ(tilde.items[1].weight, 0.1);
  EXPECT_DOUBLE_EQ(tilde.capacity, 0.5);
  EXPECT_NEAR(tilde.large_profit(), 0.5, 1e-12);
}

TEST(ConstructTilde, RepresentativeCountAndShape) {
  const double eps = 0.25;  // floor(1/eps) = 4 copies per band
  const std::vector<double> thresholds{2.0, 1.0, 0.5};
  const TildeInstance tilde = construct_tilde(two_large(), thresholds, eps, 0.5);
  // 2 large + 3 bands * 4 copies.
  ASSERT_EQ(tilde.items.size(), 2u + 12u);
  const double eps2 = eps * eps;
  std::size_t band_counts[3] = {0, 0, 0};
  for (const auto& it : tilde.items) {
    if (it.is_large) continue;
    ASSERT_GE(it.band, 0);
    ASSERT_LT(it.band, 3);
    ++band_counts[it.band];
    EXPECT_DOUBLE_EQ(it.profit, eps2);
    // Band k representative: (eps^2, eps^2 / e_{k+1}).
    EXPECT_DOUBLE_EQ(it.weight, eps2 / thresholds[static_cast<std::size_t>(it.band)]);
    EXPECT_DOUBLE_EQ(it.efficiency, thresholds[static_cast<std::size_t>(it.band)]);
  }
  for (const auto c : band_counts) EXPECT_EQ(c, 4u);
}

TEST(ConstructTilde, SizeIsEpsBounded) {
  // |Ĩ| <= |L| + t * floor(1/eps) with t <= 1/eps: O(1/eps^2), independent of n.
  const double eps = 0.2;
  std::vector<double> thresholds;
  for (int k = 0; k < 5; ++k) thresholds.push_back(2.0 / (k + 1));
  const TildeInstance tilde = construct_tilde(two_large(), thresholds, eps, 0.5);
  EXPECT_LE(tilde.items.size(),
            2u + static_cast<std::size_t>(std::floor(1.0 / eps)) * thresholds.size());
}

TEST(ConstructTilde, ValidatesArguments) {
  EXPECT_THROW(construct_tilde({}, {}, 0.0, 0.5), std::invalid_argument);
  const std::vector<double> increasing{1.0, 2.0};
  EXPECT_THROW(construct_tilde(two_large(), increasing, 0.2, 0.5),
               std::invalid_argument);
  const std::vector<double> nonpositive{1.0, 0.0};
  EXPECT_THROW(construct_tilde(two_large(), nonpositive, 0.2, 0.5),
               std::invalid_argument);
}

TEST(SolveTildeExact, MatchesHandComputedOptimum) {
  // Two large items with weights 0.2 and 0.1, capacity 0.25: only one fits,
  // and the better is item 0 (profit 0.3, weight 0.2).
  const TildeInstance tilde = construct_tilde(two_large(), {}, 0.25, 0.25);
  EXPECT_NEAR(solve_tilde_exact(tilde), 0.3, 1e-6);
  // Capacity 0.35: both fit (0.3 weight), profit 0.5.
  const TildeInstance bigger = construct_tilde(two_large(), {}, 0.25, 0.35);
  EXPECT_NEAR(solve_tilde_exact(bigger), 0.5, 1e-6);
}

TEST(SolveTildeExact, DropsOverweightItems) {
  NormLargeItem heavy{0, 0.9, 0.9, 1.0};
  NormLargeItem light{1, 0.1, 0.05, 2.0};
  const std::vector<NormLargeItem> pair{heavy, light};
  const TildeInstance tilde = construct_tilde(pair, {}, 0.25, 0.1);
  // The heavy item cannot fit; the optimum is the light one.
  EXPECT_NEAR(solve_tilde_exact(tilde), 0.1, 1e-6);
}

TEST(SolveTildeExact, EmptyOrInfeasibleIsZero) {
  NormLargeItem heavy{0, 0.9, 0.9, 1.0};
  const std::vector<NormLargeItem> only{heavy};
  const TildeInstance tilde = construct_tilde(only, {}, 0.25, 0.1);
  EXPECT_DOUBLE_EQ(solve_tilde_exact(tilde), 0.0);
}

TEST(SolveTildeExact, RepresentativesContributeMass) {
  // No large items; 3 bands of representatives with eps = 0.25 (4 copies of
  // profit 1/16 each): total representative profit = 12/16 = 0.75; ample
  // capacity admits everything.
  const std::vector<double> thresholds{2.0, 1.0, 0.5};
  const TildeInstance tilde = construct_tilde({}, thresholds, 0.25, 1.0);
  EXPECT_NEAR(solve_tilde_exact(tilde), 0.75, 1e-6);
}

}  // namespace
}  // namespace lcaknap::iky
