#include "iky/eps.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "iky/efficiency_domain.h"
#include "iky/partition.h"
#include "knapsack/generators.h"
#include "oracle/access.h"

namespace lcaknap::iky {
namespace {

TEST(CheckEps, AcceptsExactConstruction) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 20'000, 11);
  const double eps = 0.2;
  const auto thresholds = exact_eps(inst, eps);
  ASSERT_GE(thresholds.size(), 2u);
  // Per-item granularity can overshoot a band by one item's mass; with
  // 20k items that is well under the eps^2 slack plus a tiny cushion.
  const auto validity = check_eps(inst, thresholds, eps, /*slack=*/0.02);
  EXPECT_TRUE(validity.valid);
  for (std::size_t k = 0; k + 1 < validity.band_masses.size(); ++k) {
    EXPECT_NEAR(validity.band_masses[k], eps, eps * eps + 0.021);
  }
}

TEST(CheckEps, RejectsBadThresholds) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 12);
  // A single absurd threshold putting everything in one band.
  const std::vector<double> bogus{1e-9};
  const auto validity = check_eps(inst, bogus, 0.2);
  EXPECT_FALSE(validity.valid);
}

TEST(CheckEps, RequiresNonIncreasingThresholds) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 1'000, 13);
  const std::vector<double> increasing{1.0, 2.0};
  EXPECT_THROW(check_eps(inst, increasing, 0.2), std::invalid_argument);
}

TEST(EstimateEpsGrid, RecoversQuantilesOfSampledMass) {
  // Weighted samples of small-item efficiencies -> empirical EPS; compare
  // against the exact one on the grid.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 20'000, 14);
  const double eps = 0.2;
  const oracle::MaterializedAccess access(inst);
  const EfficiencyDomain domain(14);
  util::Xoshiro256 rng(15);
  std::vector<std::int64_t> grid_samples;
  const double eps2 = eps * eps;
  while (grid_samples.size() < 60'000) {
    const auto draw = access.weighted_sample(rng);
    if (access.norm_profit(draw.item) > eps2) continue;
    grid_samples.push_back(domain.to_grid(access.efficiency(draw.item)));
  }
  const Partition part = partition_instance(inst, eps);
  const double c = 1.0 - part.large_mass;
  const double q = (eps + eps2 / 2.0) / c;
  const int t = static_cast<int>(std::floor(1.0 / q));
  ASSERT_GE(t, 2);
  const auto thresholds_grid = estimate_eps_grid(grid_samples, q, t);
  ASSERT_EQ(thresholds_grid.size(), static_cast<std::size_t>(t));
  // Non-increasing.
  for (std::size_t k = 1; k < thresholds_grid.size(); ++k) {
    EXPECT_LE(thresholds_grid[k], thresholds_grid[k - 1]);
  }
  // Band masses of the estimated EPS are close to eps (loose sampled check).
  std::vector<double> thresholds;
  for (const auto g : thresholds_grid) thresholds.push_back(domain.from_grid(g));
  const auto validity = check_eps(inst, thresholds, eps, /*slack=*/0.08);
  for (std::size_t k = 0; k + 1 < validity.band_masses.size(); ++k) {
    EXPECT_NEAR(validity.band_masses[k], eps, 0.1) << "band " << k;
  }
}

TEST(EstimateEpsGrid, ValidatesInput) {
  EXPECT_THROW(estimate_eps_grid({}, 0.2, 3), std::invalid_argument);
  const std::vector<std::int64_t> samples{1, 2, 3};
  EXPECT_THROW(estimate_eps_grid(samples, 0.0, 3), std::invalid_argument);
  EXPECT_THROW(estimate_eps_grid(samples, 0.2, -1), std::invalid_argument);
}

TEST(ExactEps, ThresholdsAreStrictlyDecreasing) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 10'000, 16);
  const auto thresholds = exact_eps(inst, 0.15);
  ASSERT_GE(thresholds.size(), 2u);
  for (std::size_t k = 1; k < thresholds.size(); ++k) {
    EXPECT_LT(thresholds[k], thresholds[k - 1]);
  }
}

TEST(ExactEps, AtomicEfficiencyYieldsNoUsableBands) {
  // Subset-sum: all efficiencies equal; an EPS with eps-mass bands cannot
  // exist (finding F2), and the exact construction collapses to at most one
  // threshold.
  const auto inst = knapsack::make_family(knapsack::Family::kSubsetSum, 2'000, 17);
  const auto thresholds = exact_eps(inst, 0.2);
  EXPECT_LE(thresholds.size(), 1u);
}

TEST(ExactEps, ValidatesEps) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 100, 18);
  EXPECT_THROW(exact_eps(inst, 0.0), std::invalid_argument);
  EXPECT_THROW(exact_eps(inst, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace lcaknap::iky
