#include "iky/efficiency_domain.h"

#include <gtest/gtest.h>

#include <limits>

namespace lcaknap::iky {
namespace {

TEST(EfficiencyDomain, SizeMatchesBits) {
  const EfficiencyDomain d(10);
  EXPECT_EQ(d.size(), 1024);
  EXPECT_EQ(d.bits(), 10);
}

TEST(EfficiencyDomain, MapIsMonotone) {
  const EfficiencyDomain d(16);
  std::int64_t previous = -1;
  for (double e = 1e-6; e < 1e6; e *= 1.7) {
    const auto cell = d.to_grid(e);
    EXPECT_GE(cell, previous);
    previous = cell;
  }
}

TEST(EfficiencyDomain, ClampsOutOfRange) {
  const EfficiencyDomain d(8, -4, 4);  // range [1/16, 16]
  EXPECT_EQ(d.to_grid(1e-9), 0);
  EXPECT_EQ(d.to_grid(1e9), d.size() - 1);
  EXPECT_EQ(d.to_grid(0.0), 0);
  EXPECT_EQ(d.to_grid(-1.0), 0);
  EXPECT_EQ(d.to_grid(std::numeric_limits<double>::infinity()), d.size() - 1);
}

TEST(EfficiencyDomain, RoundTripStability) {
  const EfficiencyDomain d(14);
  for (std::int64_t cell : {std::int64_t{0}, std::int64_t{1}, d.size() / 3,
                            d.size() / 2, d.size() - 2, d.size() - 1}) {
    EXPECT_EQ(d.to_grid(d.from_grid(cell)), cell) << "cell=" << cell;
  }
}

TEST(EfficiencyDomain, RepresentativeIsInsideCellRange) {
  const EfficiencyDomain d(8, -4, 4);
  for (std::int64_t cell = 0; cell < d.size(); cell += 17) {
    const double rep = d.from_grid(cell);
    EXPECT_GT(rep, 0.0);
    EXPECT_GE(rep, 1.0 / 16.0 * 0.99);
    EXPECT_LE(rep, 16.0 * 1.01);
  }
}

TEST(EfficiencyDomain, FinerGridsSeparateBetter) {
  const EfficiencyDomain coarse(6);
  const EfficiencyDomain fine(20);
  const double a = 1.0, b = 1.001;
  EXPECT_EQ(coarse.to_grid(a), coarse.to_grid(b));
  EXPECT_NE(fine.to_grid(a), fine.to_grid(b));
}

TEST(EfficiencyDomain, ValidatesArguments) {
  EXPECT_THROW(EfficiencyDomain(0), std::invalid_argument);
  EXPECT_THROW(EfficiencyDomain(49), std::invalid_argument);
  EXPECT_THROW(EfficiencyDomain(8, 5, 5), std::invalid_argument);
}

TEST(EfficiencyDomain, DeterministicAcrossInstances) {
  // Two replicas constructing the domain independently must agree on every
  // mapping — the consistency prerequisite of Section 4.2.
  const EfficiencyDomain a(12), b(12);
  for (double e = 1e-8; e < 1e8; e *= 3.1) {
    EXPECT_EQ(a.to_grid(e), b.to_grid(e));
  }
}

}  // namespace
}  // namespace lcaknap::iky
