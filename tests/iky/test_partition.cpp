#include "iky/partition.h"

#include <gtest/gtest.h>

#include "knapsack/generators.h"

namespace lcaknap::iky {
namespace {

TEST(ClassifyItem, ThresholdsExactlyAtEpsSquared) {
  const double eps = 0.25;  // eps^2 = 0.0625, exact in binary
  EXPECT_EQ(classify_item(0.07, 1.0, eps), ItemClass::kLarge);
  EXPECT_EQ(classify_item(0.0625, 1.0, eps), ItemClass::kSmall);     // p <= eps^2
  EXPECT_EQ(classify_item(0.0625, 0.0625, eps), ItemClass::kSmall);  // eff >= eps^2
  EXPECT_EQ(classify_item(0.0625, 0.06, eps), ItemClass::kGarbage);
  EXPECT_EQ(classify_item(0.0001, 0.0001, eps), ItemClass::kGarbage);
}

TEST(ClassifyItem, ZeroWeightIsNeverGarbage) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(classify_item(0.001, inf, 0.2), ItemClass::kSmall);
  EXPECT_EQ(classify_item(0.5, inf, 0.2), ItemClass::kLarge);
}

TEST(PartitionInstance, ClassesAreDisjointAndExhaustive) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 2000, 3);
  const Partition part = partition_instance(inst, 0.25);
  EXPECT_EQ(part.large.size() + part.small.size() + part.garbage.size(),
            inst.size());
  EXPECT_NEAR(part.large_mass + part.small_mass + part.garbage_mass, 1.0, 1e-9);
}

TEST(PartitionInstance, LargeItemCountBounded) {
  // At most 1/eps^2 items can each carry more than eps^2 of the profit.
  for (const auto family :
       {knapsack::Family::kUncorrelated, knapsack::Family::kNeedle}) {
    const auto inst = knapsack::make_family(family, 3000, 5);
    for (const double eps : {0.15, 0.25, 0.4}) {
      const Partition part = partition_instance(inst, eps);
      EXPECT_LE(static_cast<double>(part.large.size()), 1.0 / (eps * eps) + 1e-9);
    }
  }
}

TEST(PartitionInstance, GarbageMassBoundedByEpsSquared) {
  // Garbage items have efficiency < eps^2 and total (normalized) weight <= 1,
  // so their profit mass is < eps^2 when total weight is normalized — the
  // fact Lemma 4.6 uses.  Our instances have total weight normalized to 1.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5000, 7);
  for (const double eps : {0.2, 0.3}) {
    const Partition part = partition_instance(inst, eps);
    EXPECT_LE(part.garbage_mass, eps * eps + 1e-9);
  }
}

TEST(PartitionInstance, EpsMonotonicity) {
  // Growing eps can only move items out of Large (threshold eps^2 rises).
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 1000, 9);
  const Partition tight = partition_instance(inst, 0.1);
  const Partition loose = partition_instance(inst, 0.4);
  EXPECT_GE(tight.large.size(), loose.large.size());
}

}  // namespace
}  // namespace lcaknap::iky
