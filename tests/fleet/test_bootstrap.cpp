#include "fleet/bootstrap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "net/server.h"
#include "net/session.h"
#include "oracle/access.h"
#include "store/state_store.h"
#include "util/virtual_clock.h"

/// \file test_bootstrap.cpp
/// Snapshot-shipped bootstrap: a shipped `.snap` hydrates a fresh store to
/// the byte-identical warm state (no Theorem 4.1 warm-up paid twice), a
/// shipment corrupted in flight is *rejected by type* and falls back to a
/// live warm-up — never served — and the health frame reports warm only
/// when the tenant actually is.

namespace lcaknap::fleet {
namespace {

core::LcaKpConfig tenant_config() {
  core::LcaKpConfig config;
  config.eps = 0.25;
  config.seed = 0xB007;
  config.large_samples = 2'000;
  config.quantile_samples = 4'096;
  return config;
}

class BootstrapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lcaknap_bootstrap_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_ / "source");
    std::filesystem::create_directories(dir_ / "dest");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(BootstrapTest, ShippedSnapshotHydratesByteIdentically) {
  const auto inst =
      knapsack::make_family(knapsack::Family::kUncorrelated, 4'000, 3);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, tenant_config());

  // A donor replica warms and persists the tenant.
  metrics::Registry donor_registry;
  store::StateStore donor({.capacity = 4, .snapshot_dir = (dir_ / "source").string()},
                          donor_registry);
  const auto digest = core::run_digest(*donor.get("tenant-a", lca, 7));

  const auto shipped = ship_snapshot(donor.snapshot_path("tenant-a"),
                                     (dir_ / "dest").string(), "tenant-a");
  EXPECT_EQ(shipped.path, (dir_ / "dest" / "tenant-a.snap").string());
  EXPECT_EQ(shipped.bytes,
            std::filesystem::file_size(donor.snapshot_path("tenant-a")));
  EXPECT_EQ(std::filesystem::file_size(shipped.path), shipped.bytes);

  // The joining replica restores instead of re-warming.
  metrics::Registry joiner_registry;
  store::StateStore joiner({.capacity = 4, .snapshot_dir = (dir_ / "dest").string()},
                           joiner_registry);
  EXPECT_EQ(core::run_digest(*joiner.get("tenant-a", lca, 7)), digest);
  const auto stats = joiner.stats();
  EXPECT_EQ(stats.snapshot_hydrations, 1u);
  EXPECT_EQ(stats.live_warmups, 0u);
}

TEST_F(BootstrapTest, CorruptedShipmentIsRejectedNeverServed) {
  const auto inst =
      knapsack::make_family(knapsack::Family::kUncorrelated, 4'000, 3);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, tenant_config());

  metrics::Registry donor_registry;
  store::StateStore donor({.capacity = 4, .snapshot_dir = (dir_ / "source").string()},
                          donor_registry);
  const auto digest = core::run_digest(*donor.get("tenant-a", lca, 7));

  const auto shipped = ship_snapshot(donor.snapshot_path("tenant-a"),
                                     (dir_ / "dest").string(), "tenant-a");
  corrupt_snapshot_byte(shipped.path, 40);  // chaos in flight

  metrics::Registry joiner_registry;
  store::StateStore joiner({.capacity = 4, .snapshot_dir = (dir_ / "dest").string()},
                           joiner_registry);
  // Worst case of a corrupted shipment: the cold-start cost — and the
  // served state is still exactly right.
  EXPECT_EQ(core::run_digest(*joiner.get("tenant-a", lca, 7)), digest);
  const auto stats = joiner.stats();
  EXPECT_EQ(stats.rejected_corrupt, 1u);
  EXPECT_EQ(stats.snapshot_hydrations, 0u);
  EXPECT_EQ(stats.live_warmups, 1u);
}

TEST_F(BootstrapTest, CorruptionIsAnXorFlipAtTheClampedOffset) {
  const auto path = (dir_ / "blob.bin").string();
  {
    std::ofstream os(path, std::ios::binary);
    os << "abcd";
  }
  corrupt_snapshot_byte(path, 1);
  {
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    ASSERT_EQ(bytes.size(), 4u);
    EXPECT_EQ(bytes[0], 'a');
    EXPECT_EQ(bytes[1], static_cast<char>('b' ^ 0xFF));
  }
  corrupt_snapshot_byte(path, 1);  // involution: a second flip restores
  {
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes, "abcd");
  }
  // Offsets wrap modulo the size instead of growing the file.
  corrupt_snapshot_byte(path, 4);
  {
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    ASSERT_EQ(bytes.size(), 4u);
    EXPECT_EQ(bytes[0], static_cast<char>('a' ^ 0xFF));
  }
}

TEST_F(BootstrapTest, ShipAndCorruptFailuresAreTyped) {
  EXPECT_THROW(ship_snapshot((dir_ / "absent.snap").string(),
                             (dir_ / "dest").string(), "tenant-a"),
               std::exception);
  EXPECT_THROW(corrupt_snapshot_byte((dir_ / "absent.snap").string(), 0),
               std::exception);
  const auto empty = (dir_ / "empty.snap").string();
  { std::ofstream os(empty, std::ios::binary); }
  EXPECT_THROW(corrupt_snapshot_byte(empty, 0), std::exception);
}

TEST_F(BootstrapTest, WaitReadyTracksTheHydrationStateMachine) {
  const auto inst =
      knapsack::make_family(knapsack::Family::kUncorrelated, 3'000, 5);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, tenant_config());

  metrics::Registry registry;
  store::StateStore store({.capacity = 4}, registry);
  net::TenantRouter router(store, registry);
  net::TenantConfig tenant;
  tenant.lca = &lca;
  tenant.engine.workers = 1;
  router.register_tenant("alpha", tenant);
  net::Server server(router, {}, registry);

  // Registered but cold: the probe answers "not warm" instantly, and
  // wait_ready times out on the virtual clock without a real-time stall.
  util::VirtualClock clock;
  EXPECT_FALSE(wait_ready("127.0.0.1", server.port(), {"alpha"},
                          /*timeout_us=*/200'000, clock));
  // An unregistered tenant can never report warm either.
  EXPECT_FALSE(wait_ready("127.0.0.1", server.port(), {"ghost"},
                          /*timeout_us=*/200'000, clock));

  router.warm_all();
  EXPECT_TRUE(wait_ready("127.0.0.1", server.port(), {"alpha"},
                         /*timeout_us=*/1'000'000, clock));
  server.stop();
  // A dead port is "not ready yet" until the deadline, then false — a
  // ConnectionLost is an expected early-bootstrap state, not an error.
  EXPECT_FALSE(wait_ready("127.0.0.1", server.port(), {"alpha"},
                          /*timeout_us=*/200'000, clock));
  router.drain();
}

}  // namespace
}  // namespace lcaknap::fleet
