#include "fleet/map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "metrics/metrics.h"

/// \file test_map.cpp
/// Pins the consistent-hash placement function.  The golden placements below
/// are load-bearing: every process in a fleet (client, checker, drill
/// orchestrator) computes placement independently from (seed, vnodes,
/// groups), so a drift in the hash silently re-homes tenants across a
/// version boundary.  If one of these values changes, the ring function
/// changed — that is a wire-compatibility event, not a test to update
/// casually (docs/FLEET.md).

namespace lcaknap::fleet {
namespace {

FleetMap three_groups(metrics::Registry& registry) {
  FleetMap map({}, registry);
  map.add_group(0);
  map.add_group(1);
  map.add_group(2);
  return map;
}

TEST(FleetMap, GoldenPlacementsAtDefaultSeed) {
  metrics::Registry registry;
  auto map = three_groups(registry);
  // seed 0xF1EE7, 64 vnodes, groups {0, 1, 2}.
  EXPECT_EQ(map.group_of("default"), 0u);
  EXPECT_EQ(map.group_of("alpha"), 1u);
  EXPECT_EQ(map.group_of("beta"), 2u);
  EXPECT_EQ(map.group_of("gamma"), 1u);
  EXPECT_EQ(map.group_of("delta"), 0u);
  EXPECT_EQ(map.group_of("tenant-a"), 0u);
}

TEST(FleetMap, GoldenFailoverOrders) {
  metrics::Registry registry;
  auto map = three_groups(registry);
  using Order = std::vector<std::uint64_t>;
  EXPECT_EQ(map.preference_of("default"), (Order{0, 1, 2}));
  EXPECT_EQ(map.preference_of("alpha"), (Order{1, 0, 2}));
  EXPECT_EQ(map.preference_of("beta"), (Order{2, 0, 1}));
  EXPECT_EQ(map.preference_of("gamma"), (Order{1, 2, 0}));
  EXPECT_EQ(map.preference_of("delta"), (Order{0, 2, 1}));
}

TEST(FleetMap, TwoIndependentMapsAgreeOnEveryPlacement) {
  // The coordination-free contract: two processes building the map from the
  // same config agree everywhere, whatever order their groups were added in.
  metrics::Registry ra;
  metrics::Registry rb;
  FleetMap a({}, ra);
  FleetMap b({}, rb);
  a.add_group(0);
  a.add_group(1);
  a.add_group(2);
  b.add_group(2);  // reversed insertion order
  b.add_group(1);
  b.add_group(0);
  for (int t = 0; t < 200; ++t) {
    const auto tenant = "tenant-" + std::to_string(t);
    EXPECT_EQ(a.group_of(tenant), b.group_of(tenant)) << tenant;
    EXPECT_EQ(a.preference_of(tenant), b.preference_of(tenant)) << tenant;
  }
}

TEST(FleetMap, AddingAGroupMovesOnlyTheTenantsWhoseArcsItClaims) {
  metrics::Registry registry;
  auto map = three_groups(registry);
  map.track("default");  // home 0
  map.track("alpha");    // home 1
  map.track("beta");     // home 2
  map.track("gamma");    // home 1

  map.add_group(3);
  // Pinned: group 3's vnodes claim alpha's and beta's arcs; default and
  // gamma keep their homes — consistent hashing never reshuffles the rest.
  EXPECT_EQ(map.group_of("default"), 0u);
  EXPECT_EQ(map.group_of("alpha"), 3u);
  EXPECT_EQ(map.group_of("beta"), 3u);
  EXPECT_EQ(map.group_of("gamma"), 1u);
  EXPECT_EQ(map.moves(), 2u);

  // Removing it restores the original homes exactly (the ring is a pure
  // function of the membership set).
  map.remove_group(3);
  EXPECT_EQ(map.group_of("alpha"), 1u);
  EXPECT_EQ(map.group_of("beta"), 2u);
  EXPECT_EQ(map.moves(), 4u);
}

TEST(FleetMap, RebalanceEventsNarrateEveryEffect) {
  metrics::Registry registry;
  FleetMap map({}, registry);
  map.add_group(0);
  map.add_group(1);
  map.track("alpha");  // home 1 at two groups? — recompute below
  const auto home = map.group_of("alpha");
  map.add_group(2);

  const auto& events = map.events();
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events[0].kind, RebalanceEvent::Kind::kGroupAdded);
  EXPECT_EQ(events[0].group, 0u);
  EXPECT_EQ(events[1].kind, RebalanceEvent::Kind::kGroupAdded);
  EXPECT_EQ(events[2].kind, RebalanceEvent::Kind::kTenantTracked);
  EXPECT_EQ(events[2].tenant, "alpha");
  EXPECT_EQ(events[2].to_group, home);
  // Every kTenantMoved event carries a from/to pair that chains correctly.
  std::uint64_t moved = 0;
  std::uint64_t expected_home = home;
  for (const auto& event : events) {
    if (event.kind != RebalanceEvent::Kind::kTenantMoved) continue;
    EXPECT_EQ(event.tenant, "alpha");
    EXPECT_EQ(event.from_group, expected_home);
    expected_home = event.to_group;
    ++moved;
  }
  EXPECT_EQ(expected_home, map.group_of("alpha"));
  EXPECT_EQ(moved, map.moves());
  EXPECT_EQ(registry.counter_value("fleet_rebalance_moves_total"), map.moves());
}

TEST(FleetMap, MembershipErrorsAreTyped) {
  metrics::Registry registry;
  FleetMap map({}, registry);
  EXPECT_THROW((void)map.group_of("anyone"), std::logic_error);
  EXPECT_THROW((void)map.preference_of("anyone"), std::logic_error);
  map.add_group(7);
  EXPECT_THROW(map.add_group(7), std::invalid_argument);
  EXPECT_THROW(map.remove_group(8), std::invalid_argument);
  map.track("alpha");
  // The last group cannot leave while tenants are tracked: they would have
  // no home and group_of would start throwing mid-flight.
  EXPECT_THROW(map.remove_group(7), std::invalid_argument);
  EXPECT_THROW(FleetMap({.vnodes = 0}, registry), std::invalid_argument);
}

TEST(FleetMap, PreferenceOrderStartsAtHomeAndCoversEveryGroup) {
  metrics::Registry registry;
  auto map = three_groups(registry);
  for (int t = 0; t < 100; ++t) {
    const auto tenant = "t" + std::to_string(t);
    const auto order = map.preference_of(tenant);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order.front(), map.group_of(tenant));
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<std::uint64_t>{0, 1, 2}));
  }
}

}  // namespace
}  // namespace lcaknap::fleet
