// Drives the lcaknap_fleet orchestrator end-to-end through std::system: a
// real multi-process drill — replica group spawned per group, one SIGKILLed
// mid-storm, a replacement bootstrapped from a shipped snapshot — asserting
// the drill's own invariants through its JSON ledger and exit code.  Binary
// paths come in as LCAKNAP_FLEET_PATH / LCAKNAP_CLI_PATH compile defs.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef LCAKNAP_FLEET_PATH
#error "LCAKNAP_FLEET_PATH must be defined by the build"
#endif
#ifndef LCAKNAP_CLI_PATH
#error "LCAKNAP_CLI_PATH must be defined by the build"
#endif

const std::string kFleet = LCAKNAP_FLEET_PATH;
const std::string kCli = LCAKNAP_CLI_PATH;

struct CommandResult {
  int exit_code;
  std::string output;
};

CommandResult run(const std::string& binary, const std::string& args) {
  const std::string out_file = ::testing::TempDir() + "fleet_out.txt";
  const std::string command = binary + " " + args + " > " + out_file + " 2>&1";
  const int status = std::system(command.c_str());
  std::ifstream in(out_file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return {WEXITSTATUS(status), buffer.str()};
}

/// Pulls `"key":<number>` out of the drill's one-line JSON ledger.
std::uint64_t json_u64(const std::string& json, const std::string& key) {
  const auto at = json.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << "no field " << key << " in " << json;
  if (at == std::string::npos) return 0;
  return std::strtoull(json.c_str() + at + key.size() + 3, nullptr, 10);
}

bool json_bool(const std::string& json, const std::string& key) {
  const auto at = json.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << "no field " << key << " in " << json;
  return at != std::string::npos &&
         json.compare(at + key.size() + 3, 4, "true") == 0;
}

std::string make_instance() {
  const std::string path = ::testing::TempDir() + "fleet_drill_instance.txt";
  const auto gen = run(
      kCli, "generate --family uncorrelated --n 3000 --seed 11 --out " + path);
  EXPECT_EQ(gen.exit_code, 0) << gen.output;
  return path;
}

TEST(FleetDrill, KillMidStormDrillHoldsEveryInvariant) {
  const auto instance = make_instance();
  const auto drill = run(
      kFleet, "drill --cli " + kCli + " --in " + instance +
                  " --groups 3 --queries 150 --kill-after 60"
                  " --check-items 24 --eps 0.25 --json --work-dir " +
                  ::testing::TempDir() + "fleet_drill_kill");
  ASSERT_EQ(drill.exit_code, 0) << drill.output;

  // The last line is the JSON ledger (spawn announcements precede it).
  const auto json_at = drill.output.rfind("{\"offered\"");
  ASSERT_NE(json_at, std::string::npos) << drill.output;
  const auto json = drill.output.substr(json_at);

  EXPECT_EQ(json_u64(json, "offered"), 150u);
  EXPECT_TRUE(json_bool(json, "conserved")) << json;
  EXPECT_GT(json_u64(json, "failed_over"), 0u)
      << "the killed home replica forces failover: " << json;
  EXPECT_EQ(json_u64(json, "divergences"), 0u) << json;
  EXPECT_TRUE(json_bool(json, "replacement_warm")) << json;
  EXPECT_EQ(json_u64(json, "replacement_mismatched"), 0u)
      << "snapshot-bootstrapped replacement must answer digest-identically: "
      << json;
  EXPECT_GT(json_u64(json, "replacement_verified"), 0u) << json;
  EXPECT_GT(json_u64(json, "bootstrap_us"), 0u) << json;
  EXPECT_GT(json_u64(json, "shipped_bytes"), 0u) << json;
}

TEST(FleetDrill, CorruptedShipmentFallsBackToLiveWarmupNotBadAnswers) {
  const auto instance = make_instance();
  const auto drill = run(
      kFleet, "drill --cli " + kCli + " --in " + instance +
                  " --groups 2 --queries 80 --kill-after 30 --check-items 16"
                  " --eps 0.25 --corrupt-shipment --json --work-dir " +
                  ::testing::TempDir() + "fleet_drill_corrupt");
  ASSERT_EQ(drill.exit_code, 0) << drill.output;
  const auto json_at = drill.output.rfind("{\"offered\"");
  ASSERT_NE(json_at, std::string::npos) << drill.output;
  const auto json = drill.output.substr(json_at);

  // The shipment was sabotaged, so the replacement paid the cold start —
  // but it still reports warm and still answers byte-identically.  A
  // corrupted snapshot degrades bootstrap *speed*, never correctness.
  EXPECT_TRUE(json_bool(json, "conserved")) << json;
  EXPECT_TRUE(json_bool(json, "replacement_warm")) << json;
  EXPECT_EQ(json_u64(json, "replacement_mismatched"), 0u) << json;
  EXPECT_EQ(json_u64(json, "divergences"), 0u) << json;
}

TEST(FleetDrill, UsageErrorsExitOne) {
  EXPECT_EQ(run(kFleet, "").exit_code, 1);
  EXPECT_EQ(run(kFleet, "frobnicate").exit_code, 1);
  EXPECT_EQ(run(kFleet, "drill").exit_code, 1);           // missing --cli/--in
  EXPECT_EQ(run(kFleet, "check").exit_code, 1);           // missing --targets
  EXPECT_EQ(run(kFleet, "check --targets one").exit_code, 1);
  EXPECT_EQ(run(kFleet, "map --groups 0").exit_code, 1);  // empty ring
}

TEST(FleetDrill, MapSubcommandPinsPlacementsAcrossProcesses) {
  // The same golden placements tests/fleet/test_map.cpp pins in-process,
  // observed through the CLI — placement is a cross-process contract.
  const auto map = run(kFleet, "map --groups 3 --tenant-list default,alpha,beta");
  ASSERT_EQ(map.exit_code, 0) << map.output;
  EXPECT_NE(map.output.find("default"), std::string::npos);
  EXPECT_NE(map.output.find("0 -> 1 -> 2"), std::string::npos) << map.output;
  EXPECT_NE(map.output.find("1 -> 0 -> 2"), std::string::npos) << map.output;
  EXPECT_NE(map.output.find("2 -> 0 -> 1"), std::string::npos) << map.output;
}

}  // namespace
