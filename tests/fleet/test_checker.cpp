#include "fleet/checker.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "net/server.h"
#include "net/session.h"
#include "oracle/access.h"
#include "store/state_store.h"

/// \file test_checker.cpp
/// The consistency checker against real in-process replicas.  Two replicas
/// sharing the seed must produce zero divergences over any probe set
/// (Lemma 4.9); two replicas that *differ* in seed — a misconfigured fleet,
/// exactly what the checker exists to catch — must produce a divergence
/// with both conflicting observations attributed; a dead replica is counted
/// unavailable, never inconsistent.

namespace lcaknap::fleet {
namespace {

class CheckerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    instance_ = new knapsack::Instance(
        knapsack::make_family(knapsack::Family::kNeedle, 2'000, 17));
    access_ = new oracle::MaterializedAccess(*instance_);
    core::LcaKpConfig config;
    config.eps = 0.2;
    config.seed = 0x5E;
    config.quantile_samples = 20'000;
    lca_ = new core::LcaKp(*access_, config);
    // The imposter serves a *different* instance under the same tenant id —
    // a misregistered fleet member, guaranteed to disagree somewhere.
    imposter_instance_ = new knapsack::Instance(
        knapsack::make_family(knapsack::Family::kUncorrelated, 2'000, 23));
    imposter_access_ = new oracle::MaterializedAccess(*imposter_instance_);
    config.seed = 0x6F;
    imposter_ = new core::LcaKp(*imposter_access_, config);
  }
  static void TearDownTestSuite() {
    delete imposter_;
    delete imposter_access_;
    delete imposter_instance_;
    delete lca_;
    delete access_;
    delete instance_;
    imposter_ = lca_ = nullptr;
    imposter_access_ = access_ = nullptr;
    imposter_instance_ = instance_ = nullptr;
  }

  static const knapsack::Instance* instance_;
  static const knapsack::Instance* imposter_instance_;
  static const oracle::MaterializedAccess* access_;
  static const oracle::MaterializedAccess* imposter_access_;
  static const core::LcaKp* lca_;
  static const core::LcaKp* imposter_;
};

const knapsack::Instance* CheckerTest::instance_ = nullptr;
const knapsack::Instance* CheckerTest::imposter_instance_ = nullptr;
const oracle::MaterializedAccess* CheckerTest::access_ = nullptr;
const oracle::MaterializedAccess* CheckerTest::imposter_access_ = nullptr;
const core::LcaKp* CheckerTest::lca_ = nullptr;
const core::LcaKp* CheckerTest::imposter_ = nullptr;

struct Replica {
  metrics::Registry registry;
  store::StateStore store;
  net::TenantRouter router;
  std::unique_ptr<net::Server> server;

  Replica(const core::LcaKp* lca, std::uint64_t replica_id)
      : store({.capacity = 4}, registry), router(store, registry) {
    net::TenantConfig tenant;
    tenant.lca = lca;
    tenant.engine.workers = 2;
    router.register_tenant("alpha", tenant);
    router.warm_all();
    net::ServerConfig config;
    config.replica_id = replica_id;
    server = std::make_unique<net::Server>(router, config, registry);
  }
  ~Replica() {
    if (server) server->stop();
    router.drain();
  }
};

TEST_F(CheckerTest, SharedSeedReplicasNeverDiverge) {
  Replica a(lca_, 1);
  Replica b(lca_, 2);
  metrics::Registry registry;
  ConsistencyChecker checker(
      {{1, "127.0.0.1", a.server->port()}, {2, "127.0.0.1", b.server->port()}},
      registry);
  for (std::uint64_t item = 0; item < 200; ++item) {
    EXPECT_TRUE(checker.check("alpha", item));
  }
  const auto& report = checker.report();
  EXPECT_EQ(report.checks, 200u);
  EXPECT_EQ(report.divergences, 0u);
  EXPECT_EQ(report.unavailable, 0u);
  EXPECT_GE(report.comparisons, 200u);
  EXPECT_TRUE(report.consistent());
  EXPECT_EQ(registry.counter_value("fleet_checks_total"), 200u);
  EXPECT_EQ(registry.counter_value("fleet_divergences_total"), 0u);
}

TEST_F(CheckerTest, MismatchedSeedIsCaughtAndAttributed) {
  Replica a(lca_, 1);
  Replica b(imposter_, 2);
  metrics::Registry registry;
  ConsistencyChecker checker(
      {{1, "127.0.0.1", a.server->port()}, {2, "127.0.0.1", b.server->port()}},
      registry);
  for (std::uint64_t item = 0; item < 500; ++item) {
    (void)checker.check("alpha", item);
  }
  const auto& report = checker.report();
  // A needle instance and an uncorrelated instance cannot share a solution
  // set over 500 probed items; the checker must notice.
  ASSERT_GT(report.divergences, 0u);
  EXPECT_FALSE(report.consistent());
  ASSERT_FALSE(report.details.empty());
  const auto& divergence = report.details.front();
  EXPECT_EQ(divergence.tenant, "alpha");
  ASSERT_EQ(divergence.observations.size(), 2u);
  EXPECT_NE(divergence.observations[0].answer,
            divergence.observations[1].answer);
  EXPECT_NE(divergence.observations[0].replica_id,
            divergence.observations[1].replica_id);
  EXPECT_EQ(registry.counter_value("fleet_divergences_total"),
            report.divergences);
}

TEST_F(CheckerTest, DeadReplicaIsUnavailableNotInconsistent) {
  Replica a(lca_, 1);
  auto b = std::make_unique<Replica>(lca_, 2);
  metrics::Registry registry;
  ConsistencyChecker checker(
      {{1, "127.0.0.1", a.server->port()},
       {2, "127.0.0.1", b->server->port()}},
      registry);
  EXPECT_TRUE(checker.check("alpha", 1));
  b.reset();  // replica 2 dies mid-drill
  EXPECT_TRUE(checker.check("alpha", 2)) << "one view left: nothing conflicts";
  const auto& report = checker.report();
  EXPECT_EQ(report.checks, 2u);
  EXPECT_EQ(report.divergences, 0u);
  EXPECT_GE(report.unavailable, 1u);
  EXPECT_TRUE(report.consistent());
  EXPECT_EQ(registry.counter_value("fleet_check_unavailable_total"),
            report.unavailable);
}

TEST_F(CheckerTest, RefusalsAreCountedNeverCompared) {
  Replica a(lca_, 1);
  Replica b(lca_, 2);
  metrics::Registry registry;
  ConsistencyChecker checker(
      {{1, "127.0.0.1", a.server->port()}, {2, "127.0.0.1", b.server->port()}},
      registry);
  // An unknown tenant yields kUnknownTenant from both replicas: two typed
  // refusals, zero comparisons, zero divergences.
  EXPECT_TRUE(checker.check("ghost", 1));
  const auto& report = checker.report();
  EXPECT_EQ(report.non_ok, 2u);
  EXPECT_EQ(report.divergences, 0u);
}

TEST_F(CheckerTest, FewerThanTwoEndpointsIsTyped) {
  metrics::Registry registry;
  EXPECT_THROW(ConsistencyChecker({}, registry), std::invalid_argument);
  EXPECT_THROW(ConsistencyChecker({{1, "127.0.0.1", 1}}, registry),
               std::invalid_argument);
}

}  // namespace
}  // namespace lcaknap::fleet
