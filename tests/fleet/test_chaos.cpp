#include "fleet/chaos.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "metrics/metrics.h"
#include "util/virtual_clock.h"

/// \file test_chaos.cpp
/// Replica-granularity chaos: the schedule is a pure function of (plan seed,
/// replica_id, tick index), so replaying a drill reproduces the identical
/// kill/brownout/corruption sequence — the property that makes a failed
/// drill debuggable.  Hooks are in-process counters here; the orchestrator
/// installs kill(2)-based ones (tools/lcaknap_fleet.cpp).

namespace lcaknap::fleet {
namespace {

std::vector<ReplicaTarget> three_targets() {
  return {{1, "g0"}, {2, "g1"}, {3, "g2"}};
}

struct CountingHooks {
  std::vector<std::uint64_t> killed;
  std::vector<std::uint64_t> browned;
  std::vector<std::uint64_t> corrupted;
  std::vector<std::uint64_t> pauses;

  ChaosHooks hooks() {
    ChaosHooks h;
    h.kill = [this](const ReplicaTarget& t) { killed.push_back(t.replica_id); };
    h.brownout = [this](const ReplicaTarget& t, std::uint64_t pause_us) {
      browned.push_back(t.replica_id);
      pauses.push_back(pause_us);
    };
    h.corrupt_snapshot = [this](const ReplicaTarget& t) {
      corrupted.push_back(t.replica_id);
    };
    return h;
  }
};

/// Runs `ticks` ticks at `step_us` spacing and returns the event log.
std::vector<ChaosEvent> run_drill(const std::string& spec, std::uint64_t seed,
                                  std::size_t ticks, std::uint64_t step_us,
                                  CountingHooks* hooks = nullptr) {
  util::VirtualClock clock;
  metrics::Registry registry;
  CountingHooks local;
  CountingHooks* sink = hooks != nullptr ? hooks : &local;
  ReplicaChaos chaos(fault::parse_fault_plan(spec, seed), three_targets(),
                     sink->hooks(), clock, registry);
  chaos.arm();
  for (std::size_t t = 0; t < ticks; ++t) {
    (void)chaos.tick();
    clock.advance_us(step_us);
  }
  return chaos.events();
}

TEST(ReplicaChaos, SameSeedReplaysTheIdenticalSchedule) {
  const std::string spec = "storm:1000:fail=0.3,corrupt=0.2,lat=100..400";
  const auto first = run_drill(spec, 0xC0A5, 50, 10'000);
  const auto second = run_drill(spec, 0xC0A5, 50, 10'000);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].at_us, second[i].at_us);
    EXPECT_EQ(first[i].replica_id, second[i].replica_id);
    EXPECT_EQ(first[i].action, second[i].action);
    EXPECT_EQ(first[i].phase, second[i].phase);
    EXPECT_EQ(first[i].brownout_us, second[i].brownout_us);
  }
  EXPECT_FALSE(first.empty()) << "a 50-tick storm at these rates must fire";

  // A different seed draws a different schedule (overwhelmingly likely over
  // 50 ticks x 3 targets x 3 dice).
  const auto other = run_drill(spec, 0xC0A6, 50, 10'000);
  bool differs = other.size() != first.size();
  for (std::size_t i = 0; !differs && i < first.size(); ++i) {
    differs = first[i].replica_id != other[i].replica_id ||
              first[i].action != other[i].action ||
              first[i].at_us != other[i].at_us;
  }
  EXPECT_TRUE(differs);
}

TEST(ReplicaChaos, KilledTargetsDropOutUntilRevived) {
  util::VirtualClock clock;
  metrics::Registry registry;
  CountingHooks counting;
  ReplicaChaos chaos(fault::parse_fault_plan("massacre:0:fail=1", 7),
                     three_targets(), counting.hooks(), clock, registry);
  chaos.arm();
  EXPECT_EQ(chaos.tick(), 3u) << "fail=1 kills every alive target";
  EXPECT_EQ(counting.killed.size(), 3u);
  EXPECT_EQ(chaos.tick(), 0u) << "the dead roll no dice";
  EXPECT_EQ(counting.killed.size(), 3u);

  chaos.revive(2);  // a replacement process took over replica 2's slot
  EXPECT_EQ(chaos.tick(), 1u);
  ASSERT_EQ(counting.killed.size(), 4u);
  EXPECT_EQ(counting.killed.back(), 2u);
  EXPECT_EQ(registry.counter_value("fleet_chaos_kills_total"), 4u);
}

TEST(ReplicaChaos, BrownoutFiresEveryTickWithDurationsInRange) {
  util::VirtualClock clock;
  metrics::Registry registry;
  CountingHooks counting;
  ReplicaChaos chaos(fault::parse_fault_plan("brown:0:lat=100..400", 7),
                     three_targets(), counting.hooks(), clock, registry);
  chaos.arm();
  for (int t = 0; t < 10; ++t) (void)chaos.tick();
  // Latency phases pause throughout (matching ChaosAccess's per-call
  // injection); only the duration is drawn.
  EXPECT_EQ(counting.browned.size(), 30u);
  for (const auto pause : counting.pauses) {
    EXPECT_GE(pause, 100u);
    EXPECT_LE(pause, 400u);
  }
  bool varied = false;
  for (const auto pause : counting.pauses) varied |= pause != counting.pauses[0];
  EXPECT_TRUE(varied) << "durations are drawn, not constant";
  EXPECT_EQ(registry.counter_value("fleet_chaos_brownouts_total"), 30u);
}

TEST(ReplicaChaos, PhaseScheduleGatesTheDice) {
  // 100ms of calm, then a permanent kill phase: nothing may fire before the
  // plan says so.
  util::VirtualClock clock;
  metrics::Registry registry;
  CountingHooks counting;
  ReplicaChaos chaos(fault::parse_fault_plan("calm:100;storm:0:fail=1", 7),
                     three_targets(), counting.hooks(), clock, registry);
  chaos.arm();
  for (int t = 0; t < 5; ++t) {
    EXPECT_EQ(chaos.tick(), 0u) << "calm phase fires nothing";
    clock.advance_us(10'000);
  }
  clock.advance_us(60'000);  // past the 100ms edge
  EXPECT_EQ(chaos.tick(), 3u);
  for (const auto& event : chaos.events()) {
    EXPECT_EQ(event.phase, "storm");
    EXPECT_GE(event.at_us, 100'000u);
  }
}

TEST(ReplicaChaos, EventsAreLoggedEvenWithoutHooks) {
  // The schedule is the contract; delivery is pluggable.  A drill report
  // must narrate what *would* have been done even in observe-only mode.
  util::VirtualClock clock;
  metrics::Registry registry;
  ReplicaChaos chaos(fault::parse_fault_plan("storm:0:fail=1,corrupt=1", 7),
                     three_targets(), ChaosHooks{}, clock, registry);
  chaos.arm();
  EXPECT_EQ(chaos.tick(), 6u) << "3 corruptions + 3 kills, hooks or not";
  EXPECT_EQ(chaos.events().size(), 6u);
}

TEST(ReplicaChaos, TicksBeforeArmAreNoOps) {
  util::VirtualClock clock;
  metrics::Registry registry;
  ReplicaChaos chaos(fault::parse_fault_plan("storm:0:fail=1", 7),
                     three_targets(), ChaosHooks{}, clock, registry);
  EXPECT_EQ(chaos.tick(), 0u);
  EXPECT_TRUE(chaos.events().empty());
  chaos.arm();
  EXPECT_GT(chaos.tick(), 0u);
}

TEST(ReplicaChaos, EmptyTargetListIsTyped) {
  util::VirtualClock clock;
  metrics::Registry registry;
  EXPECT_THROW(ReplicaChaos(fault::parse_fault_plan("s:0", 1), {},
                            ChaosHooks{}, clock, registry),
               std::invalid_argument);
}

TEST(ReplicaChaos, ActionNamesAreTotal) {
  EXPECT_STREQ(chaos_action_name(ChaosAction::kKill), "kill");
  EXPECT_STREQ(chaos_action_name(ChaosAction::kBrownout), "brownout");
  EXPECT_STREQ(chaos_action_name(ChaosAction::kCorruptSnapshot),
               "corrupt_snapshot");
}

}  // namespace
}  // namespace lcaknap::fleet
