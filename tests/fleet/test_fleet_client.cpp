#include "fleet/client.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "net/server.h"
#include "net/session.h"
#include "oracle/access.h"
#include "store/state_store.h"
#include "util/virtual_clock.h"

/// \file test_fleet_client.cpp
/// The fleet front door against real in-process replicas: failover on a dead
/// home replica returns the byte-identical answer (Lemma 4.9 is what makes
/// the hop *correct*, not merely available), every offered query settles in
/// exactly one disposition (fleet conservation), budgets settle kDeadline,
/// and terminal statuses never burn failover hops.

namespace lcaknap::fleet {
namespace {

class FleetClientTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    instance_ = new knapsack::Instance(
        knapsack::make_family(knapsack::Family::kNeedle, 2'000, 17));
    access_ = new oracle::MaterializedAccess(*instance_);
    core::LcaKpConfig config;
    config.eps = 0.2;
    config.seed = 0x5E;
    config.quantile_samples = 20'000;
    lca_ = new core::LcaKp(*access_, config);
  }
  static void TearDownTestSuite() {
    delete lca_;
    delete access_;
    delete instance_;
    lca_ = nullptr;
    access_ = nullptr;
    instance_ = nullptr;
  }

  static const knapsack::Instance* instance_;
  static const oracle::MaterializedAccess* access_;
  static const core::LcaKp* lca_;
};

const knapsack::Instance* FleetClientTest::instance_ = nullptr;
const oracle::MaterializedAccess* FleetClientTest::access_ = nullptr;
const core::LcaKp* FleetClientTest::lca_ = nullptr;

/// One in-process replica: store + router + server, replica_id stamped on
/// every response (mirrors `lcaknap_cli serve --listen --replica-id`).
struct Replica {
  metrics::Registry registry;
  store::StateStore store;
  net::TenantRouter router;
  std::unique_ptr<net::Server> server;

  Replica(const core::LcaKp* lca, std::uint64_t replica_id)
      : store({.capacity = 4}, registry), router(store, registry) {
    net::TenantConfig tenant;
    tenant.lca = lca;
    tenant.engine.workers = 2;
    tenant.engine.cache.capacity = 1'024;
    router.register_tenant("alpha", tenant);
    router.warm_all();
    net::ServerConfig config;
    config.replica_id = replica_id;
    server = std::make_unique<net::Server>(router, config, registry);
  }
  ~Replica() {
    if (server) server->stop();
    router.drain();
  }
};

FleetClientConfig two_replica_config(const Replica& a, const Replica& b) {
  FleetClientConfig config;
  config.replicas = {
      {.replica_id = 1, .group = 0, .host = "127.0.0.1", .port = a.server->port()},
      {.replica_id = 2, .group = 1, .host = "127.0.0.1", .port = b.server->port()},
  };
  return config;
}

TEST_F(FleetClientTest, HealthyFleetAnswersFromTheHomeReplica) {
  Replica a(lca_, 1);
  Replica b(lca_, 2);
  util::VirtualClock clock;
  metrics::Registry registry;
  FleetClient client(two_replica_config(a, b), clock, registry);

  const auto home = client.map().group_of("alpha");
  const std::uint64_t home_id = home == 0 ? 1 : 2;
  const auto& run =
      (home == 0 ? a : b).router.engine("alpha")->run();
  for (std::uint64_t q = 0; q < 100; ++q) {
    const auto result = client.query("alpha", q % 500);
    ASSERT_EQ(result.disposition, Disposition::kOk);
    ASSERT_EQ(result.status, net::WireStatus::kOk);
    ASSERT_EQ(result.replica_id, home_id)
        << "a healthy fleet serves from the home group (its cache stays hot)";
    ASSERT_EQ(result.attempts, 1u);
    ASSERT_EQ(result.answer, lca_->answer_from(run, q % 500));
  }
  const auto stats = client.stats();
  EXPECT_EQ(stats.offered, 100u);
  EXPECT_TRUE(stats.conserved());
  EXPECT_EQ(stats.by_disposition[static_cast<std::size_t>(Disposition::kOk)],
            100u);
  EXPECT_EQ(stats.failover_attempts, 0u);
  EXPECT_EQ(registry.counter_value("fleet_queries_total",
                                   {{"disposition", "ok"}}),
            100u);
}

TEST_F(FleetClientTest, DeadHomeReplicaFailsOverWithIdenticalAnswers) {
  Replica a(lca_, 1);
  Replica b(lca_, 2);
  util::VirtualClock clock;
  metrics::Registry registry;
  FleetClient client(two_replica_config(a, b), clock, registry);

  const auto home = client.map().group_of("alpha");
  Replica& victim = home == 0 ? a : b;
  Replica& survivor = home == 0 ? b : a;
  const std::uint64_t survivor_id = home == 0 ? 2 : 1;

  // Establish the home connection, then take the home replica down with the
  // connection still cached — the client discovers the death mid-call.
  for (std::uint64_t q = 0; q < 20; ++q) (void)client.query("alpha", q);
  victim.server->stop();

  const auto& run = survivor.router.engine("alpha")->run();
  for (std::uint64_t q = 0; q < 80; ++q) {
    const auto result = client.query("alpha", q % 500);
    ASSERT_EQ(result.disposition, Disposition::kFailedOver);
    ASSERT_EQ(result.status, net::WireStatus::kOk);
    ASSERT_EQ(result.replica_id, survivor_id);
    ASSERT_GE(result.attempts, 2u);
    // Lemma 4.9: the sibling's answer is the answer, byte for byte.
    ASSERT_EQ(result.answer, lca_->answer_from(run, q % 500));
  }
  const auto stats = client.stats();
  EXPECT_EQ(stats.offered, 100u);
  EXPECT_TRUE(stats.conserved());
  EXPECT_EQ(
      stats.by_disposition[static_cast<std::size_t>(Disposition::kFailedOver)],
      80u);
  EXPECT_GE(stats.failover_attempts, 80u);
  EXPECT_GT(stats.backoff_sleep_us, 0u) << "hops back off on the injected clock";
  EXPECT_EQ(registry.counter_value("fleet_queries_total",
                                   {{"disposition", "failed_over"}}),
            80u);
  EXPECT_EQ(registry.counter_value("fleet_failover_attempts_total"),
            stats.failover_attempts);
}

TEST_F(FleetClientTest, SpentBudgetSettlesDeadlineNotASilentHang) {
  // Both endpoints closed: grab real ports, then stop the servers.
  auto a = std::make_unique<Replica>(lca_, 1);
  auto b = std::make_unique<Replica>(lca_, 2);
  auto config = two_replica_config(*a, *b);
  a.reset();
  b.reset();

  config.attempt_budget_us = 100;  // far below one base backoff (200us)
  util::VirtualClock clock;
  metrics::Registry registry;
  FleetClient client(config, clock, registry);
  const auto result = client.query("alpha", 7);
  EXPECT_EQ(result.disposition, Disposition::kDeadline);
  const auto stats = client.stats();
  EXPECT_TRUE(stats.conserved());
  EXPECT_EQ(
      stats.by_disposition[static_cast<std::size_t>(Disposition::kDeadline)],
      1u);
  // The backoff was clamped to the budget edge, never past it.
  EXPECT_LE(stats.backoff_sleep_us, 100u);
  EXPECT_LE(clock.now_us(), 100u);
}

TEST_F(FleetClientTest, UnreachableFleetSettlesErrorAfterEveryCandidate) {
  auto a = std::make_unique<Replica>(lca_, 1);
  auto b = std::make_unique<Replica>(lca_, 2);
  auto config = two_replica_config(*a, *b);
  a.reset();
  b.reset();

  util::VirtualClock clock;  // unbudgeted: backoffs advance instantly
  metrics::Registry registry;
  FleetClient client(config, clock, registry);
  const auto result = client.query("alpha", 7);
  EXPECT_EQ(result.disposition, Disposition::kError);
  EXPECT_EQ(result.replica_id, 0u) << "no replica answered";
  EXPECT_EQ(result.attempts, 2u) << "every candidate was tried";
  EXPECT_TRUE(client.stats().conserved());
}

TEST_F(FleetClientTest, TerminalStatusNeverBurnsFailoverHops) {
  Replica a(lca_, 1);
  Replica b(lca_, 2);
  util::VirtualClock clock;
  metrics::Registry registry;
  FleetClient client(two_replica_config(a, b), clock, registry);

  // kUnknownTenant is deterministic across the fleet (same registration
  // state); hopping to a sibling would return the same refusal.
  const auto result = client.query("ghost", 1);
  EXPECT_EQ(result.disposition, Disposition::kError);
  EXPECT_EQ(result.status, net::WireStatus::kUnknownTenant);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_EQ(client.stats().failover_attempts, 0u);
  EXPECT_TRUE(client.stats().conserved());
}

TEST_F(FleetClientTest, ConfigErrorsAreTyped) {
  util::VirtualClock clock;
  metrics::Registry registry;
  EXPECT_THROW(FleetClient({}, clock, registry), std::invalid_argument);
}

TEST(FleetDisposition, NamesAreTotal) {
  EXPECT_STREQ(disposition_name(Disposition::kOk), "ok");
  EXPECT_STREQ(disposition_name(Disposition::kFailedOver), "failed_over");
  EXPECT_STREQ(disposition_name(Disposition::kDegraded), "degraded");
  EXPECT_STREQ(disposition_name(Disposition::kOverloaded), "overloaded");
  EXPECT_STREQ(disposition_name(Disposition::kDeadline), "deadline");
  EXPECT_STREQ(disposition_name(Disposition::kError), "error");
}

}  // namespace
}  // namespace lcaknap::fleet
