#include "lowerbound/or_reduction.h"

#include <gtest/gtest.h>

#include "knapsack/solvers/brute_force.h"

namespace lcaknap::lowerbound {
namespace {

TEST(MakeOrInstance, AllZerosMakesLastItemUniquelyOptimal) {
  const std::vector<std::uint8_t> x(10, 0);
  const auto inst = make_or_instance(x);  // beta = 1/2
  const auto opt = knapsack::brute_force(inst);
  ASSERT_EQ(opt.items.size(), 1u);
  EXPECT_EQ(opt.items[0], 10u);  // s_n
  EXPECT_EQ(opt.value, 1);       // beta_num
}

TEST(MakeOrInstance, AnyOneExcludesLastItem) {
  for (std::size_t pos = 0; pos < 10; ++pos) {
    std::vector<std::uint8_t> x(10, 0);
    x[pos] = 1;
    const auto inst = make_or_instance(x);
    const auto opt = knapsack::brute_force(inst);
    ASSERT_EQ(opt.items.size(), 1u);
    EXPECT_EQ(opt.items[0], pos);
    EXPECT_EQ(opt.value, 2);  // beta_den (the "1" profit)
  }
}

TEST(MakeOrInstance, FeasibleSolutionsHoldAtMostOneItem) {
  const std::vector<std::uint8_t> x{1, 0, 1};
  const auto inst = make_or_instance(x);
  EXPECT_EQ(inst.capacity(), 1);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(inst.item(i).weight, 1);
  }
}

TEST(MakeOrInstance, RejectsBadBeta) {
  const std::vector<std::uint8_t> x{1};
  EXPECT_THROW(make_or_instance(x, 0, 2), std::invalid_argument);
  EXPECT_THROW(make_or_instance(x, 2, 2), std::invalid_argument);
  EXPECT_THROW(make_or_instance(x, 3, 2), std::invalid_argument);
}

TEST(BitOracle, CountsQueries) {
  const BitOracle oracle({0, 1, 0});
  EXPECT_FALSE(oracle.query(0));
  EXPECT_TRUE(oracle.query(1));
  EXPECT_EQ(oracle.query_count(), 2u);
  oracle.reset_count();
  EXPECT_EQ(oracle.query_count(), 0u);
  EXPECT_TRUE(oracle.or_value());
  EXPECT_EQ(oracle.query_count(), 0u);  // referee view is free
}

TEST(OrGame, FullReadAlwaysSucceeds) {
  util::Xoshiro256 rng(1);
  const FullReadStrategy strategy;
  const auto report = play_or_game(256, /*budget=*/0, /*trials=*/500, strategy, rng);
  EXPECT_DOUBLE_EQ(report.success_rate, 1.0);
  // Reads everything on all-zero inputs, stops at the planted 1 otherwise.
  EXPECT_GT(report.mean_queries, 127.0);
  EXPECT_LE(report.mean_queries, 255.0);
}

TEST(OrGame, SublinearBudgetIsCapped) {
  // Theorem 3.2/3.3's empirical shape: success <= ~1/2 + q/(2(n-1)).
  util::Xoshiro256 rng(2);
  const RandomProbeStrategy strategy;
  const std::size_t n = 4096;
  const auto report = play_or_game(n, /*budget=*/64, /*trials=*/4'000, strategy, rng);
  EXPECT_LE(report.success_rate, report.predicted_ceiling + 0.03);
  EXPECT_GE(report.success_rate, 0.5 - 0.03);
  EXPECT_LE(report.mean_queries, 64.0);
}

TEST(OrGame, SuccessGrowsLinearlyWithBudget) {
  util::Xoshiro256 rng(3);
  const RandomProbeStrategy strategy;
  const std::size_t n = 1024;
  const auto q1 = play_or_game(n, n / 8, 4'000, strategy, rng);
  const auto q2 = play_or_game(n, n / 2, 4'000, strategy, rng);
  EXPECT_GT(q2.success_rate, q1.success_rate + 0.1);
}

TEST(OrGame, FullBudgetProbeSucceeds) {
  util::Xoshiro256 rng(4);
  const RandomProbeStrategy strategy;
  const auto report = play_or_game(512, 511, 1'000, strategy, rng);
  EXPECT_DOUBLE_EQ(report.success_rate, 1.0);  // distinct probes cover everything
}

TEST(OrGame, ValidatesArguments) {
  util::Xoshiro256 rng(5);
  const RandomProbeStrategy strategy;
  EXPECT_THROW(play_or_game(1, 1, 10, strategy, rng), std::invalid_argument);
  EXPECT_THROW(play_or_game(8, 1, 0, strategy, rng), std::invalid_argument);
}

}  // namespace
}  // namespace lcaknap::lowerbound
