#include "lowerbound/maximal_hard.h"

#include <gtest/gtest.h>

namespace lcaknap::lowerbound {
namespace {

TEST(WeightOracle, RevealsPlantedWeights) {
  const WeightOracle oracle(100, 10, 20, 1);
  EXPECT_EQ(oracle.query(10), 3);
  EXPECT_EQ(oracle.query(20), 1);
  EXPECT_EQ(oracle.query(5), 0);
  EXPECT_EQ(oracle.query_count(), 3u);
}

TEST(WeightOracle, ValidatesConstruction) {
  EXPECT_THROW(WeightOracle(1, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(WeightOracle(10, 3, 3, 1), std::invalid_argument);
  EXPECT_THROW(WeightOracle(10, 1, 2, 2), std::invalid_argument);
  const WeightOracle ok(10, 1, 2, 3);
  EXPECT_THROW((void)ok.query(10), std::out_of_range);
}

TEST(MakeMaximalInstance, LightCaseHasUniqueMaximalSolutionOfEverything) {
  const auto inst = make_maximal_instance(20, 3, 7, /*j_is_light=*/true);
  std::vector<std::size_t> all(20);
  for (std::size_t i = 0; i < 20; ++i) all[i] = i;
  EXPECT_TRUE(inst.feasible(all));   // 3/4 + 1/4 = 1 = K
  EXPECT_TRUE(inst.is_maximal(all));
}

TEST(MakeMaximalInstance, HeavyCaseMaximalSolutionsDropExactlyOneSpecial) {
  const auto inst = make_maximal_instance(20, 3, 7, /*j_is_light=*/false);
  std::vector<std::size_t> drop_i, drop_j, all;
  for (std::size_t k = 0; k < 20; ++k) {
    all.push_back(k);
    if (k != 3) drop_i.push_back(k);
    if (k != 7) drop_j.push_back(k);
  }
  EXPECT_FALSE(inst.feasible(all));       // 3/4 + 3/4 > 1
  EXPECT_TRUE(inst.is_maximal(drop_i));
  EXPECT_TRUE(inst.is_maximal(drop_j));
}

TEST(MaximalGame, UnboundedBudgetSucceeds) {
  const SharedScanStrategy strategy;
  // Budget >> n log n: the pseudorandom scan covers the whole instance.
  const auto report = play_maximal_game(64, 4'096, 400, strategy, 1);
  EXPECT_GE(report.success_rate, 0.99);
}

TEST(MaximalGame, SublinearBudgetIsCappedBelowFourFifths) {
  // Theorem 3.4: with budget < n/11 success cannot reach 4/5.
  const std::size_t n = 2'048;
  const SharedScanStrategy strategy;
  const auto report = play_maximal_game(n, n / 11, 3'000, strategy, 2);
  EXPECT_LT(report.success_rate, 0.8);
  EXPECT_GE(report.success_rate, 0.5 - 0.03);  // the forced-yes strategy floor
  EXPECT_NEAR(report.success_rate, report.predicted_success, 0.05);
}

TEST(MaximalGame, SharedSeedBeatsFreshRandomness) {
  // Without the shared seed the two runs' random rankings disagree half the
  // time whenever both find the other heavy item, so at a budget where finds
  // are common the fresh-scan ablation measurably loses.
  const std::size_t n = 1'024;
  const std::uint64_t budget = n;  // coverage ~ 1 - 1/e
  const SharedScanStrategy shared;
  const FreshScanStrategy fresh;
  const auto shared_report = play_maximal_game(n, budget, 4'000, shared, 3);
  const auto fresh_report = play_maximal_game(n, budget, 4'000, fresh, 3);
  EXPECT_GT(shared_report.success_rate, fresh_report.success_rate + 0.02);
}

TEST(MaximalGame, ZeroBudgetForcedYesGivesHalf) {
  // With no scanning the strategy answers yes to everything: correct exactly
  // when w_j = 1/4 (probability 1/2).
  const SharedScanStrategy strategy;
  const auto report = play_maximal_game(512, 0, 4'000, strategy, 4);
  EXPECT_NEAR(report.success_rate, 0.5, 0.03);
}

TEST(MaximalGame, ValidatesArguments) {
  const SharedScanStrategy strategy;
  EXPECT_THROW(play_maximal_game(1, 1, 10, strategy, 5), std::invalid_argument);
  EXPECT_THROW(play_maximal_game(8, 1, 0, strategy, 5), std::invalid_argument);
}

}  // namespace
}  // namespace lcaknap::lowerbound
