#include "lowerbound/greedy_sim_lca.h"

#include <gtest/gtest.h>

#include "knapsack/generators.h"
#include "lowerbound/maximal_hard.h"
#include "oracle/access.h"

namespace lcaknap::lowerbound {
namespace {

TEST(RandomOrderMaximalLca, ServesAMaximalFeasibleSolution) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 300, 1);
  const oracle::MaterializedAccess access(inst);
  const RandomOrderMaximalLca lca(access, 0x6E);
  std::vector<std::size_t> selection;
  for (std::size_t i = 0; i < inst.size(); ++i) {
    if (lca.answer(i)) selection.push_back(i);
  }
  EXPECT_TRUE(inst.feasible(selection));
  EXPECT_TRUE(inst.is_maximal(selection));
}

TEST(RandomOrderMaximalLca, ReplicasWithSharedSeedAgreeExactly) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 200, 2);
  const oracle::MaterializedAccess access(inst);
  const RandomOrderMaximalLca a(access, 77), b(access, 77);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(a.answer(i), b.answer(i));
  }
}

TEST(RandomOrderMaximalLca, DifferentSeedsServeDifferentSolutions) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 200, 3);
  const oracle::MaterializedAccess access(inst);
  const RandomOrderMaximalLca a(access, 1), b(access, 2);
  int differences = 0;
  for (std::size_t i = 0; i < inst.size(); ++i) {
    if (a.answer(i) != b.answer(i)) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RandomOrderMaximalLca, QueryCostIsLinearInThePrefix) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 1'000, 4);
  const oracle::MaterializedAccess access(inst);
  const RandomOrderMaximalLca lca(access, 5);
  access.reset_counters();
  (void)lca.answer(0);
  const auto first = access.query_count();
  // Cost is bounded by the prefix length + 1 and is Theta(n) on average —
  // the price Theorem 3.4 proves unavoidable.
  EXPECT_GE(first, 1u);
  EXPECT_LE(first, inst.size());
  double total = 0;
  access.reset_counters();
  constexpr std::size_t kProbes = 50;
  for (std::size_t i = 0; i < kProbes; ++i) (void)lca.answer(i * 17);
  total = static_cast<double>(access.query_count()) / kProbes;
  EXPECT_GT(total, static_cast<double>(inst.size()) / 10.0);
}

TEST(RandomOrderMaximalLca, PriorityIsSeedDeterministic) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 50, 6);
  const oracle::MaterializedAccess access(inst);
  const RandomOrderMaximalLca a(access, 9), b(access, 9), c(access, 10);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.priority(i), b.priority(i));
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < 50; ++i) any_diff = any_diff || a.priority(i) != c.priority(i);
  EXPECT_TRUE(any_diff);
}

TEST(RandomOrderMaximalLca, BudgetedVariantFailsOnTheHardDistribution) {
  // Theorem 3.4 in action against a *real* LCA: on the planted two-item
  // distribution, the budget-capped simulation answers the (s_i, s_j) round
  // inconsistently with constant probability, while the unbounded variant is
  // always correct.
  constexpr std::size_t kN = 512;
  constexpr std::size_t kTrials = 300;
  util::Xoshiro256 rng(7);
  std::size_t budgeted_ok = 0;
  std::size_t unbounded_ok = 0;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const auto i = static_cast<std::size_t>(rng.next_below(kN));
    std::size_t j = static_cast<std::size_t>(rng.next_below(kN - 1));
    if (j >= i) ++j;
    const bool light = rng.next_double() < 0.5;
    const auto inst = make_maximal_instance(kN, i, j, light);
    const oracle::MaterializedAccess access(inst);
    const RandomOrderMaximalLca lca(access, 1'000 + trial);

    const auto judge = [&](bool ai, bool aj) {
      return light ? (ai && aj) : (ai != aj);
    };
    if (judge(lca.answer_budgeted(i, kN / 11), lca.answer_budgeted(j, kN / 11))) {
      ++budgeted_ok;
    }
    if (judge(lca.answer(i), lca.answer(j))) ++unbounded_ok;
  }
  EXPECT_EQ(unbounded_ok, kTrials);  // exact simulation is always consistent
  // The capped variant cannot clear the 4/5 bar (it sits near 1/2 + coverage).
  EXPECT_LT(static_cast<double>(budgeted_ok) / kTrials, 0.8);
}

TEST(RandomOrderMaximalLca, ZeroWeightItemsAlwaysAnswerYes) {
  // All-zero-weight instances: everything is in the unique maximal solution.
  std::vector<knapsack::Item> items(64, knapsack::Item{1, 0});
  items[10].weight = 0;
  const knapsack::Instance inst(std::move(items), 5);
  const oracle::MaterializedAccess access(inst);
  const RandomOrderMaximalLca lca(access, 11);
  for (std::size_t i = 0; i < inst.size(); ++i) EXPECT_TRUE(lca.answer(i));
}

}  // namespace
}  // namespace lcaknap::lowerbound
