#include "serve/answer_cache.h"

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "metrics/metrics.h"

namespace lcaknap::serve {
namespace {

TEST(AnswerCache, MissThenHit) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 16;
  config.shards = 4;
  AnswerCache cache(config, registry);
  EXPECT_FALSE(cache.get(7).has_value());
  cache.put(7, true);
  const auto hit = cache.get(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->answer);
  EXPECT_FALSE(hit->paranoia_due);  // paranoia off by default
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(registry.counter_value("serve_cache_hits_total"), 1u);
  EXPECT_EQ(registry.counter_value("serve_cache_misses_total"), 1u);
}

TEST(AnswerCache, ShardCountRoundsUpToPowerOfTwo) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 64;
  config.shards = 5;
  const AnswerCache cache(config, registry);
  EXPECT_EQ(cache.shard_count(), 8u);
}

TEST(AnswerCache, ShardsNeverExceedCapacity) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 2;
  config.shards = 16;  // would leave 14 shards with zero entries
  const AnswerCache cache(config, registry);
  EXPECT_LE(cache.shard_count(), 2u);
}

TEST(AnswerCache, EvictsLeastRecentlyUsed) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 2;
  config.shards = 1;  // single shard so LRU order is global
  AnswerCache cache(config, registry);
  cache.put(1, true);
  cache.put(2, false);
  ASSERT_TRUE(cache.get(1).has_value());  // refresh 1; 2 is now LRU
  cache.put(3, true);                     // evicts 2
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(registry.counter_value("serve_cache_evictions_total"), 1u);
}

TEST(AnswerCache, ZeroCapacityDisablesCaching) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 0;
  AnswerCache cache(config, registry);
  cache.put(1, true);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(AnswerCache, ParanoiaFlagsEveryNthHit) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 8;
  config.paranoia_every = 3;
  AnswerCache cache(config, registry);
  cache.put(1, true);
  std::size_t due = 0;
  for (int i = 0; i < 9; ++i) {
    const auto hit = cache.get(1);
    ASSERT_TRUE(hit.has_value());
    due += hit->paranoia_due ? 1 : 0;
  }
  EXPECT_EQ(due, 3u);  // hits 3, 6, 9
}

TEST(AnswerCache, ParanoiaCountersTrackViolations) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  AnswerCache cache(config, registry);
  cache.record_paranoia(true);
  cache.record_paranoia(false);
  cache.record_paranoia(true);
  EXPECT_EQ(cache.paranoia_checks(), 3u);
  EXPECT_EQ(cache.paranoia_violations(), 1u);
  EXPECT_EQ(registry.counter_value("serve_cache_paranoia_checks_total"), 3u);
  EXPECT_EQ(registry.counter_value("serve_cache_paranoia_violations_total"), 1u);
}

TEST(AnswerCache, UpdatingAnExistingKeyDoesNotGrow) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 4;
  config.shards = 1;
  AnswerCache cache(config, registry);
  cache.put(1, true);
  cache.put(1, false);
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->answer);
}

TEST(AnswerCache, ConcurrentMixedTrafficConservesCounters) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 256;
  config.shards = 8;
  AnswerCache cache(config, registry);
  constexpr int kThreads = 4;
  constexpr int kOps = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const auto item = static_cast<std::size_t>((t * kOps + i) % 512);
        if (!cache.get(item).has_value()) cache.put(item, item % 2 == 0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_LE(cache.size(), 256u);
  // Cached answers are never corrupted by races.
  for (std::size_t item = 0; item < 512; ++item) {
    const auto hit = cache.get(item);
    if (hit.has_value()) EXPECT_EQ(hit->answer, item % 2 == 0);
  }
}

// ---------------------------------------------------------------------------
// Batch operations (the vectorized answer path's cache interface).
// ---------------------------------------------------------------------------

/// Drives the SAME operation sequence through the per-request API and the
/// batch API on two identically configured caches and pins every counter
/// equal: get_batch/put_batch are a locking optimization (one shard mutex
/// acquisition per batch), never a semantic change.
TEST(AnswerCache, BatchCountersEqualPerRequestPath) {
  AnswerCacheConfig config;
  config.capacity = 64;
  config.shards = 4;
  config.paranoia_every = 3;  // exercise the hit-number cadence too

  metrics::Registry reg_single, reg_batch;
  AnswerCache single(config, reg_single);
  AnswerCache batched(config, reg_batch);

  // Phase 1: warm both with the same entries, batch vs loop.
  std::vector<AnswerCache::PutItem> puts;
  for (std::size_t i = 0; i < 40; ++i) {
    const AnswerCache::Entry entry{i % 2 == 0, true, i % 3 == 0,
                                   static_cast<std::int64_t>(i),
                                   static_cast<std::int64_t>(2 * i)};
    single.put(i, entry);
    puts.push_back(AnswerCache::PutItem{i, entry});
  }
  batched.put_batch(puts);
  EXPECT_EQ(batched.size(), single.size());
  EXPECT_EQ(batched.evictions(), single.evictions());

  // Phase 2: mixed hit/miss lookups, batch vs loop, same key sequence
  // (duplicates included: same-batch duplicate hits must count twice).
  std::vector<std::size_t> keys;
  for (std::size_t i = 0; i < 60; ++i) keys.push_back((i * 7) % 80);
  keys.push_back(4);
  keys.push_back(4);

  std::size_t single_paranoia = 0;
  std::vector<std::optional<AnswerCache::Hit>> single_hits;
  for (const auto k : keys) {
    single_hits.push_back(single.get(k));
    if (single_hits.back().has_value() && single_hits.back()->paranoia_due) {
      ++single_paranoia;
    }
  }
  std::vector<std::optional<AnswerCache::Hit>> batch_hits;
  batched.get_batch(keys, batch_hits);

  ASSERT_EQ(batch_hits.size(), keys.size());
  std::size_t batch_paranoia = 0;
  for (std::size_t l = 0; l < keys.size(); ++l) {
    ASSERT_EQ(batch_hits[l].has_value(), single_hits[l].has_value())
        << "lane " << l << " key " << keys[l];
    if (batch_hits[l].has_value()) {
      EXPECT_EQ(batch_hits[l]->answer, single_hits[l]->answer);
      EXPECT_EQ(batch_hits[l]->has_witness, single_hits[l]->has_witness);
      EXPECT_EQ(batch_hits[l]->large, single_hits[l]->large);
      EXPECT_EQ(batch_hits[l]->profit, single_hits[l]->profit);
      EXPECT_EQ(batch_hits[l]->weight, single_hits[l]->weight);
      if (batch_hits[l]->paranoia_due) ++batch_paranoia;
    }
  }
  // Counters pinned exactly: hits, misses, and paranoia-due count per batch.
  // (WHICH lane draws a given hit number may differ - lanes are visited in
  // shard order - but the every-Nth cadence yields the same total.)
  EXPECT_EQ(batched.hits(), single.hits());
  EXPECT_EQ(batched.misses(), single.misses());
  EXPECT_EQ(batch_paranoia, single_paranoia);
  EXPECT_EQ(reg_batch.counter_value("serve_cache_hits_total"),
            reg_single.counter_value("serve_cache_hits_total"));
  EXPECT_EQ(reg_batch.counter_value("serve_cache_misses_total"),
            reg_single.counter_value("serve_cache_misses_total"));

  // Phase 3: eviction pressure, batch vs loop, same overflow sequence.
  std::vector<AnswerCache::PutItem> overflow;
  for (std::size_t i = 100; i < 260; ++i) {
    single.put(i, AnswerCache::Entry{.answer = true});
    overflow.push_back(AnswerCache::PutItem{i, AnswerCache::Entry{.answer = true}});
  }
  batched.put_batch(overflow);
  EXPECT_EQ(batched.evictions(), single.evictions());
  EXPECT_EQ(batched.size(), single.size());
  EXPECT_EQ(reg_batch.counter_value("serve_cache_evictions_total"),
            reg_single.counter_value("serve_cache_evictions_total"));
}

TEST(AnswerCache, BatchZeroCapacityAllMiss) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 0;
  AnswerCache cache(config, registry);
  cache.put_batch(std::vector<AnswerCache::PutItem>{
      {1, AnswerCache::Entry{.answer = true}}});
  std::vector<std::optional<AnswerCache::Hit>> hits;
  const std::vector<std::size_t> keys = {1, 2, 3};
  cache.get_batch(keys, hits);
  EXPECT_EQ(hits.size(), 3u);
  for (const auto& hit : hits) EXPECT_FALSE(hit.has_value());
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(AnswerCache, BatchRefreshesLruLikePerRequest) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 2;
  config.shards = 1;
  AnswerCache cache(config, registry);
  cache.put(1, true);
  cache.put(2, false);
  std::vector<std::optional<AnswerCache::Hit>> hits;
  const std::vector<std::size_t> refresh = {1};
  cache.get_batch(refresh, hits);  // refresh 1; 2 becomes LRU
  cache.put_batch(std::vector<AnswerCache::PutItem>{
      {3, AnswerCache::Entry{.answer = true}}});  // evicts 2
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
}

TEST(AnswerCache, ConcurrentBatchAndSingleTrafficConserves) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 128;
  config.shards = 4;
  config.paranoia_every = 7;
  AnswerCache cache(config, registry);
  constexpr int kThreads = 4;
  constexpr int kBatches = 2'000;
  constexpr std::size_t kBatch = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      std::vector<std::optional<AnswerCache::Hit>> hits;
      for (int i = 0; i < kBatches; ++i) {
        std::vector<std::size_t> keys(kBatch);
        for (std::size_t k = 0; k < kBatch; ++k) {
          keys[k] = static_cast<std::size_t>((t * 131 + i * 17 + k) % 256);
        }
        if (t % 2 == 0) {
          cache.get_batch(keys, hits);
          std::vector<AnswerCache::PutItem> puts;
          for (std::size_t k = 0; k < kBatch; ++k) {
            if (!hits[k].has_value()) {
              puts.push_back(
                  AnswerCache::PutItem{keys[k],
                                       AnswerCache::Entry{.answer = keys[k] % 2 == 0}});
            }
          }
          cache.put_batch(puts);
        } else {
          for (const auto key : keys) {
            if (!cache.get(key).has_value()) cache.put(key, key % 2 == 0);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kBatches * kBatch);
  EXPECT_LE(cache.size(), 128u);
  for (std::size_t item = 0; item < 256; ++item) {
    const auto hit = cache.get(item);
    if (hit.has_value()) EXPECT_EQ(hit->answer, item % 2 == 0);
  }
}

// --- generations (epoch-scoped invalidation; ISSUE 10) ---------------------

TEST(AnswerCacheGeneration, BumpIsMonotoneAndCounted) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 16;
  AnswerCache cache(config, registry);
  EXPECT_EQ(cache.generation(), 0u);
  EXPECT_EQ(cache.invalidations(), 0u);

  EXPECT_TRUE(cache.bump_generation(3));
  EXPECT_EQ(cache.generation(), 3u);
  // Equal or lower targets are ignored — the generation never moves back.
  EXPECT_FALSE(cache.bump_generation(3));
  EXPECT_FALSE(cache.bump_generation(1));
  EXPECT_EQ(cache.generation(), 3u);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(registry.counter_value("serve_cache_invalidations_total"), 1u);
}

TEST(AnswerCacheGeneration, StaleEntryDropsAsAMissNeverAStaleAnswer) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 16;
  AnswerCache cache(config, registry);
  cache.put(7, true);
  ASSERT_TRUE(cache.get(7).has_value());

  EXPECT_TRUE(cache.bump_generation(1));
  // The epoch-0 answer must never surface after the advance: the lookup
  // reports a miss and erases the entry.
  EXPECT_FALSE(cache.get(7).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(AnswerCacheGeneration, InvalidationIsLazyEntriesDieOnLookup) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 64;
  AnswerCache cache(config, registry);
  for (std::size_t item = 0; item < 32; ++item) cache.put(item, true);
  ASSERT_EQ(cache.size(), 32u);

  // O(1) advance: no shard is scanned, the stale entries are still resident…
  EXPECT_TRUE(cache.bump_generation(1));
  EXPECT_EQ(cache.size(), 32u);
  // …and every subsequent lookup misses and reaps its entry.
  for (std::size_t item = 0; item < 32; ++item) {
    EXPECT_FALSE(cache.get(item).has_value());
  }
  EXPECT_EQ(cache.size(), 0u);
}

TEST(AnswerCacheGeneration, StaleGenerationPutIsDropped) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 16;
  AnswerCache cache(config, registry);
  EXPECT_TRUE(cache.bump_generation(2));
  // A worker still finishing epoch-1 work after the advance must not poison
  // the epoch-2 cache.
  cache.put(9, AnswerCache::Entry{.answer = true, .generation = 1});
  EXPECT_FALSE(cache.get(9).has_value());
  EXPECT_EQ(cache.size(), 0u);

  // A current-generation put lands and reports its generation on the hit.
  cache.put(9, AnswerCache::Entry{.answer = true, .generation = 2});
  const auto hit = cache.get(9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->generation, 2u);
}

TEST(AnswerCacheGeneration, ConveniencePutStampsTheCurrentGeneration) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 16;
  AnswerCache cache(config, registry);
  EXPECT_TRUE(cache.bump_generation(5));
  cache.put(3, true);
  const auto hit = cache.get(3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->generation, 5u);
}

TEST(AnswerCacheGeneration, ClearInvalidatesEverythingViaOneBump) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 16;
  AnswerCache cache(config, registry);
  cache.put(1, true);
  cache.put(2, false);
  cache.clear();
  EXPECT_EQ(cache.generation(), 1u);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(registry.counter_value("serve_cache_invalidations_total"), 1u);
}

TEST(AnswerCacheGeneration, BatchPathHonoursGenerations) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 64;
  AnswerCache cache(config, registry);
  const std::vector<std::size_t> keys = {1, 2, 3};
  std::vector<AnswerCache::PutItem> puts;
  for (const auto key : keys) {
    puts.push_back({key, AnswerCache::Entry{.answer = true,
                                            .generation = cache.generation()}});
  }
  cache.put_batch(puts);
  EXPECT_TRUE(cache.bump_generation(1));

  // get_batch must drop every stale entry, exactly like per-item gets.
  std::vector<std::optional<AnswerCache::Hit>> hits;
  cache.get_batch(keys, hits);
  for (const auto& hit : hits) EXPECT_FALSE(hit.has_value());
  EXPECT_EQ(cache.size(), 0u);

  // …and put_batch must drop stale-generation inserts.
  cache.put_batch(puts);  // still stamped generation 0
  cache.get_batch(keys, hits);
  for (const auto& hit : hits) EXPECT_FALSE(hit.has_value());
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace lcaknap::serve
