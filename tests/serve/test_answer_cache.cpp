#include "serve/answer_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "metrics/metrics.h"

namespace lcaknap::serve {
namespace {

TEST(AnswerCache, MissThenHit) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 16;
  config.shards = 4;
  AnswerCache cache(config, registry);
  EXPECT_FALSE(cache.get(7).has_value());
  cache.put(7, true);
  const auto hit = cache.get(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->answer);
  EXPECT_FALSE(hit->paranoia_due);  // paranoia off by default
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(registry.counter_value("serve_cache_hits_total"), 1u);
  EXPECT_EQ(registry.counter_value("serve_cache_misses_total"), 1u);
}

TEST(AnswerCache, ShardCountRoundsUpToPowerOfTwo) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 64;
  config.shards = 5;
  const AnswerCache cache(config, registry);
  EXPECT_EQ(cache.shard_count(), 8u);
}

TEST(AnswerCache, ShardsNeverExceedCapacity) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 2;
  config.shards = 16;  // would leave 14 shards with zero entries
  const AnswerCache cache(config, registry);
  EXPECT_LE(cache.shard_count(), 2u);
}

TEST(AnswerCache, EvictsLeastRecentlyUsed) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 2;
  config.shards = 1;  // single shard so LRU order is global
  AnswerCache cache(config, registry);
  cache.put(1, true);
  cache.put(2, false);
  ASSERT_TRUE(cache.get(1).has_value());  // refresh 1; 2 is now LRU
  cache.put(3, true);                     // evicts 2
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(registry.counter_value("serve_cache_evictions_total"), 1u);
}

TEST(AnswerCache, ZeroCapacityDisablesCaching) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 0;
  AnswerCache cache(config, registry);
  cache.put(1, true);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(AnswerCache, ParanoiaFlagsEveryNthHit) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 8;
  config.paranoia_every = 3;
  AnswerCache cache(config, registry);
  cache.put(1, true);
  std::size_t due = 0;
  for (int i = 0; i < 9; ++i) {
    const auto hit = cache.get(1);
    ASSERT_TRUE(hit.has_value());
    due += hit->paranoia_due ? 1 : 0;
  }
  EXPECT_EQ(due, 3u);  // hits 3, 6, 9
}

TEST(AnswerCache, ParanoiaCountersTrackViolations) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  AnswerCache cache(config, registry);
  cache.record_paranoia(true);
  cache.record_paranoia(false);
  cache.record_paranoia(true);
  EXPECT_EQ(cache.paranoia_checks(), 3u);
  EXPECT_EQ(cache.paranoia_violations(), 1u);
  EXPECT_EQ(registry.counter_value("serve_cache_paranoia_checks_total"), 3u);
  EXPECT_EQ(registry.counter_value("serve_cache_paranoia_violations_total"), 1u);
}

TEST(AnswerCache, UpdatingAnExistingKeyDoesNotGrow) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 4;
  config.shards = 1;
  AnswerCache cache(config, registry);
  cache.put(1, true);
  cache.put(1, false);
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->answer);
}

TEST(AnswerCache, ConcurrentMixedTrafficConservesCounters) {
  metrics::Registry registry;
  AnswerCacheConfig config;
  config.capacity = 256;
  config.shards = 8;
  AnswerCache cache(config, registry);
  constexpr int kThreads = 4;
  constexpr int kOps = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const auto item = static_cast<std::size_t>((t * kOps + i) % 512);
        if (!cache.get(item).has_value()) cache.put(item, item % 2 == 0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_LE(cache.size(), 256u);
  // Cached answers are never corrupted by races.
  for (std::size_t item = 0; item < 512; ++item) {
    const auto hit = cache.get(item);
    if (hit.has_value()) EXPECT_EQ(hit->answer, item % 2 == 0);
  }
}

}  // namespace
}  // namespace lcaknap::serve
