#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "serve/engine.h"
#include "util/virtual_clock.h"

/// \file test_engine_callback.cpp
/// Regression tests for the two serve-layer contracts the network front-end
/// (src/net/) depends on:
///   1. the non-blocking `submit(item, callback)` completion path fires each
///      callback exactly once and keeps the conservation law (submitted ==
///      ok + overloaded + deadline + degraded + errors) and every outcome
///      counter identical to the future path;
///   2. deadlines are semantic time on the engine's injected `util::Clock`,
///      so a `VirtualClock` makes deadline shedding deterministic — a
///      request expires exactly when the test says it does, never because
///      the CI machine stalled.

namespace lcaknap::serve {
namespace {

using namespace std::chrono_literals;

class EngineCallbackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    instance_ = new knapsack::Instance(
        knapsack::make_family(knapsack::Family::kNeedle, 2'000, 17));
    access_ = new oracle::MaterializedAccess(*instance_);
    core::LcaKpConfig config;
    config.eps = 0.2;
    config.seed = 0x5E;
    config.quantile_samples = 20'000;
    lca_ = new core::LcaKp(*access_, config);
  }
  static void TearDownTestSuite() {
    delete lca_;
    delete access_;
    delete instance_;
    lca_ = nullptr;
    access_ = nullptr;
    instance_ = nullptr;
  }

  static EngineConfig fast_config() {
    EngineConfig config;
    config.workers = 3;
    config.queue_capacity = 4'096;
    config.batcher.max_batch_size = 16;
    config.batcher.max_linger = 100us;
    config.cache.capacity = 1'024;
    config.cache.shards = 4;
    return config;
  }

  static const knapsack::Instance* instance_;
  static const oracle::MaterializedAccess* access_;
  static const core::LcaKp* lca_;
};

const knapsack::Instance* EngineCallbackTest::instance_ = nullptr;
const oracle::MaterializedAccess* EngineCallbackTest::access_ = nullptr;
const core::LcaKp* EngineCallbackTest::lca_ = nullptr;

/// Gathers callback completions from any engine thread and lets the test
/// block until all expected completions arrived (drain() also guarantees
/// this, but the collector keeps assertions independent of drain ordering).
class Collector {
 public:
  void expect(std::size_t n) { expected_ = n; }
  CompletionCallback callback() {
    return [this](const Response& response) {
      std::lock_guard<std::mutex> lock(mutex_);
      responses_.push_back(response);
      if (responses_.size() >= expected_) cv_.notify_all();
    };
  }
  std::vector<Response> wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return responses_.size() >= expected_; });
    return responses_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Response> responses_;
  std::size_t expected_ = 0;
};

TEST_F(EngineCallbackTest, CallbackPathAnswersMatchDirectEvaluation) {
  metrics::Registry registry;
  ServeEngine engine(*lca_, fast_config(), registry);
  constexpr std::size_t kItems = 300;
  std::vector<std::atomic<int>> fired(kItems);
  std::vector<bool> answers(kItems, false);
  Collector collector;
  collector.expect(kItems);
  for (std::size_t item = 0; item < kItems; ++item) {
    engine.submit(item, [&, item](const Response& response) {
      fired[item].fetch_add(1, std::memory_order_relaxed);
      answers[item] = response.answer;
      EXPECT_EQ(response.outcome, Outcome::kOk);
      collector.callback()(response);
    });
  }
  (void)collector.wait();
  engine.drain();
  for (std::size_t item = 0; item < kItems; ++item) {
    EXPECT_EQ(fired[item].load(), 1) << "callback fired != once for " << item;
    EXPECT_EQ(answers[item], lca_->answer_from(engine.run(), item))
        << "item " << item;
  }
}

TEST_F(EngineCallbackTest, ConservationLawHoldsOnTheCallbackPath) {
  metrics::Registry registry;
  auto config = fast_config();
  config.queue_capacity = 8;  // small enough to provoke kOverloaded
  ServeEngine engine(*lca_, config, registry);
  constexpr std::size_t kTotal = 5'000;
  std::atomic<std::uint64_t> fired{0};
  for (std::size_t q = 0; q < kTotal; ++q) {
    engine.submit(q % 64, [&](const Response&) {
      fired.fetch_add(1, std::memory_order_relaxed);
    });
  }
  engine.drain();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(fired.load(), kTotal) << "every callback fires exactly once";
  EXPECT_EQ(stats.submitted, stats.ok + stats.overloaded +
                                 stats.deadline_exceeded + stats.degraded +
                                 stats.errors);
  // The registry counters must agree with the atomic stats — the callback
  // path routes through the same finish() accounting as the future path.
  EXPECT_EQ(registry.counter_value("serve_requests_total", {{"outcome", "ok"}}),
            stats.ok);
  EXPECT_EQ(registry.counter_value("serve_requests_total",
                                   {{"outcome", "overloaded"}}),
            stats.overloaded);
}

TEST_F(EngineCallbackTest, ThrowingCallbackIsSwallowedAndStillCounted) {
  metrics::Registry registry;
  ServeEngine engine(*lca_, fast_config(), registry);
  constexpr std::size_t kTotal = 64;
  std::atomic<std::uint64_t> fired{0};
  for (std::size_t q = 0; q < kTotal; ++q) {
    engine.submit(q, [&](const Response&) {
      fired.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("hostile callback");
    });
  }
  engine.drain();
  const auto stats = engine.stats();
  EXPECT_EQ(fired.load(), kTotal);
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.submitted, stats.ok + stats.overloaded +
                                 stats.deadline_exceeded + stats.degraded +
                                 stats.errors);
}

TEST_F(EngineCallbackTest, VirtualClockDeadlinesShedDeterministically) {
  metrics::Registry registry;
  util::VirtualClock clock;
  auto config = fast_config();
  config.clock = &clock;
  ServeEngine engine(*lca_, config, registry);

  // Past deadline on the virtual clock: shed, deterministically, no sleeps.
  clock.advance_us(1'000);
  Collector shed;
  shed.expect(1);
  engine.submit(7, -1us, shed.callback());
  const auto shed_responses = shed.wait();
  ASSERT_EQ(shed_responses.size(), 1u);
  EXPECT_EQ(shed_responses[0].outcome, Outcome::kDeadlineExceeded);

  // Generous deadline on a clock that never advances again: served, always.
  // On the wall clock this would be a race; on the virtual clock it is not.
  Collector served;
  served.expect(1);
  engine.submit(7, 50us, served.callback());
  const auto ok_responses = served.wait();
  ASSERT_EQ(ok_responses.size(), 1u);
  EXPECT_EQ(ok_responses[0].outcome, Outcome::kOk);
  EXPECT_EQ(ok_responses[0].answer, lca_->answer_from(engine.run(), 7));

  engine.drain();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.ok, 1u);
}

TEST_F(EngineCallbackTest, FuturePathDeadlinesAlsoUseTheInjectedClock) {
  metrics::Registry registry;
  util::VirtualClock clock;
  auto config = fast_config();
  config.clock = &clock;
  ServeEngine engine(*lca_, config, registry);
  // 10 ms of virtual headroom never elapses: the future path must serve.
  auto future = engine.submit(3, 10'000us);
  const auto response = future.get();
  EXPECT_EQ(response.outcome, Outcome::kOk);
  // And a deadline strictly in the virtual past must shed.
  clock.advance_us(5);
  auto doomed = engine.submit(3, -1us);
  EXPECT_EQ(doomed.get().outcome, Outcome::kDeadlineExceeded);
}

}  // namespace
}  // namespace lcaknap::serve
