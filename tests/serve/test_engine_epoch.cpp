#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <vector>

#include "cert/verifier.h"
#include "dyn/epoch_state.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "serve/engine.h"
#include "store/snapshot.h"
#include "util/rng.h"

/// Engine-level epoch tests (ISSUE 10): an `advance_epoch` concurrent with
/// traffic must be linearizable per request — every answer is derived
/// entirely under one epoch, attributes that epoch, and is consistent with
/// it.  The dyn::EpochedState feeding the advances is exercised exactly the
/// way `lcaknap serve` wires it.

namespace lcaknap::serve {
namespace {

constexpr std::uint64_t kTapeSeed = 29;

dyn::EpochConfig epoch_config() {
  dyn::EpochConfig config;
  config.lca.eps = 0.25;
  config.lca.seed = 0xEE0C;
  config.lca.large_samples = 1'500;
  config.lca.quantile_samples = 6'144;
  config.tape_seed = kTapeSeed;
  return config;
}

knapsack::Instance base_instance(std::size_t n = 600) {
  return knapsack::make_family(knapsack::Family::kUncorrelated, n, 53);
}

dyn::UpdateBatch weight_batch(std::uint64_t epoch_id,
                              const knapsack::Instance& inst,
                              std::size_t count, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  dyn::UpdateBatch batch;
  batch.epoch_id = epoch_id;
  std::vector<bool> used(inst.size(), false);
  while (batch.mutations.size() < count) {
    const auto index = static_cast<std::size_t>(rng.next_below(inst.size()));
    if (used[index]) continue;
    used[index] = true;
    const auto weight = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(inst.capacity())) + 1);
    batch.mutations.push_back(
        {dyn::MutationKind::kWeightUpdate, index, 0, weight});
  }
  return batch;
}

EngineConfig engine_config_over(
    const std::shared_ptr<const dyn::EpochedState::Epoch>& epoch) {
  EngineConfig config;
  config.workers = 2;
  config.cache.capacity = 256;
  config.warmup_tape_seed = kTapeSeed;
  config.warm_state = epoch->run;
  return config;
}

TEST(ServeEngineEpoch, AdvanceSwitchesTheServedEpochAndBumpsTheCache) {
  metrics::Registry registry;
  dyn::EpochedState state(base_instance(), epoch_config(), registry);
  const auto epoch0 = state.current();
  ServeEngine engine(*epoch0->lca, engine_config_over(epoch0), registry);

  const auto before = engine.submit_wait(7);
  EXPECT_EQ(before.outcome, Outcome::kOk);
  EXPECT_EQ(before.epoch_id, 0u);
  EXPECT_EQ(engine.epoch(), 0u);

  (void)state.advance(weight_batch(1, *epoch0->instance, 20, 101));
  const auto epoch1 = state.current();
  engine.advance_epoch(1, *epoch1->lca, epoch1->run, epoch1);

  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(engine.cache().generation(), 1u);
  EXPECT_EQ(engine.stats().cache_invalidations, 1u);
  EXPECT_EQ(registry.counter_value("serve_cache_invalidations_total"), 1u);

  // The pre-advance cached answer for item 7 must not be served: the lookup
  // drops the stale entry, re-evaluates under epoch 1, and attributes it.
  const auto after = engine.submit_wait(7);
  EXPECT_EQ(after.outcome, Outcome::kOk);
  EXPECT_EQ(after.epoch_id, 1u);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.answer, [&] {
    core::LcaKp::AnswerWitness witness;
    return epoch1->lca->answer_with_witness(*epoch1->run, 7, witness);
  }());
  // A repeat is now a hit, still stamped with the current epoch.
  const auto repeat = engine.submit_wait(7);
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(repeat.epoch_id, 1u);
}

TEST(ServeEngineEpoch, AdvanceRejectsNonMonotoneEpochsAndNullRuns) {
  metrics::Registry registry;
  dyn::EpochedState state(base_instance(300), epoch_config(), registry);
  const auto epoch0 = state.current();
  ServeEngine engine(*epoch0->lca, engine_config_over(epoch0), registry);
  EXPECT_THROW(engine.advance_epoch(0, *epoch0->lca, epoch0->run, epoch0),
               std::invalid_argument);
  EXPECT_THROW(engine.advance_epoch(1, *epoch0->lca, nullptr, epoch0),
               std::invalid_argument);
  EXPECT_EQ(engine.epoch(), 0u);
}

/// The churn-under-load contract: requests in flight across an advance may
/// legally complete under either epoch, but every kOk answer must be
/// consistent with the epoch it attributes — zero stale-epoch answers.
TEST(ServeEngineEpoch, MixedEpochTrafficIsConsistentWithTheAttributedEpoch) {
  metrics::Registry registry;
  dyn::EpochedState state(base_instance(), epoch_config(), registry);
  std::map<std::uint64_t, std::shared_ptr<const dyn::EpochedState::Epoch>>
      epochs;
  epochs[0] = state.current();

  EngineConfig config = engine_config_over(epochs[0]);
  config.workers = 4;
  ServeEngine engine(*epochs[0]->lca, config, registry);

  util::Xoshiro256 rng(404);
  std::vector<std::future<Response>> futures;
  const auto submit_some = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(engine.submit(
          static_cast<std::size_t>(rng.next_below(epochs[0]->instance->size()))));
    }
  };

  // Interleave bursts with two advances; the in-flight window around each
  // advance is exactly the mixed-epoch traffic under test.
  submit_some(300);
  for (std::uint64_t epoch = 1; epoch <= 2; ++epoch) {
    (void)state.advance(
        weight_batch(epoch, *state.current()->instance, 15, 500 + epoch));
    const auto next = state.current();
    epochs[epoch] = next;
    engine.advance_epoch(epoch, *next->lca, next->run, next);
    submit_some(300);
  }
  // Requests submitted after the last advance returned can only see epoch 2.
  const auto settled = engine.submit_wait(3);
  EXPECT_EQ(settled.epoch_id, 2u);

  std::size_t ok = 0;
  std::size_t stale = 0;
  std::size_t item_cursor = 0;
  std::vector<std::size_t> items;
  {
    // Reconstruct the submitted item sequence from the same tape.
    util::Xoshiro256 replay(404);
    for (std::size_t i = 0; i < futures.size(); ++i) {
      items.push_back(static_cast<std::size_t>(
          replay.next_below(epochs[0]->instance->size())));
    }
  }
  for (auto& future : futures) {
    const Response response = future.get();
    const std::size_t item = items[item_cursor++];
    if (response.outcome != Outcome::kOk) continue;
    ++ok;
    ASSERT_LE(response.epoch_id, 2u);
    const auto& epoch = epochs.at(response.epoch_id);
    core::LcaKp::AnswerWitness witness;
    if (epoch->lca->answer_with_witness(*epoch->run, item, witness) !=
        response.answer) {
      ++stale;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(stale, 0u) << "answers inconsistent with their attributed epoch";
  engine.drain();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_EQ(stats.cache_invalidations, 2u);
  EXPECT_EQ(stats.submitted,
            stats.ok + stats.overloaded + stats.deadline_exceeded +
                stats.degraded + stats.errors);
}

TEST(ServeEngineEpoch, EachEpochWritesItsOwnVerifiableCertificateLog) {
  const auto tmp = std::filesystem::temp_directory_path() /
                   ("lcaknap_engine_epoch_" +
                    std::to_string(
                        ::testing::UnitTest::GetInstance()->random_seed()));
  std::filesystem::remove_all(tmp);
  std::filesystem::create_directories(tmp);

  metrics::Registry registry;
  dyn::EpochedState state(base_instance(), epoch_config(), registry);
  const auto epoch0 = state.current();
  std::shared_ptr<const dyn::EpochedState::Epoch> epoch1;
  {
    EngineConfig config = engine_config_over(epoch0);
    config.certify = true;
    config.cert_dir = tmp.string();
    ServeEngine engine(*epoch0->lca, config, registry);
    for (std::size_t item = 0; item < 20; ++item) {
      (void)engine.submit_wait(item);
    }
    (void)state.advance(weight_batch(1, *epoch0->instance, 10, 909));
    epoch1 = state.current();
    engine.advance_epoch(1, *epoch1->lca, epoch1->run, epoch1);
    for (std::size_t item = 0; item < 20; ++item) {
      (void)engine.submit_wait(item);
    }
    engine.drain();  // seals every epoch's log
    EXPECT_GT(engine.stats().cert_records, 0u);
  }

  // Epoch 0's records live in cert_dir itself, epoch 1's under epoch-1/;
  // each log verifies only against its own epoch's fingerprint + run.
  {
    const cert::LogVerifier verifier(
        store::fingerprint_of(*epoch0->lca, kTapeSeed, 0), *epoch0->run, {},
        registry);
    const auto report = verifier.verify_path(tmp.string());
    EXPECT_EQ(report.records, 20u);
    EXPECT_EQ(report.rejected, 0u);
  }
  {
    ASSERT_TRUE(std::filesystem::is_directory(tmp / "epoch-1"));
    const cert::LogVerifier verifier(
        store::fingerprint_of(*epoch1->lca, kTapeSeed, 1), *epoch1->run, {},
        registry);
    const auto report = verifier.verify_path((tmp / "epoch-1").string());
    EXPECT_EQ(report.records, 20u);
    EXPECT_EQ(report.rejected, 0u);
  }
  std::filesystem::remove_all(tmp);
}

}  // namespace
}  // namespace lcaknap::serve
