#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <vector>

#include "core/batch_eval.h"
#include "core/lca_kp.h"
#include "fault/chaos.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "serve/engine.h"
#include "util/virtual_clock.h"

/// \file test_engine_batch.cpp
/// The engine's vectorized batch answer path (`EngineConfig::batch_eval`):
/// answers, witnesses, counters, and failure semantics must be byte-identical
/// to the per-request `execute_batch` path — the batch engine is a locality
/// optimization, never a semantic fork.

namespace lcaknap::serve {
namespace {

using namespace std::chrono_literals;

class EngineBatchEval : public ::testing::Test {
 public:
  static const oracle::MaterializedAccess* shared_access() { return access_; }

 protected:
  static void SetUpTestSuite() {
    instance_ = new knapsack::Instance(
        knapsack::make_family(knapsack::Family::kNeedle, 2'000, 17));
    access_ = new oracle::MaterializedAccess(*instance_);
    core::LcaKpConfig config;
    config.eps = 0.2;
    config.seed = 0x5E;
    config.quantile_samples = 20'000;
    lca_ = new core::LcaKp(*access_, config);
  }
  static void TearDownTestSuite() {
    delete lca_;
    delete access_;
    delete instance_;
    lca_ = nullptr;
    access_ = nullptr;
    instance_ = nullptr;
  }

  static EngineConfig fast_config() {
    EngineConfig config;
    config.workers = 3;
    config.queue_capacity = 4'096;
    config.batcher.max_batch_size = 16;
    config.batcher.max_linger = 100us;
    config.cache.capacity = 1'024;
    config.cache.shards = 4;
    return config;
  }

  /// Reads the `batch_eval_kernel` gauge (NaN when never registered).
  static double kernel_gauge(metrics::Registry& registry) {
    const auto snapshot = registry.snapshot();
    for (const auto& gauge : snapshot.gauges) {
      if (gauge.name == "batch_eval_kernel") return gauge.value;
    }
    return std::numeric_limits<double>::quiet_NaN();
  }

  /// Observation count of the `serve_batch_eval_us` histogram (0 if absent).
  static std::uint64_t batch_eval_observations(metrics::Registry& registry) {
    const auto snapshot = registry.snapshot();
    for (const auto& hist : snapshot.histograms) {
      if (hist.name == "serve_batch_eval_us") return hist.count;
    }
    return 0;
  }

  static const knapsack::Instance* instance_;
  static const oracle::MaterializedAccess* access_;
  static const core::LcaKp* lca_;
};

const knapsack::Instance* EngineBatchEval::instance_ = nullptr;
const oracle::MaterializedAccess* EngineBatchEval::access_ = nullptr;
const core::LcaKp* EngineBatchEval::lca_ = nullptr;

TEST_F(EngineBatchEval, BatchPathMatchesPerRequestPath) {
  metrics::Registry reg_batch, reg_single;
  auto batch_config = fast_config();
  batch_config.batch_eval = true;
  auto single_config = fast_config();
  single_config.batch_eval = false;
  ServeEngine batched(*lca_, batch_config, reg_batch);
  ServeEngine single(*lca_, single_config, reg_single);

  std::vector<std::future<Response>> batch_futures, single_futures;
  for (std::size_t item = 0; item < 600; ++item) {
    batch_futures.push_back(batched.submit(item % 400));
    single_futures.push_back(single.submit(item % 400));
  }
  for (std::size_t q = 0; q < batch_futures.size(); ++q) {
    const auto from_batch = batch_futures[q].get();
    const auto from_single = single_futures[q].get();
    ASSERT_EQ(from_batch.outcome, Outcome::kOk);
    ASSERT_EQ(from_single.outcome, Outcome::kOk);
    EXPECT_EQ(from_batch.answer, from_single.answer) << "query " << q;
    EXPECT_EQ(from_batch.answer, lca_->answer_from(batched.run(), q % 400));
  }
  batched.drain();
  single.drain();

  const auto batch_stats = batched.stats();
  EXPECT_GT(batch_stats.batch_eval_groups, 0u);
  EXPECT_EQ(single.stats().batch_eval_groups, 0u);
  EXPECT_EQ(batch_stats.submitted,
            batch_stats.ok + batch_stats.overloaded +
                batch_stats.deadline_exceeded + batch_stats.degraded +
                batch_stats.errors);
  // The histogram sees one observation per dispatch group that evaluated.
  EXPECT_GT(batch_eval_observations(reg_batch), 0u);
  EXPECT_EQ(batch_eval_observations(reg_single), 0u);
}

TEST_F(EngineBatchEval, KernelGaugeReflectsTheActivePath) {
  metrics::Registry reg_on, reg_off;
  auto on = fast_config();
  on.batch_eval = true;
  auto off = fast_config();
  off.batch_eval = false;
  ServeEngine engine_on(*lca_, on, reg_on);
  ServeEngine engine_off(*lca_, off, reg_off);
  // The engine starts on the best kernel the build + CPU offer; the gauge
  // exports the same enum value the accessor reports.
  EXPECT_EQ(engine_on.batch_kernel(), core::BatchEval::best_kernel());
  EXPECT_EQ(kernel_gauge(reg_on),
            static_cast<double>(static_cast<int>(engine_on.batch_kernel())));
  // Disabled path: accessor falls back to kScalar, gauge exports -1.
  EXPECT_EQ(engine_off.batch_kernel(), core::BatchKernel::kScalar);
  EXPECT_EQ(kernel_gauge(reg_off), -1.0);
}

TEST_F(EngineBatchEval, CacheCountersMatchPerRequestPath) {
  metrics::Registry reg_batch, reg_single;
  auto batch_config = fast_config();
  batch_config.batch_eval = true;
  auto single_config = fast_config();
  single_config.batch_eval = false;
  ServeEngine batched(*lca_, batch_config, reg_batch);
  ServeEngine single(*lca_, single_config, reg_single);
  // Sequential identical traffic: every engine-visible cache counter must
  // agree between the two paths (hits, misses, and by implication puts).
  for (std::size_t q = 0; q < 900; ++q) {
    const std::size_t item = (q * 13) % 120;
    ASSERT_EQ(batched.submit_wait(item).outcome, Outcome::kOk);
    ASSERT_EQ(single.submit_wait(item).outcome, Outcome::kOk);
  }
  batched.drain();
  single.drain();
  const auto batch_stats = batched.stats();
  const auto single_stats = single.stats();
  EXPECT_EQ(batch_stats.cache_hits + batch_stats.cache_misses, 900u);
  EXPECT_EQ(batch_stats.cache_hits, single_stats.cache_hits);
  EXPECT_EQ(batch_stats.cache_misses, single_stats.cache_misses);
  EXPECT_EQ(batch_stats.cache_evictions, single_stats.cache_evictions);
}

TEST_F(EngineBatchEval, ParanoiaRecheckRunsOnBatchPathWithoutViolations) {
  metrics::Registry registry;
  auto config = fast_config();
  config.batch_eval = true;
  config.cache.paranoia_every = 1;  // recheck every hit
  ServeEngine engine(*lca_, config, registry);
  std::vector<std::future<Response>> futures;
  for (std::size_t q = 0; q < 400; ++q) {
    futures.push_back(engine.submit(q % 8));
  }
  for (auto& future : futures) {
    ASSERT_EQ(future.get().outcome, Outcome::kOk);
  }
  engine.drain();
  const auto stats = engine.stats();
  EXPECT_GT(stats.paranoia_checks, 0u);
  // Definition 2.3: the scalar recheck can never disagree with a cache entry
  // the batch kernels produced — byte-equality makes paranoia mode quiet.
  EXPECT_EQ(stats.paranoia_violations, 0u);
}

TEST_F(EngineBatchEval, CertificatesFlowFromBatchWitnesses) {
  const auto cert_dir =
      std::filesystem::temp_directory_path() / "lcaknap_batch_cert";
  std::filesystem::remove_all(cert_dir);
  std::filesystem::create_directories(cert_dir);
  metrics::Registry registry;
  auto config = fast_config();
  config.batch_eval = true;
  config.certify = true;
  config.cert_dir = cert_dir.string();
  {
    ServeEngine engine(*lca_, config, registry);
    for (std::size_t item = 0; item < 200; ++item) {
      ASSERT_EQ(engine.submit_wait(item).outcome, Outcome::kOk);
    }
    engine.drain();
    const auto stats = engine.stats();
    // Every kOk answer carried a witness — nothing skipped certification.
    EXPECT_EQ(stats.cert_records, 200u);
    EXPECT_EQ(stats.cert_skipped, 0u);
  }
  std::filesystem::remove_all(cert_dir);
}

TEST_F(EngineBatchEval, ExpiredDeadlinesAreShedOnTheBatchPath) {
  metrics::Registry registry;
  auto config = fast_config();
  config.batch_eval = true;
  ServeEngine engine(*lca_, config, registry);
  const auto response = engine.submit(3, 0us).get();
  EXPECT_EQ(response.outcome, Outcome::kDeadlineExceeded);
  engine.drain();
  EXPECT_EQ(engine.stats().deadline_exceeded, 1u);
}

TEST_F(EngineBatchEval, OutOfRangeItemYieldsErrorNotCrash) {
  metrics::Registry registry;
  auto config = fast_config();
  config.batch_eval = true;
  ServeEngine engine(*lca_, config, registry);
  EXPECT_EQ(engine.submit_wait(instance_->size() + 10).outcome, Outcome::kError);
  EXPECT_EQ(engine.submit_wait(0).outcome, Outcome::kOk);
  engine.drain();
  EXPECT_EQ(engine.stats().errors, 1u);
}

TEST_F(EngineBatchEval, DegradedModeAnswersThroughAnOutage) {
  metrics::Registry registry;
  auto config = fast_config();
  config.batch_eval = true;
  config.degrade = true;
  // A dead oracle behind the batch path: per-lane fault isolation must turn
  // every miss into the documented degraded fallback, not an error.
  util::VirtualClock clock;
  fault::FaultPhase down;
  down.label = "down";
  down.duration_us = 0;  // hold forever
  down.fail_rate = 1.0;
  fault::ChaosAccess chaos(*shared_access(),
                           fault::FaultPlan({down}, /*seed=*/0xD0A), clock,
                           /*armed=*/false, registry);
  core::LcaKpConfig lca_config;
  lca_config.eps = 0.2;
  lca_config.seed = 0x5E;
  lca_config.quantile_samples = 20'000;
  const core::LcaKp chaotic_lca(chaos, lca_config);
  ServeEngine engine(chaotic_lca, config, registry);
  chaos.arm();

  for (std::size_t item = 100; item < 140; ++item) {
    const auto response = engine.submit_wait(item);
    ASSERT_EQ(response.outcome, Outcome::kDegraded) << "item " << item;
    EXPECT_EQ(response.answer, engine.run().index_large.contains(item));
  }
  // Degraded answers were not cached: recovery restores full LCA quality.
  chaos.disarm();
  for (std::size_t item = 100; item < 140; ++item) {
    const auto response = engine.submit_wait(item);
    ASSERT_EQ(response.outcome, Outcome::kOk);
    EXPECT_EQ(response.answer, chaotic_lca.answer_from(engine.run(), item));
  }
  engine.drain();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.degraded, 40u);
  EXPECT_EQ(stats.submitted, stats.ok + stats.overloaded +
                                 stats.deadline_exceeded + stats.degraded +
                                 stats.errors);
}

}  // namespace
}  // namespace lcaknap::serve
