#include "serve/batcher.h"

#include <gtest/gtest.h>

#include <chrono>

namespace lcaknap::serve {
namespace {

using namespace std::chrono_literals;

Request make_request(std::size_t item) {
  Request r;
  r.item = item;
  return r;
}

TEST(Batcher, ValidatesConfig) {
  BatcherConfig bad;
  bad.max_batch_size = 0;
  EXPECT_THROW(Batcher{bad}, std::invalid_argument);
}

TEST(Batcher, ClosesBatchAtMaxSize) {
  BatcherConfig config;
  config.max_batch_size = 3;
  config.max_linger = 1h;  // never expires in this test
  Batcher batcher(config);
  std::vector<Batch> ready;
  const auto now = Clock::now();
  batcher.add(make_request(42), now, ready);
  batcher.add(make_request(42), now, ready);
  EXPECT_TRUE(ready.empty());
  EXPECT_EQ(batcher.pending(), 2u);
  batcher.add(make_request(42), now, ready);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].item, 42u);
  EXPECT_EQ(ready[0].requests.size(), 3u);
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(Batcher, GroupsByItemIndex) {
  BatcherConfig config;
  config.max_batch_size = 2;
  config.max_linger = 1h;
  Batcher batcher(config);
  std::vector<Batch> ready;
  const auto now = Clock::now();
  batcher.add(make_request(1), now, ready);
  batcher.add(make_request(2), now, ready);
  EXPECT_TRUE(ready.empty());  // different items, neither batch full
  batcher.add(make_request(1), now, ready);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].item, 1u);
  EXPECT_EQ(batcher.pending(), 1u);  // item 2 still open
}

TEST(Batcher, LingerExpiryClosesBatches) {
  BatcherConfig config;
  config.max_batch_size = 100;
  config.max_linger = 500us;
  Batcher batcher(config);
  std::vector<Batch> ready;
  const auto t0 = Clock::now();
  batcher.add(make_request(5), t0, ready);
  batcher.collect_expired(t0 + 100us, ready);
  EXPECT_TRUE(ready.empty());  // still inside the linger window
  batcher.collect_expired(t0 + 600us, ready);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].requests.size(), 1u);
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(Batcher, ZeroLingerClosesOnNextSweep) {
  BatcherConfig config;
  config.max_batch_size = 100;
  config.max_linger = 0us;
  Batcher batcher(config);
  std::vector<Batch> ready;
  const auto now = Clock::now();
  batcher.add(make_request(9), now, ready);
  batcher.collect_expired(now, ready);
  EXPECT_EQ(ready.size(), 1u);
}

TEST(Batcher, FlushAllDrainsEveryOpenBatch) {
  BatcherConfig config;
  config.max_batch_size = 100;
  config.max_linger = 1h;
  Batcher batcher(config);
  std::vector<Batch> ready;
  const auto now = Clock::now();
  for (std::size_t item = 0; item < 4; ++item) {
    batcher.add(make_request(item), now, ready);
    batcher.add(make_request(item), now, ready);
  }
  EXPECT_TRUE(ready.empty());
  EXPECT_EQ(batcher.pending(), 8u);
  batcher.flush_all(ready);
  EXPECT_EQ(ready.size(), 4u);
  std::size_t total = 0;
  for (const auto& batch : ready) total += batch.requests.size();
  EXPECT_EQ(total, 8u);
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(Batcher, BatchSizeOneDisablesGrouping) {
  BatcherConfig config;
  config.max_batch_size = 1;
  Batcher batcher(config);
  std::vector<Batch> ready;
  const auto now = Clock::now();
  batcher.add(make_request(3), now, ready);
  batcher.add(make_request(3), now, ready);
  EXPECT_EQ(ready.size(), 2u);  // each request is its own batch, immediately
}

}  // namespace
}  // namespace lcaknap::serve
