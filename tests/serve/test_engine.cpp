#include "serve/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/lca_kp.h"
#include "fault/chaos.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "util/virtual_clock.h"

namespace lcaknap::serve {
namespace {

using namespace std::chrono_literals;

/// Shared warm substrate: one instance + LCA for every engine under test
/// (the pipeline run each engine executes at construction stays cheap).
class EngineTest : public ::testing::Test {
 public:
  static const oracle::MaterializedAccess* shared_access() { return access_; }

 protected:
  static void SetUpTestSuite() {
    instance_ = new knapsack::Instance(
        knapsack::make_family(knapsack::Family::kNeedle, 2'000, 17));
    access_ = new oracle::MaterializedAccess(*instance_);
    core::LcaKpConfig config;
    config.eps = 0.2;
    config.seed = 0x5E;
    config.quantile_samples = 20'000;
    lca_ = new core::LcaKp(*access_, config);
  }
  static void TearDownTestSuite() {
    delete lca_;
    delete access_;
    delete instance_;
    lca_ = nullptr;
    access_ = nullptr;
    instance_ = nullptr;
  }

  static EngineConfig fast_config() {
    EngineConfig config;
    config.workers = 3;
    config.queue_capacity = 4'096;
    config.batcher.max_batch_size = 16;
    config.batcher.max_linger = 100us;
    config.cache.capacity = 1'024;
    config.cache.shards = 4;
    return config;
  }

  static const knapsack::Instance* instance_;
  static const oracle::MaterializedAccess* access_;
  static const core::LcaKp* lca_;
};

const knapsack::Instance* EngineTest::instance_ = nullptr;
const oracle::MaterializedAccess* EngineTest::access_ = nullptr;
const core::LcaKp* EngineTest::lca_ = nullptr;

TEST_F(EngineTest, AnswersMatchDirectEvaluation) {
  metrics::Registry registry;
  ServeEngine engine(*lca_, fast_config(), registry);
  std::vector<std::future<Response>> futures;
  for (std::size_t item = 0; item < 300; ++item) {
    futures.push_back(engine.submit(item));
  }
  for (std::size_t item = 0; item < 300; ++item) {
    const auto response = futures[item].get();
    ASSERT_EQ(response.outcome, Outcome::kOk);
    EXPECT_EQ(response.answer, lca_->answer_from(engine.run(), item))
        << "item " << item;
  }
}

TEST_F(EngineTest, HotTrafficHitsTheCacheAndBatches) {
  metrics::Registry registry;
  ServeEngine engine(*lca_, fast_config(), registry);
  constexpr std::size_t kHot = 13;
  constexpr std::size_t kRepeats = 2'000;
  std::vector<std::future<Response>> futures;
  futures.reserve(kRepeats);
  for (std::size_t q = 0; q < kRepeats; ++q) {
    futures.push_back(engine.submit(kHot));
  }
  const bool expected = lca_->answer_from(engine.run(), kHot);
  std::size_t hits = 0;
  for (auto& future : futures) {
    const auto response = future.get();
    ASSERT_EQ(response.outcome, Outcome::kOk);
    EXPECT_EQ(response.answer, expected);
    hits += response.cache_hit ? 1 : 0;
  }
  engine.drain();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, kRepeats);
  EXPECT_EQ(stats.ok, kRepeats);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(hits, 0u);
  // Batching collapses duplicate hot-key requests: strictly fewer batches
  // (and evaluations) than requests.
  EXPECT_LT(stats.batches, kRepeats);
  EXPECT_EQ(stats.batched_requests, kRepeats);
  EXPECT_EQ(registry.counter_value("serve_requests_total", {{"outcome", "ok"}}),
            kRepeats);
}

TEST_F(EngineTest, DrainLeavesNoLostRequests) {
  metrics::Registry registry;
  auto config = fast_config();
  config.batcher.max_linger = 5ms;  // leave batches open when drain hits
  ServeEngine engine(*lca_, config, registry);
  std::vector<std::future<Response>> futures;
  for (std::size_t q = 0; q < 500; ++q) {
    futures.push_back(engine.submit(q % 50));
  }
  engine.drain();
  std::size_t answered = 0;
  for (auto& future : futures) {
    // Every future must be ready after drain — no request is lost.
    ASSERT_EQ(future.wait_for(0s), std::future_status::ready);
    const auto response = future.get();
    answered += response.outcome == Outcome::kOk ? 1 : 0;
  }
  EXPECT_EQ(answered, 500u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, stats.ok + stats.overloaded +
                                 stats.deadline_exceeded + stats.degraded +
                                 stats.errors);
}

TEST_F(EngineTest, SubmitAfterDrainIsRejectedOverloaded) {
  metrics::Registry registry;
  ServeEngine engine(*lca_, fast_config(), registry);
  engine.drain();
  const auto response = engine.submit_wait(1);
  EXPECT_EQ(response.outcome, Outcome::kOverloaded);
  EXPECT_EQ(engine.stats().overloaded, 1u);
  EXPECT_EQ(
      registry.counter_value("serve_requests_total", {{"outcome", "overloaded"}}),
      1u);
}

TEST_F(EngineTest, ExpiredDeadlinesAreShed) {
  metrics::Registry registry;
  ServeEngine engine(*lca_, fast_config(), registry);
  // A zero deadline has already passed by dispatch time.
  const auto response = engine.submit(3, 0us).get();
  EXPECT_EQ(response.outcome, Outcome::kDeadlineExceeded);
  engine.drain();
  EXPECT_EQ(engine.stats().deadline_exceeded, 1u);
  EXPECT_EQ(
      registry.counter_value("serve_requests_total", {{"outcome", "deadline"}}),
      1u);
}

TEST_F(EngineTest, DefaultDeadlineAppliesToPlainSubmit) {
  metrics::Registry registry;
  auto config = fast_config();
  config.default_deadline = -1us;  // negative: expired at submission
  ServeEngine engine(*lca_, config, registry);
  const auto response = engine.submit_wait(5);
  EXPECT_EQ(response.outcome, Outcome::kDeadlineExceeded);
}

TEST_F(EngineTest, ParanoiaModeVerifiesHitsWithoutViolations) {
  metrics::Registry registry;
  auto config = fast_config();
  config.cache.paranoia_every = 1;  // recheck every hit
  ServeEngine engine(*lca_, config, registry);
  std::vector<std::future<Response>> futures;
  for (std::size_t q = 0; q < 400; ++q) {
    futures.push_back(engine.submit(q % 8));
  }
  for (auto& future : futures) {
    ASSERT_EQ(future.get().outcome, Outcome::kOk);
  }
  engine.drain();
  const auto stats = engine.stats();
  EXPECT_GT(stats.paranoia_checks, 0u);
  // Definition 2.3: re-evaluation can never disagree with the cache.
  EXPECT_EQ(stats.paranoia_violations, 0u);
  EXPECT_EQ(
      registry.counter_value("serve_cache_paranoia_violations_total"), 0u);
}

TEST_F(EngineTest, EvaluationFailureYieldsErrorOutcome) {
  metrics::Registry registry;
  ServeEngine engine(*lca_, fast_config(), registry);
  // Out-of-range item: the oracle read throws, the engine answers kError
  // instead of crashing a worker.
  const auto response = engine.submit_wait(instance_->size() + 10);
  EXPECT_EQ(response.outcome, Outcome::kError);
  // The engine stays healthy afterwards.
  EXPECT_EQ(engine.submit_wait(0).outcome, Outcome::kOk);
  engine.drain();
  EXPECT_EQ(engine.stats().errors, 1u);
  EXPECT_EQ(registry.counter_value("serve_requests_total", {{"outcome", "error"}}),
            1u);
}

/// Builds an engine whose oracle path runs through a ChaosAccess over the
/// shared storage.  The chaos layer starts disarmed so the engine's one-time
/// warm-up (Theorem 4.1) sees a healthy oracle; tests arm it afterwards.
struct ChaoticEngine {
  ChaoticEngine(fault::FaultPlan plan, const EngineConfig& engine_config,
                metrics::Registry& registry)
      : chaos(*EngineTest::shared_access(), std::move(plan), clock,
              /*armed=*/false, registry) {
    core::LcaKpConfig config;
    config.eps = 0.2;
    config.seed = 0x5E;
    config.quantile_samples = 20'000;
    lca = std::make_unique<core::LcaKp>(chaos, config);
    engine = std::make_unique<ServeEngine>(*lca, engine_config, registry);
  }

  static fault::FaultPlan dead_oracle_plan() {
    fault::FaultPhase down;
    down.label = "down";
    down.duration_us = 0;  // hold forever
    down.fail_rate = 1.0;
    return fault::FaultPlan({down}, /*seed=*/0xD0A);
  }

  util::VirtualClock clock;
  fault::ChaosAccess chaos;
  std::unique_ptr<core::LcaKp> lca;
  std::unique_ptr<ServeEngine> engine;
};

TEST_F(EngineTest, DegradedModeAnswersThroughAnOutage) {
  metrics::Registry registry;
  auto config = fast_config();
  config.degrade = true;
  ChaoticEngine chaotic(ChaoticEngine::dead_oracle_plan(), config, registry);
  auto& engine = *chaotic.engine;
  chaotic.chaos.arm();  // the oracle goes down hard after warm-up

  for (std::size_t item = 100; item < 140; ++item) {
    const auto response = engine.submit_wait(item);
    ASSERT_EQ(response.outcome, Outcome::kDegraded) << "item " << item;
    // The documented fallback rule: membership in the warm run's large-item
    // index, "no" for the small tail — still deterministic per (seed, item).
    EXPECT_EQ(response.answer, engine.run().index_large.contains(item));
  }

  // Degraded answers are never cached: once the oracle recovers, the same
  // items are re-evaluated at full LCA quality instead of served stale.
  chaotic.chaos.disarm();
  for (std::size_t item = 100; item < 140; ++item) {
    const auto response = engine.submit_wait(item);
    ASSERT_EQ(response.outcome, Outcome::kOk);
    EXPECT_EQ(response.answer, chaotic.lca->answer_from(engine.run(), item));
  }

  engine.drain();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.degraded, 40u);
  EXPECT_EQ(stats.submitted, stats.ok + stats.overloaded +
                                 stats.deadline_exceeded + stats.degraded +
                                 stats.errors);
  EXPECT_EQ(
      registry.counter_value("serve_requests_total", {{"outcome", "degraded"}}),
      40u);
}

TEST_F(EngineTest, DrainUnderPersistentOracleFailureTerminatesEveryRequest) {
  metrics::Registry registry;
  ServeEngine* engine_ptr = nullptr;
  {
    auto config = fast_config();
    config.batcher.max_linger = 5ms;  // leave batches open when drain hits
    ChaoticEngine chaotic(ChaoticEngine::dead_oracle_plan(), config, registry);
    auto& engine = *chaotic.engine;
    engine_ptr = &engine;
    chaotic.chaos.arm();

    std::vector<std::future<Response>> futures;
    futures.reserve(600);
    for (std::size_t q = 0; q < 600; ++q) {
      futures.push_back(engine.submit(q % 120));
    }
    engine.drain();  // must not hang against a dead oracle

    std::size_t errors = 0;
    for (auto& future : futures) {
      // Every in-flight request reached a terminal outcome.
      ASSERT_EQ(future.wait_for(0s), std::future_status::ready);
      errors += future.get().outcome == Outcome::kError ? 1 : 0;
    }
    EXPECT_GT(errors, 0u);  // degradation off: failures surface as kError

    const auto stats = engine.stats();
    EXPECT_EQ(stats.submitted, 600u);
    EXPECT_EQ(stats.submitted, stats.ok + stats.overloaded +
                                   stats.deadline_exceeded + stats.degraded +
                                   stats.errors);
    EXPECT_EQ(stats.degraded, 0u);
  }
  (void)engine_ptr;  // destruction above re-drains; reaching here means no hang
}

TEST_F(EngineTest, ConcurrentSubmittersStayConsistent) {
  metrics::Registry registry;
  ServeEngine engine(*lca_, fast_config(), registry);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1'000;
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::pair<std::size_t, Response>>> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&engine, &results, t] {
      results[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        const auto item = static_cast<std::size_t>((t * 37 + i) % 200);
        results[t].emplace_back(item, engine.submit_wait(item));
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  engine.drain();
  for (const auto& per_thread : results) {
    for (const auto& [item, response] : per_thread) {
      ASSERT_EQ(response.outcome, Outcome::kOk);
      EXPECT_EQ(response.answer, lca_->answer_from(engine.run(), item));
    }
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.ok, stats.submitted);
}

}  // namespace
}  // namespace lcaknap::serve
