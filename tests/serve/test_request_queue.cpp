#include "serve/request_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

namespace lcaknap::serve {
namespace {

using namespace std::chrono_literals;

Request make_request(std::size_t item) {
  Request r;
  r.item = item;
  r.enqueued_at = Clock::now();
  return r;
}

TEST(RequestQueue, RejectsZeroCapacity) {
  EXPECT_THROW(RequestQueue(0), std::invalid_argument);
}

TEST(RequestQueue, BoundedAdmission) {
  RequestQueue queue(2);
  EXPECT_TRUE(queue.try_push(make_request(0)));
  EXPECT_TRUE(queue.try_push(make_request(1)));
  // Full: admission control refuses, the caller keeps the request.
  Request overflow = make_request(2);
  EXPECT_FALSE(queue.try_push(std::move(overflow)));
  EXPECT_EQ(queue.depth(), 2u);
  // The rejected request is untouched and still completable.
  auto future = overflow.promise.get_future();
  overflow.promise.set_value(Response{Outcome::kOverloaded, false, false});
  EXPECT_EQ(future.get().outcome, Outcome::kOverloaded);
}

TEST(RequestQueue, PopsInFifoOrder) {
  RequestQueue queue(8);
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.try_push(make_request(i)));
  }
  for (std::size_t i = 0; i < 5; ++i) {
    Request out;
    ASSERT_TRUE(queue.pop_for(out, 1ms));
    EXPECT_EQ(out.item, i);
  }
  Request out;
  EXPECT_FALSE(queue.pop_for(out, 1ms));  // empty: times out
}

TEST(RequestQueue, PopAllDrainsTheBacklogInOrder) {
  RequestQueue queue(8);
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.try_push(make_request(i)));
  }
  std::deque<Request> backlog;
  backlog.push_back(make_request(99));  // pop_all appends after existing work
  EXPECT_EQ(queue.pop_all(backlog), 5u);
  EXPECT_EQ(queue.depth(), 0u);
  ASSERT_EQ(backlog.size(), 6u);
  EXPECT_EQ(backlog[0].item, 99u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(backlog[i + 1].item, i);
  // Draining an empty queue moves nothing and frees capacity for new pushes.
  EXPECT_EQ(queue.pop_all(backlog), 0u);
  EXPECT_TRUE(queue.try_push(make_request(6)));
}

TEST(RequestQueue, CloseRejectsPushesButDrains) {
  RequestQueue queue(8);
  ASSERT_TRUE(queue.try_push(make_request(7)));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.try_push(make_request(8)));
  // Admitted work is still poppable after close — nothing admitted is lost.
  Request out;
  ASSERT_TRUE(queue.pop_for(out, 1ms));
  EXPECT_EQ(out.item, 7u);
  EXPECT_FALSE(queue.pop_for(out, 1ms));  // closed and empty: immediate false
}

TEST(RequestQueue, CloseWakesBlockedConsumers) {
  RequestQueue queue(4);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    Request out;
    // Long wait; close() must cut it short.
    (void)queue.pop_for(out, std::chrono::microseconds(5'000'000));
    woke.store(true);
  });
  std::this_thread::sleep_for(10ms);
  queue.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

TEST(RequestQueue, ConcurrentProducersConserveRequests) {
  RequestQueue queue(1'000'000);  // large enough that nothing is rejected
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&queue, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(queue.try_push(make_request(static_cast<std::size_t>(t))));
      }
    });
  }
  std::atomic<int> popped{0};
  std::vector<std::thread> consumers;
  for (int t = 0; t < 2; ++t) {
    consumers.emplace_back([&] {
      Request out;
      while (queue.pop_for(out, 1ms)) popped.fetch_add(1);
    });
  }
  for (auto& p : producers) p.join();
  queue.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(popped.load(), kThreads * kPerThread);
  EXPECT_EQ(queue.depth(), 0u);
}

}  // namespace
}  // namespace lcaknap::serve
