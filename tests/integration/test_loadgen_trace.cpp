// Drives the lcaknap_loadgen binary end-to-end through std::system against
// an in-process server: record a run to a trace file, validate the artifact,
// replay it, and check wire conservation both ways.  The binary path is
// injected by CMake as LCAKNAP_LOADGEN_PATH.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "net/server.h"
#include "net/session.h"
#include "oracle/access.h"
#include "store/state_store.h"
#include "util/request_trace.h"

namespace lcaknap {
namespace {

#ifndef LCAKNAP_LOADGEN_PATH
#error "LCAKNAP_LOADGEN_PATH must be defined by the build"
#endif

const std::string kLoadgen = LCAKNAP_LOADGEN_PATH;

struct CommandResult {
  int exit_code;
  std::string output;
};

CommandResult run_loadgen(const std::string& args) {
  const std::string out_file = ::testing::TempDir() + "loadgen_out.txt";
  const std::string command =
      kLoadgen + " " + args + " > " + out_file + " 2>&1";
  const int status = std::system(command.c_str());
  std::ifstream in(out_file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return {WEXITSTATUS(status), buffer.str()};
}

/// One warm single-tenant serving stack on an ephemeral loopback port.
class LoadgenTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_ = std::make_unique<knapsack::Instance>(
        knapsack::make_family(knapsack::Family::kNeedle, 1'000, 17));
    access_ = std::make_unique<oracle::MaterializedAccess>(*instance_);
    core::LcaKpConfig config;
    config.eps = 0.2;
    config.seed = 0x5E;
    config.quantile_samples = 20'000;
    lca_ = std::make_unique<core::LcaKp>(*access_, config);

    store_ = std::make_unique<store::StateStore>(
        store::StateStoreConfig{.capacity = 4}, registry_);
    router_ = std::make_unique<net::TenantRouter>(*store_, registry_);
    net::TenantConfig tenant;
    tenant.lca = lca_.get();
    tenant.engine.workers = 2;
    tenant.engine.queue_capacity = 4'096;
    tenant.engine.batcher.max_batch_size = 16;
    tenant.engine.batcher.max_linger = std::chrono::microseconds(100);
    tenant.engine.cache.capacity = 1'024;
    tenant.engine.cache.shards = 4;
    router_->register_tenant("default", tenant);
    router_->warm_all();
    server_ = std::make_unique<net::Server>(*router_, net::ServerConfig{},
                                            registry_);
  }
  void TearDown() override {
    if (server_) server_->stop();
    if (router_) router_->drain();
  }

  std::string port_arg() const {
    return "--port " + std::to_string(server_->port());
  }

  metrics::Registry registry_;
  std::unique_ptr<knapsack::Instance> instance_;
  std::unique_ptr<oracle::MaterializedAccess> access_;
  std::unique_ptr<core::LcaKp> lca_;
  std::unique_ptr<store::StateStore> store_;
  std::unique_ptr<net::TenantRouter> router_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(LoadgenTraceTest, RecordThenReplayRoundTrips) {
  const std::string trace_path = ::testing::TempDir() + "loadgen_rt.trace";

  // Phase 1: record a closed-loop run.  Every sent frame lands in the trace.
  const auto record = run_loadgen(port_arg() +
                                  " --queries 200 --connections 2 --window 4"
                                  " --items-max 500 --seed 9 --json"
                                  " --trace-record " + trace_path);
  ASSERT_EQ(record.exit_code, 0) << record.output;
  EXPECT_NE(record.output.find("\"sent\":200"), std::string::npos)
      << record.output;
  EXPECT_NE(record.output.find("\"conserved\":true"), std::string::npos);

  // The artifact is a valid trace: the strict parser enforces the header,
  // the tenant alphabet, and non-decreasing timestamps.
  const auto records = util::load_trace_file(trace_path);
  ASSERT_EQ(records.size(), 200u);
  for (const auto& record_entry : records) {
    EXPECT_LT(record_entry.item, 500u);
    EXPECT_EQ(record_entry.tenant, "default");
  }

  // Phase 2: replay the trace.  Each record is sent exactly once.
  const auto replay =
      run_loadgen(port_arg() + " --json --trace-replay " + trace_path);
  ASSERT_EQ(replay.exit_code, 0) << replay.output;
  EXPECT_NE(replay.output.find("\"sent\":200"), std::string::npos)
      << replay.output;
  EXPECT_NE(replay.output.find("\"conserved\":true"), std::string::npos);

  // Phase 3: --queries caps the replay prefix.
  const auto capped = run_loadgen(port_arg() + " --queries 50 --json"
                                  " --trace-replay " + trace_path);
  ASSERT_EQ(capped.exit_code, 0) << capped.output;
  EXPECT_NE(capped.output.find("\"sent\":50"), std::string::npos)
      << capped.output;

  // The server saw every frame of all three runs.
  EXPECT_EQ(server_->stats().frames_in, 200u + 200u + 50u);
  std::remove(trace_path.c_str());
}

TEST_F(LoadgenTraceTest, ReplayUsageErrors) {
  // Replaying a file that does not exist is a runtime failure (exit 2), not
  // a crash or a silent empty run.
  const auto missing = run_loadgen(
      port_arg() + " --trace-replay /nonexistent/lcaknap.trace");
  EXPECT_EQ(missing.exit_code, 2) << missing.output;

  // An empty (but well-formed) trace cannot drive a run.
  const std::string empty_path = ::testing::TempDir() + "loadgen_empty.trace";
  util::save_trace_file({}, empty_path);
  const auto empty = run_loadgen(port_arg() + " --trace-replay " + empty_path);
  EXPECT_EQ(empty.exit_code, 1) << empty.output;
  std::remove(empty_path.c_str());
}

TEST_F(LoadgenTraceTest, DiurnalShapeModulatesTheOpenLoopAndConserves) {
  // The diurnal shape is an offered-rate modulation, so it only exists in
  // open-loop mode; accounting must conserve exactly as with --shape flat.
  const auto run = run_loadgen(port_arg() +
                               " --mode open --shape diurnal --period-ms 200"
                               " --qps 2000 --duration-ms 600 --connections 2"
                               " --items-max 500 --seed 11 --json");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("\"shape\":\"diurnal\""), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"conserved\":true"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"ok_by_epoch\""), std::string::npos)
      << run.output;
  // Static instance: every answer attributes epoch 0.
  EXPECT_NE(run.output.find("\"ok_by_epoch\":{\"0\":"), std::string::npos)
      << run.output;

  // The shape flag is rejected outside open-loop mode: closed loops have no
  // offered rate to modulate.
  const auto closed = run_loadgen(port_arg() +
                                  " --queries 10 --shape diurnal --json");
  EXPECT_NE(closed.exit_code, 0);
}

}  // namespace
}  // namespace lcaknap
