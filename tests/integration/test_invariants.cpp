// Cross-module invariants swept over families and seeds: conservation laws
// connecting the oracle accounting, the pipeline, the decision rule, and the
// offline solvers.

#include <gtest/gtest.h>

#include <sstream>

#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "knapsack/generators.h"
#include "knapsack/solvers/greedy.h"
#include "knapsack/solvers/solve.h"
#include "oracle/access.h"

namespace lcaknap {
namespace {

core::LcaKpConfig small_config(double eps = 0.1) {
  core::LcaKpConfig config;
  config.eps = eps;
  config.seed = 0x1417;
  config.quantile_samples = 30'000;
  return config;
}

TEST(Invariants, RunSerializationRoundTripsTheDecisionRule) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 51);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, small_config());
  util::Xoshiro256 tape(52);
  const auto run = lca.run_pipeline(tape);

  std::stringstream ss;
  core::save_run(run, ss);
  const auto loaded = core::load_run(ss);

  EXPECT_EQ(loaded.index_large, run.index_large);
  EXPECT_EQ(loaded.e_small_grid, run.e_small_grid);
  EXPECT_EQ(loaded.singleton, run.singleton);
  EXPECT_EQ(loaded.thresholds_grid, run.thresholds_grid);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    ASSERT_EQ(lca.decide(loaded, i, inst.norm_profit(i), inst.efficiency(i)),
              lca.decide(run, i, inst.norm_profit(i), inst.efficiency(i)))
        << "item " << i;
  }
}

TEST(Invariants, LoadRunRejectsGarbage) {
  std::stringstream bad("not-a-run 1\n");
  EXPECT_THROW(core::load_run(bad), std::runtime_error);
  std::stringstream truncated("lcakp-run 1\n5 1 2\n");
  EXPECT_THROW(core::load_run(truncated), std::runtime_error);
  std::stringstream wrong_version("lcakp-run 2\n0\n-1 0 0\n0\n");
  EXPECT_THROW(core::load_run(wrong_version), std::runtime_error);
}

TEST(Invariants, PipelineSampleAccountingIsExact) {
  // When the EPS branch runs, samples_used == large budget + quantile budget
  // (the line-7 filter discards items but the draws are already spent).
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 53);
  const oracle::MaterializedAccess access(inst);
  const auto config = small_config();
  const core::LcaKp lca(access, config);
  util::Xoshiro256 tape(54);
  const auto run = lca.run_pipeline(tape);
  ASSERT_GT(run.t, 0);  // EPS branch taken on this family at eps = 0.1
  EXPECT_EQ(run.samples_used,
            lca.params().large_samples + lca.params().quantile_samples);
}

TEST(Invariants, LargeDominatedInstanceSkipsTheEpsBranch) {
  // One item holds ~95% of the profit: 1 - p(L) < eps, so Algorithm 2's
  // line-4 guard skips quantile sampling entirely.
  std::vector<knapsack::Item> items{{9'500, 10}};
  for (int f = 0; f < 100; ++f) items.push_back({5, 1});
  const knapsack::Instance inst(std::move(items), 200);
  const oracle::MaterializedAccess access(inst);
  const auto config = small_config(0.2);
  const core::LcaKp lca(access, config);
  util::Xoshiro256 tape(55);
  const auto run = lca.run_pipeline(tape);
  EXPECT_EQ(run.t, 0);
  EXPECT_TRUE(run.thresholds_grid.empty());
  EXPECT_EQ(run.samples_used, lca.params().large_samples);
  // The giant must be served.
  EXPECT_TRUE(lca.decide(run, 0, inst.norm_profit(0), inst.efficiency(0)));
}

TEST(Invariants, ESmallIsAlwaysOneOfTheEpsThresholds) {
  for (std::uint64_t seed = 60; seed < 66; ++seed) {
    const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 8'000, seed);
    const oracle::MaterializedAccess access(inst);
    const core::LcaKp lca(access, small_config());
    util::Xoshiro256 tape(seed * 3);
    const auto run = lca.run_pipeline(tape);
    if (run.e_small_grid < 0) continue;
    EXPECT_NE(std::find(run.thresholds_grid.begin(), run.thresholds_grid.end(),
                        run.e_small_grid),
              run.thresholds_grid.end());
  }
}

TEST(Invariants, MappingGreedyEqualsPerItemAnswers) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 3'000, 67);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, small_config());
  util::Xoshiro256 tape(68);
  const auto run = lca.run_pipeline(tape);
  const auto selection = core::mapping_greedy(inst, lca, run);
  std::vector<bool> in_solution(inst.size(), false);
  for (const auto i : selection) in_solution[i] = true;
  for (std::size_t i = 0; i < inst.size(); ++i) {
    ASSERT_EQ(lca.answer_from(run, i), in_solution[i]) << "item " << i;
  }
}

TEST(Invariants, SolverSandwichAcrossFamilies) {
  // greedy_half <= exact <= fractional, exactly, on every family.
  for (const auto family : knapsack::all_families()) {
    const auto inst = knapsack::make_family(family, 120, 69);
    const auto greedy = knapsack::greedy_half(inst).solution.value;
    const auto exact = knapsack::solve_exact(inst).solution.value;
    const double frac = knapsack::fractional_opt(inst);
    EXPECT_LE(greedy, exact) << knapsack::family_name(family);
    EXPECT_LE(static_cast<double>(exact), frac + 1e-6)
        << knapsack::family_name(family);
    EXPECT_GE(2 * greedy, exact) << knapsack::family_name(family);
  }
}

TEST(Invariants, NormalizedProfileSumsToOne) {
  for (const auto family : knapsack::all_families()) {
    const auto inst = knapsack::make_family(family, 500, 70);
    double profit_sum = 0.0, weight_sum = 0.0;
    for (std::size_t i = 0; i < inst.size(); ++i) {
      profit_sum += inst.norm_profit(i);
      weight_sum += inst.norm_weight(i);
    }
    EXPECT_NEAR(profit_sum, 1.0, 1e-9) << knapsack::family_name(family);
    EXPECT_NEAR(weight_sum, 1.0, 1e-9) << knapsack::family_name(family);
  }
}

TEST(Invariants, DecisionRuleNeverAdmitsUnknownLargeItems) {
  // A large item not captured by sampling must be answered "no" (the rule
  // only knows Index_large); this is what makes missed large items a
  // *consistency* failure rather than a feasibility one.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 71);
  const oracle::MaterializedAccess access(inst);
  auto config = small_config();
  config.large_samples = 1;  // starve the coupon collector
  const core::LcaKp lca(access, config);
  util::Xoshiro256 tape(72);
  const auto run = lca.run_pipeline(tape);
  const double eps2 = config.eps * config.eps;
  for (std::size_t i = 0; i < inst.size(); ++i) {
    if (inst.norm_profit(i) > eps2 && !run.index_large.contains(i)) {
      EXPECT_FALSE(lca.decide(run, i, inst.norm_profit(i), inst.efficiency(i)));
    }
  }
}

TEST(Invariants, AnswerSingleEqualsPipelinePlusAnswerFrom) {
  // The memoryless answer() is literally pipeline + answer_from with the
  // same tape state.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 2'000, 73);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, small_config());
  util::Xoshiro256 tape_a(74), tape_b(74);
  const bool direct = lca.answer(42, tape_a);
  const auto run = lca.run_pipeline(tape_b);
  EXPECT_EQ(direct, lca.answer_from(run, 42));
}

}  // namespace
}  // namespace lcaknap
