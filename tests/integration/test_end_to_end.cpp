#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/consistency.h"
#include "core/full_read_lca.h"
#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "iky/value_approx.h"
#include "knapsack/generators.h"
#include "knapsack/solvers/solve.h"
#include "oracle/access.h"
#include "oracle/flaky.h"
#include "util/thread_pool.h"

namespace lcaknap {
namespace {

core::LcaKpConfig serving_config() {
  core::LcaKpConfig config;
  config.eps = 0.25;
  config.seed = 0xFEED5EED;
  config.quantile_samples = 50'000;
  return config;
}

TEST(EndToEnd, DistributedServingScenario) {
  // The PODC story: N replica threads, one shared seed, a common query
  // stream; every replica is a fully independent LCA run.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 20'000, 71);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, serving_config());

  constexpr std::size_t kReplicas = 6;
  std::vector<core::LcaKpRun> runs(kReplicas);
  util::ThreadPool pool(kReplicas);
  pool.parallel_for(kReplicas, [&](std::size_t r) {
    util::Xoshiro256 tape(1000 + r);
    runs[r] = lca.run_pipeline(tape);
  });

  // Every replica's solution is feasible and carries comparable value.
  double min_value = 1.0, max_value = 0.0;
  for (const auto& run : runs) {
    const auto eval = core::evaluate_run(inst, lca, run);
    ASSERT_TRUE(eval.feasible);
    min_value = std::min(min_value, eval.norm_value);
    max_value = std::max(max_value, eval.norm_value);
  }
  EXPECT_LT(max_value - min_value, 0.2);

  // A common query stream answered by round-robin replicas is dominated by
  // agreement: count disagreements against replica 0.
  std::size_t disagreements = 0;
  constexpr std::size_t kQueries = 500;
  for (std::size_t qi = 0; qi < kQueries; ++qi) {
    const std::size_t item = (qi * 37) % inst.size();
    const bool reference =
        lca.decide(runs[0], item, inst.norm_profit(item), inst.efficiency(item));
    const auto& run = runs[qi % kReplicas];
    if (lca.decide(run, item, inst.norm_profit(item), inst.efficiency(item)) !=
        reference) {
      ++disagreements;
    }
  }
  EXPECT_LT(static_cast<double>(disagreements) / kQueries, 0.25);
}

TEST(EndToEnd, LcaBeatsFullReadOnQueryCost) {
  // E4's headline in miniature: per-answer cost of LCA-KP is flat in n while
  // the full-read baseline pays n.
  const auto small = knapsack::make_family(knapsack::Family::kNeedle, 2'000, 72);
  const auto large = knapsack::make_family(knapsack::Family::kNeedle, 50'000, 72);

  auto lca_cost = [&](const knapsack::Instance& inst) {
    const oracle::MaterializedAccess access(inst);
    core::LcaKpConfig config = serving_config();
    config.quantile_samples = 20'000;
    const core::LcaKp lca(access, config);
    util::Xoshiro256 rng(73);
    access.reset_counters();
    (void)lca.answer(0, rng);
    return access.access_count();
  };
  auto full_cost = [&](const knapsack::Instance& inst) {
    const oracle::MaterializedAccess access(inst);
    const core::FullReadLca lca(access);
    util::Xoshiro256 rng(74);
    access.reset_counters();
    (void)lca.answer(0, rng);
    return access.access_count();
  };

  EXPECT_EQ(lca_cost(small), lca_cost(large));       // flat in n
  EXPECT_EQ(full_cost(large), 50'000u + 0u);         // linear in n
  EXPECT_LT(lca_cost(large), full_cost(large));      // crossover long passed
}

TEST(EndToEnd, ValueEstimateConsistentWithServedSolution) {
  // [IKY12] value estimation and LCA-KP's served solution describe the same
  // instance: the served value must be within the combined error bands.
  const double eps = 0.25;
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 10'000, 75);
  const oracle::MaterializedAccess access(inst);

  iky::ValueApproxConfig vconfig;
  vconfig.eps = eps;
  util::Xoshiro256 vrng(76);
  const auto value_estimate = iky::approximate_opt_value(access, vconfig, vrng);

  const core::LcaKp lca(access, serving_config());
  util::Xoshiro256 srng(77);
  const auto run = lca.run_pipeline(srng);
  const auto eval = core::evaluate_run(inst, lca, run);

  // served >= estimate/2 - O(eps): both relate to OPT within 6 eps.
  EXPECT_GE(eval.norm_value, value_estimate.estimate / 2.0 - 6.0 * eps - 0.05);
}

TEST(EndToEnd, FlakyDistributedOracleWithRetries) {
  // Full path through the failure-injection stack: flaky remote oracle,
  // client retries, consistent serving on top.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 78);
  const oracle::MaterializedAccess inner(inst);
  const oracle::FlakyAccess flaky(inner, 0.15, 79);
  const oracle::RetryingAccess retrying(flaky, 64);

  const core::LcaKp lca(retrying, serving_config());
  util::Xoshiro256 a(80), b(81);
  const auto run1 = lca.run_pipeline(a);
  const auto run2 = lca.run_pipeline(b);
  EXPECT_TRUE(core::evaluate_run(inst, lca, run1).feasible);
  EXPECT_TRUE(core::evaluate_run(inst, lca, run2).feasible);
  EXPECT_GT(retrying.retries_performed(), 0u);

  std::size_t agree = 0;
  constexpr std::size_t kQueries = 300;
  for (std::size_t i = 0; i < kQueries; ++i) {
    const std::size_t item = (i * 13) % inst.size();
    const bool x =
        lca.decide(run1, item, inst.norm_profit(item), inst.efficiency(item));
    const bool y =
        lca.decide(run2, item, inst.norm_profit(item), inst.efficiency(item));
    if (x == y) ++agree;
  }
  EXPECT_GE(static_cast<double>(agree) / kQueries, 0.75);
}

TEST(EndToEnd, SavedInstanceServesIdentically) {
  // Persistence round trip: an instance saved and reloaded elsewhere serves
  // the same solution under the same seed and tape.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 3'000, 82);
  std::stringstream ss;
  inst.save(ss);
  const auto reloaded = knapsack::Instance::load(ss);

  const oracle::MaterializedAccess access1(inst);
  const oracle::MaterializedAccess access2(reloaded);
  const core::LcaKp lca1(access1, serving_config());
  const core::LcaKp lca2(access2, serving_config());
  util::Xoshiro256 tape1(83), tape2(83);
  const auto run1 = lca1.run_pipeline(tape1);
  const auto run2 = lca2.run_pipeline(tape2);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(lca1.decide(run1, i, inst.norm_profit(i), inst.efficiency(i)),
              lca2.decide(run2, i, reloaded.norm_profit(i), reloaded.efficiency(i)));
  }
}

}  // namespace
}  // namespace lcaknap
