// Drives the lcaknap_cli binary end-to-end through std::system.  The binary
// path is injected by CMake as LCAKNAP_CLI_PATH.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/wire.h"

namespace {

#ifndef LCAKNAP_CLI_PATH
#error "LCAKNAP_CLI_PATH must be defined by the build"
#endif

const std::string kCli = LCAKNAP_CLI_PATH;

struct CommandResult {
  int exit_code;
  std::string output;
};

CommandResult run(const std::string& args) {
  const std::string out_file = ::testing::TempDir() + "cli_out.txt";
  const std::string command = kCli + " " + args + " > " + out_file + " 2>&1";
  const int status = std::system(command.c_str());
  std::ifstream in(out_file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return {WEXITSTATUS(status), buffer.str()};
}

std::string temp_instance() { return ::testing::TempDir() + "cli_instance.txt"; }

TEST(Cli, GenerateSolveServeEvalPipeline) {
  const std::string path = temp_instance();
  const auto gen = run("generate --family needle --n 3000 --seed 5 --out " + path);
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  EXPECT_NE(gen.output.find("wrote 3000 items"), std::string::npos);

  const auto solve = run("solve --in " + path + " --method greedy");
  ASSERT_EQ(solve.exit_code, 0) << solve.output;
  EXPECT_NE(solve.output.find("1/2-approximation"), std::string::npos);

  const auto serve = run("serve --in " + path + " --eps 0.15 --items 0,1,2");
  ASSERT_EQ(serve.exit_code, 0) << serve.output;
  EXPECT_NE(serve.output.find("answered 3 queries"), std::string::npos);

  const auto eval = run("eval --in " + path + " --replicas 3 --queries 50 --eps 0.15");
  ASSERT_EQ(eval.exit_code, 0) << eval.output;
  EXPECT_NE(eval.output.find("pairwise agreement"), std::string::npos);
  EXPECT_NE(eval.output.find("3/3"), std::string::npos);  // feasible runs
}

TEST(Cli, FptasSolveWorks) {
  const std::string path = temp_instance();
  ASSERT_EQ(run("generate --family uncorrelated --n 120 --out " + path).exit_code, 0);
  const auto solve = run("solve --in " + path + " --method fptas --eps 0.2");
  ASSERT_EQ(solve.exit_code, 0) << solve.output;
  EXPECT_NE(solve.output.find("(1 - 0.20)"), std::string::npos);  // guarantee note
}

TEST(Cli, UsageErrorsExitOne) {
  EXPECT_EQ(run("").exit_code, 1);
  EXPECT_EQ(run("frobnicate").exit_code, 1);
  EXPECT_EQ(run("generate --n 10").exit_code, 1);                   // missing family
  EXPECT_EQ(run("generate --family bogus --n 10").exit_code, 1);    // unknown family
  const std::string path = temp_instance();
  ASSERT_EQ(run("generate --family needle --n 100 --out " + path).exit_code, 0);
  EXPECT_EQ(run("serve --in " + path).exit_code, 1);                // missing --items
  EXPECT_EQ(run("solve --in " + path + " --method warp").exit_code, 1);
}

TEST(Cli, RuntimeErrorsExitTwo) {
  EXPECT_EQ(run("solve --in /nonexistent/file --method greedy").exit_code, 2);
}

TEST(Cli, ServeAllSummarizes) {
  const std::string path = temp_instance();
  ASSERT_EQ(run("generate --family needle --n 800 --out " + path).exit_code, 0);
  const auto serve = run("serve --in " + path + " --eps 0.2 --all");
  ASSERT_EQ(serve.exit_code, 0) << serve.output;
  EXPECT_NE(serve.output.find("answered 800 queries"), std::string::npos);
}

TEST(Cli, HelpListsEveryCommandAndFlag) {
  // Help audit: every command and flag the CLI has grown (serving engine,
  // chaos/resilience, metrics, snapshots) must appear in the usage text, so
  // an operator can discover it without reading the source.  Update this
  // pinned list whenever a flag is added — that is the point of the test.
  const auto help = run("");  // no command prints usage (exit 1)
  ASSERT_EQ(help.exit_code, 1);
  const char* const expected[] = {
      "generate", "solve", "serve", "eval", "serve-engine",
      "snapshot <save|load|verify>", "verify-log",
      // generate / solve / serve / eval
      "--family", "--n", "--seed", "--out", "--in", "--method", "--eps",
      "--items", "--all", "--flaky", "--retries", "--replicas", "--queries",
      // serve-engine workload + engine
      "--shape", "--zipf-s", "--hot-frac", "--hot-items", "--workers",
      "--queue-cap", "--batch-max", "--linger-us", "--cache-cap",
      "--cache-shards", "--paranoia-every", "--deadline-us",
      // resilience stack
      "--chaos-plan", "--chaos-seed", "--retry-attempts", "--backoff-us",
      "--backoff-max-us", "--retry-budget", "--breaker", "--degrade",
      // warm-up + persistence
      "--warmup-threads", "--tape", "--snap", "--snapshot-dir",
      "--instance-id",
      // certification
      "--certify", "--cert-dir", "--log", "--sample",
      // network front-end
      "--listen", "--tenants", "--max-conns", "--conn-inflight",
      "--tenant-inflight", "--store-capacity", "--chaos-tenant",
      "--allow-shutdown", "--replica-id",
      // dynamic instances
      "--updates", "--update-interval-ms", "--verify-epochs",
      // global
      "--metrics",
  };
  for (const char* const needle : expected) {
    EXPECT_NE(help.output.find(needle), std::string::npos)
        << "usage text is missing: " << needle;
  }
}

TEST(Cli, SnapshotSaveLoadVerifyRoundTrip) {
  const std::string path = temp_instance();
  const std::string snap = ::testing::TempDir() + "cli_state.snap";
  std::remove(snap.c_str());
  ASSERT_EQ(run("generate --family uncorrelated --n 2000 --seed 4 --out " +
                path).exit_code, 0);

  const auto save = run("snapshot save --in " + path +
                        " --eps 0.2 --seed 9 --snap " + snap);
  ASSERT_EQ(save.exit_code, 0) << save.output;
  EXPECT_NE(save.output.find("digest"), std::string::npos);

  const auto load = run("snapshot load --in " + path +
                        " --eps 0.2 --seed 9 --snap " + snap);
  ASSERT_EQ(load.exit_code, 0) << load.output;
  EXPECT_NE(load.output.find("verified"), std::string::npos);

  const auto verify = run("snapshot verify --in " + path +
                          " --eps 0.2 --seed 9 --snap " + snap);
  ASSERT_EQ(verify.exit_code, 0) << verify.output;
  EXPECT_NE(verify.output.find("MATCH"), std::string::npos);

  // A different warm-up tape is a different serving context: the fingerprint
  // check refuses the snapshot and the command fails loudly.
  const auto mismatch = run("snapshot verify --in " + path +
                            " --eps 0.2 --seed 9 --tape 99 --snap " + snap);
  EXPECT_EQ(mismatch.exit_code, 2) << mismatch.output;
  EXPECT_NE(mismatch.output.find("mismatch"), std::string::npos);

  // Missing action / unknown action are usage errors.
  EXPECT_EQ(run("snapshot --in " + path).exit_code, 1);
  EXPECT_EQ(run("snapshot frobnicate --in " + path + " --snap " + snap)
                .exit_code, 1);
}

TEST(Cli, CertifyThenVerifyLogRoundTrip) {
  const std::string path = temp_instance();
  const std::string snap = ::testing::TempDir() + "cli_cert.snap";
  const std::string certs = ::testing::TempDir() + "cli_certs";
  const std::string context = " --in " + path + " --eps 0.2 --seed 9 --tape 3";
  std::remove(snap.c_str());
  std::system(("rm -rf " + certs).c_str());
  ASSERT_EQ(run("generate --family uncorrelated --n 2000 --seed 4 --out " +
                path).exit_code, 0);

  // The certified-tenant walkthrough from docs/PERSISTENCE.md: snapshot the
  // warm state, serve with certification on, audit the log offline.
  ASSERT_EQ(run("snapshot save" + context + " --snap " + snap).exit_code, 0);
  const auto serve = run("serve-engine" + context +
                         " --queries 2000 --workers 2 --certify --cert-dir " +
                         certs);
  ASSERT_EQ(serve.exit_code, 0) << serve.output;
  EXPECT_NE(serve.output.find("certificates written"), std::string::npos);

  const auto verify = run("verify-log --log " + certs + " --snap " + snap);
  ASSERT_EQ(verify.exit_code, 0) << verify.output;
  EXPECT_NE(verify.output.find("CLEAN"), std::string::npos);
  EXPECT_NE(verify.output.find("oracle queries"), std::string::npos);

  const auto sampled = run("verify-log --log " + certs + " --snap " + snap +
                           " --sample 7");
  ASSERT_EQ(sampled.exit_code, 0) << sampled.output;

  // Flip one byte in the middle of the sealed segment: the audit must turn
  // REJECTED with exit 2 and a typed reason.
  std::string segment;
  for (const auto& entry : std::filesystem::directory_iterator(certs)) {
    if (entry.path().extension() == ".seg") segment = entry.path().string();
  }
  ASSERT_FALSE(segment.empty());
  {
    std::fstream file(segment,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(200);
    const char corrupted = '\x5A';
    file.write(&corrupted, 1);
  }
  const auto rejected = run("verify-log --log " + certs + " --snap " + snap);
  EXPECT_EQ(rejected.exit_code, 2) << rejected.output;
  EXPECT_NE(rejected.output.find("REJECTED"), std::string::npos);
  EXPECT_NE(rejected.output.find("corrupt"), std::string::npos);

  // Flag discipline: --cert-dir without --certify is a usage error, as is
  // verify-log without its inputs.
  EXPECT_EQ(run("serve-engine" + context + " --queries 10 --cert-dir " +
                certs).exit_code, 1);
  EXPECT_EQ(run("verify-log --snap " + snap).exit_code, 1);
  EXPECT_EQ(run("verify-log --log " + certs).exit_code, 1);
}

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// One `serve --listen` child process: started in the background through the
/// shell, its ephemeral port parsed from the announced "listening on" line.
class ServerProcess {
 public:
  explicit ServerProcess(const std::string& flags, const std::string& tag) {
    start(flags, tag);  // gtest fatal assertions cannot live in a ctor body
  }

 private:
  void start(const std::string& flags, const std::string& tag) {
    log_ = ::testing::TempDir() + "cli_server_" + tag + ".log";
    std::remove(log_.c_str());
    const std::string command =
        kCli + " serve " + flags + " > " + log_ + " 2>&1 &";
    ASSERT_EQ(std::system(command.c_str()), 0);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    const std::string needle = "listening on 127.0.0.1:";
    while (std::chrono::steady_clock::now() < deadline) {
      const std::string log = read_all(log_);
      const auto at = log.find(needle);
      if (at != std::string::npos && log.find('\n', at) != std::string::npos) {
        port_ = static_cast<std::uint16_t>(
            std::stoul(log.substr(at + needle.size())));
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    FAIL() << "server never announced its port; log:\n" << read_all(log_);
  }

 public:
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Waits for the post-shutdown summary (flushed at process exit).
  std::string final_output() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
      const std::string log = read_all(log_);
      if (log.find("wire conservation") != std::string::npos) return log;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return read_all(log_);
  }

 private:
  std::string log_;
  std::uint16_t port_ = 0;
};

TEST(Cli, TwoServerProcessesAnswerByteIdentically) {
  // Lemma 4.9 at wire granularity: two independent processes, warmed from
  // the same instance and seeds, must answer an identical serial query
  // stream with *byte-identical* response frames — the property that makes
  // replica fan-out behind a load balancer sound.
  const std::string path = temp_instance();
  ASSERT_EQ(run("generate --family uncorrelated --n 2000 --seed 4 --out " +
                path).exit_code, 0);
  const std::string flags = "--listen 0 --in " + path +
                            " --instance-id t1 --eps 0.2 --seed 9 --tape 3"
                            " --workers 2 --allow-shutdown";
  ServerProcess first(flags, "replica_a");
  ServerProcess second(flags, "replica_b");
  ASSERT_NE(first.port(), 0);
  ASSERT_NE(second.port(), 0);

  lcaknap::net::Client client_a("127.0.0.1", first.port());
  lcaknap::net::Client client_b("127.0.0.1", second.port());
  std::size_t ok = 0;
  for (std::uint64_t q = 0; q < 400; ++q) {
    lcaknap::net::RequestFrame frame;
    frame.request_id = q;
    frame.item = (q * 37) % 2'000;
    frame.tenant = "t1";
    std::string raw_a;
    std::string raw_b;
    const auto response_a = client_a.call(frame, &raw_a);
    const auto response_b = client_b.call(frame, &raw_b);
    ASSERT_EQ(raw_a, raw_b) << "replicas diverged at query " << q;
    if (response_a.status == lcaknap::net::WireStatus::kOk) ++ok;
  }
  EXPECT_GT(ok, 0u) << "the comparison must cover served answers";

  // Gated remote shutdown; both exit summaries must report conservation.
  lcaknap::net::RequestFrame shutdown;
  shutdown.flags = lcaknap::net::RequestFrame::kFlagShutdown;
  shutdown.tenant = "t1";
  EXPECT_EQ(client_a.call(shutdown).status,
            lcaknap::net::WireStatus::kShuttingDown);
  EXPECT_EQ(client_b.call(shutdown).status,
            lcaknap::net::WireStatus::kShuttingDown);
  EXPECT_NE(first.final_output().find("HOLDS"), std::string::npos);
  EXPECT_NE(second.final_output().find("HOLDS"), std::string::npos);
}

TEST(Cli, ServeListenIsolatesAChaosTenant) {
  // The multi-tenant runbook path end-to-end: tenant "noisy" runs under a
  // scripted brownout while tenant "calm" must keep serving ok answers that
  // match a clean single-tenant replica of the same instance.
  const std::string calm = ::testing::TempDir() + "cli_calm.txt";
  const std::string noisy = ::testing::TempDir() + "cli_noisy.txt";
  ASSERT_EQ(run("generate --family uncorrelated --n 1500 --seed 6 --out " +
                calm).exit_code, 0);
  ASSERT_EQ(run("generate --family needle --n 1200 --seed 7 --out " +
                noisy).exit_code, 0);
  const std::string common = " --eps 0.2 --seed 9 --tape 3 --workers 2"
                             " --allow-shutdown";
  ServerProcess reference("--listen 0 --tenants calm=" + calm + common,
                          "reference");
  ServerProcess stormy("--listen 0 --tenants calm=" + calm + ",noisy=" + noisy +
                           " --chaos-tenant noisy"
                           " --chaos-plan brownout:3600000:fail=0.3,lat=50..200" +
                           common,
                       "stormy");

  lcaknap::net::Client ref_client("127.0.0.1", reference.port());
  lcaknap::net::Client storm_client("127.0.0.1", stormy.port());
  lcaknap::net::Client noise_client("127.0.0.1", stormy.port());
  std::thread noise([&] {
    for (std::uint64_t q = 0; q < 200; ++q) {
      lcaknap::net::RequestFrame frame;
      frame.request_id = q;
      frame.item = q % 1'200;
      frame.tenant = "noisy";
      (void)noise_client.call(frame);
    }
  });
  for (std::uint64_t q = 0; q < 200; ++q) {
    lcaknap::net::RequestFrame frame;
    frame.request_id = q;
    frame.item = (q * 13) % 1'500;
    frame.tenant = "calm";
    std::string raw_ref;
    std::string raw_storm;
    const auto ref_response = ref_client.call(frame, &raw_ref);
    ASSERT_EQ(ref_response.status, lcaknap::net::WireStatus::kOk);
    (void)storm_client.call(frame, &raw_storm);
    ASSERT_EQ(raw_ref, raw_storm)
        << "chaos on tenant 'noisy' leaked into tenant 'calm' at query " << q;
  }
  noise.join();

  lcaknap::net::RequestFrame shutdown;
  shutdown.flags = lcaknap::net::RequestFrame::kFlagShutdown;
  shutdown.tenant = "calm";
  (void)ref_client.call(shutdown);
  (void)storm_client.call(shutdown);
  EXPECT_NE(stormy.final_output().find("HOLDS"), std::string::npos);
}

TEST(Cli, ServeEngineRestoresFromSnapshotDir) {
  const std::string path = temp_instance();
  const std::string dir = ::testing::TempDir() + "cli_snapdir";
  const std::string common = " --in " + path +
                             " --eps 0.2 --seed 6 --queries 500 "
                             "--workers 2 --snapshot-dir " + dir +
                             " --instance-id tenant1";
  std::remove((dir + "/tenant1.snap").c_str());
  ASSERT_EQ(run("generate --family uncorrelated --n 2000 --seed 6 --out " +
                path).exit_code, 0);

  const auto cold = run("serve-engine" + common);
  ASSERT_EQ(cold.exit_code, 0) << cold.output;
  EXPECT_NE(cold.output.find("live warm-up (persisted)"), std::string::npos);

  const auto restart = run("serve-engine" + common);
  ASSERT_EQ(restart.exit_code, 0) << restart.output;
  EXPECT_NE(restart.output.find("restored from snapshot"), std::string::npos);

  // Both processes must report the same warm-state digest: the restored
  // state is byte-identical to the one the first process warmed live.
  const auto digest_of = [](const std::string& output) {
    const auto label = output.find("warm state digest");
    const auto start = output.find_first_of("0123456789", label);
    return output.substr(start,
                         output.find_first_not_of("0123456789", start) - start);
  };
  EXPECT_EQ(digest_of(cold.output), digest_of(restart.output));
}

TEST(Cli, ServeEngineReplaysAnEpochLog) {
  const std::string path = temp_instance();
  const std::string log = ::testing::TempDir() + "cli_updates.log";
  ASSERT_EQ(run("generate --family uncorrelated --n 2000 --seed 8 --out " +
                path).exit_code, 0);
  {
    // Hand-authored log using the documented `seal auto` escape hatch: one
    // delta-eligible weight-only batch, one insert that must fall back.
    std::ofstream out(log);
    out << "# two epochs of churn\n"
        << "epoch 1\n"
        << "weight 3 5\n"
        << "weight 40 2\n"
        << "seal auto\n"
        << "epoch 2\n"
        << "insert 17 4\n"
        << "seal auto\n";
  }

  const auto replay = run("serve-engine --in " + path +
                          " --eps 0.25 --queries 2000 --workers 2"
                          " --verify-epochs --updates " + log);
  ASSERT_EQ(replay.exit_code, 0) << replay.output;
  // One delta advance, one re-warm, and the engine ends on epoch 2.
  EXPECT_NE(replay.output.find("2 (1 / 1)"), std::string::npos)
      << replay.output;
  EXPECT_NE(replay.output.find("ok answers by served epoch"),
            std::string::npos);
  const auto final_epoch = replay.output.find("final epoch");
  ASSERT_NE(final_epoch, std::string::npos);
  EXPECT_NE(replay.output.find("2", final_epoch), std::string::npos);

  // A corrupted seal is a typed parse failure with a pinned location
  // (EpochLogParseError is an invalid_argument, so it exits 1 like every
  // other malformed-input error), never a served run.
  {
    std::ofstream out(log);
    out << "epoch 1\nweight 3 5\nseal 0000000000000000\n";
  }
  const auto bad = run("serve-engine --in " + path + " --updates " + log);
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("epoch log:"), std::string::npos) << bad.output;
  std::remove(log.c_str());
}

}  // namespace
