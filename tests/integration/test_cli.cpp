// Drives the lcaknap_cli binary end-to-end through std::system.  The binary
// path is injected by CMake as LCAKNAP_CLI_PATH.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef LCAKNAP_CLI_PATH
#error "LCAKNAP_CLI_PATH must be defined by the build"
#endif

const std::string kCli = LCAKNAP_CLI_PATH;

struct CommandResult {
  int exit_code;
  std::string output;
};

CommandResult run(const std::string& args) {
  const std::string out_file = ::testing::TempDir() + "cli_out.txt";
  const std::string command = kCli + " " + args + " > " + out_file + " 2>&1";
  const int status = std::system(command.c_str());
  std::ifstream in(out_file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return {WEXITSTATUS(status), buffer.str()};
}

std::string temp_instance() { return ::testing::TempDir() + "cli_instance.txt"; }

TEST(Cli, GenerateSolveServeEvalPipeline) {
  const std::string path = temp_instance();
  const auto gen = run("generate --family needle --n 3000 --seed 5 --out " + path);
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  EXPECT_NE(gen.output.find("wrote 3000 items"), std::string::npos);

  const auto solve = run("solve --in " + path + " --method greedy");
  ASSERT_EQ(solve.exit_code, 0) << solve.output;
  EXPECT_NE(solve.output.find("1/2-approximation"), std::string::npos);

  const auto serve = run("serve --in " + path + " --eps 0.15 --items 0,1,2");
  ASSERT_EQ(serve.exit_code, 0) << serve.output;
  EXPECT_NE(serve.output.find("answered 3 queries"), std::string::npos);

  const auto eval = run("eval --in " + path + " --replicas 3 --queries 50 --eps 0.15");
  ASSERT_EQ(eval.exit_code, 0) << eval.output;
  EXPECT_NE(eval.output.find("pairwise agreement"), std::string::npos);
  EXPECT_NE(eval.output.find("3/3"), std::string::npos);  // feasible runs
}

TEST(Cli, FptasSolveWorks) {
  const std::string path = temp_instance();
  ASSERT_EQ(run("generate --family uncorrelated --n 120 --out " + path).exit_code, 0);
  const auto solve = run("solve --in " + path + " --method fptas --eps 0.2");
  ASSERT_EQ(solve.exit_code, 0) << solve.output;
  EXPECT_NE(solve.output.find("(1 - 0.20)"), std::string::npos);  // guarantee note
}

TEST(Cli, UsageErrorsExitOne) {
  EXPECT_EQ(run("").exit_code, 1);
  EXPECT_EQ(run("frobnicate").exit_code, 1);
  EXPECT_EQ(run("generate --n 10").exit_code, 1);                   // missing family
  EXPECT_EQ(run("generate --family bogus --n 10").exit_code, 1);    // unknown family
  const std::string path = temp_instance();
  ASSERT_EQ(run("generate --family needle --n 100 --out " + path).exit_code, 0);
  EXPECT_EQ(run("serve --in " + path).exit_code, 1);                // missing --items
  EXPECT_EQ(run("solve --in " + path + " --method warp").exit_code, 1);
}

TEST(Cli, RuntimeErrorsExitTwo) {
  EXPECT_EQ(run("solve --in /nonexistent/file --method greedy").exit_code, 2);
}

TEST(Cli, ServeAllSummarizes) {
  const std::string path = temp_instance();
  ASSERT_EQ(run("generate --family needle --n 800 --out " + path).exit_code, 0);
  const auto serve = run("serve --in " + path + " --eps 0.2 --all");
  ASSERT_EQ(serve.exit_code, 0) << serve.output;
  EXPECT_NE(serve.output.find("answered 800 queries"), std::string::npos);
}

}  // namespace
