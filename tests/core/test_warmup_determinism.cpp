#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "oracle/access.h"
#include "util/thread_pool.h"

/// The sharded warm-up's whole contract (ISSUE: Lemma 4.9 preserved under
/// parallelism): `(L(Ĩ), EPS)` — summarized by `run_digest` — is a pure
/// function of the tape seed and the shared seed, never of the thread count
/// or of which pool executed the shards.  These tests pin that contract; the
/// CI TSan job also runs them to catch data races in the shard merge.

namespace lcaknap::core {
namespace {

LcaKpConfig warmup_config(double eps = 0.25, std::uint64_t seed = 0xABCD) {
  LcaKpConfig config;
  config.eps = eps;
  config.seed = seed;
  config.quantile_samples = 60'000;  // test-sized budget
  return config;
}

TEST(WarmupDeterminism, DigestIdenticalAcrossThreadCounts) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 20'000, 41);
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, warmup_config());
  const std::uint64_t baseline = run_digest(lca.run_warmup(7, 1));
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const auto run = lca.run_warmup(7, threads);
    EXPECT_EQ(run_digest(run), baseline) << "threads=" << threads;
  }
}

TEST(WarmupDeterminism, FullRunStateIdenticalAcrossThreadCounts) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 10'000, 3);
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, warmup_config(0.2));
  const auto sequential = lca.run_warmup(11, 1);
  const auto parallel = lca.run_warmup(11, 4);
  EXPECT_EQ(parallel.index_large, sequential.index_large);
  EXPECT_EQ(parallel.e_small_grid, sequential.e_small_grid);
  EXPECT_EQ(parallel.singleton, sequential.singleton);
  EXPECT_EQ(parallel.degenerate, sequential.degenerate);
  EXPECT_EQ(parallel.thresholds_grid, sequential.thresholds_grid);
  EXPECT_EQ(parallel.thresholds, sequential.thresholds);
  EXPECT_EQ(parallel.large_mass, sequential.large_mass);  // bit-exact
  EXPECT_EQ(parallel.samples_used, sequential.samples_used);
}

TEST(WarmupDeterminism, RepeatedRunsSameSeedIdentical) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 9);
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, warmup_config());
  const std::uint64_t first = run_digest(lca.run_warmup(21, 2));
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(run_digest(lca.run_warmup(21, 2)), first);
  }
}

TEST(WarmupDeterminism, ExternalPoolMatchesOwnedPool) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 9);
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, warmup_config());
  util::ThreadPool pool(3);
  const auto with_pool = lca.run_warmup(5, 3, &pool);
  const auto owned = lca.run_warmup(5, 3);
  EXPECT_EQ(run_digest(with_pool), run_digest(owned));
}

TEST(WarmupDeterminism, DifferentTapeSeedsStillAgree) {
  // Lemma 4.9 in action: replicas with *different* fresh tapes still settle
  // on the same (L(Ĩ), EPS) w.h.p. — the digest agrees across tape seeds,
  // not just across thread counts.
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 10'000, 3);
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, warmup_config(0.2));
  const std::uint64_t base = run_digest(lca.run_warmup(1, 2));
  std::size_t agreements = 0;
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    agreements += run_digest(lca.run_warmup(seed, 2)) == base ? 1 : 0;
  }
  EXPECT_GE(agreements, 4u);  // w.h.p., allow one unlucky tape
}

TEST(WarmupDeterminism, DifferentInstancesProduceDifferentDigests) {
  // Sanity that the digest actually reads the served state: distinct
  // instances must not collide over a handful of draws.
  const LcaKpConfig config = warmup_config(0.2);
  std::vector<std::uint64_t> digests;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto inst = knapsack::make_family(
        knapsack::Family::kUncorrelated, 10'000, seed);
    const oracle::MaterializedAccess access(inst);
    const LcaKp lca(access, config);
    digests.push_back(run_digest(lca.run_warmup(7, 2)));
  }
  std::sort(digests.begin(), digests.end());
  EXPECT_EQ(std::unique(digests.begin(), digests.end()), digests.end());
}

TEST(WarmupDeterminism, ConfigThreadsZeroMeansHardwareConcurrency) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 9);
  const oracle::MaterializedAccess access(inst);
  auto config = warmup_config();
  config.warmup_threads = 0;  // hardware concurrency
  const LcaKp lca(access, config);
  // Still identical to an explicit single-threaded run: thread count is
  // performance-only.
  EXPECT_EQ(run_digest(lca.run_warmup(7)), run_digest(lca.run_warmup(7, 1)));
}

TEST(WarmupDeterminism, DigestDistinguishesRuns) {
  LcaKpRun a;
  a.index_large = {3, 1, 2};
  a.e_small_grid = 17;
  a.thresholds_grid = {40, 30, 17};
  LcaKpRun b = a;
  EXPECT_EQ(run_digest(a), run_digest(b));
  b.index_large.insert(9);
  EXPECT_NE(run_digest(a), run_digest(b));
  b = a;
  b.singleton = true;
  EXPECT_NE(run_digest(a), run_digest(b));
  b = a;
  b.thresholds_grid.back() = 16;
  EXPECT_NE(run_digest(a), run_digest(b));
}

}  // namespace
}  // namespace lcaknap::core
