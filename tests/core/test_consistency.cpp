#include "core/consistency.h"

#include <gtest/gtest.h>

#include "knapsack/generators.h"
#include "knapsack/solvers/solve.h"

namespace lcaknap::core {
namespace {

LcaKpConfig test_config(double eps = 0.25) {
  LcaKpConfig config;
  config.eps = eps;
  config.seed = 0xC0FFEE;
  config.quantile_samples = 60'000;
  return config;
}

TEST(Consistency, ReplicasAgreeWithSharedSeed) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 10'000, 61);
  ConsistencyConfig experiment;
  experiment.replicas = 6;
  experiment.queries = 300;
  experiment.experiment_seed = 62;
  const auto report = run_consistency(inst, test_config(), experiment);
  EXPECT_EQ(report.replicas, 6u);
  EXPECT_EQ(report.queries, 300u);
  // Lemma 4.9 target: consistency >= 1 - eps.  The calibrated budgets are
  // sized so pairwise agreement clears it comfortably.
  EXPECT_GE(report.pairwise_agreement, 1.0 - 0.25);
  EXPECT_GT(report.unanimous_fraction, 0.5);
}

TEST(Consistency, AblationWithPlainQuantilesIsWorse) {
  // The paper's Section 1.1 "major issue": naive per-run quantiles break
  // consistency.  The ablation must not beat the reproducible version.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 10'000, 63);
  ConsistencyConfig experiment;
  experiment.replicas = 6;
  experiment.queries = 300;
  experiment.experiment_seed = 64;

  auto reproducible_config = test_config();
  const auto with = run_consistency(inst, reproducible_config, experiment);

  auto ablation_config = test_config();
  ablation_config.reproducible_quantiles = false;
  const auto without = run_consistency(inst, ablation_config, experiment);

  EXPECT_GE(with.identical_pair_fraction + 1e-9, without.identical_pair_fraction);
  EXPECT_GE(with.pairwise_agreement + 0.02, without.pairwise_agreement);
}

TEST(Consistency, AllRunsFeasible) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 5'000, 65);
  ConsistencyConfig experiment;
  experiment.replicas = 5;
  experiment.queries = 100;
  const auto report = run_consistency(inst, test_config(), experiment);
  EXPECT_EQ(report.feasible_runs, report.replicas);
}

TEST(Consistency, ValueRatioAgainstOptimum) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 66);
  const auto exact = knapsack::solve_exact(inst);
  const double opt_norm = static_cast<double>(exact.solution.value) /
                          static_cast<double>(inst.total_profit());
  ConsistencyConfig experiment;
  experiment.replicas = 4;
  experiment.queries = 100;
  const double eps = 0.25;
  const auto report = run_consistency(inst, test_config(eps), experiment, opt_norm);
  EXPECT_GT(report.mean_value_ratio, 0.0);
  // Lemma 4.8 floor in ratio form: value >= OPT/2 - 6 eps.
  EXPECT_GE(report.mean_norm_value, opt_norm / 2.0 - 6.0 * eps);
}

TEST(Consistency, ParallelExecutionMatchesSerial) {
  // Definition 2.3 (parallelizable): running replicas on threads must give
  // the same per-replica outcomes as running them serially, because each
  // replica's inputs (seed, tape) are fixed.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 67);
  ConsistencyConfig experiment;
  experiment.replicas = 4;
  experiment.queries = 150;
  experiment.experiment_seed = 68;
  const auto serial = run_consistency(inst, test_config(), experiment);
  util::ThreadPool pool(4);
  const auto parallel = run_consistency(inst, test_config(), experiment, 0.0, &pool);
  EXPECT_DOUBLE_EQ(serial.pairwise_agreement, parallel.pairwise_agreement);
  EXPECT_DOUBLE_EQ(serial.mean_norm_value, parallel.mean_norm_value);
  EXPECT_EQ(serial.feasible_runs, parallel.feasible_runs);
}

TEST(Consistency, ConsensusIsFeasibleAndCloseToReplicas) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 70);
  ConsistencyConfig experiment;
  experiment.replicas = 5;
  experiment.queries = 100;
  const auto report = run_consistency(inst, test_config(), experiment);
  EXPECT_TRUE(report.consensus_feasible);
  EXPECT_NEAR(report.consensus_norm_value, report.mean_norm_value, 0.05);
  // Replicas diverge from the consensus on at most a small fraction of items.
  EXPECT_LT(report.mean_divergence_from_consensus, 0.1);
}

TEST(Consistency, PerfectConsistencyMeansZeroDivergence) {
  // With a large budget on the needle family, replicas are identical; the
  // consensus equals every replica and the divergence is exactly zero.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 71);
  auto config = test_config();
  config.quantile_samples = 200'000;
  ConsistencyConfig experiment;
  experiment.replicas = 4;
  experiment.queries = 100;
  const auto report = run_consistency(inst, config, experiment);
  if (report.identical_pair_fraction == 1.0) {
    EXPECT_DOUBLE_EQ(report.mean_divergence_from_consensus, 0.0);
    EXPECT_DOUBLE_EQ(report.consensus_norm_value, report.mean_norm_value);
  }
}

TEST(Consistency, QueryingEveryItemWorks) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 800, 69);
  ConsistencyConfig experiment;
  experiment.replicas = 3;
  experiment.queries = 0;  // all items
  const auto report = run_consistency(inst, test_config(), experiment);
  EXPECT_EQ(report.queries, inst.size());
}

}  // namespace
}  // namespace lcaknap::core
