#include <gtest/gtest.h>

#include "core/full_read_lca.h"
#include "core/trivial_lca.h"
#include "knapsack/generators.h"
#include "knapsack/solvers/solve.h"
#include "knapsack/solvers/greedy.h"
#include "oracle/access.h"

namespace lcaknap::core {
namespace {

TEST(TrivialLca, AlwaysNoAndFree) {
  const TrivialLca lca;
  util::Xoshiro256 rng(1);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(lca.answer(i, rng));
  EXPECT_EQ(lca.name(), "trivial-no");
}

TEST(FullReadLca, CostsExactlyNQueriesPerAnswer) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 500, 2);
  const oracle::MaterializedAccess access(inst);
  const FullReadLca lca(access);
  util::Xoshiro256 rng(3);
  access.reset_counters();
  (void)lca.answer(0, rng);
  EXPECT_EQ(access.query_count(), inst.size());
  (void)lca.answer(1, rng);
  EXPECT_EQ(access.query_count(), 2 * inst.size());
}

TEST(FullReadLca, GreedyModeMatchesOfflineGreedy) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 200, 4);
  const oracle::MaterializedAccess access(inst);
  const FullReadLca lca(access, FullReadLca::Solver::kGreedyHalf);
  util::Xoshiro256 rng(5);
  const auto greedy = knapsack::greedy_half(inst).solution;
  std::vector<bool> in_greedy(inst.size(), false);
  for (const auto i : greedy.items) in_greedy[i] = true;
  for (std::size_t i = 0; i < inst.size(); i += 7) {
    EXPECT_EQ(lca.answer(i, rng), in_greedy[i]);
  }
}

TEST(FullReadLca, ExactModeServesAnOptimalSolution) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 60, 6);
  const oracle::MaterializedAccess access(inst);
  const FullReadLca lca(access, FullReadLca::Solver::kExact);
  util::Xoshiro256 rng(7);
  std::vector<std::size_t> served;
  for (std::size_t i = 0; i < inst.size(); ++i) {
    if (lca.answer(i, rng)) served.push_back(i);
  }
  const auto opt = knapsack::solve_exact(inst);
  EXPECT_TRUE(inst.feasible(served));
  EXPECT_EQ(inst.value_of(served), opt.solution.value);
}

TEST(FullReadLca, AnswersAreConsistentAcrossRuns) {
  // Deterministic solver => perfectly consistent replicas.
  const auto inst = knapsack::make_family(knapsack::Family::kWeaklyCorrelated, 150, 8);
  const oracle::MaterializedAccess access(inst);
  const FullReadLca a(access), b(access);
  util::Xoshiro256 rng(9);
  for (std::size_t i = 0; i < inst.size(); i += 11) {
    EXPECT_EQ(a.answer(i, rng), b.answer(i, rng));
  }
}

}  // namespace
}  // namespace lcaknap::core
