#include "core/lca_kp.h"

#include <gtest/gtest.h>

#include "core/mapping_greedy.h"
#include "iky/eps.h"
#include "knapsack/generators.h"
#include "knapsack/solvers/solve.h"
#include "oracle/access.h"
#include "oracle/flaky.h"

namespace lcaknap::core {
namespace {

LcaKpConfig test_config(double eps = 0.25, std::uint64_t seed = 0xABCD) {
  LcaKpConfig config;
  config.eps = eps;
  config.seed = seed;
  config.quantile_samples = 60'000;  // test-sized budget
  return config;
}

TEST(ResolveParams, CalibratedDefaults) {
  LcaKpConfig config;
  config.eps = 0.25;
  const auto params = resolve_params(config);
  EXPECT_DOUBLE_EQ(params.tau, 0.125);
  EXPECT_DOUBLE_EQ(params.rho, 0.25 / 6.0);
  EXPECT_DOUBLE_EQ(params.beta, params.rho / 2.0);
  EXPECT_GT(params.large_samples, 0u);
  EXPECT_GE(params.quantile_samples, 4'096u);
  EXPECT_LE(params.quantile_samples, config.max_quantile_samples);
  EXPECT_EQ(params.t_max, 4);
}

TEST(ResolveParams, PaperConstants) {
  LcaKpConfig config;
  config.eps = 0.3;
  config.paper_constants = true;
  const auto params = resolve_params(config);
  EXPECT_DOUBLE_EQ(params.tau, 0.09 / 5.0);
  EXPECT_DOUBLE_EQ(params.rho, 0.09 / 18.0);
}

TEST(ResolveParams, ExplicitOverridesWin) {
  LcaKpConfig config;
  config.eps = 0.25;
  config.tau = 0.07;
  config.rho = 0.03;
  config.beta = 0.01;
  config.large_samples = 1'000;
  config.quantile_samples = 2'000;
  const auto params = resolve_params(config);
  EXPECT_DOUBLE_EQ(params.tau, 0.07);
  EXPECT_DOUBLE_EQ(params.rho, 0.03);
  EXPECT_DOUBLE_EQ(params.beta, 0.01);
  EXPECT_EQ(params.large_samples, 1'000u);
  EXPECT_EQ(params.quantile_samples, 2'000u);
}

TEST(ResolveParams, RejectsBadConfig) {
  LcaKpConfig config;
  config.eps = 0.0;
  EXPECT_THROW(resolve_params(config), std::invalid_argument);
  config.eps = 0.25;
  config.domain_bits = 2;
  EXPECT_THROW(resolve_params(config), std::invalid_argument);
}

TEST(LcaKp, PipelineFindsAllLargeItems) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 20'000, 41);
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, test_config());
  util::Xoshiro256 rng(42);
  const auto run = lca.run_pipeline(rng);
  // The needle family plants heavy items carrying ~40% of the profit; the
  // coupon-collector sampling must find that mass (Lemma 4.2).
  EXPECT_GT(run.large_mass, 0.2);
  EXPECT_GT(run.samples_used, 0u);
}

TEST(LcaKp, SolutionIsFeasible) {
  // Lemma 4.7 across families and seeds: the mapped solution C never
  // exceeds the capacity.
  for (const auto family :
       {knapsack::Family::kNeedle, knapsack::Family::kUncorrelated,
        knapsack::Family::kStronglyCorrelated, knapsack::Family::kSubsetSum}) {
    const auto inst = knapsack::make_family(family, 5'000, 43);
    const oracle::MaterializedAccess access(inst);
    const LcaKp lca(access, test_config());
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      util::Xoshiro256 rng(seed);
      const auto run = lca.run_pipeline(rng);
      const SolutionEval eval = evaluate_run(inst, lca, run);
      EXPECT_TRUE(eval.feasible)
          << knapsack::family_name(family) << " seed " << seed
          << " weight " << eval.raw_weight << " cap " << inst.capacity();
    }
  }
}

TEST(LcaKp, SolutionValueMeetsLemma48) {
  // (1/2, 6 eps): p(C) >= OPT/2 - 6 eps (normalized), w.h.p.
  const double eps = 0.25;
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 10'000, 44);
  const auto exact = knapsack::solve_exact(inst);
  const double opt_norm = static_cast<double>(exact.solution.value) /
                          static_cast<double>(inst.total_profit());
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, test_config(eps));
  int failures = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Xoshiro256 rng(seed * 13);
    const auto run = lca.run_pipeline(rng);
    const SolutionEval eval = evaluate_run(inst, lca, run);
    if (eval.norm_value < opt_norm / 2.0 - 6.0 * eps) ++failures;
  }
  EXPECT_EQ(failures, 0);
}

TEST(LcaKp, AnswerFromMatchesDecide) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 3'000, 45);
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, test_config());
  util::Xoshiro256 rng(46);
  const auto run = lca.run_pipeline(rng);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(lca.answer_from(run, i),
              lca.decide(run, i, inst.norm_profit(i), inst.efficiency(i)));
  }
}

TEST(LcaKp, AnswerFromCostsOneQuery) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 3'000, 47);
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, test_config());
  util::Xoshiro256 rng(48);
  const auto run = lca.run_pipeline(rng);
  const auto before = access.query_count();
  (void)lca.answer_from(run, 7);
  EXPECT_EQ(access.query_count(), before + 1);
}

TEST(LcaKp, MemorylessAnswerRunsFullPipeline) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 2'000, 49);
  const oracle::MaterializedAccess access(inst);
  LcaKpConfig config = test_config();
  config.quantile_samples = 8'000;
  const LcaKp lca(access, config);
  util::Xoshiro256 rng(50);
  access.reset_counters();
  (void)lca.answer(3, rng);
  // One full pipeline's worth of samples plus the single item query.
  EXPECT_GE(access.sample_count(), 8'000u);
  EXPECT_GE(access.query_count(), 1u);
}

TEST(LcaKp, QueryOrderObliviousness) {
  // Definition 2.4: answers depend only on (instance, seed, run), not on the
  // order queries arrive.  With a fixed run, permuting queries cannot change
  // answers; verify across two independent orderings.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 2'000, 51);
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, test_config());
  util::Xoshiro256 rng(52);
  const auto run = lca.run_pipeline(rng);
  std::vector<bool> forward, backward(200);
  for (std::size_t i = 0; i < 200; ++i) forward.push_back(lca.answer_from(run, i));
  for (std::size_t i = 200; i-- > 0;) backward[i] = lca.answer_from(run, i);
  EXPECT_EQ(forward, std::vector<bool>(backward.begin(), backward.end()));
}

TEST(LcaKp, GarbageItemsAreNeverIncluded) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 10'000, 53);
  const double eps = 0.25;
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, test_config(eps));
  util::Xoshiro256 rng(54);
  const auto run = lca.run_pipeline(rng);
  const double eps2 = eps * eps;
  for (std::size_t i = 0; i < inst.size(); ++i) {
    const double p = inst.norm_profit(i);
    const double e = inst.efficiency(i);
    if (p <= eps2 && e < eps2) {
      EXPECT_FALSE(lca.decide(run, i, p, e)) << "garbage item " << i << " included";
    }
  }
}

TEST(LcaKp, WorksThroughRetryingFlakyOracle) {
  // Failure injection: a flaky oracle behind a retry layer must not change
  // the nature of the results (retries only consume fresh randomness).
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 3'000, 55);
  const oracle::MaterializedAccess inner(inst);
  const oracle::FlakyAccess flaky(inner, 0.2, 56);
  const oracle::RetryingAccess retrying(flaky, 64);
  const LcaKp lca(retrying, test_config());
  util::Xoshiro256 rng(57);
  const auto run = lca.run_pipeline(rng);
  const SolutionEval eval = evaluate_run(inst, lca, run);
  EXPECT_TRUE(eval.feasible);
  EXPECT_GT(run.samples_used, 0u);
}

TEST(LcaKp, ReproducibleThresholdsFormAnEps) {
  // Lemma 4.6: conditioned on the large items being captured, the pipeline's
  // quantile sequence is an (approximate) Equally Partitioning Sequence:
  // every band of small items carries profit mass ~ eps.
  const double eps = 0.1;
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 30'000, 57);
  const oracle::MaterializedAccess access(inst);
  LcaKpConfig config = test_config(eps);
  config.quantile_samples = 200'000;
  const LcaKp lca(access, config);
  util::Xoshiro256 tape(58);
  const auto run = lca.run_pipeline(tape);
  ASSERT_GE(run.thresholds.size(), 3u);
  const auto validity = iky::check_eps(inst, run.thresholds, eps, /*slack=*/0.06);
  // Interior bands must carry close to eps of profit mass each; the
  // calibrated tau = eps/2 allows wider deviation than the paper's eps^2, so
  // check against a correspondingly loose but still eps-scale window.
  for (std::size_t k = 1; k + 1 < validity.band_masses.size(); ++k) {
    EXPECT_NEAR(validity.band_masses[k], eps, 0.085) << "band " << k;
  }
}

TEST(LcaKp, ThresholdsAreNonIncreasing) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 10'000, 58);
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, test_config());
  util::Xoshiro256 rng(59);
  const auto run = lca.run_pipeline(rng);
  for (std::size_t k = 1; k < run.thresholds_grid.size(); ++k) {
    EXPECT_LE(run.thresholds_grid[k], run.thresholds_grid[k - 1]);
  }
  ASSERT_EQ(run.thresholds.size(), run.thresholds_grid.size());
}

}  // namespace
}  // namespace lcaknap::core
