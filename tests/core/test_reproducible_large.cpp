#include "core/reproducible_large.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "knapsack/instance.h"
#include "oracle/access.h"

namespace lcaknap::core {
namespace {

/// eps = 0.25 => eps^2 = 1/16.  Total profit 1600, so normalized profit p/1600.
/// Items: 2 clearly large (400 each = 0.25), a block of straddlers at exactly
/// 100 (= eps^2), and filler items far below.
knapsack::Instance borderline_instance(std::size_t straddlers, std::size_t fillers) {
  std::vector<knapsack::Item> items;
  items.push_back({400, 1});
  items.push_back({400, 1});
  for (std::size_t s = 0; s < straddlers; ++s) items.push_back({100, 1});
  const std::int64_t used =
      800 + static_cast<std::int64_t>(straddlers) * 100;
  const std::int64_t remaining = 1600 - used;
  const std::int64_t per_filler =
      std::max<std::int64_t>(1, remaining / static_cast<std::int64_t>(fillers));
  for (std::size_t f = 0; f < fillers; ++f) items.push_back({per_filler, 1});
  const auto capacity = static_cast<std::int64_t>(items.size());
  return {std::move(items), capacity};
}

ReproducibleLargeConfig test_config() {
  ReproducibleLargeConfig config;
  config.eps = 0.25;
  config.samples = 400'000;
  return config;
}

TEST(ReproducibleLarge, FindsClearlyLargeExcludesClearlySmall) {
  const auto inst = borderline_instance(4, 100);
  const oracle::MaterializedAccess access(inst);
  const util::Prf prf(1);
  util::Xoshiro256 rng(2);
  const auto result = reproducible_large_items(access, test_config(), prf, rng);
  // Items 0 and 1 (norm profit 0.25 >> eps^2 (1 + window)) must be present.
  EXPECT_TRUE(std::binary_search(result.indices.begin(), result.indices.end(), 0u));
  EXPECT_TRUE(std::binary_search(result.indices.begin(), result.indices.end(), 1u));
  // Fillers (norm profit ~0.0006 << eps^2 (1 - window)) must be absent.
  for (const auto idx : result.indices) EXPECT_LT(idx, 6u);
}

TEST(ReproducibleLarge, NeverReadsItemPayloads) {
  const auto inst = borderline_instance(2, 50);
  const oracle::MaterializedAccess access(inst);
  const util::Prf prf(3);
  util::Xoshiro256 rng(4);
  access.reset_counters();
  (void)reproducible_large_items(access, test_config(), prf, rng);
  EXPECT_EQ(access.query_count(), 0u);  // index-only model
  EXPECT_GT(access.sample_count(), 0u);
}

TEST(ReproducibleLarge, StraddlersAreDecidedConsistently) {
  // The whole point: items at exactly eps^2 flicker under naive thresholding
  // but the shared randomized threshold decides them identically across runs.
  const auto inst = borderline_instance(5, 100);
  const oracle::MaterializedAccess access(inst);
  util::Xoshiro256 fresh(5);
  int disagreements = 0;
  constexpr int kPairs = 20;
  for (int pair = 0; pair < kPairs; ++pair) {
    const util::Prf prf(static_cast<std::uint64_t>(pair) * 48611 + 7);
    util::Xoshiro256 rng1(fresh()), rng2(fresh());
    const auto a = reproducible_large_items(access, test_config(), prf, rng1);
    const auto b = reproducible_large_items(access, test_config(), prf, rng2);
    if (a.indices != b.indices) ++disagreements;
  }
  EXPECT_LE(disagreements, 3);
}

TEST(ReproducibleLarge, ValidatesConfig) {
  const auto inst = borderline_instance(1, 10);
  const oracle::MaterializedAccess access(inst);
  const util::Prf prf(8);
  util::Xoshiro256 rng(9);
  ReproducibleLargeConfig bad;
  bad.eps = 0.0;
  EXPECT_THROW(reproducible_large_items(access, bad, prf, rng), std::invalid_argument);
  bad = test_config();
  bad.window = 1.5;
  EXPECT_THROW(reproducible_large_items(access, bad, prf, rng), std::invalid_argument);
}

TEST(ReproducibleLarge, AutoSampleSizeIsBounded) {
  const auto inst = borderline_instance(1, 10);
  const oracle::MaterializedAccess access(inst);
  const util::Prf prf(10);
  util::Xoshiro256 rng(11);
  ReproducibleLargeConfig config;
  config.eps = 0.25;  // auto samples
  const auto result = reproducible_large_items(access, config, prf, rng);
  EXPECT_GT(result.samples_used, 0u);
  EXPECT_LE(result.samples_used, 4'000'000u);
}

}  // namespace
}  // namespace lcaknap::core
