#include "core/batch_eval.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_set>
#include <vector>

#include "knapsack/generators.h"
#include "oracle/access.h"
#include "util/rng.h"

/// \file test_batch_eval.cpp
/// The batch answer path against its one correctness criterion: every lane —
/// answer AND witness fields — byte-identical to the per-request
/// `LcaKp::answer_with_witness`, for the scalar reference and for every
/// vector kernel the binary + CPU can run (Lemma 4.9 extended to the vector
/// unit).  Plus the grid-cutoff boundary exactness the vector compare relies
/// on, and per-lane fault isolation.

namespace lcaknap::core {
namespace {

LcaKpConfig test_config(double eps = 0.25) {
  LcaKpConfig config;
  config.eps = eps;
  config.seed = 0xABCD;
  config.quantile_samples = 30'000;
  return config;
}

std::vector<BatchKernel> available_kernels() {
  std::vector<BatchKernel> kernels;
  for (const auto k : {BatchKernel::kScalar, BatchKernel::kAvx2,
                       BatchKernel::kAvx512}) {
    if (BatchEval::kernel_available(k)) kernels.push_back(k);
  }
  return kernels;
}

/// Access decorator that throws OracleUnavailable for a chosen item set;
/// everything else forwards.  Models a partially dead input service so the
/// batch path's per-lane isolation is testable deterministically.
class FailingAccess final : public oracle::InstanceAccess {
 public:
  explicit FailingAccess(const oracle::InstanceAccess& inner)
      : inner_(&inner) {}

  std::unordered_set<std::size_t> fail_items;

  [[nodiscard]] std::size_t size() const noexcept override {
    return inner_->size();
  }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override {
    if (fail_items.contains(i)) throw oracle::OracleUnavailable();
    return inner_->query(i);
  }
  [[nodiscard]] oracle::WeightedDraw do_sample(
      util::Xoshiro256& rng) const override {
    return inner_->weighted_sample(rng);
  }

 private:
  const oracle::InstanceAccess* inner_;
};

TEST(BatchEval, ScalarMatchesPerRequestWitnesses) {
  const auto instance =
      knapsack::make_family(knapsack::Family::kNeedle, 1'500, 17);
  const oracle::MaterializedAccess access(instance);
  const LcaKp lca(access, test_config());
  const LcaKpRun run = lca.run_warmup(7, 1);

  BatchEval eval(lca, run);
  eval.set_kernel(BatchKernel::kScalar);

  std::vector<std::size_t> items(instance.size());
  for (std::size_t i = 0; i < items.size(); ++i) items[i] = i;
  BatchScratch scratch;
  eval.evaluate(items, scratch);

  for (std::size_t i = 0; i < items.size(); ++i) {
    LcaKp::AnswerWitness witness;
    const bool answer = lca.answer_with_witness(run, i, witness);
    ASSERT_EQ(scratch.status[i], LaneStatus::kOk);
    ASSERT_EQ(scratch.answers[i] != 0, answer) << "item " << i;
    ASSERT_EQ(scratch.large[i] != 0, witness.large) << "item " << i;
    ASSERT_EQ(scratch.profits[i], witness.profit) << "item " << i;
    ASSERT_EQ(scratch.weights[i], witness.weight) << "item " << i;
  }
}

// The exhaustive differential gate: randomized instances x batch sizes
// (ragged tails, batch of 1, duplicates) x every kernel this binary + CPU
// can run, each pinned byte-for-byte to the scalar reference.  In the
// default build only kScalar is compiled and the vector loop is empty; the
// LCAKNAP_NATIVE CI leg runs the AVX2/AVX-512 comparisons.
TEST(BatchEval, DifferentialFuzzKernelsMatchScalar) {
  const auto kernels = available_kernels();
  const std::vector<std::size_t> batch_sizes = {1,  2,  3,  4,  5,   7,
                                                8,  16, 31, 32, 33,  64,
                                                127, 257};
  for (const auto family :
       {knapsack::Family::kNeedle, knapsack::Family::kUncorrelated,
        knapsack::Family::kSubsetSum}) {
    const auto instance = knapsack::make_family(family, 1'000, 29);
    const oracle::MaterializedAccess access(instance);
    const LcaKp lca(access, test_config(0.2));
    const LcaKpRun run = lca.run_warmup(11, 1);
    BatchEval eval(lca, run);

    util::Xoshiro256 rng(0xF00D ^ static_cast<std::uint64_t>(family));
    for (const auto batch : batch_sizes) {
      // Random items WITH duplicates (next_below can repeat), the shape the
      // serving batcher actually produces.
      std::vector<std::size_t> items(batch);
      for (auto& item : items) {
        item = static_cast<std::size_t>(rng.next_below(instance.size()));
      }

      BatchScratch reference;
      eval.set_kernel(BatchKernel::kScalar);
      eval.evaluate(items, reference);

      // The scalar reference itself is pinned to the per-request path on a
      // sampled lane (the full pin is ScalarMatchesPerRequestWitnesses).
      {
        LcaKp::AnswerWitness witness;
        const bool answer = lca.answer_with_witness(run, items[0], witness);
        ASSERT_EQ(reference.answers[0] != 0, answer);
        ASSERT_EQ(reference.large[0] != 0, witness.large);
      }

      for (const auto kernel : kernels) {
        if (kernel == BatchKernel::kScalar) continue;
        BatchScratch vec;
        eval.set_kernel(kernel);
        eval.evaluate(items, vec);
        for (std::size_t l = 0; l < batch; ++l) {
          ASSERT_EQ(vec.answers[l], reference.answers[l])
              << batch_kernel_name(kernel) << " family "
              << knapsack::family_name(family) << " batch " << batch
              << " lane " << l << " item " << items[l];
          ASSERT_EQ(vec.large[l], reference.large[l])
              << batch_kernel_name(kernel) << " lane " << l;
          ASSERT_EQ(vec.profits[l], reference.profits[l]);
          ASSERT_EQ(vec.weights[l], reference.weights[l]);
          ASSERT_EQ(vec.status[l], reference.status[l]);
        }
      }
    }
  }
}

TEST(BatchEval, GridLowerBoundIsTheExactBoundary) {
  const iky::EfficiencyDomain domain(12);
  for (const std::int64_t cell :
       {std::int64_t{1}, std::int64_t{5}, domain.size() / 2,
        domain.size() - 1}) {
    const double bound = BatchEval::grid_lower_bound(domain, cell);
    ASSERT_TRUE(std::isfinite(bound)) << "cell " << cell;
    EXPECT_GE(domain.to_grid(bound), cell);
    const double pred =
        std::bit_cast<double>(std::bit_cast<std::uint64_t>(bound) - 1);
    EXPECT_LT(domain.to_grid(pred), cell)
        << "bound is not the SMALLEST double reaching cell " << cell;
  }
  // Cell 0 admits everything the answer path can produce.
  EXPECT_EQ(BatchEval::grid_lower_bound(domain, 0),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(BatchEval::grid_lower_bound(domain, -3),
            -std::numeric_limits<double>::infinity());
  // Beyond the grid there is no boundary.
  EXPECT_THROW((void)BatchEval::grid_lower_bound(domain, domain.size()),
               std::invalid_argument);
}

// The algebraic identity the vector compare rests on:
// to_grid(e) >= g  <=>  e >= grid_lower_bound(g), over the efficiencies the
// answer path can produce (non-negative doubles and +inf).
TEST(BatchEval, CutoffCompareEquivalentToGridCompare) {
  const iky::EfficiencyDomain domain(10);
  util::Xoshiro256 rng(0xC0FFEE);
  for (const std::int64_t g :
       {std::int64_t{1}, std::int64_t{37}, domain.size() - 1}) {
    const double cutoff = BatchEval::grid_lower_bound(domain, g);
    const auto check = [&](double e) {
      ASSERT_EQ(domain.to_grid(e) >= g, e >= cutoff)
          << "g=" << g << " e=" << e;
    };
    check(0.0);
    check(std::numeric_limits<double>::infinity());
    check(std::numeric_limits<double>::denorm_min());
    check(cutoff);
    check(std::bit_cast<double>(std::bit_cast<std::uint64_t>(cutoff) - 1));
    for (int i = 0; i < 2'000; ++i) {
      // Log-uniform over ~the grid's dynamic range, plus far outside it.
      const double exponent = -40.0 + 80.0 * rng.next_double();
      check(std::exp2(exponent) * (0.5 + rng.next_double()));
    }
  }
}

TEST(BatchEval, LaneFaultIsolation) {
  const auto instance =
      knapsack::make_family(knapsack::Family::kUncorrelated, 800, 31);
  const oracle::MaterializedAccess inner(instance);
  FailingAccess access(inner);
  const LcaKp lca(access, test_config());
  const LcaKpRun run = lca.run_warmup(3, 1);  // warm while healthy
  const LcaKp clean_lca(inner, test_config());

  for (std::size_t i = 1; i < 64; i += 2) access.fail_items.insert(i);
  std::vector<std::size_t> items(64);
  for (std::size_t i = 0; i < items.size(); ++i) items[i] = i;

  BatchEval eval(lca, run);
  BatchScratch scratch;
  eval.evaluate(items, scratch);

  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i % 2 == 1) {
      EXPECT_EQ(scratch.status[i], LaneStatus::kUnavailable);
      EXPECT_EQ(scratch.answers[i], 0) << "failed lane must not claim yes";
      EXPECT_EQ(scratch.large[i], 0);
    } else {
      // Healthy siblings of a dead lane still get exact answers.
      LcaKp::AnswerWitness witness;
      const bool answer = clean_lca.answer_with_witness(run, i, witness);
      ASSERT_EQ(scratch.status[i], LaneStatus::kOk);
      EXPECT_EQ(scratch.answers[i] != 0, answer) << "item " << i;
      EXPECT_EQ(scratch.profits[i], witness.profit);
      EXPECT_EQ(scratch.weights[i], witness.weight);
    }
  }
}

TEST(BatchEval, KernelDispatchAndNames) {
  EXPECT_STREQ(batch_kernel_name(BatchKernel::kScalar), "scalar");
  EXPECT_STREQ(batch_kernel_name(BatchKernel::kAvx2), "avx2");
  EXPECT_STREQ(batch_kernel_name(BatchKernel::kAvx512), "avx512");
  EXPECT_TRUE(BatchEval::kernel_available(BatchKernel::kScalar));
  EXPECT_TRUE(BatchEval::kernel_available(BatchEval::best_kernel()));

  const auto instance =
      knapsack::make_family(knapsack::Family::kNeedle, 300, 5);
  const oracle::MaterializedAccess access(instance);
  const LcaKp lca(access, test_config());
  const LcaKpRun run = lca.run_warmup(1, 1);
  BatchEval eval(lca, run);
  EXPECT_EQ(eval.kernel(), BatchEval::best_kernel())
      << "constructor starts on the best runtime-supported kernel";
  eval.set_kernel(BatchKernel::kScalar);
  EXPECT_EQ(eval.kernel(), BatchKernel::kScalar);
  for (const auto k : {BatchKernel::kAvx2, BatchKernel::kAvx512}) {
    if (!BatchEval::kernel_available(k)) {
      EXPECT_THROW(eval.set_kernel(k), std::invalid_argument);
    }
  }
}

TEST(BatchEval, EmptyBatchAndScratchReuse) {
  const auto instance =
      knapsack::make_family(knapsack::Family::kNeedle, 400, 13);
  const oracle::MaterializedAccess access(instance);
  const LcaKp lca(access, test_config());
  const LcaKpRun run = lca.run_warmup(5, 1);
  BatchEval eval(lca, run);

  BatchScratch scratch;
  eval.evaluate(std::vector<std::size_t>{}, scratch);
  EXPECT_EQ(scratch.size, 0u);

  // Large batch, then a small one reusing the same scratch: no stale lane
  // may leak into the shorter batch's results.
  std::vector<std::size_t> big(200);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i;
  eval.evaluate(big, scratch);
  const std::vector<std::size_t> small = {7, 7, 399};
  eval.evaluate(small, scratch);
  EXPECT_EQ(scratch.size, small.size());
  for (std::size_t l = 0; l < small.size(); ++l) {
    LcaKp::AnswerWitness witness;
    const bool answer = lca.answer_with_witness(run, small[l], witness);
    EXPECT_EQ(scratch.answers[l] != 0, answer);
    EXPECT_EQ(scratch.profits[l], witness.profit);
  }
  EXPECT_EQ(scratch.answers[0], scratch.answers[1])
      << "duplicate lanes answer identically";
}

}  // namespace
}  // namespace lcaknap::core
