#include "core/serving_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "knapsack/generators.h"

namespace lcaknap::core {
namespace {

LcaKpConfig sim_config() {
  LcaKpConfig config;
  config.eps = 0.1;
  config.seed = 0x5E21;
  config.quantile_samples = 40'000;
  return config;
}

TEST(Workload, UniformCoversTheIndexSpace) {
  WorkloadConfig config;
  config.queries = 50'000;
  const auto trace = generate_workload(100, config);
  ASSERT_EQ(trace.size(), 50'000u);
  std::map<std::size_t, std::size_t> counts;
  for (const auto i : trace) {
    ASSERT_LT(i, 100u);
    ++counts[i];
  }
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [item, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count), 500.0, 150.0);
  }
}

TEST(Workload, ZipfIsHeavilySkewed) {
  WorkloadConfig config;
  config.shape = WorkloadConfig::Shape::kZipf;
  config.queries = 50'000;
  config.zipf_s = 1.2;
  const auto trace = generate_workload(10'000, config);
  std::map<std::size_t, std::size_t> counts;
  for (const auto i : trace) ++counts[i];
  std::vector<std::size_t> sorted;
  for (const auto& [item, count] : counts) sorted.push_back(count);
  std::sort(sorted.rbegin(), sorted.rend());
  // The top item dominates; the top 10 carry a large share.
  std::size_t top10 = 0;
  for (std::size_t k = 0; k < std::min<std::size_t>(10, sorted.size()); ++k) {
    top10 += sorted[k];
  }
  EXPECT_GT(static_cast<double>(top10) / 50'000.0, 0.4);
}

TEST(Workload, HotspotRoutesTheConfiguredFraction) {
  WorkloadConfig config;
  config.shape = WorkloadConfig::Shape::kHotspot;
  config.queries = 50'000;
  config.hotspot_fraction = 0.8;
  config.hotspot_items = 4;
  const auto trace = generate_workload(100'000, config);
  std::map<std::size_t, std::size_t> counts;
  for (const auto i : trace) ++counts[i];
  std::vector<std::size_t> sorted;
  for (const auto& [item, count] : counts) sorted.push_back(count);
  std::sort(sorted.rbegin(), sorted.rend());
  std::size_t top4 = 0;
  for (std::size_t k = 0; k < std::min<std::size_t>(4, sorted.size()); ++k) {
    top4 += sorted[k];
  }
  EXPECT_NEAR(static_cast<double>(top4) / 50'000.0, 0.8, 0.05);
}

TEST(Workload, DeterministicPerSeedAndValidates) {
  WorkloadConfig config;
  config.queries = 100;
  EXPECT_EQ(generate_workload(50, config), generate_workload(50, config));
  EXPECT_THROW(generate_workload(0, config), std::invalid_argument);
  config.shape = WorkloadConfig::Shape::kZipf;
  config.zipf_s = 0.0;
  EXPECT_THROW(generate_workload(50, config), std::invalid_argument);
  config.shape = WorkloadConfig::Shape::kHotspot;
  config.hotspot_items = 0;
  EXPECT_THROW(generate_workload(50, config), std::invalid_argument);
}

TEST(ServingSim, ReportIsInternallyConsistent) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 10'000, 81);
  ServingConfig serving;
  serving.lca = sim_config();
  serving.replicas = 4;
  WorkloadConfig workload;
  workload.queries = 2'000;
  const auto report = simulate_serving(inst, serving, workload);
  EXPECT_EQ(report.replicas, 4u);
  EXPECT_EQ(report.queries, 2'000u);
  EXPECT_GT(report.warmup_samples_per_replica, 0.0);
  EXPECT_LE(report.p50_us, report.p95_us);
  EXPECT_LE(report.p95_us, report.p99_us);
  EXPECT_GE(report.p50_us, serving.rpc_fixed_us);
  EXPECT_GE(report.yes_rate, 0.0);
  EXPECT_LE(report.yes_rate, 1.0);
  // The paper's consistency guarantee as an SLO.
  EXPECT_GE(report.consistency_rate, 0.9);
}

TEST(ServingSim, ParallelWarmupMatchesSerial) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 82);
  ServingConfig serving;
  serving.lca = sim_config();
  serving.replicas = 3;
  WorkloadConfig workload;
  workload.queries = 500;
  const auto serial = simulate_serving(inst, serving, workload);
  util::ThreadPool pool(3);
  const auto parallel = simulate_serving(inst, serving, workload, &pool);
  EXPECT_DOUBLE_EQ(serial.consistency_rate, parallel.consistency_rate);
  EXPECT_DOUBLE_EQ(serial.yes_rate, parallel.yes_rate);
  EXPECT_DOUBLE_EQ(serial.warmup_samples_per_replica,
                   parallel.warmup_samples_per_replica);
}

TEST(ServingSim, SkewedWorkloadsServeTheSameSolution) {
  // The served solution does not depend on the query distribution (the rule
  // is fixed per run); only traffic shape changes.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 5'000, 83);
  ServingConfig serving;
  serving.lca = sim_config();
  serving.replicas = 2;
  WorkloadConfig uniform;
  uniform.queries = 3'000;
  WorkloadConfig zipf = uniform;
  zipf.shape = WorkloadConfig::Shape::kZipf;
  const auto a = simulate_serving(inst, serving, uniform);
  const auto b = simulate_serving(inst, serving, zipf);
  EXPECT_GE(a.consistency_rate, 0.9);
  EXPECT_GE(b.consistency_rate, 0.9);
}

}  // namespace
}  // namespace lcaknap::core
