// Focused coverage for `generate_workload`, the trace generator both the
// serving simulator and the concurrent serving engine replay: determinism
// per seed for every shape, the Zipf-exponent dial behaving monotonically,
// and hotspot traffic accounting.

#include "core/serving_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <vector>

#include "util/request_trace.h"

namespace lcaknap::core {
namespace {

std::map<std::size_t, std::size_t> frequencies(const std::vector<std::size_t>& trace) {
  std::map<std::size_t, std::size_t> counts;
  for (const auto i : trace) ++counts[i];
  return counts;
}

/// Share of the trace carried by the k most frequent items.
double top_k_share(const std::vector<std::size_t>& trace, std::size_t k) {
  std::vector<std::size_t> sorted;
  for (const auto& [item, count] : frequencies(trace)) sorted.push_back(count);
  std::sort(sorted.rbegin(), sorted.rend());
  std::size_t top = 0;
  for (std::size_t i = 0; i < std::min(k, sorted.size()); ++i) top += sorted[i];
  return static_cast<double>(top) / static_cast<double>(trace.size());
}

TEST(Workload, AllShapesAreDeterministicPerSeed) {
  for (const auto shape :
       {WorkloadConfig::Shape::kUniform, WorkloadConfig::Shape::kZipf,
        WorkloadConfig::Shape::kHotspot}) {
    WorkloadConfig config;
    config.shape = shape;
    config.queries = 5'000;
    config.seed = 99;
    EXPECT_EQ(generate_workload(1'000, config), generate_workload(1'000, config));
    // A different seed produces a different trace (up to astronomically
    // unlikely collisions over 5000 draws).
    WorkloadConfig other = config;
    other.seed = 100;
    EXPECT_NE(generate_workload(1'000, config), generate_workload(1'000, other));
  }
}

TEST(Workload, ZipfExponentIsMonotoneInSkew) {
  // Higher s puts more mass on low ranks: the top-rank share must grow
  // along an increasing exponent ladder (same seed, so the rank->item
  // permutation is identical and shares are comparable).
  WorkloadConfig config;
  config.shape = WorkloadConfig::Shape::kZipf;
  config.queries = 40'000;
  config.seed = 7;
  double previous = 0.0;
  for (const double s : {0.5, 0.9, 1.3, 1.7}) {
    config.zipf_s = s;
    const double share = top_k_share(generate_workload(5'000, config), 10);
    EXPECT_GT(share, previous) << "zipf_s = " << s;
    previous = share;
  }
  // End-to-end sanity: strong skew concentrates a majority on 10 items out
  // of 5000, weak skew does not.
  config.zipf_s = 1.7;
  EXPECT_GT(top_k_share(generate_workload(5'000, config), 10), 0.5);
  config.zipf_s = 0.5;
  EXPECT_LT(top_k_share(generate_workload(5'000, config), 10), 0.2);
}

TEST(Workload, HotspotFractionAccounting) {
  // The hot set receives hotspot_fraction of the traffic *plus* its share
  // of the uniform remainder; with n >> hotspot_items the latter vanishes.
  WorkloadConfig config;
  config.shape = WorkloadConfig::Shape::kHotspot;
  config.queries = 60'000;
  config.hotspot_items = 8;
  for (const double fraction : {0.3, 0.6, 0.95}) {
    config.hotspot_fraction = fraction;
    const auto trace = generate_workload(100'000, config);
    EXPECT_NEAR(top_k_share(trace, config.hotspot_items), fraction, 0.03)
        << "fraction = " << fraction;
  }
}

TEST(Workload, HotspotSetIsStablePerSeed) {
  // The identity of the hot items is a function of the seed alone, not of
  // the trace length — a longer replay hammers the same keys.
  WorkloadConfig short_config;
  short_config.shape = WorkloadConfig::Shape::kHotspot;
  short_config.queries = 10'000;
  short_config.hotspot_fraction = 1.0;  // all traffic hot: exposes the set
  short_config.hotspot_items = 4;
  WorkloadConfig long_config = short_config;
  long_config.queries = 30'000;
  const auto short_freq = frequencies(generate_workload(50'000, short_config));
  const auto long_freq = frequencies(generate_workload(50'000, long_config));
  ASSERT_LE(short_freq.size(), 4u);
  ASSERT_LE(long_freq.size(), 4u);
  for (const auto& [item, count] : short_freq) {
    EXPECT_TRUE(long_freq.count(item) > 0) << "hot item " << item << " drifted";
  }
}

/// Writes `items` as a minimal valid trace file and returns its path.
std::string write_items_trace(const std::vector<std::size_t>& items,
                              const std::string& name) {
  std::vector<util::TraceRecord> records;
  for (std::size_t q = 0; q < items.size(); ++q) {
    records.push_back(util::TraceRecord{q, items[q], "default"});
  }
  const auto path = (std::filesystem::temp_directory_path() / name).string();
  util::save_trace_file(records, path);
  return path;
}

TEST(Workload, TraceShapeReplaysRecordedItemsInOrder) {
  const auto path = write_items_trace({5, 17, 5, 900, 3},
                                      "lcaknap_workload_replay.trace");
  WorkloadConfig config;
  config.shape = WorkloadConfig::Shape::kTrace;
  config.trace_path = path;
  config.queries = 5;
  const std::vector<std::size_t> want = {5, 17, 5, 900, 3};
  EXPECT_EQ(generate_workload(1'000, config), want);
  // Items beyond the instance wrap by modulo, like every other shape.
  const std::vector<std::size_t> want_mod10 = {5, 7, 5, 0, 3};
  EXPECT_EQ(generate_workload(10, config), want_mod10);
  std::remove(path.c_str());
}

TEST(Workload, TraceShapeTruncatesAndWrapsToQueryCount) {
  const auto path =
      write_items_trace({1, 2, 3}, "lcaknap_workload_wrap.trace");
  WorkloadConfig config;
  config.shape = WorkloadConfig::Shape::kTrace;
  config.trace_path = path;
  // Shorter than the trace: truncate.
  config.queries = 2;
  EXPECT_EQ(generate_workload(100, config), (std::vector<std::size_t>{1, 2}));
  // Longer than the trace: wrap around so load factors stay composable.
  config.queries = 7;
  EXPECT_EQ(generate_workload(100, config),
            (std::vector<std::size_t>{1, 2, 3, 1, 2, 3, 1}));
  // queries == 0 means "the natural length of the trace".
  config.queries = 0;
  EXPECT_EQ(generate_workload(100, config), (std::vector<std::size_t>{1, 2, 3}));
  std::remove(path.c_str());
}

TEST(Workload, TraceShapeRejectsMissingOrEmptyInputs) {
  WorkloadConfig config;
  config.shape = WorkloadConfig::Shape::kTrace;
  config.queries = 10;
  // No path configured.
  EXPECT_THROW((void)generate_workload(100, config), std::invalid_argument);
  // Path configured but no such file.
  config.trace_path = "/nonexistent/lcaknap.trace";
  EXPECT_THROW((void)generate_workload(100, config), std::runtime_error);
  // A valid but empty trace cannot drive a workload.
  const auto path = write_items_trace({}, "lcaknap_workload_empty.trace");
  config.trace_path = path;
  EXPECT_THROW((void)generate_workload(100, config), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Workload, HotspotClampsHotSetToInstanceSize) {
  WorkloadConfig config;
  config.shape = WorkloadConfig::Shape::kHotspot;
  config.queries = 1'000;
  config.hotspot_items = 64;  // larger than the instance
  const auto trace = generate_workload(10, config);
  for (const auto i : trace) EXPECT_LT(i, 10u);
}

}  // namespace
}  // namespace lcaknap::core
