#include "core/prior_lca.h"

#include <gtest/gtest.h>

#include "knapsack/generators.h"
#include "oracle/access.h"

namespace lcaknap::core {
namespace {

LcaKpConfig learner_config() {
  LcaKpConfig config;
  config.eps = 0.1;
  config.seed = 0xBC;
  config.quantile_samples = 100'000;
  return config;
}

TEST(PriorLca, LearnsAThresholdOnSmallItemFamilies) {
  // Uncorrelated instances have no large items at this scale, so the whole
  // rule is the small-item threshold — exactly what a prior can carry.
  const auto reference =
      knapsack::make_family(knapsack::Family::kUncorrelated, 20'000, 91);
  const Prior prior = learn_prior(reference, learner_config());
  EXPECT_GE(prior.e_small_grid, 0);
  EXPECT_DOUBLE_EQ(prior.eps, 0.1);
}

TEST(PriorLca, TransfersAcrossFreshInstancesOfTheFamily) {
  const auto reference =
      knapsack::make_family(knapsack::Family::kUncorrelated, 20'000, 92);
  const Prior prior = learn_prior(reference, learner_config());
  ASSERT_GE(prior.e_small_grid, 0);
  int feasible = 0;
  double worst_value = 1.0;
  constexpr int kFresh = 5;
  for (int f = 0; f < kFresh; ++f) {
    const auto fresh = knapsack::make_family(knapsack::Family::kUncorrelated,
                                             20'000, 200 + f);
    const oracle::MaterializedAccess access(fresh);
    const PriorLca lca(access, prior);
    const PriorEval eval = evaluate_prior(fresh, lca);
    feasible += eval.feasible ? 1 : 0;
    worst_value = std::min(worst_value, eval.norm_value);
  }
  // The distributional assumption holds, so the prior transfers: most fresh
  // instances are served feasibly with non-trivial value.
  EXPECT_GE(feasible, kFresh - 1);
  EXPECT_GT(worst_value, 0.1);
}

TEST(PriorLca, AnswerCostsOneQueryAndNoSamples) {
  const auto reference =
      knapsack::make_family(knapsack::Family::kUncorrelated, 10'000, 93);
  const Prior prior = learn_prior(reference, learner_config());
  const auto fresh = knapsack::make_family(knapsack::Family::kUncorrelated, 10'000, 94);
  const oracle::MaterializedAccess access(fresh);
  const PriorLca lca(access, prior);
  util::Xoshiro256 rng(95);
  access.reset_counters();
  (void)lca.answer(3, rng);
  (void)lca.answer(7, rng);
  EXPECT_EQ(access.query_count(), 2u);
  EXPECT_EQ(access.sample_count(), 0u);
}

TEST(PriorLca, IsTriviallyConsistent) {
  // The rule is a constant: two PriorLca replicas cannot disagree.
  const auto reference =
      knapsack::make_family(knapsack::Family::kUncorrelated, 10'000, 96);
  const Prior prior = learn_prior(reference, learner_config());
  const auto fresh = knapsack::make_family(knapsack::Family::kUncorrelated, 10'000, 97);
  const oracle::MaterializedAccess access(fresh);
  const PriorLca a(access, prior), b(access, prior);
  util::Xoshiro256 rng(98);
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(a.answer(i, rng), b.answer(i, rng));
  }
}

TEST(PriorLca, FailsOffDistribution) {
  // The adversarial side of [BCPR24]: on a family with planted heavy items
  // the prior (which declines all large items) leaves most value on the
  // table, unlike on its home family.
  const auto reference =
      knapsack::make_family(knapsack::Family::kUncorrelated, 20'000, 99);
  const Prior prior = learn_prior(reference, learner_config());
  const auto adversarial = knapsack::make_family(knapsack::Family::kNeedle, 20'000, 100);
  const oracle::MaterializedAccess access(adversarial);
  const PriorLca lca(access, prior);
  const PriorEval eval = evaluate_prior(adversarial, lca);
  // The needle family's heavy items carry ~40% of the profit; the prior
  // cannot capture any of it.
  EXPECT_LT(eval.norm_value, 0.62);
}

TEST(PriorLca, SafetyMarginOnlyShrinksTheSolution) {
  const auto reference =
      knapsack::make_family(knapsack::Family::kUncorrelated, 20'000, 101);
  Prior prior = learn_prior(reference, learner_config());
  ASSERT_GE(prior.e_small_grid, 0);
  const auto fresh = knapsack::make_family(knapsack::Family::kUncorrelated, 20'000, 102);
  const oracle::MaterializedAccess access(fresh);
  const PriorLca plain(access, prior);
  Prior padded = prior;
  padded.safety_cells = 64;
  const PriorLca safe(access, padded);
  const PriorEval plain_eval = evaluate_prior(fresh, plain);
  const PriorEval safe_eval = evaluate_prior(fresh, safe);
  EXPECT_LE(safe_eval.norm_value, plain_eval.norm_value + 1e-12);
}

}  // namespace
}  // namespace lcaknap::core
