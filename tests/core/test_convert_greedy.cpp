#include "core/convert_greedy.h"

#include <gtest/gtest.h>

namespace lcaknap::core {
namespace {

iky::NormLargeItem make_large(std::size_t index, double profit, double weight) {
  iky::NormLargeItem item;
  item.index = index;
  item.profit = profit;
  item.weight = weight;
  item.efficiency = weight > 0 ? profit / weight
                               : std::numeric_limits<double>::infinity();
  return item;
}

TEST(ConvertGreedy, EmptyTilde) {
  const iky::TildeInstance tilde{{}, 0.5};
  const auto result = convert_greedy(tilde, {});
  EXPECT_TRUE(result.index_large.empty());
  EXPECT_EQ(result.e_small_idx, -1);
  EXPECT_FALSE(result.singleton);
}

TEST(ConvertGreedy, EverythingFitsTakesAllLargeItems) {
  const std::vector<iky::NormLargeItem> large{make_large(3, 0.4, 0.2),
                                              make_large(7, 0.3, 0.2)};
  const auto tilde = iky::construct_tilde(large, {}, 0.25, /*capacity=*/0.5);
  const auto result = convert_greedy(tilde, {});
  EXPECT_EQ(result.index_large, (std::vector<std::size_t>{3, 7}));
  EXPECT_FALSE(result.singleton);
  EXPECT_EQ(result.greedy_prefix_len, 2u);
}

TEST(ConvertGreedy, PrefixWinsOverLeftOutItem) {
  // Efficiencies: a=4 (0.4/0.1), b=2 (0.3/0.15), c=1 (0.3/0.3); K=0.25 takes
  // a then b; c (profit 0.3) does not beat prefix profit 0.7.
  const std::vector<iky::NormLargeItem> large{make_large(0, 0.4, 0.1),
                                              make_large(1, 0.3, 0.15),
                                              make_large(2, 0.3, 0.3)};
  const auto tilde = iky::construct_tilde(large, {}, 0.25, 0.25);
  const auto result = convert_greedy(tilde, {});
  EXPECT_EQ(result.index_large, (std::vector<std::size_t>{0, 1}));
  EXPECT_FALSE(result.singleton);
  EXPECT_DOUBLE_EQ(result.cutoff_efficiency, 1.0);
}

TEST(ConvertGreedy, SingletonBranchTakesLeftOutLargeItem) {
  // a has the best efficiency but tiny profit; b is left out and dominates.
  const std::vector<iky::NormLargeItem> large{make_large(0, 0.1, 0.01),
                                              make_large(1, 0.9, 0.5)};
  const auto tilde = iky::construct_tilde(large, {}, 0.25, 0.5);
  // Greedy: a fits (weight 0.01), then b (0.5) does not (0.51 > 0.5).
  // Prefix profit 0.1 < 0.9: singleton branch.
  const auto result = convert_greedy(tilde, {});
  EXPECT_TRUE(result.singleton);
  EXPECT_FALSE(result.degenerate);
  EXPECT_EQ(result.index_large, (std::vector<std::size_t>{1}));
  EXPECT_EQ(result.e_small_idx, -1);
}

TEST(ConvertGreedy, ESmallBacksOffTwoBands) {
  // No large items; eps = 0.5 -> floor(1/eps) = 2 copies per band of profit
  // 0.25 and weight 0.25/e.  Thresholds 4, 2, 1, 0.5: weights per copy are
  // 0.0625, 0.125, 0.25, 0.5.  Capacity 0.41 fits band0 (2x0.0625=0.125)
  // plus band1 (2x0.125=0.25) -> 0.375, then the first band2 copy (0.25)
  // does not fit.  Cutoff efficiency = 1; largest k with e_k > 1 is k=2,
  // so e_small = e_{k-2} = e_0? k >= 3 fails -> e_small stays -1.
  const std::vector<double> thresholds{4.0, 2.0, 1.0, 0.5};
  const auto tilde = iky::construct_tilde({}, thresholds, 0.5, 0.41);
  const auto result = convert_greedy(tilde, thresholds);
  EXPECT_FALSE(result.singleton);
  EXPECT_EQ(result.e_small_idx, -1);  // k = 2 < 3: no small items admitted

  // Capacity 0.91 fits bands 0-2 (0.875) and cuts at band 3: the last
  // included item has efficiency ẽ_3 = 1, so the largest k with ẽ_k > 1 is
  // still 2 and no small items are admitted either.
  const auto tilde2 = iky::construct_tilde({}, thresholds, 0.5, 0.91);
  const auto result2 = convert_greedy(tilde2, thresholds);
  EXPECT_FALSE(result2.singleton);
  EXPECT_EQ(result2.e_small_idx, -1);

  // Squeeze a large item of efficiency 0.7 between ẽ_4 = 0.5 and ẽ_3 = 1:
  // with capacity 0.975 the prefix is bands 0-2 plus that item, the cutoff
  // is band 3, and the last included efficiency 0.7 gives k = 3, so
  // e_small = ẽ_{k-2} = ẽ_1 (0-based index 0).
  const std::vector<iky::NormLargeItem> large{make_large(9, 0.07, 0.1)};
  const auto tilde3 = iky::construct_tilde(large, thresholds, 0.5, 0.975);
  const auto result3 = convert_greedy(tilde3, thresholds);
  EXPECT_FALSE(result3.singleton);
  EXPECT_EQ(result3.e_small_idx, 0);
  EXPECT_EQ(result3.index_large, (std::vector<std::size_t>{9}));
}

TEST(ConvertGreedy, EverythingFitsAdmitsAllBands) {
  const std::vector<double> thresholds{4.0, 2.0, 1.0, 0.5};
  // Capacity 2.0 fits every representative (total weight 1.875).
  const auto tilde = iky::construct_tilde({}, thresholds, 0.5, 2.0);
  const auto result = convert_greedy(tilde, thresholds);
  EXPECT_FALSE(result.singleton);
  // k = t = 4 -> e_small = ẽ_2 (0-based index 1).
  EXPECT_EQ(result.e_small_idx, 1);
}

TEST(ConvertGreedy, DegenerateSingletonIsFlagged) {
  // One small band whose single representative outweighs the capacity and
  // out-profits the (empty) prefix: the singleton branch picks a
  // representative, which maps to no original item.
  const std::vector<double> thresholds{0.1};
  // eps = 0.5: copies have profit 0.25, weight 2.5 > capacity 1.0.
  const auto tilde = iky::construct_tilde({}, thresholds, 0.5, 1.0);
  const auto result = convert_greedy(tilde, thresholds);
  EXPECT_TRUE(result.singleton);
  EXPECT_TRUE(result.degenerate);
  EXPECT_TRUE(result.index_large.empty());
}

TEST(ConvertGreedy, DeterministicTieBreakAcrossCalls) {
  const std::vector<iky::NormLargeItem> large{make_large(5, 0.2, 0.1),
                                              make_large(2, 0.4, 0.2)};  // equal eff
  const std::vector<double> thresholds{2.0};  // equal to the large efficiency
  const auto tilde = iky::construct_tilde(large, thresholds, 0.5, 0.2);
  const auto a = convert_greedy(tilde, thresholds);
  const auto b = convert_greedy(tilde, thresholds);
  EXPECT_EQ(a.index_large, b.index_large);
  EXPECT_EQ(a.e_small_idx, b.e_small_idx);
  EXPECT_EQ(a.singleton, b.singleton);
}

}  // namespace
}  // namespace lcaknap::core
