#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "oracle/access.h"

/// Counting-allocator pin for the allocation-lean hot path: once the warm-up
/// has produced the membership rule, answering a query (`answer_from` =
/// one oracle read + `decide`) must perform ZERO heap allocations — the
/// steady-state request path of the serving engine touches only the shared
/// read-only run state.  The global operator new below counts every
/// allocation in this binary, which is why this file is its own test
/// executable (see tests/CMakeLists.txt) and stays away from the other
/// suites.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace lcaknap::core {
namespace {

TEST(QueryAllocation, SteadyStateAnswerFromAllocatesNothing) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 10'000, 41);
  const oracle::MaterializedAccess access(inst);
  LcaKpConfig config;
  config.eps = 0.25;
  config.seed = 0xABCD;
  config.quantile_samples = 60'000;
  const LcaKp lca(access, config);
  const auto run = lca.run_warmup(7, 1);

  // Touch the path once first so lazy one-time work (none expected) cannot
  // masquerade as per-query allocation.
  volatile bool sink = lca.answer_from(run, 0);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < 10'000; ++i) {
    sink = sink ^ lca.answer_from(run, i % inst.size());
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "answer_from allocated on the hot path";
}

TEST(QueryAllocation, DecideAllocatesNothing) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 5'000, 3);
  const oracle::MaterializedAccess access(inst);
  LcaKpConfig config;
  config.eps = 0.2;
  config.quantile_samples = 40'000;
  const LcaKp lca(access, config);
  const auto run = lca.run_warmup(11, 1);

  volatile bool sink = lca.decide(run, 0, 0.5, 1.0);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < 10'000; ++i) {
    sink = sink ^ lca.decide(run, i, 1e-4, 0.75);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "decide allocated on the hot path";
}

TEST(QueryAllocation, CounterSeesAllocations) {
  // Sanity: the override is actually installed in this binary.
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  auto* p = new std::uint64_t(42);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  delete p;
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace lcaknap::core
