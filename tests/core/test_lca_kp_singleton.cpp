// End-to-end exercises of LCA-KP's corner branches: the singleton
// (B_indicator) path on a crafted instance, the eps sweep, the paper's
// literal constants, and a sharded oracle backend.

#include <gtest/gtest.h>

#include "core/lca_kp.h"
#include "core/mapping_greedy.h"
#include "knapsack/generators.h"
#include "oracle/access.h"
#include "oracle/sharded.h"

namespace lcaknap::core {
namespace {

/// Crafted so that CONVERT-GREEDY takes the singleton branch: one dominant
/// heavy item (55% of profit, ~59% of weight, efficiency 0.93) behind a
/// curtain of more-efficient small items (45% of profit at efficiency 1.1).
/// The greedy prefix on Ĩ fills with small-item representatives (~0.4
/// profit), the heavy item does not fit on top, and its profit beats the
/// prefix — so the solution is the singleton {heavy}.
knapsack::Instance singleton_instance() {
  std::vector<knapsack::Item> items;
  items.push_back({5'500, 65'000});                      // index 0: the giant
  for (int s = 0; s < 450; ++s) items.push_back({10, 100});  // small curtain
  return {std::move(items), /*capacity=*/68'000};
}

LcaKpConfig singleton_config() {
  LcaKpConfig config;
  config.eps = 0.2;
  config.seed = 0x51;
  config.quantile_samples = 60'000;
  return config;
}

TEST(LcaKpSingleton, TakesTheSingletonBranch) {
  const auto inst = singleton_instance();
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, singleton_config());
  util::Xoshiro256 tape(1);
  const auto run = lca.run_pipeline(tape);
  EXPECT_TRUE(run.singleton);
  EXPECT_FALSE(run.degenerate);
  ASSERT_EQ(run.index_large.size(), 1u);
  EXPECT_TRUE(run.index_large.contains(0));
  EXPECT_EQ(run.e_small_grid, -1);
}

TEST(LcaKpSingleton, AnswersMatchTheSingletonSolution) {
  const auto inst = singleton_instance();
  const oracle::MaterializedAccess access(inst);
  const LcaKp lca(access, singleton_config());
  util::Xoshiro256 tape(2);
  const auto run = lca.run_pipeline(tape);
  ASSERT_TRUE(run.singleton);
  EXPECT_TRUE(lca.answer_from(run, 0));          // the giant is in
  for (std::size_t i = 1; i <= 100; ++i) {
    EXPECT_FALSE(lca.answer_from(run, i));       // the curtain is out
  }
  const auto eval = evaluate_run(inst, lca, run);
  EXPECT_TRUE(eval.feasible);
  EXPECT_NEAR(eval.norm_value, 0.55, 1e-9);      // exactly the giant's mass
}

class LcaKpEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(LcaKpEpsSweep, FeasibleAndAboveFloorAtEveryEps) {
  const double eps = GetParam();
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 8'000, 111);
  const oracle::MaterializedAccess access(inst);
  LcaKpConfig config;
  config.eps = eps;
  config.seed = 0x5112;
  config.quantile_samples = 50'000;
  const LcaKp lca(access, config);
  util::Xoshiro256 tape(3);
  const auto run = lca.run_pipeline(tape);
  const auto eval = evaluate_run(inst, lca, run);
  EXPECT_TRUE(eval.feasible) << "eps=" << eps;
  // Floor in normalized units; OPT <= 1, so OPT/2 - 6 eps <= 1/2 - 6 eps.
  EXPECT_GE(eval.norm_value, 0.5 - 6.0 * eps) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LcaKpEpsSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.45));

TEST(LcaKpPaperConstants, RunsWithLiteralParameters) {
  // The paper's tau = eps^2/5, rho = eps^2/18 demand astronomically large
  // samples; with the budget cap the pipeline must still run, stay feasible,
  // and report the literal parameter values.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 4'000, 112);
  const oracle::MaterializedAccess access(inst);
  LcaKpConfig config;
  config.eps = 0.25;
  config.seed = 0x9A9E;
  config.paper_constants = true;
  config.max_quantile_samples = 100'000;
  const LcaKp lca(access, config);
  EXPECT_DOUBLE_EQ(lca.params().tau, 0.0625 / 5.0);
  EXPECT_DOUBLE_EQ(lca.params().rho, 0.0625 / 18.0);
  EXPECT_EQ(lca.params().quantile_samples, 100'000u);  // cap engaged
  util::Xoshiro256 tape(4);
  const auto run = lca.run_pipeline(tape);
  EXPECT_TRUE(evaluate_run(inst, lca, run).feasible);
}

TEST(LcaKpSharded, RunsAgainstShardedOracle) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 10'000, 113);
  const oracle::ShardedAccess cluster(inst, 8);
  LcaKpConfig config;
  config.eps = 0.1;
  config.seed = 0x5113;
  config.quantile_samples = 60'000;
  const LcaKp lca(cluster, config);
  util::Xoshiro256 tape(5);
  const auto run = lca.run_pipeline(tape);
  const auto eval = evaluate_run(inst, lca, run);
  EXPECT_TRUE(eval.feasible);
  EXPECT_GT(eval.norm_value, 0.3);
  // All pipeline traffic went through the shards.
  std::uint64_t shard_total = 0;
  for (std::size_t s = 0; s < cluster.shard_count(); ++s) {
    shard_total += cluster.shard_load(s);
  }
  EXPECT_EQ(shard_total, cluster.access_count());
}

TEST(LcaKpSharded, ShardCountDoesNotChangeTheDistributionOfOutcomes) {
  // Same instance, same seeds, different shardings: outcomes may differ in
  // the samples drawn (different RNG consumption) but the solution quality
  // must be statistically indistinguishable; check both stay feasible and
  // close in value.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 10'000, 114);
  LcaKpConfig config;
  config.eps = 0.1;
  config.seed = 0x5114;
  config.quantile_samples = 60'000;
  double values[2];
  std::size_t variant = 0;
  for (const std::size_t shards : {2UL, 16UL}) {
    const oracle::ShardedAccess cluster(inst, shards);
    const LcaKp lca(cluster, config);
    util::Xoshiro256 tape(6);
    const auto run = lca.run_pipeline(tape);
    const auto eval = evaluate_run(inst, lca, run);
    EXPECT_TRUE(eval.feasible);
    values[variant++] = eval.norm_value;
  }
  EXPECT_NEAR(values[0], values[1], 0.15);
}

}  // namespace
}  // namespace lcaknap::core
