#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/lca_kp.h"
#include "fault/chaos.h"
#include "fault/plan.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "net/client.h"
#include "net/server.h"
#include "net/session.h"
#include "oracle/access.h"
#include "store/state_store.h"
#include "util/virtual_clock.h"

/// \file test_server.cpp
/// End-to-end tests of the epoll front door over real loopback sockets:
/// correctness of served answers, wire conservation under pipelining and
/// backpressure, typed teardown on malformed bytes, the accept gate, the
/// gated shutdown frame, and chaos isolation between tenants.

namespace lcaknap::net {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    instance_a_ = new knapsack::Instance(
        knapsack::make_family(knapsack::Family::kNeedle, 2'000, 17));
    instance_b_ = new knapsack::Instance(
        knapsack::make_family(knapsack::Family::kUncorrelated, 1'500, 23));
    access_a_ = new oracle::MaterializedAccess(*instance_a_);
    access_b_ = new oracle::MaterializedAccess(*instance_b_);
    core::LcaKpConfig config;
    config.eps = 0.2;
    config.seed = 0x5E;
    config.quantile_samples = 20'000;
    lca_a_ = new core::LcaKp(*access_a_, config);
    config.seed = 0x6F;
    lca_b_ = new core::LcaKp(*access_b_, config);
  }
  static void TearDownTestSuite() {
    delete lca_b_;
    delete lca_a_;
    delete access_b_;
    delete access_a_;
    delete instance_b_;
    delete instance_a_;
    lca_a_ = lca_b_ = nullptr;
    access_a_ = access_b_ = nullptr;
    instance_a_ = instance_b_ = nullptr;
  }

  static TenantConfig tenant_config(const core::LcaKp* lca) {
    TenantConfig config;
    config.lca = lca;
    config.engine.workers = 2;
    config.engine.queue_capacity = 4'096;
    config.engine.batcher.max_batch_size = 16;
    config.engine.batcher.max_linger = std::chrono::microseconds(100);
    config.engine.cache.capacity = 1'024;
    config.engine.cache.shards = 4;
    return config;
  }

  static const knapsack::Instance* instance_a_;
  static const knapsack::Instance* instance_b_;
  static const oracle::MaterializedAccess* access_a_;
  static const oracle::MaterializedAccess* access_b_;
  static const core::LcaKp* lca_a_;
  static const core::LcaKp* lca_b_;
};

const knapsack::Instance* ServerTest::instance_a_ = nullptr;
const knapsack::Instance* ServerTest::instance_b_ = nullptr;
const oracle::MaterializedAccess* ServerTest::access_a_ = nullptr;
const oracle::MaterializedAccess* ServerTest::access_b_ = nullptr;
const core::LcaKp* ServerTest::lca_a_ = nullptr;
const core::LcaKp* ServerTest::lca_b_ = nullptr;

/// Everything a test server needs, with sane lifetimes (router outlives
/// server; store outlives router).
struct Stack {
  metrics::Registry registry;
  store::StateStore store;
  TenantRouter router;
  std::unique_ptr<Server> server;

  explicit Stack(const ServerConfig& config = {})
      : store({.capacity = 4}, registry), router(store, registry) {
    server_config = config;
  }
  void start() {
    server = std::make_unique<Server>(router, server_config, registry);
  }
  ~Stack() {
    if (server) server->stop();
    router.drain();
  }
  ServerConfig server_config;
};

RequestFrame frame_for(const std::string& tenant, std::uint64_t id,
                       std::uint64_t item) {
  RequestFrame frame;
  frame.request_id = id;
  frame.item = item;
  frame.tenant = tenant;
  return frame;
}

/// Polls server stats until quiescent (all decoded frames answered) or the
/// deadline passes; completions are asynchronous to the client's view.
void await_conservation(const Server& server) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto stats = server.stats();
    if (stats.frames_in == stats.responses_to_frames()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST_F(ServerTest, ServesCorrectAnswersOverLoopback) {
  Stack stack;
  stack.router.register_tenant("a", tenant_config(lca_a_));
  stack.router.warm_all();
  stack.start();

  Client client("127.0.0.1", stack.server->port());
  const auto& run = stack.router.engine("a")->run();
  for (std::uint64_t q = 0; q < 300; ++q) {
    const auto response = client.call(frame_for("a", q, q % 500));
    EXPECT_EQ(response.request_id, q) << "request_id echoed verbatim";
    EXPECT_EQ(response.status, WireStatus::kOk);
    EXPECT_EQ(response.answer, lca_a_->answer_from(run, q % 500));
  }
  const auto stats = stack.server->stats();
  EXPECT_EQ(stats.frames_in, 300u);
  EXPECT_EQ(stats.by_status[static_cast<std::size_t>(WireStatus::kOk)], 300u);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
}

TEST_F(ServerTest, PipelinedTrafficConservesEveryFrame) {
  Stack stack;
  stack.router.register_tenant("a", tenant_config(lca_a_));
  stack.router.warm_all();
  stack.start();

  constexpr std::uint64_t kFrames = 2'000;
  Client client("127.0.0.1", stack.server->port());
  std::thread sender([&] {
    for (std::uint64_t q = 0; q < kFrames; ++q) {
      client.send(frame_for("a", q, q % 800));
    }
  });
  std::vector<bool> seen(kFrames, false);
  for (std::uint64_t q = 0; q < kFrames; ++q) {
    const auto response = client.recv();
    ASSERT_LT(response.request_id, kFrames);
    EXPECT_FALSE(seen[response.request_id]);
    seen[response.request_id] = true;
  }
  sender.join();
  await_conservation(*stack.server);
  const auto stats = stack.server->stats();
  EXPECT_EQ(stats.frames_in, kFrames);
  EXPECT_EQ(stats.responses_to_frames(), kFrames)
      << "wire conservation: every decoded frame answered, zero drops";
  // Registry counters mirror the atomic stats.
  EXPECT_EQ(stack.registry.counter_value("net_frames_total",
                                         {{"status", "ok"}}),
            stats.by_status[static_cast<std::size_t>(WireStatus::kOk)]);
}

TEST_F(ServerTest, PerConnectionInflightCapShedsOverloadedNotSilence) {
  ServerConfig config;
  config.max_inflight_per_connection = 1;
  Stack stack(config);
  stack.router.register_tenant("a", tenant_config(lca_a_));
  stack.router.warm_all();
  stack.start();

  constexpr std::uint64_t kFrames = 200;
  Client client("127.0.0.1", stack.server->port());
  std::thread sender([&] {
    for (std::uint64_t q = 0; q < kFrames; ++q) {
      client.send(frame_for("a", q, q));
    }
  });
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  for (std::uint64_t q = 0; q < kFrames; ++q) {
    const auto response = client.recv();
    if (response.status == WireStatus::kOk) ++ok;
    if (response.status == WireStatus::kOverloaded) ++overloaded;
  }
  sender.join();
  // A loaded server answers every frame — some ok, the burst overflow
  // explicitly shed — and never stalls or drops.
  EXPECT_EQ(ok + overloaded, kFrames);
  EXPECT_GE(ok, 1u);
  await_conservation(*stack.server);
  const auto stats = stack.server->stats();
  EXPECT_EQ(stats.frames_in, kFrames);
  EXPECT_EQ(stats.responses_to_frames(), kFrames);
  EXPECT_EQ(stats.inflight_shed, overloaded);
}

TEST_F(ServerTest, MalformedBytesGetBadRequestThenTeardown) {
  Stack stack;
  stack.router.register_tenant("a", tenant_config(lca_a_));
  stack.router.warm_all();
  stack.start();

  // Raw socket: the Client refuses to encode malformed frames, which is
  // the point — a hostile peer does not use our encoder.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(stack.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string garbage = "\xFF\xFF\xFF\xFF never a frame";
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));

  // Best-effort kBadRequest response, then EOF: the stream is torn down.
  std::string bytes;
  char chunk[256];
  while (true) {
    const auto got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) break;
    bytes.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
  ResponseFrame response;
  ASSERT_EQ(decode(bytes, response), bytes.size());
  EXPECT_EQ(response.status, WireStatus::kBadRequest);
  const auto stats = stack.server->stats();
  EXPECT_EQ(stats.decode_errors, 1u);
  EXPECT_EQ(stats.frames_in, 0u);
  EXPECT_EQ(stats.responses_to_frames(), 0u)
      << "conservation accounts the decode-error response separately";
}

TEST_F(ServerTest, AcceptGateClosesConnectionsBeyondCapacity) {
  ServerConfig config;
  config.max_connections = 1;
  Stack stack(config);
  stack.router.register_tenant("a", tenant_config(lca_a_));
  stack.router.warm_all();
  stack.start();

  Client first("127.0.0.1", stack.server->port());
  // Prove the first connection is live before probing the gate.
  EXPECT_EQ(first.call(frame_for("a", 1, 1)).status, WireStatus::kOk);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(stack.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  char byte;
  // Immediate close at the gate: read hits EOF, never a response.
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stack.server->stats().at_capacity == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(stack.server->stats().at_capacity, 1u);
  // The first connection is unaffected by the shed one.
  EXPECT_EQ(first.call(frame_for("a", 2, 2)).status, WireStatus::kOk);
}

TEST_F(ServerTest, ShutdownFrameIsGatedOff) {
  Stack stack;  // allow_shutdown defaults to false
  stack.router.register_tenant("a", tenant_config(lca_a_));
  stack.router.warm_all();
  stack.start();
  Client client("127.0.0.1", stack.server->port());
  RequestFrame frame = frame_for("a", 1, 1);
  frame.flags = RequestFrame::kFlagShutdown;
  const auto response = client.call(frame);
  EXPECT_EQ(response.status, WireStatus::kBadRequest)
      << "a production server refuses remote shutdown";
  EXPECT_FALSE(stack.server->shutdown_requested());
  // The refused frame was decoded, so conservation counts it.
  await_conservation(*stack.server);
  const auto stats = stack.server->stats();
  EXPECT_EQ(stats.frames_in, 1u);
  EXPECT_EQ(stats.responses_to_frames(), 1u);
}

TEST_F(ServerTest, ShutdownFrameHonouredWhenAllowed) {
  ServerConfig config;
  config.allow_shutdown = true;
  Stack stack(config);
  stack.router.register_tenant("a", tenant_config(lca_a_));
  stack.router.warm_all();
  stack.start();
  Client client("127.0.0.1", stack.server->port());
  RequestFrame frame = frame_for("a", 99, 0);
  frame.flags = RequestFrame::kFlagShutdown;
  const auto response = client.call(frame);
  EXPECT_EQ(response.status, WireStatus::kShuttingDown);
  EXPECT_EQ(response.request_id, 99u);
  EXPECT_TRUE(stack.server->shutdown_requested());
  stack.server->wait_shutdown();  // must not block after the frame
}

TEST_F(ServerTest, ChaosOnOneTenantNeverChangesAnotherTenantsAnswers) {
  // Tenant b's oracle is in a permanent brownout (20% failures plus
  // latency); tenant a must keep answering byte-for-byte what a clean
  // reference serves — isolation is structural (own engine, own warm
  // state), not best-effort.
  fault::ChaosAccess chaotic(*access_b_,
                             fault::parse_fault_plan("brownout:3600000:fail=0.2,lat=50..200",
                                                     0xC405),
                             util::system_clock(), /*armed=*/false);
  core::LcaKpConfig lca_config;
  lca_config.eps = 0.2;
  lca_config.seed = 0x6F;
  lca_config.quantile_samples = 20'000;
  const core::LcaKp chaotic_lca(chaotic, lca_config);

  Stack stack;
  stack.router.register_tenant("a", tenant_config(lca_a_));
  stack.router.register_tenant("b", tenant_config(&chaotic_lca));
  stack.router.warm_all();  // chaos disarmed through warm-up, like the CLI
  chaotic.arm();
  stack.start();

  const auto& run_a = stack.router.engine("a")->run();
  Client client("127.0.0.1", stack.server->port());
  std::thread storm([&] {
    // A second connection hammers the browned-out tenant the whole time.
    Client noisy("127.0.0.1", stack.server->port());
    for (std::uint64_t q = 0; q < 400; ++q) {
      (void)noisy.call(frame_for("b", q, q % 1'000));
    }
  });
  for (std::uint64_t q = 0; q < 400; ++q) {
    const auto response = client.call(frame_for("a", q, q % 500));
    ASSERT_EQ(response.status, WireStatus::kOk)
        << "tenant a must not inherit tenant b's brownout";
    ASSERT_EQ(response.answer, lca_a_->answer_from(run_a, q % 500));
  }
  storm.join();
  await_conservation(*stack.server);
  const auto stats = stack.server->stats();
  EXPECT_EQ(stats.frames_in, 800u);
  EXPECT_EQ(stats.responses_to_frames(), 800u)
      << "conservation holds even with a tenant in chaos";
}

TEST_F(ServerTest, StopIsIdempotentAndStatsSurviveIt) {
  Stack stack;
  stack.router.register_tenant("a", tenant_config(lca_a_));
  stack.router.warm_all();
  stack.start();
  {
    Client client("127.0.0.1", stack.server->port());
    EXPECT_EQ(client.call(frame_for("a", 1, 1)).status, WireStatus::kOk);
  }
  stack.server->stop();
  stack.server->stop();
  const auto stats = stack.server->stats();
  EXPECT_EQ(stats.frames_in, 1u);
  EXPECT_EQ(stats.open, 0u);
}

}  // namespace
}  // namespace lcaknap::net
