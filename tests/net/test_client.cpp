#include "net/client.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>

#include "net/wire.h"

/// \file test_client.cpp
/// The client's typed failure contract (the fleet layer's foundation): a
/// peer that is *gone* — connect refused, closed before answering, closed
/// with a response half-written — throws `ConnectionLost` (retryable: a
/// sibling replica can serve the same query), while a peer that answers
/// *garbage* throws `WireDecodeError` (not retryable: the protocol itself is
/// broken).  A raw listener plays the dying server, byte by byte.

namespace lcaknap::net {
namespace {

/// A hand-rolled accept loop the tests can script: accept one connection,
/// optionally read the request, write exactly `bytes`, close.
class RawListener {
 public:
  RawListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    const int enable = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::listen(fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }
  ~RawListener() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Serves exactly one connection: drain `read_bytes` of request, write
  /// `reply`, close.  Runs on the caller's thread.
  void serve_one(std::size_t read_bytes, const std::string& reply) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    ASSERT_GE(conn, 0);
    std::string sink(read_bytes, '\0');
    std::size_t got = 0;
    while (got < read_bytes) {
      const auto n = ::recv(conn, sink.data() + got, read_bytes - got, 0);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    if (!reply.empty()) {
      (void)::send(conn, reply.data(), reply.size(), 0);
    }
    ::close(conn);
  }

  /// Closes the listening socket so later connects are refused.
  void stop() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

RequestFrame request_frame() {
  RequestFrame frame;
  frame.request_id = 7;
  frame.item = 3;
  frame.tenant = "alpha";
  return frame;
}

std::string encoded_request_size_probe() {
  std::string bytes;
  encode(request_frame(), bytes);
  return bytes;
}

TEST(ClientConnectionLost, ConnectRefusedIsTypedRetryable) {
  RawListener listener;
  const auto port = listener.port();
  listener.stop();
  EXPECT_THROW(Client("127.0.0.1", port), ConnectionLost);
}

TEST(ClientConnectionLost, PeerClosesBeforeAnyResponse) {
  RawListener listener;
  const auto request_size = encoded_request_size_probe().size();
  std::thread server([&] { listener.serve_one(request_size, ""); });
  Client client("127.0.0.1", listener.port());
  EXPECT_THROW((void)client.call(request_frame()), ConnectionLost);
  server.join();
}

TEST(ClientConnectionLost, PeerClosesWithTheResponseHalfWritten) {
  // The regression this file exists for: the socket closes mid-response.
  // A length-prefixed partial frame is indistinguishable from "more bytes
  // coming" until EOF — the client must surface EOF-with-bytes-outstanding
  // as ConnectionLost, never hang and never mis-decode the prefix.
  ResponseFrame response;
  response.request_id = 7;
  response.status = WireStatus::kOk;
  response.answer = true;
  std::string full;
  encode(response, full);
  const auto request_size = encoded_request_size_probe().size();

  for (const std::size_t cut : {std::size_t{1}, std::size_t{4},
                                std::size_t{10}, full.size() - 1}) {
    RawListener listener;
    std::thread server(
        [&] { listener.serve_one(request_size, full.substr(0, cut)); });
    Client client("127.0.0.1", listener.port());
    EXPECT_THROW((void)client.call(request_frame()), ConnectionLost)
        << "response cut at byte " << cut << " of " << full.size();
    server.join();
  }
}

TEST(ClientConnectionLost, IsDistinctFromWireDecodeError) {
  // A complete frame of garbage is a *protocol* failure: WireDecodeError,
  // not ConnectionLost — the fleet client fails over on the latter only
  // (re-decoding garbage elsewhere cannot help).
  std::string garbage;
  garbage += '\x22';  // little-endian length 0x22 = 34, a response's length
  garbage += '\x00';
  garbage += '\x00';
  garbage += '\x00';
  garbage.append(34, '\x5A');  // wrong magic onward
  const auto request_size = encoded_request_size_probe().size();

  RawListener listener;
  std::thread server([&] { listener.serve_one(request_size, garbage); });
  Client client("127.0.0.1", listener.port());
  EXPECT_THROW((void)client.call(request_frame()), WireDecodeError);
  server.join();

  // And ConnectionLost is catchable as std::system_error for callers that
  // do not care about the distinction.
  RawListener refused;
  const auto port = refused.port();
  refused.stop();
  try {
    Client second("127.0.0.1", port);
    FAIL() << "connect to a closed port must throw";
  } catch (const std::system_error& error) {
    EXPECT_NE(std::string(error.what()).find("connect"), std::string::npos);
  }
}

TEST(ClientConnectionLost, SendAfterPeerResetIsTyped) {
  RawListener listener;
  std::thread server([&] { listener.serve_one(0, ""); });  // close instantly
  Client client("127.0.0.1", listener.port());
  server.join();
  // The first send may land in the kernel buffer before the RST arrives;
  // a short pipelined burst must surface ConnectionLost, not SIGPIPE.
  bool threw = false;
  try {
    for (int i = 0; i < 64; ++i) client.send(request_frame());
    (void)client.recv();
  } catch (const ConnectionLost&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_FALSE(client.connected()) << "a lost connection closes the fd";
}

}  // namespace
}  // namespace lcaknap::net
