#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "net/session.h"
#include "oracle/access.h"
#include "store/state_store.h"

/// \file test_session.cpp
/// The tenant-routing layer: hydrate-on-first-touch, per-tenant admission
/// quotas, typed unknown-tenant rejection, and the wire-level conservation
/// law (routed == completed, every status accounted) that the server and
/// the E20 bench build on.

namespace lcaknap::net {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    instance_a_ = new knapsack::Instance(
        knapsack::make_family(knapsack::Family::kNeedle, 2'000, 17));
    instance_b_ = new knapsack::Instance(
        knapsack::make_family(knapsack::Family::kUncorrelated, 1'500, 23));
    access_a_ = new oracle::MaterializedAccess(*instance_a_);
    access_b_ = new oracle::MaterializedAccess(*instance_b_);
    core::LcaKpConfig config;
    config.eps = 0.2;
    config.seed = 0x5E;
    config.quantile_samples = 20'000;
    lca_a_ = new core::LcaKp(*access_a_, config);
    config.seed = 0x6F;
    lca_b_ = new core::LcaKp(*access_b_, config);
  }
  static void TearDownTestSuite() {
    delete lca_b_;
    delete lca_a_;
    delete access_b_;
    delete access_a_;
    delete instance_b_;
    delete instance_a_;
    lca_a_ = lca_b_ = nullptr;
    access_a_ = access_b_ = nullptr;
    instance_a_ = instance_b_ = nullptr;
  }

  static TenantConfig tenant_config(const core::LcaKp* lca) {
    TenantConfig config;
    config.lca = lca;
    config.engine.workers = 2;
    config.engine.queue_capacity = 4'096;
    config.engine.batcher.max_batch_size = 16;
    config.engine.batcher.max_linger = std::chrono::microseconds(100);
    config.engine.cache.capacity = 1'024;
    config.engine.cache.shards = 4;
    return config;
  }

  static const knapsack::Instance* instance_a_;
  static const knapsack::Instance* instance_b_;
  static const oracle::MaterializedAccess* access_a_;
  static const oracle::MaterializedAccess* access_b_;
  static const core::LcaKp* lca_a_;
  static const core::LcaKp* lca_b_;
};

const knapsack::Instance* SessionTest::instance_a_ = nullptr;
const knapsack::Instance* SessionTest::instance_b_ = nullptr;
const oracle::MaterializedAccess* SessionTest::access_a_ = nullptr;
const oracle::MaterializedAccess* SessionTest::access_b_ = nullptr;
const core::LcaKp* SessionTest::lca_a_ = nullptr;
const core::LcaKp* SessionTest::lca_b_ = nullptr;

/// Collects responses from any router/engine/hydration thread.
class Collector {
 public:
  std::function<void(const ResponseFrame&)> callback() {
    return [this](const ResponseFrame& response) {
      std::lock_guard<std::mutex> lock(mutex_);
      responses_.push_back(response);
      cv_.notify_all();
    };
  }
  std::vector<ResponseFrame> wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return responses_.size() >= n; });
    return responses_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<ResponseFrame> responses_;
};

RequestFrame frame_for(const std::string& tenant, std::uint64_t id,
                       std::uint64_t item) {
  RequestFrame frame;
  frame.request_id = id;
  frame.item = item;
  frame.tenant = tenant;
  return frame;
}

TEST_F(SessionTest, HydratesOnFirstTouchAndAnswersCorrectly) {
  metrics::Registry registry;
  store::StateStore store({.capacity = 4}, registry);
  TenantRouter router(store, registry);
  router.register_tenant("a", tenant_config(lca_a_));
  EXPECT_EQ(router.engine("a"), nullptr) << "registration must stay cold";

  constexpr std::size_t kQueries = 200;
  Collector collector;
  for (std::size_t q = 0; q < kQueries; ++q) {
    router.route(frame_for("a", q, q % 500), collector.callback());
  }
  const auto responses = collector.wait_for(kQueries);
  router.drain();

  ASSERT_NE(router.engine("a"), nullptr);
  const auto& run = router.engine("a")->run();
  std::vector<bool> seen(kQueries, false);
  for (const auto& response : responses) {
    ASSERT_LT(response.request_id, kQueries);
    EXPECT_FALSE(seen[response.request_id]) << "duplicate completion";
    seen[response.request_id] = true;
    EXPECT_EQ(response.status, WireStatus::kOk);
    EXPECT_EQ(response.answer,
              lca_a_->answer_from(run, response.request_id % 500));
  }
  const auto stats = router.stats();
  EXPECT_EQ(stats.routed, kQueries);
  EXPECT_EQ(stats.completed, kQueries);
  EXPECT_EQ(stats.hydrations, 1u) << "single-flight hydration";
  EXPECT_EQ(store.stats().live_warmups, 1u);
}

TEST_F(SessionTest, UnknownTenantIsATypedInstantRejection) {
  metrics::Registry registry;
  store::StateStore store({.capacity = 4}, registry);
  TenantRouter router(store, registry);
  router.register_tenant("a", tenant_config(lca_a_));
  Collector collector;
  router.route(frame_for("ghost", 9, 0), collector.callback());
  const auto responses = collector.wait_for(1);
  EXPECT_EQ(responses[0].status, WireStatus::kUnknownTenant);
  EXPECT_EQ(responses[0].request_id, 9u);
  const auto stats = router.stats();
  EXPECT_EQ(stats.unknown_tenant, 1u);
  EXPECT_EQ(stats.routed, stats.completed);
  router.drain();
}

TEST_F(SessionTest, ZeroQuotaShedsEverythingOverloaded) {
  metrics::Registry registry;
  store::StateStore store({.capacity = 4}, registry);
  TenantRouter router(store, registry);
  auto config = tenant_config(lca_a_);
  config.max_inflight = 0;  // deterministic: every frame is over quota
  router.register_tenant("a", config);
  constexpr std::size_t kQueries = 50;
  Collector collector;
  for (std::size_t q = 0; q < kQueries; ++q) {
    router.route(frame_for("a", q, q), collector.callback());
  }
  const auto responses = collector.wait_for(kQueries);
  for (const auto& response : responses) {
    EXPECT_EQ(response.status, WireStatus::kOverloaded);
  }
  const auto stats = router.stats();
  EXPECT_EQ(stats.quota_shed, kQueries);
  EXPECT_EQ(stats.routed, stats.completed);
  router.drain();
}

TEST_F(SessionTest, WarmAllHydratesEveryTenantBeforeTraffic) {
  metrics::Registry registry;
  store::StateStore store({.capacity = 4}, registry);
  TenantRouter router(store, registry);
  router.register_tenant("a", tenant_config(lca_a_));
  router.register_tenant("b", tenant_config(lca_b_));
  router.warm_all();
  EXPECT_NE(router.engine("a"), nullptr);
  EXPECT_NE(router.engine("b"), nullptr);
  EXPECT_NE(router.engine("a"), router.engine("b"))
      << "tenants must not share an engine: isolation is structural";
  const auto stats = router.stats();
  EXPECT_EQ(stats.hydrations, 2u);
  double warm_gauge = -1.0;
  for (const auto& sample : registry.snapshot().gauges) {
    if (sample.name == "net_tenants_warm") warm_gauge = sample.value;
  }
  EXPECT_EQ(warm_gauge, 2.0);
  const auto ids = router.tenant_ids();
  EXPECT_EQ(ids.size(), 2u);
  router.drain();
}

TEST_F(SessionTest, TwoTenantsRouteToTheirOwnInstances) {
  metrics::Registry registry;
  store::StateStore store({.capacity = 4}, registry);
  TenantRouter router(store, registry);
  router.register_tenant("a", tenant_config(lca_a_));
  router.register_tenant("b", tenant_config(lca_b_));
  router.warm_all();

  constexpr std::size_t kEach = 100;
  Collector col_a;
  Collector col_b;
  for (std::size_t q = 0; q < kEach; ++q) {
    router.route(frame_for("a", q, q), col_a.callback());
    router.route(frame_for("b", q, q), col_b.callback());
  }
  const auto responses_a = col_a.wait_for(kEach);
  const auto responses_b = col_b.wait_for(kEach);
  router.drain();
  const auto& run_a = router.engine("a")->run();
  const auto& run_b = router.engine("b")->run();
  for (const auto& response : responses_a) {
    EXPECT_EQ(response.answer, lca_a_->answer_from(run_a, response.request_id));
  }
  for (const auto& response : responses_b) {
    EXPECT_EQ(response.answer, lca_b_->answer_from(run_b, response.request_id));
  }
}

TEST_F(SessionTest, ConservationHoldsAcrossMixedTraffic) {
  metrics::Registry registry;
  store::StateStore store({.capacity = 4}, registry);
  TenantRouter router(store, registry);
  router.register_tenant("a", tenant_config(lca_a_));
  constexpr std::size_t kQueries = 3'000;
  std::atomic<std::uint64_t> fired{0};
  std::array<std::atomic<std::uint64_t>, 8> by_status{};
  for (std::size_t q = 0; q < kQueries; ++q) {
    // Every third frame targets a tenant that does not exist.
    const std::string tenant = (q % 3 == 0) ? "ghost" : "a";
    router.route(frame_for(tenant, q, q % 700),
                 [&](const ResponseFrame& response) {
                   fired.fetch_add(1, std::memory_order_relaxed);
                   by_status[static_cast<std::size_t>(response.status)]
                       .fetch_add(1, std::memory_order_relaxed);
                 });
  }
  router.drain();
  EXPECT_EQ(fired.load(), kQueries) << "every route() completes exactly once";
  std::uint64_t sum = 0;
  for (const auto& count : by_status) sum += count.load();
  EXPECT_EQ(sum, kQueries);
  const auto stats = router.stats();
  EXPECT_EQ(stats.routed, kQueries);
  EXPECT_EQ(stats.completed, kQueries);
  EXPECT_EQ(by_status[static_cast<std::size_t>(WireStatus::kUnknownTenant)]
                .load(),
            stats.unknown_tenant);
}

TEST_F(SessionTest, DrainShedsSubsequentTraffic) {
  metrics::Registry registry;
  store::StateStore store({.capacity = 4}, registry);
  TenantRouter router(store, registry);
  router.register_tenant("a", tenant_config(lca_a_));
  router.warm_all();
  router.drain();
  Collector collector;
  router.route(frame_for("a", 1, 1), collector.callback());
  const auto responses = collector.wait_for(1);
  EXPECT_EQ(responses[0].status, WireStatus::kOverloaded);
}

TEST_F(SessionTest, RegistrationValidatesItsArguments) {
  metrics::Registry registry;
  store::StateStore store({.capacity = 4}, registry);
  TenantRouter router(store, registry);
  EXPECT_THROW(router.register_tenant("bad id", tenant_config(lca_a_)),
               std::invalid_argument);
  EXPECT_THROW(router.register_tenant("", tenant_config(lca_a_)),
               std::invalid_argument);
  TenantConfig null_lca;
  EXPECT_THROW(router.register_tenant("a", null_lca), std::invalid_argument);
  router.register_tenant("a", tenant_config(lca_a_));
  EXPECT_THROW(router.register_tenant("a", tenant_config(lca_a_)),
               std::invalid_argument);
  router.drain();
}

TEST_F(SessionTest, SharedStoreCoalescesWarmStateAcrossRouters) {
  // Two routers (two "servers" in one process) over one StateStore: the
  // second router's hydration is a store hit, not a second warm-up —
  // Lemma 4.9 makes the sharing sound.
  metrics::Registry registry;
  store::StateStore store({.capacity = 4}, registry);
  TenantRouter first(store, registry);
  first.register_tenant("a", tenant_config(lca_a_));
  first.warm_all();
  TenantRouter second(store, registry);
  second.register_tenant("a", tenant_config(lca_a_));
  second.warm_all();
  EXPECT_EQ(store.stats().live_warmups, 1u);
  EXPECT_EQ(store.stats().hits, 1u);
  // Same warm state, bit for bit (Lemma 4.9: a pure function of the seed).
  EXPECT_EQ(core::run_digest(first.engine("a")->run()),
            core::run_digest(second.engine("a")->run()));
  first.drain();
  second.drain();
}

}  // namespace
}  // namespace lcaknap::net
