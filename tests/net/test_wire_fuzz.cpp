#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include "net/wire.h"

/// \file test_wire_fuzz.cpp
/// Adversarial input sweeps for the wire decoder, mirroring the snapshot
/// format's fuzz precedent (tests/store/test_snapshot_fuzz.cpp): a decoder
/// that fronts a TCP socket must treat every byte as hostile.
///
/// Pinned properties:
///   * **every single-bit flip** of a valid frame is rejected with a typed
///     `WireDecodeError` (or legitimately needs more bytes when the flip
///     grows the length prefix) — never a crash, never a silent mis-decode;
///   * **every truncation** returns 0 ("need more"), so a TCP read boundary
///     can never produce an error or a bogus frame;
///   * random garbage never crashes the decoder.

namespace lcaknap::net {
namespace {

std::string valid_request_bytes() {
  RequestFrame frame;
  frame.flags = 0;
  frame.request_id = 0xDEAD'BEEF'0123'4567ull;
  frame.item = 1'234;
  frame.deadline_us = 250;
  frame.tenant = "fuzz-tenant.0";
  std::string bytes;
  encode(frame, bytes);
  return bytes;
}

std::string valid_response_bytes() {
  ResponseFrame frame;
  frame.request_id = 0xBADC'0FFE'E000'0001ull;
  frame.status = WireStatus::kDegraded;
  frame.answer = true;
  frame.cache_hit = true;
  std::string bytes;
  encode(frame, bytes);
  return bytes;
}

TEST(WireFuzz, EverySingleBitFlipOfARequestFrameIsRejected) {
  const std::string valid = valid_request_bytes();
  // Pad with a second valid frame: a flip that *grows* the length prefix
  // (still under the cap) then has bytes to read, forcing the decoder to
  // make a decision instead of waiting — the structural tenant_len cross-
  // check or the CRC must reject it.
  const std::string padding = valid;
  std::size_t rejected = 0;
  std::size_t need_more = 0;
  for (std::size_t bit = 0; bit < valid.size() * 8; ++bit) {
    std::string bytes = valid + padding;
    bytes[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
    RequestFrame frame;
    try {
      const auto consumed = decode(bytes, frame);
      if (consumed == 0) {
        // Only a length-field flip may legitimately ask for more bytes, and
        // only by growing it beyond what valid+padding supplies.
        EXPECT_LT(bit, 32u) << "non-length flip at bit " << bit
                            << " decoded as need-more";
        ++need_more;
      } else {
        ADD_FAILURE() << "bit flip " << bit << " produced a successful decode"
                      << " (consumed " << consumed << ")";
      }
    } catch (const WireDecodeError&) {
      ++rejected;  // typed rejection: the pinned behaviour
    } catch (...) {
      ADD_FAILURE() << "bit flip " << bit << " escaped the typed error";
    }
  }
  // The overwhelming majority must be typed rejections, and every flip is
  // accounted for as rejected or need-more.
  EXPECT_EQ(rejected + need_more, valid.size() * 8);
  EXPECT_GE(rejected, valid.size() * 8 - 32);
}

TEST(WireFuzz, EverySingleBitFlipOfAResponseFrameIsRejected) {
  const std::string valid = valid_response_bytes();
  const std::string padding = valid;
  std::size_t rejected = 0;
  std::size_t need_more = 0;
  for (std::size_t bit = 0; bit < valid.size() * 8; ++bit) {
    std::string bytes = valid + padding;
    bytes[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
    ResponseFrame frame;
    try {
      const auto consumed = decode(bytes, frame);
      if (consumed == 0) {
        EXPECT_LT(bit, 32u);
        ++need_more;
      } else {
        ADD_FAILURE() << "bit flip " << bit << " produced a successful decode";
      }
    } catch (const WireDecodeError&) {
      ++rejected;
    } catch (...) {
      ADD_FAILURE() << "bit flip " << bit << " escaped the typed error";
    }
  }
  EXPECT_EQ(rejected + need_more, valid.size() * 8);
}

TEST(WireFuzz, EveryTruncationNeedsMoreBytesAndNeverThrows) {
  const std::string request = valid_request_bytes();
  for (std::size_t keep = 0; keep < request.size(); ++keep) {
    RequestFrame frame;
    std::size_t consumed = 1;
    EXPECT_NO_THROW(consumed =
                        decode(std::string_view(request.data(), keep), frame))
        << "truncation to " << keep << " bytes threw";
    EXPECT_EQ(consumed, 0u) << "truncation to " << keep << " bytes decoded";
  }
  const std::string response = valid_response_bytes();
  for (std::size_t keep = 0; keep < response.size(); ++keep) {
    ResponseFrame frame;
    std::size_t consumed = 1;
    EXPECT_NO_THROW(consumed =
                        decode(std::string_view(response.data(), keep), frame));
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(WireFuzz, TruncationThenRemainderDecodesTheOriginalFrame) {
  // The incremental contract end-to-end: feed a growing prefix until the
  // decoder accepts, and what it accepts is exactly the original frame.
  const std::string bytes = valid_request_bytes();
  RequestFrame frame;
  std::size_t keep = 0;
  while (decode(std::string_view(bytes.data(), keep), frame) == 0) {
    ASSERT_LT(keep, bytes.size());
    ++keep;
  }
  EXPECT_EQ(keep, bytes.size());
  EXPECT_EQ(frame.tenant, "fuzz-tenant.0");
  EXPECT_EQ(frame.item, 1'234u);
}

TEST(WireFuzz, RandomGarbageNeverCrashesTheDecoder) {
  std::mt19937_64 rng(0xF422);  // deterministic: failures must reproduce
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> length(0, 512);
  std::size_t rejected = 0;
  for (int round = 0; round < 20'000; ++round) {
    std::string bytes(length(rng), '\0');
    for (auto& b : bytes) b = static_cast<char>(byte(rng));
    RequestFrame request;
    try {
      (void)decode(bytes, request);
    } catch (const WireDecodeError&) {
      ++rejected;
    }
    ResponseFrame response;
    try {
      (void)decode(bytes, response);
    } catch (const WireDecodeError&) {
      ++rejected;
    }
  }
  // Random garbage essentially never passes magic+CRC; the counter proves
  // the decoder actually ran (not short-circuited on empty buffers).
  EXPECT_GT(rejected, 10'000u);
}

TEST(WireFuzz, GarbagePrefixedStreamRecoversNothing) {
  // A stream that desyncs is torn down by the server, but the decoder
  // itself must still never mis-frame: garbage + valid frame decodes as an
  // error (or needs more), not as the embedded valid frame.
  const std::string valid = valid_request_bytes();
  std::string bytes = "GARBAGE!";
  bytes += valid;
  RequestFrame frame;
  try {
    const auto consumed = decode(bytes, frame);
    // 'GARB...' as a length prefix is enormous: must be kBadLength, never a
    // successful decode skipping the garbage.
    EXPECT_EQ(consumed, 0u);
  } catch (const WireDecodeError& e) {
    EXPECT_TRUE(e.error() == WireError::kBadLength ||
                e.error() == WireError::kBadMagic);
  }
}

}  // namespace
}  // namespace lcaknap::net
