#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "net/wire.h"

/// \file test_wire.cpp
/// Round-trip and typed-error tests for the length-prefixed wire protocol
/// (docs/NETWORKING.md).  The single-bit-flip and truncation sweeps live in
/// test_wire_fuzz.cpp; this file pins the happy paths and that each layer of
/// the layered defense produces its *typed* `WireDecodeError`.

namespace lcaknap::net {
namespace {

RequestFrame sample_request() {
  RequestFrame frame;
  frame.flags = RequestFrame::kFlagShutdown;
  frame.request_id = 0x0123'4567'89AB'CDEFull;
  frame.item = 42;
  frame.deadline_us = 1'500;
  frame.tenant = "tenant-a.v2_test";
  return frame;
}

TEST(Wire, RequestRoundTripPreservesEveryField) {
  std::string bytes;
  encode(sample_request(), bytes);
  RequestFrame decoded;
  const auto consumed = decode(bytes, decoded);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(decoded.flags, RequestFrame::kFlagShutdown);
  EXPECT_EQ(decoded.request_id, 0x0123'4567'89AB'CDEFull);
  EXPECT_EQ(decoded.item, 42u);
  EXPECT_EQ(decoded.deadline_us, 1'500u);
  EXPECT_EQ(decoded.tenant, "tenant-a.v2_test");
}

TEST(Wire, ResponseRoundTripForEveryStatus) {
  for (std::uint16_t s = 0; s <= 7; ++s) {
    ResponseFrame frame;
    frame.request_id = 77 + s;
    frame.status = static_cast<WireStatus>(s);
    frame.answer = (s % 2) == 0;
    frame.cache_hit = (s % 3) == 0;
    std::string bytes;
    encode(frame, bytes);
    EXPECT_EQ(bytes.size(), encoded_response_size());
    ResponseFrame decoded;
    EXPECT_EQ(decode(bytes, decoded), bytes.size());
    EXPECT_EQ(decoded.request_id, frame.request_id);
    EXPECT_EQ(decoded.status, frame.status);
    EXPECT_EQ(decoded.answer, frame.answer);
    EXPECT_EQ(decoded.cache_hit, frame.cache_hit);
  }
}

TEST(Wire, ResponseRoundTripPreservesReplicaId) {
  // replica_id is the fleet's attribution field (who answered): it must
  // survive the wire bit-for-bit, 0 (unassigned) included.
  for (const std::uint64_t id : {0ull, 1ull, 42ull, 0xFFFF'FFFF'FFFF'FFFFull}) {
    ResponseFrame frame;
    frame.request_id = 9;
    frame.replica_id = id;
    frame.status = WireStatus::kOk;
    std::string bytes;
    encode(frame, bytes);
    ResponseFrame decoded;
    ASSERT_EQ(decode(bytes, decoded), bytes.size());
    EXPECT_EQ(decoded.replica_id, id);
  }
}

TEST(Wire, HealthFlagRoundTripsAndCoexistsWithShutdown) {
  // The readiness probe (kFlagHealth) is just a flag bit on an ordinary
  // request frame: same encoder, same defenses, no separate frame kind.
  RequestFrame frame = sample_request();
  frame.flags = RequestFrame::kFlagHealth;
  std::string bytes;
  encode(frame, bytes);
  RequestFrame decoded;
  ASSERT_EQ(decode(bytes, decoded), bytes.size());
  EXPECT_EQ(decoded.flags, RequestFrame::kFlagHealth);

  // The two defined flags occupy distinct bits.
  EXPECT_EQ(RequestFrame::kFlagShutdown & RequestFrame::kFlagHealth, 0);
  frame.flags = RequestFrame::kFlagShutdown | RequestFrame::kFlagHealth;
  bytes.clear();
  encode(frame, bytes);
  ASSERT_EQ(decode(bytes, decoded), bytes.size());
  EXPECT_EQ(decoded.flags,
            RequestFrame::kFlagShutdown | RequestFrame::kFlagHealth);
}

TEST(Wire, DecodeIsIncrementalAcrossABufferOfManyFrames) {
  // A TCP read boundary can land anywhere: several frames in one buffer
  // decode one by one, each consuming exactly its own bytes.
  std::string bytes;
  for (int i = 0; i < 5; ++i) {
    auto frame = sample_request();
    frame.request_id = static_cast<std::uint64_t>(i);
    frame.tenant = "t" + std::to_string(i);
    encode(frame, bytes);
  }
  std::string_view view(bytes);
  for (int i = 0; i < 5; ++i) {
    RequestFrame decoded;
    const auto consumed = decode(view, decoded);
    ASSERT_GT(consumed, 0u);
    EXPECT_EQ(decoded.request_id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(decoded.tenant, "t" + std::to_string(i));
    view.remove_prefix(consumed);
  }
  EXPECT_TRUE(view.empty());
}

TEST(Wire, IncompleteBufferReturnsZeroNotAnError) {
  std::string bytes;
  encode(sample_request(), bytes);
  RequestFrame decoded;
  EXPECT_EQ(decode(std::string_view(bytes.data(), 0), decoded), 0u);
  EXPECT_EQ(decode(std::string_view(bytes.data(), 3), decoded), 0u);
  EXPECT_EQ(decode(std::string_view(bytes.data(), bytes.size() - 1), decoded),
            0u);
}

TEST(Wire, ValidTenantEnforcesTheInstanceIdAlphabet) {
  EXPECT_TRUE(valid_tenant("a"));
  EXPECT_TRUE(valid_tenant("Tenant_1.prod-eu"));
  EXPECT_TRUE(valid_tenant(std::string(kMaxTenantBytes, 'x')));
  EXPECT_FALSE(valid_tenant(""));
  EXPECT_FALSE(valid_tenant(std::string(kMaxTenantBytes + 1, 'x')));
  EXPECT_FALSE(valid_tenant("has space"));
  EXPECT_FALSE(valid_tenant("sl/ash"));
  EXPECT_FALSE(valid_tenant(std::string("nu\0l", 4)));
}

TEST(Wire, EncodeRefusesAnInvalidTenant) {
  // Encoding never produces an undecodable frame; the error is at the API
  // boundary, not on the peer's decoder.
  std::string bytes;
  RequestFrame frame = sample_request();
  frame.tenant = "";
  EXPECT_THROW(encode(frame, bytes), std::invalid_argument);
  frame.tenant = std::string(kMaxTenantBytes + 1, 'a');
  EXPECT_THROW(encode(frame, bytes), std::invalid_argument);
  frame.tenant = "bad tenant";
  EXPECT_THROW(encode(frame, bytes), std::invalid_argument);
  EXPECT_TRUE(bytes.empty());
}

WireError decode_error_of(const std::string& bytes) {
  RequestFrame frame;
  try {
    (void)decode(bytes, frame);
  } catch (const WireDecodeError& e) {
    return e.error();
  }
  ADD_FAILURE() << "decode unexpectedly succeeded";
  return WireError::kBadCrc;
}

TEST(Wire, EachDefenseLayerThrowsItsTypedError) {
  std::string valid;
  encode(sample_request(), valid);

  {  // magic
    std::string bytes = valid;
    bytes[4] ^= 0x01;
    EXPECT_EQ(decode_error_of(bytes), WireError::kBadMagic);
  }
  {  // version
    std::string bytes = valid;
    bytes[8] = '\x7F';
    EXPECT_EQ(decode_error_of(bytes), WireError::kBadVersion);
  }
  {  // tenant charset (corrupt a tenant byte to a space; CRC is later)
    std::string bytes = valid;
    bytes[38] = ' ';  // first tenant byte: 4B prefix + 34B fixed header
    EXPECT_EQ(decode_error_of(bytes), WireError::kBadTenant);
  }
  {  // CRC: flip a payload bit that passes every structural check
    std::string bytes = valid;
    bytes[12] ^= 0x01;  // low byte of request_id
    EXPECT_EQ(decode_error_of(bytes), WireError::kBadCrc);
  }
  {  // length: in-range but inconsistent with tenant_len
    std::string bytes = valid;
    bytes[0] ^= 0x01;
    bytes += valid;  // padding so the grown length is available
    EXPECT_EQ(decode_error_of(bytes), WireError::kBadLength);
  }
  {  // length: beyond the frame cap
    std::string bytes = valid;
    bytes[3] = '\x7F';
    EXPECT_EQ(decode_error_of(bytes), WireError::kBadLength);
  }
  {  // response status outside the enum
    ResponseFrame response;
    response.status = WireStatus::kOk;
    std::string bytes;
    encode(response, bytes);
    bytes[10] = '\x09';  // status low byte -> 9, past kShuttingDown
    ResponseFrame decoded;
    try {
      (void)decode(bytes, decoded);
      ADD_FAILURE() << "bad status decoded";
    } catch (const WireDecodeError& e) {
      // The CRC seal also broke; either typed rejection is sound, but the
      // status domain must be checked for frames with a *valid* seal too,
      // which the fuzz suite cannot synthesize — re-seal by re-encoding.
      EXPECT_TRUE(e.error() == WireError::kBadStatus ||
                  e.error() == WireError::kBadCrc);
    }
  }
}

TEST(Wire, StatusNamesAndOutcomeProjectionAreTotal) {
  EXPECT_STREQ(wire_status_name(WireStatus::kOk), "ok");
  EXPECT_STREQ(wire_status_name(WireStatus::kShuttingDown), "shutting_down");
  EXPECT_EQ(wire_status_of(serve::Outcome::kOk), WireStatus::kOk);
  EXPECT_EQ(wire_status_of(serve::Outcome::kOverloaded),
            WireStatus::kOverloaded);
  EXPECT_EQ(wire_status_of(serve::Outcome::kDeadlineExceeded),
            WireStatus::kDeadlineExceeded);
  EXPECT_EQ(wire_status_of(serve::Outcome::kDegraded), WireStatus::kDegraded);
  EXPECT_EQ(wire_status_of(serve::Outcome::kError), WireStatus::kError);
  EXPECT_STREQ(wire_error_name(WireError::kBadCrc), "bad_crc");
}

}  // namespace
}  // namespace lcaknap::net
