// Multi-threaded hammer for the failure-injection decorators.  The serving
// engine shares one oracle stack across all workers, so FlakyAccess /
// RetryingAccess must tolerate concurrent callers: the failure-decision RNG
// is mutex-guarded, counters are atomic, and every caller passes its own
// sampling tape (the documented single-owner object).  These tests assert
// the conservation laws that survive arbitrary interleavings; run them
// under TSan (the CI tsan job does) to catch the races assertions cannot.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "oracle/flaky.h"

namespace lcaknap::oracle {
namespace {

constexpr int kThreads = 4;
constexpr int kCallsPerThread = 10'000;

TEST(ConcurrentAccess, FlakyRetryingStackConservesCounts) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 500, 3);
  metrics::Registry registry;
  const MaterializedAccess storage(inst);
  // failure_rate 0.1 with 16 attempts: the chance any call exhausts retries
  // is 1e-16 per call — effectively zero across the hammer.
  const FlakyAccess flaky(storage, 0.1, 0xF00D, registry);
  const RetryingAccess access(flaky, 16, registry);

  std::atomic<std::uint64_t> ok_queries{0};
  std::atomic<std::uint64_t> ok_samples{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Per-thread sampling tape: the single-owner requirement in action.
      util::Xoshiro256 tape(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kCallsPerThread; ++i) {
        if (i % 2 == 0) {
          const auto item = access.query(static_cast<std::size_t>(i) % inst.size());
          ok_queries.fetch_add(1);
          ASSERT_GE(item.profit, 0);
        } else {
          const auto draw = access.weighted_sample(tape);
          ok_samples.fetch_add(1);
          ASSERT_LT(draw.index, inst.size());
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kCallsPerThread;
  // Every call eventually succeeded.
  EXPECT_EQ(ok_queries.load() + ok_samples.load(), total);
  // Conservation through the stack: storage saw exactly the successful
  // calls; every injected failure was absorbed by exactly one retry.
  EXPECT_EQ(storage.access_count(), total);
  EXPECT_EQ(flaky.failures_injected(), access.retries_performed());
  EXPECT_GT(flaky.failures_injected(), 0u);  // the injector actually fired
  // Flaky's own counters saw successes + failures.
  EXPECT_EQ(flaky.access_count(), total + flaky.failures_injected());
  // Registry mirrors the legacy accessors exactly.
  EXPECT_EQ(registry.counter_value("oracle_failures_total"),
            flaky.failures_injected());
  EXPECT_EQ(registry.counter_value("oracle_retries_total"),
            access.retries_performed());
}

TEST(ConcurrentAccess, FailureRateSurvivesContention) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 200, 5);
  metrics::Registry registry;
  const MaterializedAccess storage(inst);
  const FlakyAccess flaky(storage, 0.2, 0xBEEF, registry);

  std::atomic<std::uint64_t> failures_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        try {
          (void)flaky.query(static_cast<std::size_t>(i) % inst.size());
        } catch (const OracleUnavailable&) {
          failures_seen.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Exactly-once failure delivery: the decorator's count equals the number
  // of exceptions observed across all threads (nothing lost or doubled).
  EXPECT_EQ(flaky.failures_injected(), failures_seen.load());
  // The mutex-guarded RNG still injects at the configured rate: 40k draws
  // at p = 0.2 concentrate tightly around 8000 (+-5 sigma ~ +-400).
  const double total = static_cast<double>(kThreads) * kCallsPerThread;
  const double rate = static_cast<double>(failures_seen.load()) / total;
  EXPECT_NEAR(rate, 0.2, 0.01);
}

}  // namespace
}  // namespace lcaknap::oracle
