#include "oracle/access.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "knapsack/generators.h"
#include "util/stats.h"

namespace lcaknap::oracle {
namespace {

knapsack::Instance tiny() {
  return knapsack::Instance({{10, 2}, {30, 3}, {60, 4}}, 6);
}

TEST(MaterializedAccess, ExposesMetadataFreely) {
  const auto inst = tiny();
  const MaterializedAccess access(inst);
  EXPECT_EQ(access.size(), 3u);
  EXPECT_EQ(access.capacity(), 6);
  EXPECT_EQ(access.total_profit(), 100);
  EXPECT_EQ(access.total_weight(), 9);
  EXPECT_EQ(access.access_count(), 0u);  // metadata is not counted
}

TEST(MaterializedAccess, QueriesAreCounted) {
  const auto inst = tiny();
  const MaterializedAccess access(inst);
  EXPECT_EQ(access.query(1), inst.item(1));
  EXPECT_EQ(access.query(2), inst.item(2));
  EXPECT_EQ(access.query_count(), 2u);
  EXPECT_EQ(access.sample_count(), 0u);
  access.reset_counters();
  EXPECT_EQ(access.access_count(), 0u);
}

TEST(MaterializedAccess, SamplesAreCounted) {
  const auto inst = tiny();
  const MaterializedAccess access(inst);
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 10; ++i) (void)access.weighted_sample(rng);
  EXPECT_EQ(access.sample_count(), 10u);
}

TEST(MaterializedAccess, WeightedSamplingIsProfitProportional) {
  const auto inst = tiny();  // profits 10, 30, 60
  const MaterializedAccess access(inst);
  util::Xoshiro256 rng(2);
  std::vector<std::size_t> counts(3, 0);
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) {
    const auto draw = access.weighted_sample(rng);
    ASSERT_LT(draw.index, 3u);
    EXPECT_EQ(draw.item, inst.item(draw.index));
    ++counts[draw.index];
  }
  const std::vector<double> probs{0.1, 0.3, 0.6};
  EXPECT_LT(util::chi_square(counts, probs), 13.8);  // df=2, 99.9th pct
}

TEST(MaterializedAccess, NormalizedHelpers) {
  const auto inst = tiny();
  const MaterializedAccess access(inst);
  const auto item = access.query(2);
  EXPECT_DOUBLE_EQ(access.norm_profit(item), 0.6);
  EXPECT_DOUBLE_EQ(access.norm_weight(item), 4.0 / 9.0);
  EXPECT_DOUBLE_EQ(access.efficiency(item), 0.6 / (4.0 / 9.0));
  EXPECT_DOUBLE_EQ(access.norm_capacity(), 6.0 / 9.0);
}

TEST(MaterializedAccess, EfficiencyOfZeroWeightIsInfinite) {
  const knapsack::Instance inst({{5, 0}, {5, 1}}, 2);
  const MaterializedAccess access(inst);
  EXPECT_TRUE(std::isinf(access.efficiency(access.query(0))));
}

TEST(MaterializedAccess, CountersAreThreadSafe) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 100, 3);
  const MaterializedAccess access(inst);
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&access, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        (void)access.query(static_cast<std::size_t>(rng.next_below(100)));
        (void)access.weighted_sample(rng);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(access.query_count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(access.sample_count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace lcaknap::oracle
