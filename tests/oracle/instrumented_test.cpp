#include "oracle/instrumented.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "knapsack/generators.h"
#include "oracle/flaky.h"
#include "oracle/sharded.h"

namespace lcaknap::oracle {
namespace {

knapsack::Instance small_instance() {
  return knapsack::make_family(knapsack::Family::kUncorrelated, 200, 17);
}

/// Replays a fixed mixed query/sample call sequence against `access`.
void recorded_call_sequence(const InstanceAccess& access, std::uint64_t tape_seed) {
  util::Xoshiro256 tape(tape_seed);
  for (int round = 0; round < 500; ++round) {
    (void)access.query(static_cast<std::size_t>(tape.next_below(access.size())));
    if (round % 3 == 0) (void)access.weighted_sample(tape);
    if (round % 7 == 0) {
      (void)access.query(static_cast<std::size_t>(tape.next_below(access.size())));
    }
  }
}

TEST(InstrumentedAccess, RegistryCountsMatchLegacyAtomicsExactly) {
  const auto inst = small_instance();
  metrics::Registry registry;
  const MaterializedAccess storage(inst);
  const InstrumentedAccess access(storage, registry);

  recorded_call_sequence(access, 5);

  // Canonical path (registry) == decorator's legacy shims == storage's.
  EXPECT_EQ(registry.counter_value("oracle_queries_total"), access.query_count());
  EXPECT_EQ(registry.counter_value("oracle_samples_total"), access.sample_count());
  EXPECT_EQ(access.query_count(), storage.query_count());
  EXPECT_EQ(access.sample_count(), storage.sample_count());
  EXPECT_GT(access.query_count(), 0u);
  EXPECT_GT(access.sample_count(), 0u);
}

TEST(InstrumentedAccess, IsTransparentToResults) {
  const auto inst = small_instance();
  metrics::Registry registry;
  const MaterializedAccess plain(inst);
  const MaterializedAccess storage(inst);
  const InstrumentedAccess instrumented(storage, registry);

  util::Xoshiro256 tape_a(9);
  util::Xoshiro256 tape_b(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(instrumented.query(static_cast<std::size_t>(i % inst.size())),
              plain.query(static_cast<std::size_t>(i % inst.size())));
    const auto draw_a = instrumented.weighted_sample(tape_a);
    const auto draw_b = plain.weighted_sample(tape_b);
    EXPECT_EQ(draw_a.index, draw_b.index);
    EXPECT_EQ(draw_a.item, draw_b.item);
  }
}

TEST(InstrumentedAccess, LatencyModelFeedsHistogram) {
  const auto inst = small_instance();
  metrics::Registry registry;
  const MaterializedAccess storage(inst);
  const InstrumentedAccess access(storage, registry,
                                  LatencyModel{/*fixed_us=*/50.0,
                                               /*exp_mean_us=*/20.0},
                                  /*latency_seed=*/3);
  recorded_call_sequence(access, 6);

  const auto snap = registry.snapshot();
  bool found = false;
  for (const auto& h : snap.histograms) {
    if (h.name != "oracle_access_latency_us") continue;
    found = true;
    EXPECT_EQ(h.count, access.access_count());
    // Every draw pays at least the fixed cost.
    EXPECT_GE(h.sum, 50.0 * static_cast<double>(h.count));
  }
  EXPECT_TRUE(found);
}

TEST(InstrumentedAccess, WithoutModelRegistersNoLatencyHistogram) {
  const auto inst = small_instance();
  metrics::Registry registry;
  const MaterializedAccess storage(inst);
  const InstrumentedAccess access(storage, registry);
  (void)access.query(0);
  for (const auto& h : registry.snapshot().histograms) {
    EXPECT_NE(h.name, "oracle_access_latency_us");
  }
}

TEST(InstrumentedAccess, ConcurrentTrafficKeepsBothPathsEqual) {
  const auto inst = small_instance();
  metrics::Registry registry;
  const MaterializedAccess storage(inst);
  const InstrumentedAccess access(storage, registry);
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&access, t] { recorded_call_sequence(access, 100 + static_cast<std::uint64_t>(t)); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter_value("oracle_queries_total"), access.query_count());
  EXPECT_EQ(registry.counter_value("oracle_samples_total"), access.sample_count());
}

TEST(FlakyAndRetrying, FailureAndRetryCountersMirrorLegacyAccessors) {
  const auto inst = small_instance();
  metrics::Registry registry;
  const MaterializedAccess storage(inst);
  const InstrumentedAccess instrumented(storage, registry);
  const FlakyAccess flaky(instrumented, /*failure_rate=*/0.3, /*seed=*/11, registry);
  const RetryingAccess client(flaky, /*max_attempts=*/64, registry);

  recorded_call_sequence(client, 21);

  EXPECT_GT(flaky.failures_injected(), 0u);
  EXPECT_EQ(registry.counter_value("oracle_failures_total"), flaky.failures_injected());
  EXPECT_EQ(registry.counter_value("oracle_retries_total"), client.retries_performed());
  // Failures fire before storage is touched: the canonical query/sample
  // counters only see successful attempts.
  EXPECT_EQ(registry.counter_value("oracle_queries_total"), storage.query_count());
  EXPECT_EQ(registry.counter_value("oracle_samples_total"), storage.sample_count());
}

TEST(FlakyAndRetrying, ReliableStackRegistersZeroedFamilies) {
  const auto inst = small_instance();
  metrics::Registry registry;
  const MaterializedAccess storage(inst);
  const RetryingAccess client(storage, 4, registry);
  (void)client.query(0);
  // The family exists (an operator's dashboard can always plot it) at zero.
  const auto snap = registry.snapshot();
  bool found = false;
  for (const auto& c : snap.counters) {
    if (c.name == "oracle_retries_total") {
      found = true;
      EXPECT_EQ(c.value, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ShardedAccess, PerShardTrafficCountersMatchShardLoads) {
  const auto inst = small_instance();
  metrics::Registry registry;
  const ShardedAccess sharded(inst, 4, registry);
  util::Xoshiro256 tape(31);
  for (int i = 0; i < 400; ++i) {
    (void)sharded.query(static_cast<std::size_t>(tape.next_below(inst.size())));
    (void)sharded.weighted_sample(tape);
  }
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    EXPECT_EQ(registry.counter_value("oracle_shard_accesses_total",
                                     {{"shard", std::to_string(s)}}),
              sharded.shard_load(s));
    total += sharded.shard_load(s);
  }
  EXPECT_EQ(total, sharded.access_count());
}

}  // namespace
}  // namespace lcaknap::oracle
