#include "oracle/sharded.h"

#include "oracle/flaky.h"

#include <gtest/gtest.h>

#include "knapsack/generators.h"
#include "util/stats.h"

namespace lcaknap::oracle {
namespace {

TEST(ShardedAccess, ValidatesShardCount) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 10, 1);
  EXPECT_THROW(ShardedAccess(inst, 0), std::invalid_argument);
  EXPECT_THROW(ShardedAccess(inst, 11), std::invalid_argument);
  EXPECT_NO_THROW(ShardedAccess(inst, 10));
}

TEST(ShardedAccess, QueriesRouteToTheRightItems) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 97, 2);
  const ShardedAccess access(inst, 7);  // uneven split: 97 = 7*13 + 6
  for (std::size_t i = 0; i < inst.size(); i += 5) {
    EXPECT_EQ(access.query(i), inst.item(i));
  }
  EXPECT_THROW((void)access.query(97), std::out_of_range);
}

TEST(ShardedAccess, SamplingStaysProfitProportional) {
  // The two-level scheme must compose to the flat distribution.
  const knapsack::Instance inst({{10, 1}, {20, 1}, {30, 1}, {15, 1}, {25, 1}}, 5);
  const ShardedAccess access(inst, 2);
  util::Xoshiro256 rng(3);
  std::vector<std::size_t> counts(5, 0);
  constexpr int kTrials = 200'000;
  for (int i = 0; i < kTrials; ++i) {
    const auto draw = access.weighted_sample(rng);
    EXPECT_EQ(draw.item, inst.item(draw.index));
    ++counts[draw.index];
  }
  const std::vector<double> probs{0.1, 0.2, 0.3, 0.15, 0.25};
  EXPECT_LT(util::chi_square(counts, probs), 18.5);  // df=4, 99.9th pct
}

TEST(ShardedAccess, LoadCountersSumToGlobalCounters) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 1'000, 4);
  const ShardedAccess access(inst, 8);
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 5'000; ++i) (void)access.weighted_sample(rng);
  for (std::size_t i = 0; i < 500; ++i) (void)access.query(i);
  std::uint64_t shard_total = 0;
  for (std::size_t s = 0; s < access.shard_count(); ++s) {
    shard_total += access.shard_load(s);
  }
  EXPECT_EQ(shard_total, access.access_count());
  EXPECT_EQ(access.sample_count(), 5'000u);
  EXPECT_EQ(access.query_count(), 500u);
}

TEST(ShardedAccess, HeavyShardCarriesTheLoad) {
  // Put all profit in the last shard: sampling load concentrates there.
  std::vector<knapsack::Item> items(100, knapsack::Item{1, 1});
  for (std::size_t i = 90; i < 100; ++i) items[i].profit = 10'000;
  const knapsack::Instance inst(std::move(items), 100);
  const ShardedAccess access(inst, 10);
  util::Xoshiro256 rng(6);
  for (int i = 0; i < 10'000; ++i) (void)access.weighted_sample(rng);
  EXPECT_GT(access.shard_load(9), 9'800u);
}

TEST(ShardedAccess, ComposesWithFailureInjection) {
  // A flaky layer over a sharded cluster, with retries on top: the full
  // distributed stack end to end.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 500, 8);
  const ShardedAccess cluster(inst, 4);
  const FlakyAccess flaky(cluster, 0.3, 9);
  const RetryingAccess client(flaky, 32);
  util::Xoshiro256 rng(10);
  for (int i = 0; i < 2'000; ++i) {
    const auto draw = client.weighted_sample(rng);
    EXPECT_EQ(draw.item, inst.item(draw.index));
  }
  EXPECT_GT(client.retries_performed(), 0u);
  std::uint64_t shard_total = 0;
  for (std::size_t s = 0; s < cluster.shard_count(); ++s) {
    shard_total += cluster.shard_load(s);
  }
  // Every successful draw reached exactly one shard.
  EXPECT_EQ(shard_total, cluster.sample_count());
}

TEST(ShardedAccess, WorksAsLcaBackend) {
  // Smoke: the sharded oracle is a drop-in InstanceAccess.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 2'000, 7);
  const ShardedAccess sharded(inst, 4);
  EXPECT_EQ(sharded.total_profit(), inst.total_profit());
  EXPECT_EQ(sharded.norm_capacity(),
            static_cast<double>(inst.capacity()) /
                static_cast<double>(inst.total_weight()));
}

}  // namespace
}  // namespace lcaknap::oracle
