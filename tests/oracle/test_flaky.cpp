#include "oracle/flaky.h"

#include <gtest/gtest.h>

#include <limits>

#include "knapsack/generators.h"
#include "oracle/latency_model.h"

namespace lcaknap::oracle {
namespace {

TEST(FlakyAccess, InjectsAtConfiguredRate) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 50, 1);
  const MaterializedAccess inner(inst);
  const FlakyAccess flaky(inner, 0.3, /*seed=*/7);
  int failures = 0;
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    try {
      (void)flaky.query(static_cast<std::size_t>(i % 50));
    } catch (const OracleUnavailable&) {
      ++failures;
    }
  }
  EXPECT_NEAR(static_cast<double>(failures) / kTrials, 0.3, 0.02);
  EXPECT_EQ(flaky.failures_injected(), static_cast<std::uint64_t>(failures));
}

TEST(FlakyAccess, ZeroRateNeverFails) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 10, 2);
  const MaterializedAccess inner(inst);
  const FlakyAccess flaky(inner, 0.0, 3);
  for (int i = 0; i < 1000; ++i) EXPECT_NO_THROW((void)flaky.query(0));
}

TEST(FlakyAccess, RejectsBadRate) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 10, 2);
  const MaterializedAccess inner(inst);
  EXPECT_THROW(FlakyAccess(inner, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(FlakyAccess(inner, -0.1, 1), std::invalid_argument);
  // Regression: NaN fails every ordered comparison, so the old
  // `rate < 0 || rate >= 1` check silently accepted it as "never fail".
  EXPECT_THROW(FlakyAccess(inner, std::numeric_limits<double>::quiet_NaN(), 1),
               std::invalid_argument);
  EXPECT_THROW(FlakyAccess(inner, std::numeric_limits<double>::infinity(), 1),
               std::invalid_argument);
}

TEST(RetryingAccess, MasksTransientFailures) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 50, 4);
  const MaterializedAccess inner(inst);
  const FlakyAccess flaky(inner, 0.4, 9);
  const RetryingAccess retrying(flaky, /*max_attempts=*/32);
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 5'000; ++i) {
    const auto item = retrying.query(static_cast<std::size_t>(i % 50));
    EXPECT_EQ(item, inst.item(static_cast<std::size_t>(i % 50)));
    (void)retrying.weighted_sample(rng);
  }
  EXPECT_GT(retrying.retries_performed(), 0u);
}

TEST(RetryingAccess, GivesUpAfterMaxAttempts) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 10, 5);
  const MaterializedAccess inner(inst);
  // 90% failure rate with only 2 attempts: failures must escape sometimes.
  const FlakyAccess flaky(inner, 0.9, 11);
  const RetryingAccess retrying(flaky, 2);
  int escaped = 0;
  for (int i = 0; i < 500; ++i) {
    try {
      (void)retrying.query(0);
    } catch (const OracleUnavailable&) {
      ++escaped;
    }
  }
  EXPECT_GT(escaped, 300);  // ~81% expected
}

TEST(RetryingAccess, RejectsBadAttemptCount) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 10, 6);
  const MaterializedAccess inner(inst);
  EXPECT_THROW(RetryingAccess(inner, 0), std::invalid_argument);
}

TEST(LatencyAccess, AccruesSimulatedTime) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 20, 7);
  const MaterializedAccess inner(inst);
  LatencyModel model;
  model.fixed_us = 100.0;
  model.exp_mean_us = 10.0;
  const LatencyAccess timed(inner, model, 13);
  util::Xoshiro256 rng(6);
  constexpr int kCalls = 1'000;
  for (int i = 0; i < kCalls; ++i) (void)timed.weighted_sample(rng);
  const double us = timed.simulated_us();
  // Mean per call is fixed + exp_mean = 110us.
  EXPECT_NEAR(us / kCalls, 110.0, 5.0);
  EXPECT_EQ(timed.sample_count(), static_cast<std::uint64_t>(kCalls));
}

}  // namespace
}  // namespace lcaknap::oracle
