#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "oracle/access.h"
#include "store/snapshot.h"

/// Corruption fuzz (ISSUE 5 satellite): *every* single-bit flip and *every*
/// truncation of a valid snapshot must be rejected with a clean typed error
/// — `SnapshotCorrupt` or `SnapshotTruncated` — never decode into a run,
/// never crash, never throw anything else.  This is exhaustive, not sampled:
/// the snapshot is kept small enough to try all positions.

namespace lcaknap::store {
namespace {

std::string small_snapshot() {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 600, 4);
  const oracle::MaterializedAccess access(inst);
  core::LcaKpConfig config;
  config.eps = 0.3;
  config.seed = 0xFEED;
  config.large_samples = 500;
  config.quantile_samples = 1'024;
  const core::LcaKp lca(access, config);
  return encode_snapshot(fingerprint_of(lca, 2), lca.run_warmup(2));
}

TEST(SnapshotFuzz, EveryBitFlipIsRejected) {
  const std::string good = small_snapshot();
  // The baseline must decode, or the fuzz proves nothing.
  ASSERT_NO_THROW((void)decode_snapshot(good));

  std::size_t corrupt = 0;
  std::size_t truncated = 0;
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      try {
        (void)decode_snapshot(bad);
        FAIL() << "bit flip at byte " << byte << " bit " << bit
               << " decoded successfully";
      } catch (const SnapshotCorrupt&) {
        ++corrupt;  // the usual outcome: the CRC catches the flip
      } catch (const SnapshotTruncated&) {
        ++truncated;  // flips inside the size field legitimately read as
                      // "file shorter than declared"
      } catch (const std::exception& e) {
        FAIL() << "bit flip at byte " << byte << " bit " << bit
               << " threw an unexpected type: " << e.what();
      }
    }
  }
  EXPECT_EQ(corrupt + truncated, good.size() * 8);
  // Almost everything must be the CRC; only size-field flips may divert.
  EXPECT_LE(truncated, 64u);
}

TEST(SnapshotFuzz, EveryTruncationIsRejected) {
  const std::string good = small_snapshot();
  for (std::size_t length = 0; length < good.size(); ++length) {
    try {
      (void)decode_snapshot(std::string_view(good).substr(0, length));
      FAIL() << "prefix of length " << length << " decoded successfully";
    } catch (const SnapshotTruncated&) {
      // expected: too short for a header, or shorter than the declared size
    } catch (const std::exception& e) {
      FAIL() << "prefix of length " << length
             << " threw an unexpected type: " << e.what();
    }
  }
}

TEST(SnapshotFuzz, AppendedBytesAreRejected) {
  const std::string good = small_snapshot();
  for (std::size_t extra : {1u, 7u, 64u}) {
    std::string bad = good + std::string(extra, '\0');
    EXPECT_THROW((void)decode_snapshot(bad), SnapshotCorrupt)
        << extra << " appended bytes";
  }
}

}  // namespace
}  // namespace lcaknap::store
