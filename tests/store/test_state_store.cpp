#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "store/snapshot.h"
#include "store/state_store.h"

/// StateStore contract: LRU + snapshot rehydration + single-flight.  The
/// sequential tests pin accounting and the never-serve-a-bad-snapshot rule;
/// the `StateStoreConcurrency` suite (also run under TSan in CI) hammers
/// get() from many threads and asserts the single-flight guarantee by exact
/// count — one live warm-up per cold id, no matter how many callers race.

namespace lcaknap::store {
namespace {

core::LcaKpConfig tenant_config(double eps = 0.25, std::uint64_t seed = 0xABCD) {
  core::LcaKpConfig config;
  config.eps = eps;
  config.seed = seed;
  config.large_samples = 2'000;   // test-sized budgets keep hydration cheap
  config.quantile_samples = 4'096;  // enough that warm-ups are still nontrivial
  return config;
}

class StateStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lcaknap_state_store_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(StateStoreTest, MissThenHitThenDigestStable) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 4'000, 3);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, tenant_config());

  metrics::Registry registry;
  StateStore store({.capacity = 4, .snapshot_dir = dir_.string()}, registry);
  const auto first = store.get("tenant-a", lca, 7);
  const auto second = store.get("tenant-a", lca, 7);
  EXPECT_EQ(first.get(), second.get()) << "hit must share, not recompute";
  EXPECT_EQ(core::run_digest(*first), core::run_digest(lca.run_warmup(7)));

  const auto stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.live_warmups, 1u);
  EXPECT_EQ(stats.snapshots_saved, 1u);
  EXPECT_TRUE(std::filesystem::exists(store.snapshot_path("tenant-a")));
}

TEST_F(StateStoreTest, SecondStoreRehydratesFromSnapshot) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 4'000, 3);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, tenant_config());

  std::uint64_t digest = 0;
  {
    metrics::Registry registry;
    StateStore store({.capacity = 4, .snapshot_dir = dir_.string()}, registry);
    digest = core::run_digest(*store.get("tenant-a", lca, 7));
  }
  // A fresh store (a "new process") must restore, not re-warm.
  metrics::Registry registry;
  StateStore store({.capacity = 4, .snapshot_dir = dir_.string()}, registry);
  const auto restored = store.get("tenant-a", lca, 7);
  EXPECT_EQ(core::run_digest(*restored), digest);
  const auto stats = store.stats();
  EXPECT_EQ(stats.snapshot_hydrations, 1u);
  EXPECT_EQ(stats.live_warmups, 0u);
}

TEST_F(StateStoreTest, CorruptSnapshotNeverServedAndRepaired) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 4'000, 3);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, tenant_config());

  metrics::Registry seed_registry;
  StateStore seeder({.capacity = 4, .snapshot_dir = dir_.string()}, seed_registry);
  const auto digest = core::run_digest(*seeder.get("tenant-a", lca, 7));

  // Flip one payload byte in place.
  const auto path = seeder.snapshot_path("tenant-a");
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(40);
    char byte = 0;
    file.seekg(40);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(40);
    file.write(&byte, 1);
  }

  metrics::Registry registry;
  StateStore store({.capacity = 4, .snapshot_dir = dir_.string()}, registry);
  const auto run = store.get("tenant-a", lca, 7);
  EXPECT_EQ(core::run_digest(*run), digest) << "served state must come from a "
                                               "live warm-up, not the corrupt "
                                               "snapshot";
  const auto stats = store.stats();
  EXPECT_EQ(stats.rejected_corrupt, 1u);
  EXPECT_EQ(stats.live_warmups, 1u);
  EXPECT_EQ(stats.snapshot_hydrations, 0u);
  EXPECT_EQ(stats.snapshots_saved, 1u) << "the repaired snapshot is re-persisted";

  // The re-persisted file is valid again: a third store restores from it.
  metrics::Registry verify_registry;
  StateStore verifier({.capacity = 4, .snapshot_dir = dir_.string()},
                      verify_registry);
  (void)verifier.get("tenant-a", lca, 7);
  EXPECT_EQ(verifier.stats().snapshot_hydrations, 1u);
}

TEST_F(StateStoreTest, ForeignSnapshotCountsMismatch) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 4'000, 3);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, tenant_config(0.25, 0xAAA));
  const core::LcaKp other(access, tenant_config(0.25, 0xBBB));

  metrics::Registry seed_registry;
  StateStore seeder({.capacity = 4, .snapshot_dir = dir_.string()}, seed_registry);
  (void)seeder.get("tenant-a", other, 7);  // snapshot under the other seed

  metrics::Registry registry;
  StateStore store({.capacity = 4, .snapshot_dir = dir_.string()}, registry);
  const auto run = store.get("tenant-a", lca, 7);
  EXPECT_EQ(core::run_digest(*run), core::run_digest(lca.run_warmup(7)));
  const auto stats = store.stats();
  EXPECT_EQ(stats.rejected_mismatch, 1u);
  EXPECT_EQ(stats.live_warmups, 1u);
}

TEST_F(StateStoreTest, LruEvictionAccounting) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 3'000, 5);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, tenant_config());

  metrics::Registry registry;
  StateStore store({.capacity = 2}, registry);  // memory-only
  (void)store.get("a", lca, 1);
  (void)store.get("b", lca, 2);
  (void)store.get("a", lca, 1);  // refresh a: b is now the LRU victim
  (void)store.get("c", lca, 3);  // evicts b
  EXPECT_TRUE(store.contains("a"));
  EXPECT_FALSE(store.contains("b"));
  EXPECT_TRUE(store.contains("c"));
  EXPECT_EQ(store.size(), 2u);
  const auto stats = store.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 1u);

  store.invalidate("a");
  EXPECT_FALSE(store.contains("a"));
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(StateStoreTest, InvalidIdsAndConfigRejected) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 2'000, 5);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, tenant_config());
  metrics::Registry registry;
  StateStore store({.capacity = 2}, registry);
  EXPECT_THROW((void)store.get("", lca, 1), std::invalid_argument);
  EXPECT_THROW((void)store.get("../escape", lca, 1), std::invalid_argument);
  EXPECT_THROW((void)store.get("has space", lca, 1), std::invalid_argument);
  metrics::Registry other;
  EXPECT_THROW(StateStore({.capacity = 0}, other), std::invalid_argument);
}

// --- StateStoreConcurrency: the suite CI also runs under TSan ---------------

TEST(StateStoreConcurrency, SingleFlightWarmsEachIdExactlyOnce) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 4'000, 3);
  const oracle::MaterializedAccess access(inst);

  constexpr std::size_t kIds = 4;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kGetsPerThread = 32;
  // Per-id tenants with distinct seeds: digests must stay per-id stable.
  std::vector<std::unique_ptr<core::LcaKp>> tenants;
  std::vector<std::uint64_t> expected_digests;
  for (std::size_t i = 0; i < kIds; ++i) {
    tenants.push_back(std::make_unique<core::LcaKp>(
        access, tenant_config(0.25, 0x1000 + i)));
    expected_digests.push_back(
        core::run_digest(tenants.back()->run_warmup(100 + i)));
  }

  metrics::Registry registry;
  // Memory-only, capacity >= ids: every id is warmed exactly once ever.
  StateStore store({.capacity = kIds}, registry);
  std::atomic<std::size_t> wrong_digests{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t k = 0; k < kGetsPerThread; ++k) {
        const std::size_t i = (t + k) % kIds;
        const auto run =
            store.get("tenant-" + std::to_string(i), *tenants[i], 100 + i);
        if (core::run_digest(*run) != expected_digests[i]) {
          wrong_digests.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong_digests.load(), 0u);
  const auto stats = store.stats();
  // The single-flight guarantee, by exact count: one warm-up per id.
  EXPECT_EQ(stats.live_warmups, kIds);
  EXPECT_EQ(stats.misses, kIds);
  EXPECT_EQ(stats.evictions, 0u);
  // Conservation: every get() is exactly one of hit/miss/coalesced-wait.
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            kThreads * kGetsPerThread);
}

TEST(StateStoreConcurrency, EvictionChurnStaysConsistent) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 3'000, 5);
  const oracle::MaterializedAccess access(inst);

  constexpr std::size_t kIds = 4;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kGetsPerThread = 16;
  std::vector<std::unique_ptr<core::LcaKp>> tenants;
  std::vector<std::uint64_t> expected_digests;
  for (std::size_t i = 0; i < kIds; ++i) {
    tenants.push_back(std::make_unique<core::LcaKp>(
        access, tenant_config(0.25, 0x2000 + i)));
    expected_digests.push_back(
        core::run_digest(tenants.back()->run_warmup(200 + i)));
  }

  metrics::Registry registry;
  // Capacity below the id count: hydrations recur, but answers never change
  // and the books still balance.
  StateStore store({.capacity = 2}, registry);
  std::atomic<std::size_t> wrong_digests{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t k = 0; k < kGetsPerThread; ++k) {
        const std::size_t i = (t * 3 + k) % kIds;
        const auto run =
            store.get("tenant-" + std::to_string(i), *tenants[i], 200 + i);
        if (core::run_digest(*run) != expected_digests[i]) {
          wrong_digests.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong_digests.load(), 0u);
  const auto stats = store.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            kThreads * kGetsPerThread);
  EXPECT_EQ(stats.live_warmups, stats.misses);
  EXPECT_GE(stats.evictions, kIds - 2);  // at least the end-state overflow
  EXPECT_EQ(store.size(), 2u);
}

TEST(StateStoreConcurrency, HydrationUnderEvictionChurnServesOnlyGoodState) {
  // Disk-backed store with capacity below the id count: every re-entry of
  // an evicted id races snapshot hydration against concurrent evictions.
  // The answers must stay digest-stable whichever path (hydrate or live
  // warm-up) wins, and the books must balance.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lcaknap_state_store_churn_" +
                    std::to_string(
                        ::testing::UnitTest::GetInstance()->random_seed()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 3'000, 5);
  const oracle::MaterializedAccess access(inst);
  constexpr std::size_t kIds = 4;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kGetsPerThread = 16;
  std::vector<std::unique_ptr<core::LcaKp>> tenants;
  std::vector<std::uint64_t> expected_digests;
  for (std::size_t i = 0; i < kIds; ++i) {
    tenants.push_back(std::make_unique<core::LcaKp>(
        access, tenant_config(0.25, 0x3000 + i)));
    expected_digests.push_back(
        core::run_digest(tenants.back()->run_warmup(300 + i)));
  }

  metrics::Registry registry;
  StateStore store({.capacity = 2, .snapshot_dir = dir.string()}, registry);
  std::atomic<std::size_t> wrong_digests{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t k = 0; k < kGetsPerThread; ++k) {
        const std::size_t i = (t * 3 + k) % kIds;
        const auto run =
            store.get("tenant-" + std::to_string(i), *tenants[i], 300 + i);
        if (core::run_digest(*run) != expected_digests[i]) {
          wrong_digests.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong_digests.load(), 0u);
  const auto stats = store.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            kThreads * kGetsPerThread);
  // Disk-backed churn: after the first warm-up of each id, re-entries
  // hydrate from the snapshot instead of re-warming.
  EXPECT_EQ(stats.live_warmups, kIds);
  EXPECT_EQ(stats.snapshot_hydrations, stats.misses - kIds);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.rejected_corrupt + stats.rejected_mismatch, 0u);
  std::filesystem::remove_all(dir);
}

TEST(StateStoreConcurrency, SnapshotReplacedMidReadIsRejectedOrCleanNeverTorn) {
  // The atomic-rename discipline (writer: temp + fsync + rename; also
  // fleet::ship_snapshot) means a reader racing a replacement sees the
  // complete old file or the complete new file.  A writer thread flips the
  // snapshot between a valid copy and a corrupted copy while readers
  // hydrate fresh stores: every read must end in exactly one of
  // {clean hydration, typed rejection + live warm-up} — and the served
  // digest is correct either way.  A torn read would surface as a wrong
  // digest or an unhandled decode crash; neither may happen.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lcaknap_state_store_rename_race_" +
                    std::to_string(
                        ::testing::UnitTest::GetInstance()->random_seed()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 3'000, 5);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, tenant_config(0.25, 0x4001));
  const auto expected = core::run_digest(lca.run_warmup(7));

  std::filesystem::path snap_path;
  {
    metrics::Registry seed_registry;
    StateStore seeder({.capacity = 2, .snapshot_dir = dir.string()},
                      seed_registry);
    (void)seeder.get("tenant-a", lca, 7);
    snap_path = seeder.snapshot_path("tenant-a");
  }
  // Two immutable source images the writer alternates between.
  const auto valid_copy = dir / "valid.bin";
  const auto corrupt_copy = dir / "corrupt.bin";
  std::filesystem::copy_file(snap_path, valid_copy);
  std::filesystem::copy_file(snap_path, corrupt_copy);
  {
    std::fstream file(corrupt_copy, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(40);
    char byte = 0;
    file.seekg(40);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(40);
    file.write(&byte, 1);
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    const auto temp = dir / "tenant-a.snap.replace.tmp";
    bool corrupt = false;
    while (!stop.load(std::memory_order_relaxed)) {
      std::filesystem::copy_file(corrupt ? corrupt_copy : valid_copy, temp,
                                 std::filesystem::copy_options::overwrite_existing);
      std::filesystem::rename(temp, snap_path);  // atomic publish
      corrupt = !corrupt;
    }
  });

  std::size_t hydrated = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 12; ++round) {
    metrics::Registry registry;
    StateStore reader({.capacity = 2, .snapshot_dir = dir.string()}, registry);
    const auto run = reader.get("tenant-a", lca, 7);
    EXPECT_EQ(core::run_digest(*run), expected)
        << "round " << round << ": a racing replacement leaked bad state";
    const auto stats = reader.stats();
    // Exactly one of the two legal paths, never a third state.
    EXPECT_EQ(stats.snapshot_hydrations + stats.live_warmups, 1u);
    EXPECT_EQ(stats.rejected_corrupt, stats.live_warmups);
    hydrated += stats.snapshot_hydrations;
    rejected += stats.rejected_corrupt;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(hydrated + rejected, 12u);
  std::filesystem::remove_all(dir);
}

// --- epoch-aware invalidation (ISSUE 10 satellites) ------------------------

/// Wraps a MaterializedAccess and parks the first weighted sample until the
/// test releases it — a warm-up frozen mid-hydration, so invalidate() can be
/// aimed at an in-flight Flight deterministically.
class GatedAccess final : public oracle::InstanceAccess {
 public:
  explicit GatedAccess(const oracle::MaterializedAccess& inner)
      : inner_(inner) {}

  [[nodiscard]] std::size_t size() const noexcept override {
    return inner_.size();
  }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_.capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_.total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_.total_weight();
  }

  void wait_until_sampling() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return entered_; });
  }
  void open_gate() {
    {
      std::lock_guard lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override {
    return inner_.query(i);
  }
  [[nodiscard]] oracle::WeightedDraw do_sample(
      util::Xoshiro256& rng) const override {
    {
      std::unique_lock lock(mutex_);
      entered_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] { return open_; });
    }
    return inner_.weighted_sample(rng);
  }

 private:
  const oracle::MaterializedAccess& inner_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  mutable bool entered_ = false;
  mutable bool open_ = false;
};

TEST_F(StateStoreTest, InvalidateDuringHydrationDoesNotResurrectTheEntry) {
  const auto inst =
      knapsack::make_family(knapsack::Family::kUncorrelated, 1'000, 3);
  const oracle::MaterializedAccess materialized(inst);
  GatedAccess gated(materialized);
  const core::LcaKp lca(gated, tenant_config());

  metrics::Registry registry;
  StateStore store({.capacity = 4}, registry);  // memory-only

  std::shared_ptr<const core::LcaKpRun> hydrated;
  std::thread warmer([&] { hydrated = store.get("tenant-a", lca, 7); });
  gated.wait_until_sampling();
  // The id is declared dead while its hydration is still in flight (exactly
  // what an epoch advance does).  The flight's waiters still get their
  // result, but the store must not retain it.
  store.invalidate("tenant-a");
  gated.open_gate();
  warmer.join();

  ASSERT_NE(hydrated, nullptr);
  EXPECT_FALSE(store.contains("tenant-a"))
      << "single-flight resurrected an invalidated entry";
  EXPECT_EQ(store.size(), 0u);

  // The next get re-hydrates from scratch and is retained again.
  const auto again = store.get("tenant-a", lca, 7);
  EXPECT_EQ(core::run_digest(*again), core::run_digest(*hydrated));
  EXPECT_TRUE(store.contains("tenant-a"));
  const auto stats = store.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.live_warmups, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST_F(StateStoreTest, InvalidateThenMissRepersistsTheNewEpochsSnapshot) {
  const auto inst =
      knapsack::make_family(knapsack::Family::kUncorrelated, 4'000, 3);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, tenant_config());

  metrics::Registry registry;
  StateStore store({.capacity = 4, .snapshot_dir = dir_.string()}, registry);

  // Epoch 0 warms live and persists an epoch-0-fingerprinted snapshot.
  const auto epoch0 = store.get("tenant-a", lca, 7, /*epoch_id=*/0);
  EXPECT_EQ(store.stats().snapshots_saved, 1u);

  // The epoch advances: the caller invalidates and re-gets under epoch 1.
  // The on-disk snapshot still pins epoch 0, so it must be rejected as a
  // fingerprint mismatch — never served — and the live warm-up's result
  // re-persisted under the new epoch's fingerprint.
  store.invalidate("tenant-a");
  const auto epoch1 = store.get("tenant-a", lca, 7, /*epoch_id=*/1);
  {
    const auto stats = store.stats();
    EXPECT_EQ(stats.rejected_mismatch, 1u);
    EXPECT_EQ(stats.live_warmups, 2u);
    EXPECT_EQ(stats.snapshot_hydrations, 0u);
    EXPECT_EQ(stats.snapshots_saved, 2u);
  }
  // Same lca + tape: the warm state itself is epoch-independent here — only
  // the fingerprint binding changed.
  EXPECT_EQ(core::run_digest(*epoch0), core::run_digest(*epoch1));

  // A fresh store (new process) now rehydrates from the epoch-1 snapshot…
  {
    metrics::Registry fresh_registry;
    StateStore fresh({.capacity = 4, .snapshot_dir = dir_.string()},
                     fresh_registry);
    (void)fresh.get("tenant-a", lca, 7, /*epoch_id=*/1);
    EXPECT_EQ(fresh.stats().snapshot_hydrations, 1u);
    EXPECT_EQ(fresh.stats().live_warmups, 0u);
  }
  // …while a stale epoch-0 reader rejects it and re-warms.
  {
    metrics::Registry stale_registry;
    StateStore stale({.capacity = 4, .snapshot_dir = dir_.string()},
                     stale_registry);
    (void)stale.get("tenant-a", lca, 7, /*epoch_id=*/0);
    EXPECT_EQ(stale.stats().rejected_mismatch, 1u);
    EXPECT_EQ(stale.stats().live_warmups, 1u);
  }
}

}  // namespace
}  // namespace lcaknap::store
