#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/access.h"
#include "serve/engine.h"
#include "store/snapshot.h"

/// Snapshot format contract (ISSUE 5 tentpole): a rehydrated `LcaKpRun` is
/// byte-indistinguishable from the live warm-up it persisted — `run_digest`
/// equality, field-wise equality including bit-exact doubles — and every
/// defended failure mode (wrong instance/config/tape, bad magic, unknown
/// version, bit flips, missing file) raises its own typed error instead of
/// ever producing a run.

namespace lcaknap::store {
namespace {

core::LcaKpConfig small_config(double eps = 0.25, std::uint64_t seed = 0xABCD) {
  core::LcaKpConfig config;
  config.eps = eps;
  config.seed = seed;
  config.large_samples = 2'000;     // test-sized budgets: the format does not
  config.quantile_samples = 4'096;  // care how much sampling built the state
  return config;
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lcaknap_snapshot_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(SnapshotTest, EncodeDecodeRoundTripIsIdentity) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 5'000, 3);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, small_config(0.2));
  const auto run = lca.run_warmup(7);
  const auto fingerprint = fingerprint_of(lca, 7);

  const auto bytes = encode_snapshot(fingerprint, run);
  SnapshotFingerprint stored;
  const auto decoded = decode_snapshot(bytes, &fingerprint, &stored);

  EXPECT_EQ(core::run_digest(decoded), core::run_digest(run));
  EXPECT_TRUE(stored.equals(fingerprint));
  EXPECT_EQ(decoded.index_large, run.index_large);
  EXPECT_EQ(decoded.e_small_grid, run.e_small_grid);
  EXPECT_EQ(decoded.singleton, run.singleton);
  EXPECT_EQ(decoded.degenerate, run.degenerate);
  EXPECT_EQ(decoded.thresholds_grid, run.thresholds_grid);
  EXPECT_EQ(decoded.thresholds, run.thresholds);
  EXPECT_EQ(decoded.large_mass, run.large_mass);  // bit-exact
  EXPECT_EQ(decoded.q, run.q);
  EXPECT_EQ(decoded.t, run.t);
  EXPECT_EQ(decoded.samples_used, run.samples_used);
  EXPECT_EQ(decoded.tilde_size, run.tilde_size);
}

TEST_F(SnapshotTest, EncodingIsCanonical) {
  // Equal states encode to identical bytes: the unordered large-item set is
  // sorted on the way out, all widths are fixed, so snapshot bytes can be
  // compared or content-addressed directly.
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 4'000, 9);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, small_config());
  const auto fingerprint = fingerprint_of(lca, 5);
  const auto first = encode_snapshot(fingerprint, lca.run_warmup(5));
  const auto second = encode_snapshot(fingerprint, lca.run_warmup(5));
  EXPECT_EQ(first, second);
}

TEST_F(SnapshotTest, FileRoundTripLeavesNoTemp) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 4'000, 5);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, small_config(0.2, 0x11));
  const auto run = lca.run_warmup(3);
  const auto fingerprint = fingerprint_of(lca, 3);

  const auto file = path("state.snap");
  write_snapshot(file, fingerprint, run);
  EXPECT_TRUE(std::filesystem::exists(file));
  EXPECT_FALSE(std::filesystem::exists(file + ".tmp"))
      << "atomic write must not leave its temp behind";

  const auto loaded = read_snapshot(file, &fingerprint);
  EXPECT_EQ(core::run_digest(loaded), core::run_digest(run));
  EXPECT_TRUE(read_snapshot_fingerprint(file).equals(fingerprint));
}

TEST_F(SnapshotTest, RewriteReplacesAtomically) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 4'000, 5);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, small_config(0.2, 0x11));
  const auto file = path("state.snap");
  write_snapshot(file, fingerprint_of(lca, 3), lca.run_warmup(3));
  // Overwriting with a different tape's state must fully replace the file.
  write_snapshot(file, fingerprint_of(lca, 4), lca.run_warmup(4));
  const auto stored = read_snapshot_fingerprint(file);
  EXPECT_EQ(stored.tape_seed, 4u);
}

TEST_F(SnapshotTest, FingerprintMismatchIsRejected) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 5'000, 3);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, small_config(0.2, 0xAA));
  const auto run = lca.run_warmup(7);
  const auto bytes = encode_snapshot(fingerprint_of(lca, 7), run);

  // Same instance, different eps.
  const core::LcaKp other_eps(access, small_config(0.25, 0xAA));
  const auto fp_eps = fingerprint_of(other_eps, 7);
  EXPECT_THROW((void)decode_snapshot(bytes, &fp_eps), SnapshotMismatch);
  // Different shared seed.
  const core::LcaKp other_seed(access, small_config(0.2, 0xAB));
  const auto fp_seed = fingerprint_of(other_seed, 7);
  EXPECT_THROW((void)decode_snapshot(bytes, &fp_seed), SnapshotMismatch);
  // Different warm-up tape.
  const auto fp_tape = fingerprint_of(lca, 8);
  EXPECT_THROW((void)decode_snapshot(bytes, &fp_tape), SnapshotMismatch);
  // Different instance (n differs).
  const auto small = knapsack::make_family(knapsack::Family::kUncorrelated, 4'999, 3);
  const oracle::MaterializedAccess small_access(small);
  const core::LcaKp other_inst(small_access, small_config(0.2, 0xAA));
  const auto fp_inst = fingerprint_of(other_inst, 7);
  EXPECT_THROW((void)decode_snapshot(bytes, &fp_inst), SnapshotMismatch);
  // Without an expected fingerprint the same bytes decode fine.
  EXPECT_EQ(core::run_digest(decode_snapshot(bytes)), core::run_digest(run));
}

// Re-seals a tampered buffer so it passes the CRC and exercises the check
// *behind* the checksum (magic, version).
std::string reseal(std::string bytes) {
  const auto body = std::string_view(bytes).substr(0, bytes.size() - 8);
  const std::uint64_t crc = crc64(body);
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  return bytes;
}

TEST_F(SnapshotTest, BadMagicAndUnknownVersionAreCorrupt) {
  const auto inst = knapsack::make_family(knapsack::Family::kNeedle, 3'000, 2);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, small_config());
  const auto good = encode_snapshot(fingerprint_of(lca, 1), lca.run_warmup(1));

  auto bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)decode_snapshot(reseal(bad_magic)), SnapshotCorrupt);

  auto bad_version = good;
  bad_version[8] = static_cast<char>(kSnapshotVersion + 1);
  EXPECT_THROW((void)decode_snapshot(reseal(bad_version)), SnapshotCorrupt);

  // Unsealed tampering fails the CRC before anything else looks at it.
  EXPECT_THROW((void)decode_snapshot(bad_magic), SnapshotCorrupt);
}

TEST_F(SnapshotTest, MissingFileIsIoError) {
  EXPECT_THROW((void)read_snapshot(path("nope.snap")), SnapshotIoError);
  EXPECT_THROW((void)read_snapshot_fingerprint(path("nope.snap")),
               SnapshotIoError);
}

TEST_F(SnapshotTest, Crc64MatchesKnownVector) {
  // CRC-64/XZ ("ECMA-182 reflected") check vector: crc64("123456789").
  EXPECT_EQ(crc64("123456789"), 0x995DC9BBDF1939FAull);
  EXPECT_EQ(crc64(""), 0ull);
}

TEST_F(SnapshotTest, EngineAdoptingSnapshotServesIdenticalAnswers) {
  // The integration the whole subsystem exists for: an engine warmed from a
  // restored snapshot is indistinguishable from one that paid the warm-up —
  // same digest, same answer on every item.
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 3'000, 8);
  const oracle::MaterializedAccess access(inst);
  const core::LcaKp lca(access, small_config(0.2, 0xF00D));

  serve::EngineConfig live_config;
  live_config.workers = 2;
  live_config.warmup_tape_seed = 13;
  live_config.warmup_threads = 1;
  metrics::Registry live_registry;
  serve::ServeEngine live(lca, live_config, live_registry);

  const auto file = path("engine.snap");
  const auto fingerprint = fingerprint_of(lca, 13);
  write_snapshot(file, fingerprint, live.run());
  auto restored_config = live_config;
  restored_config.warm_state = std::make_shared<const core::LcaKpRun>(
      read_snapshot(file, &fingerprint));
  metrics::Registry restored_registry;
  serve::ServeEngine restored(lca, restored_config, restored_registry);

  EXPECT_EQ(core::run_digest(restored.run()), core::run_digest(live.run()));
  for (std::size_t item = 0; item < inst.size(); item += 7) {
    const auto a = live.submit_wait(item);
    const auto b = restored.submit_wait(item);
    ASSERT_EQ(a.outcome, serve::Outcome::kOk);
    ASSERT_EQ(b.outcome, serve::Outcome::kOk);
    EXPECT_EQ(a.answer, b.answer) << "item " << item;
  }
}

}  // namespace
}  // namespace lcaknap::store
