#include "knapsack/solvers/greedy.h"

#include <gtest/gtest.h>

#include "knapsack/generators.h"
#include "knapsack/solvers/brute_force.h"

namespace lcaknap::knapsack {
namespace {

TEST(EfficiencyOrder, SortsByRatioExactly) {
  // Ratios: 2/1=2, 3/2=1.5, 5/2=2.5, 1/1=1.
  const Instance inst({{2, 1}, {3, 2}, {5, 2}, {1, 1}}, 6);
  const auto order = efficiency_order(inst);
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 0, 1, 3}));
}

TEST(EfficiencyOrder, ZeroWeightFirstThenTiesByIndex) {
  const Instance inst({{1, 1}, {5, 0}, {2, 2}, {3, 0}}, 4);
  const auto order = efficiency_order(inst);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 3u);
  // 1/1 == 2/2: tie broken by index.
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 2u);
}

TEST(FractionalOpt, MatchesHandComputation) {
  // K=5: take (6,3); then 2 units of (4,4) -> 6 + 4*(2/4) = 8.
  const Instance inst({{6, 3}, {4, 4}}, 5);
  EXPECT_DOUBLE_EQ(fractional_opt(inst), 8.0);
}

TEST(FractionalOpt, UpperBoundsIntegralOpt) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Xoshiro256 rng(seed);
    GeneratorConfig cfg;
    cfg.n = 14;
    cfg.max_value = 50;
    const Instance inst = uncorrelated(cfg, rng);
    const Solution opt = brute_force(inst);
    EXPECT_GE(fractional_opt(inst) + 1e-9, static_cast<double>(opt.value));
  }
}

TEST(GreedyHalf, SingletonBeatsPrefixWhenNeeded) {
  // Greedy order: (2,1) eff 2, then (10,9) eff 1.11, then (1,1).
  // Prefix: {(2,1)} value 2, cutoff item (10,9) value 10 -> singleton wins.
  const Instance inst({{2, 1}, {10, 9}, {1, 1}}, 9);
  const GreedyResult g = greedy_half(inst);
  EXPECT_TRUE(g.used_singleton);
  EXPECT_EQ(g.solution.value, 10);
  EXPECT_EQ(g.cutoff_index, 1u);
}

TEST(GreedyHalf, EverythingFitsIsOptimal) {
  const Instance inst({{3, 1}, {4, 2}}, 3);
  const GreedyResult g = greedy_half(inst);
  EXPECT_FALSE(g.used_singleton);
  EXPECT_EQ(g.cutoff_index, GreedyResult::kNoCutoff);
  EXPECT_EQ(g.solution.value, 7);
}

TEST(GreedyHalf, ReportsCutoff) {
  const Instance inst({{6, 3}, {4, 4}}, 5);
  const GreedyResult g = greedy_half(inst);
  EXPECT_EQ(g.cutoff_index, 1u);
  EXPECT_EQ(g.cutoff_rank, 1u);
  EXPECT_GT(g.cutoff_efficiency, 0.0);
}

class GreedyHalfProperty : public ::testing::TestWithParam<Family> {};

TEST_P(GreedyHalfProperty, AchievesHalfOfOptimum) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Instance inst = [&] {
      util::Xoshiro256 rng(seed * 31 + 1);
      GeneratorConfig cfg;
      cfg.n = 16;
      cfg.max_value = 60;
      switch (GetParam()) {
        case Family::kStronglyCorrelated: return strongly_correlated(cfg, rng);
        case Family::kSubsetSum: return subset_sum(cfg, rng);
        case Family::kInverseCorrelated: return inverse_correlated(cfg, rng);
        default: return uncorrelated(cfg, rng);
      }
    }();
    const Solution opt = brute_force(inst);
    const GreedyResult g = greedy_half(inst);
    EXPECT_TRUE(inst.feasible(g.solution.items));
    // The classical guarantee: greedy_half >= OPT / 2.
    EXPECT_GE(2 * g.solution.value, opt.value)
        << family_name(GetParam()) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, GreedyHalfProperty,
                         ::testing::Values(Family::kUncorrelated,
                                           Family::kStronglyCorrelated,
                                           Family::kInverseCorrelated,
                                           Family::kSubsetSum),
                         [](const auto& info) { return family_name(info.param); });

}  // namespace
}  // namespace lcaknap::knapsack
