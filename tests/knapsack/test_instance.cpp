#include "knapsack/instance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace lcaknap::knapsack {
namespace {

Instance small() {
  return Instance({{10, 5}, {20, 4}, {30, 6}}, 10);
}

TEST(Instance, ValidatesInput) {
  EXPECT_THROW(Instance({}, 5), std::invalid_argument);
  EXPECT_THROW(Instance({{1, 1}}, -1), std::invalid_argument);
  EXPECT_THROW(Instance({{-1, 1}}, 5), std::invalid_argument);
  EXPECT_THROW(Instance({{1, -1}}, 5), std::invalid_argument);
  EXPECT_THROW(Instance({{0, 1}}, 5), std::invalid_argument);        // zero total profit
  EXPECT_THROW(Instance({{1, 10}}, 5), std::invalid_argument);       // w > K
}

TEST(Instance, Totals) {
  const Instance inst = small();
  EXPECT_EQ(inst.size(), 3u);
  EXPECT_EQ(inst.total_profit(), 60);
  EXPECT_EQ(inst.total_weight(), 15);
  EXPECT_EQ(inst.capacity(), 10);
}

TEST(Instance, NormalizedViews) {
  const Instance inst = small();
  EXPECT_DOUBLE_EQ(inst.norm_profit(0), 10.0 / 60.0);
  EXPECT_DOUBLE_EQ(inst.norm_weight(1), 4.0 / 15.0);
  EXPECT_DOUBLE_EQ(inst.norm_capacity(), 10.0 / 15.0);
  // Efficiency is the ratio of normalized profit to normalized weight.
  EXPECT_DOUBLE_EQ(inst.efficiency(2), (30.0 / 60.0) / (6.0 / 15.0));
}

TEST(Instance, ZeroWeightItemHasInfiniteEfficiency) {
  const Instance inst({{1, 0}, {1, 1}}, 1);
  EXPECT_TRUE(std::isinf(inst.efficiency(0)));
}

TEST(Instance, AllZeroWeightsNormalizeSafely) {
  const Instance inst({{1, 0}, {2, 0}}, 3);
  EXPECT_GT(inst.total_weight(), 0);
  EXPECT_TRUE(std::isfinite(inst.norm_capacity()));
}

TEST(Instance, SelectionHelpers) {
  const Instance inst = small();
  const std::vector<std::size_t> sel{0, 2};
  EXPECT_EQ(inst.value_of(sel), 40);
  EXPECT_EQ(inst.weight_of(sel), 11);
  EXPECT_FALSE(inst.feasible(sel));
  const std::vector<std::size_t> ok{1, 2};
  EXPECT_TRUE(inst.feasible(ok));
  const Solution s = inst.make_solution({1, 2});
  EXPECT_EQ(s.value, 50);
  EXPECT_EQ(s.weight, 10);
}

TEST(Instance, MaximalityCheck) {
  const Instance inst = small();          // K = 10, weights 5, 4, 6
  EXPECT_TRUE(inst.is_maximal(std::vector<std::size_t>{1, 2}));   // slack 0
  EXPECT_TRUE(inst.is_maximal(std::vector<std::size_t>{0, 1}));   // slack 1 < min w
  EXPECT_FALSE(inst.is_maximal(std::vector<std::size_t>{1}));     // can add 0 or 2
  EXPECT_FALSE(inst.is_maximal(std::vector<std::size_t>{0, 1, 2}));  // infeasible
}

TEST(Instance, SaveLoadRoundTrip) {
  const Instance inst = small();
  std::stringstream ss;
  inst.save(ss);
  const Instance loaded = Instance::load(ss);
  ASSERT_EQ(loaded.size(), inst.size());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(loaded.item(i), inst.item(i));
  }
  EXPECT_EQ(loaded.capacity(), inst.capacity());
}

TEST(Instance, LoadRejectsGarbage) {
  std::stringstream bad("not numbers");
  EXPECT_THROW(Instance::load(bad), std::runtime_error);
  std::stringstream truncated("3 10\n1 1\n");
  EXPECT_THROW(Instance::load(truncated), std::runtime_error);
}

}  // namespace
}  // namespace lcaknap::knapsack
