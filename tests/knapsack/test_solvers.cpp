#include <gtest/gtest.h>

#include "knapsack/generators.h"
#include "knapsack/solvers/branch_bound.h"
#include "knapsack/solvers/brute_force.h"
#include "knapsack/solvers/dp.h"
#include "knapsack/solvers/fptas.h"
#include "knapsack/solvers/greedy.h"
#include "knapsack/solvers/solve.h"

namespace lcaknap::knapsack {
namespace {

Instance random_small(std::uint64_t seed, Family family, std::size_t n = 15) {
  util::Xoshiro256 rng(seed);
  GeneratorConfig cfg;
  cfg.n = n;
  cfg.max_value = 40;
  switch (family) {
    case Family::kStronglyCorrelated: return strongly_correlated(cfg, rng);
    case Family::kWeaklyCorrelated: return weakly_correlated(cfg, rng);
    case Family::kSubsetSum: return subset_sum(cfg, rng);
    case Family::kSimilarWeights: return similar_weights(cfg, rng);
    case Family::kInverseCorrelated: return inverse_correlated(cfg, rng);
    default: return uncorrelated(cfg, rng);
  }
}

TEST(BruteForce, KnownTinyInstance) {
  const Instance inst({{60, 10}, {100, 20}, {120, 30}}, 50);
  const Solution opt = brute_force(inst);
  EXPECT_EQ(opt.value, 220);
  EXPECT_EQ(opt.items, (std::vector<std::size_t>{1, 2}));
}

TEST(BruteForce, RejectsLargeN) {
  std::vector<Item> items(27, {1, 1});
  const Instance inst(std::move(items), 5);
  EXPECT_THROW(brute_force(inst), std::invalid_argument);
}

struct SolverCase {
  Family family;
  std::uint64_t seed;
};

class ExactSolverAgreement : public ::testing::TestWithParam<SolverCase> {};

TEST_P(ExactSolverAgreement, AllExactSolversMatchBruteForce) {
  const Instance inst = random_small(GetParam().seed, GetParam().family);
  const Solution reference = brute_force(inst);

  const Solution by_weight = dp_by_weight(inst);
  EXPECT_EQ(by_weight.value, reference.value);
  EXPECT_TRUE(inst.feasible(by_weight.items));
  EXPECT_EQ(inst.value_of(by_weight.items), by_weight.value);

  const Solution by_profit = dp_by_profit(inst);
  EXPECT_EQ(by_profit.value, reference.value);
  EXPECT_TRUE(inst.feasible(by_profit.items));
  EXPECT_EQ(inst.value_of(by_profit.items), by_profit.value);

  const BranchBoundResult bb = branch_bound(inst);
  EXPECT_TRUE(bb.proven_optimal);
  EXPECT_EQ(bb.solution.value, reference.value);
  EXPECT_TRUE(inst.feasible(bb.solution.items));

  const ExactResult referee = solve_exact(inst);
  EXPECT_EQ(referee.solution.value, reference.value);
}

std::vector<SolverCase> solver_cases() {
  std::vector<SolverCase> cases;
  for (const auto family :
       {Family::kUncorrelated, Family::kWeaklyCorrelated, Family::kStronglyCorrelated,
        Family::kInverseCorrelated, Family::kSubsetSum, Family::kSimilarWeights}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) cases.push_back({family, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactSolverAgreement,
                         ::testing::ValuesIn(solver_cases()),
                         [](const auto& info) {
                           return family_name(info.param.family) + "_s" +
                                  std::to_string(info.param.seed);
                         });

TEST(DpByWeight, GuardsTableSize) {
  const Instance inst({{1, 1}, {2, 2}}, 2);
  EXPECT_THROW(dp_by_weight(inst, /*cell_limit=*/1), std::invalid_argument);
}

TEST(DpByProfit, GuardsTableSize) {
  const Instance inst({{100, 1}, {200, 2}}, 2);
  EXPECT_THROW(dp_by_profit(inst, /*cell_limit=*/10), std::invalid_argument);
}

TEST(DpByProfit, HandlesZeroProfitItems) {
  const Instance inst({{0, 1}, {5, 1}, {3, 1}}, 2);
  const Solution s = dp_by_profit(inst);
  EXPECT_EQ(s.value, 8);
}

TEST(BranchBound, LargerInstanceAgainstDp) {
  util::Xoshiro256 rng(77);
  GeneratorConfig cfg;
  cfg.n = 60;
  cfg.max_value = 100;
  const Instance inst = uncorrelated(cfg, rng);
  const Solution dp = dp_by_weight(inst);
  const BranchBoundResult bb = branch_bound(inst);
  EXPECT_TRUE(bb.proven_optimal);
  EXPECT_EQ(bb.solution.value, dp.value);
}

TEST(BranchBound, SurvivesVeryDeepInstances) {
  // Regression: the DFS must not recurse on the call stack — n = 300k would
  // overflow it.  A tiny node budget keeps the test fast; the point is that
  // the walk starts, truncates, and returns a valid solution.
  util::Xoshiro256 rng(79);
  GeneratorConfig cfg;
  cfg.n = 300'000;
  const Instance inst = uncorrelated(cfg, rng);
  const BranchBoundResult bb = branch_bound(inst, /*node_budget=*/200'000);
  EXPECT_TRUE(inst.feasible(bb.solution.items));
  EXPECT_GE(bb.solution.value, greedy_half(inst).solution.value);
}

TEST(BranchBound, TruncationStillReturnsGreedyOrBetter) {
  util::Xoshiro256 rng(78);
  GeneratorConfig cfg;
  cfg.n = 200;
  cfg.max_value = 10'000;
  const Instance inst = strongly_correlated(cfg, rng);
  const BranchBoundResult bb = branch_bound(inst, /*node_budget=*/100);
  EXPECT_FALSE(bb.proven_optimal);
  EXPECT_TRUE(inst.feasible(bb.solution.items));
  EXPECT_GE(bb.solution.value, greedy_half(inst).solution.value);
}

class FptasProperty : public ::testing::TestWithParam<double> {};

TEST_P(FptasProperty, AchievesOneMinusEps) {
  const double eps = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance inst = random_small(seed, Family::kUncorrelated, 14);
    const Solution opt = brute_force(inst);
    const Solution approx = fptas(inst, eps);
    EXPECT_TRUE(inst.feasible(approx.items));
    EXPECT_GE(static_cast<double>(approx.value) + 1e-9,
              (1.0 - eps) * static_cast<double>(opt.value))
        << "eps=" << eps << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, FptasProperty,
                         ::testing::Values(0.5, 0.3, 0.1, 0.05));

TEST(Fptas, RejectsBadEps) {
  const Instance inst({{1, 1}}, 1);
  EXPECT_THROW(fptas(inst, 0.0), std::invalid_argument);
  EXPECT_THROW(fptas(inst, 1.0), std::invalid_argument);
}

TEST(SolveExact, PicksAnExactRoute) {
  const Instance inst = random_small(5, Family::kWeaklyCorrelated);
  const ExactResult result = solve_exact(inst);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.solution.value, brute_force(inst).value);
}

}  // namespace
}  // namespace lcaknap::knapsack
