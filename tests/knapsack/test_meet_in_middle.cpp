#include "knapsack/solvers/meet_in_middle.h"

#include <gtest/gtest.h>

#include "knapsack/generators.h"
#include "knapsack/solvers/brute_force.h"

namespace lcaknap::knapsack {
namespace {

struct MimCase {
  Family family;
  std::uint64_t seed;
  std::size_t n;
};

class MeetInMiddleAgreement : public ::testing::TestWithParam<MimCase> {};

TEST_P(MeetInMiddleAgreement, MatchesBruteForce) {
  const auto& param = GetParam();
  const Instance inst = make_family(param.family, param.n, param.seed);
  const Solution reference = brute_force(inst);
  const Solution mim = meet_in_middle(inst);
  EXPECT_EQ(mim.value, reference.value);
  EXPECT_TRUE(inst.feasible(mim.items));
  EXPECT_EQ(inst.value_of(mim.items), mim.value);
}

std::vector<MimCase> mim_cases() {
  std::vector<MimCase> cases;
  for (const auto family :
       {Family::kUncorrelated, Family::kStronglyCorrelated, Family::kSubsetSum,
        Family::kSimilarWeights}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      cases.push_back({family, seed, 18});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MeetInMiddleAgreement,
                         ::testing::ValuesIn(mim_cases()),
                         [](const auto& info) {
                           return family_name(info.param.family) + "_s" +
                                  std::to_string(info.param.seed);
                         });

TEST(MeetInMiddle, HandlesHugeValuesWhereDpsCannot) {
  // Strongly correlated items with 10^12-scale values: both DP tables are
  // out of reach, branch & bound struggles, meet-in-the-middle is exact.
  std::vector<Item> items;
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 30; ++i) {
    const std::int64_t w = rng.next_in(900'000'000'000, 1'100'000'000'000);
    items.push_back({w + 50'000'000'000, w});
  }
  std::int64_t total = 0;
  for (const auto& it : items) total += it.weight;
  const Instance inst(std::move(items), total / 2);
  const Solution mim = meet_in_middle(inst);
  EXPECT_TRUE(inst.feasible(mim.items));
  // Optimum must use at least ~half the capacity on this family.
  EXPECT_GE(mim.weight, inst.capacity() / 2);
}

TEST(MeetInMiddle, TinyEdgeCases) {
  const Instance one({{5, 3}}, 3);
  EXPECT_EQ(meet_in_middle(one).value, 5);
  const Instance blocked({{5, 3}, {7, 3}}, 3);
  EXPECT_EQ(meet_in_middle(blocked).value, 7);
  const Instance zero_cap({{5, 0}, {1, 0}}, 0);
  EXPECT_EQ(meet_in_middle(zero_cap).value, 6);
}

TEST(MeetInMiddle, RejectsLargeN) {
  std::vector<Item> items(41, {1, 1});
  const Instance inst(std::move(items), 5);
  EXPECT_THROW(meet_in_middle(inst), std::invalid_argument);
}

}  // namespace
}  // namespace lcaknap::knapsack
