// Cross-checks between independent exact solvers at sizes beyond brute
// force, and larger-scale invariants of the approximate solvers.

#include <gtest/gtest.h>

#include "knapsack/generators.h"
#include "knapsack/solvers/branch_bound.h"
#include "knapsack/solvers/dp.h"
#include "knapsack/solvers/fptas.h"
#include "knapsack/solvers/greedy.h"
#include "knapsack/solvers/meet_in_middle.h"

namespace lcaknap::knapsack {
namespace {

Instance medium(std::uint64_t seed, Family family, std::size_t n,
                std::int64_t max_value) {
  util::Xoshiro256 rng(seed);
  GeneratorConfig cfg;
  cfg.n = n;
  cfg.max_value = max_value;
  switch (family) {
    case Family::kStronglyCorrelated: return strongly_correlated(cfg, rng);
    case Family::kWeaklyCorrelated: return weakly_correlated(cfg, rng);
    case Family::kSubsetSum: return subset_sum(cfg, rng);
    default: return uncorrelated(cfg, rng);
  }
}

class CrossCheck34 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossCheck34, MeetInMiddleAgreesWithWeightDp) {
  // n = 34 is beyond brute force; two structurally unrelated exact solvers
  // must still agree.
  const Instance inst = medium(GetParam(), Family::kUncorrelated, 34, 200);
  const Solution dp = dp_by_weight(inst);
  const Solution mim = meet_in_middle(inst);
  EXPECT_EQ(mim.value, dp.value);
}

TEST_P(CrossCheck34, MeetInMiddleAgreesWithBranchBoundOnCorrelated) {
  const Instance inst = medium(GetParam() + 100, Family::kStronglyCorrelated, 30, 500);
  const auto bb = branch_bound(inst, 200'000'000);
  const Solution mim = meet_in_middle(inst);
  if (bb.proven_optimal) {
    EXPECT_EQ(mim.value, bb.solution.value);
  } else {
    EXPECT_GE(mim.value, bb.solution.value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheck34, ::testing::Range<std::uint64_t>(1, 9));

TEST(CrossCheckLarge, BranchBoundAgreesWithDpAtN500) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Instance inst = medium(seed, Family::kWeaklyCorrelated, 500, 300);
    const Solution dp = dp_by_weight(inst);
    const auto bb = branch_bound(inst);
    ASSERT_TRUE(bb.proven_optimal);
    EXPECT_EQ(bb.solution.value, dp.value) << "seed " << seed;
  }
}

TEST(CrossCheckLarge, GreedyBoundHoldsAtScale) {
  // At n = 100k exact solving is off the table; verify greedy's guarantee
  // against the fractional upper bound instead: greedy >= OPT/2 >= frac/2 - max item.
  for (const auto family : {Family::kUncorrelated, Family::kStronglyCorrelated}) {
    const Instance inst = medium(7, family, 100'000, 10'000);
    const GreedyResult greedy = greedy_half(inst);
    const double frac = fractional_opt(inst);
    // frac < prefix + cutoff item <= 2 * max(prefix, singleton) = 2 * greedy.
    EXPECT_GE(2.0 * static_cast<double>(greedy.solution.value) + 1e-6, frac);
  }
}

TEST(CrossCheckLarge, FptasDominatesItsGuaranteeAgainstDp) {
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    const Instance inst = medium(seed, Family::kUncorrelated, 150, 100);
    const Solution opt = dp_by_weight(inst);
    for (const double eps : {0.2, 0.05}) {
      const Solution approx = fptas(inst, eps);
      EXPECT_GE(static_cast<double>(approx.value) + 1e-9,
                (1.0 - eps) * static_cast<double>(opt.value))
          << "seed " << seed << " eps " << eps;
    }
  }
}

TEST(CrossCheckLarge, SubsetSumOptimumFillsCapacityWhenDense) {
  // Subset-sum with many small items: the DP should essentially fill K.
  const Instance inst = medium(21, Family::kSubsetSum, 400, 50);
  const Solution opt = dp_by_weight(inst);
  EXPECT_EQ(opt.value, opt.weight);  // p == w on this family
  EXPECT_GE(opt.weight, inst.capacity() - 1);
}

}  // namespace
}  // namespace lcaknap::knapsack
