#include "knapsack/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "iky/partition.h"

namespace lcaknap::knapsack {
namespace {

class GeneratorFamilyTest : public ::testing::TestWithParam<Family> {};

TEST_P(GeneratorFamilyTest, ProducesValidInstance) {
  const Instance inst = make_family(GetParam(), 500, 7);
  EXPECT_EQ(inst.size(), 500u);
  EXPECT_GT(inst.total_profit(), 0);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_GE(inst.item(i).profit, 0);
    EXPECT_GE(inst.item(i).weight, 0);
    EXPECT_LE(inst.item(i).weight, inst.capacity());
  }
}

TEST_P(GeneratorFamilyTest, DeterministicPerSeed) {
  const Instance a = make_family(GetParam(), 200, 11);
  const Instance b = make_family(GetParam(), 200, 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.item(i), b.item(i));
  EXPECT_EQ(a.capacity(), b.capacity());
}

TEST_P(GeneratorFamilyTest, DifferentSeedsDiffer) {
  const Instance a = make_family(GetParam(), 200, 1);
  const Instance b = make_family(GetParam(), 200, 2);
  bool any_diff = a.capacity() != b.capacity();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = !(a.item(i) == b.item(i));
  }
  EXPECT_TRUE(any_diff);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GeneratorFamilyTest,
                         ::testing::ValuesIn(all_families()),
                         [](const auto& info) { return family_name(info.param); });

TEST(Generators, StronglyCorrelatedHasFixedBonus) {
  util::Xoshiro256 rng(5);
  GeneratorConfig cfg;
  cfg.n = 100;
  const Instance inst = strongly_correlated(cfg, rng);
  const std::int64_t bonus = cfg.max_value / 10;
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(inst.item(i).profit, inst.item(i).weight + bonus);
  }
}

TEST(Generators, SubsetSumHasEqualProfitWeight) {
  util::Xoshiro256 rng(6);
  GeneratorConfig cfg;
  cfg.n = 100;
  const Instance inst = subset_sum(cfg, rng);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(inst.item(i).profit, inst.item(i).weight);
  }
}

TEST(Generators, ProfitCeilingQuantizesProfits) {
  util::Xoshiro256 rng(31);
  GeneratorConfig cfg;
  cfg.n = 200;
  const Instance inst = profit_ceiling(cfg, rng);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(inst.item(i).profit % 3, 0);
    EXPECT_GE(inst.item(i).profit, inst.item(i).weight);
    EXPECT_LE(inst.item(i).profit, inst.item(i).weight + 2);
  }
}

TEST(Generators, CircleProfitsFollowTheArc) {
  util::Xoshiro256 rng(32);
  GeneratorConfig cfg;
  cfg.n = 500;
  cfg.max_value = 10'000;
  const Instance inst = circle(cfg, rng);
  const double radius = 2'500.0;
  for (std::size_t i = 0; i < inst.size(); ++i) {
    const double x = static_cast<double>(inst.item(i).weight) - 2.0 * radius;
    const double expected =
        2.0 / 3.0 * std::sqrt(std::max(0.0, 4.0 * radius * radius - x * x));
    EXPECT_NEAR(static_cast<double>(inst.item(i).profit), std::max(1.0, expected), 1.0);
  }
}

TEST(Generators, NeedleProducesAllThreeClasses) {
  util::Xoshiro256 rng(8);
  NeedleConfig cfg;
  cfg.n = 5000;
  const Instance inst = needle(cfg, rng);
  const auto part = iky::partition_instance(inst, 0.25);
  EXPECT_GE(part.large.size(), 1u);
  EXPECT_GE(part.small.size(), 100u);
  EXPECT_GE(part.garbage.size(), 100u);
  // Heavy items should carry roughly heavy_mass of the profit.
  EXPECT_NEAR(part.large_mass, cfg.heavy_mass, 0.15);
}

TEST(Generators, NeedleRejectsBadConfig) {
  util::Xoshiro256 rng(9);
  NeedleConfig bad;
  bad.heavy_count = 0;
  EXPECT_THROW(needle(bad, rng), std::invalid_argument);
  NeedleConfig overfull;
  overfull.heavy_mass = 0.8;
  overfull.garbage_mass = 0.3;
  EXPECT_THROW(needle(overfull, rng), std::invalid_argument);
}

TEST(Generators, CapacityFractionRespected) {
  util::Xoshiro256 rng(10);
  GeneratorConfig cfg;
  cfg.n = 1000;
  cfg.capacity_fraction = 0.3;
  const Instance inst = uncorrelated(cfg, rng);
  const double fraction = static_cast<double>(inst.capacity()) /
                          static_cast<double>(inst.total_weight());
  EXPECT_NEAR(fraction, 0.3, 0.02);
}

TEST(Generators, FamilyNamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names;
  for (const auto family : all_families()) names.push_back(family_name(family));
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
  for (const auto& n : names) EXPECT_FALSE(n.empty());
}

}  // namespace
}  // namespace lcaknap::knapsack
