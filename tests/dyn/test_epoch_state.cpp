#include "dyn/epoch_state.h"

#include <gtest/gtest.h>

#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace lcaknap::dyn {
namespace {

constexpr std::uint64_t kTapeSeed = 23;

EpochConfig test_config(bool verify_digest = false) {
  EpochConfig config;
  config.lca.eps = 0.25;
  config.lca.seed = 0xE50C;
  config.lca.large_samples = 1'500;
  config.lca.quantile_samples = 6'144;
  config.tape_seed = kTapeSeed;
  config.verify_digest = verify_digest;
  return config;
}

knapsack::Instance base_instance(std::size_t n = 800) {
  return knapsack::make_family(knapsack::Family::kUncorrelated, n, 31);
}

UpdateBatch batch_of(std::uint64_t epoch_id) {
  UpdateBatch batch;
  batch.epoch_id = epoch_id;
  return batch;
}

UpdateBatch weight_batch(std::uint64_t epoch_id,
                         const knapsack::Instance& inst, std::size_t count,
                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  UpdateBatch batch;
  batch.epoch_id = epoch_id;
  std::vector<bool> used(inst.size(), false);
  while (batch.mutations.size() < count) {
    const auto index = static_cast<std::size_t>(rng.next_below(inst.size()));
    if (used[index]) continue;
    used[index] = true;
    const auto weight = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(inst.capacity())) + 1);
    batch.mutations.push_back({MutationKind::kWeightUpdate, index, 0, weight});
  }
  return batch;
}

TEST(EpochedState, WarmsEpochZeroWithADigest) {
  metrics::Registry registry;
  EpochedState state(base_instance(), test_config(), registry);
  const auto epoch = state.current();
  EXPECT_EQ(epoch->epoch_id, 0u);
  EXPECT_EQ(state.current_epoch_id(), 0u);
  ASSERT_NE(epoch->run, nullptr);
  EXPECT_EQ(epoch->digest, core::run_digest(*epoch->run));
  EXPECT_NE(epoch->digest, 0u);
}

TEST(EpochedState, WeightOnlyAdvanceTakesTheDeltaPath) {
  metrics::Registry registry;
  // verify_digest makes the advance itself prove delta == fresh (the
  // Lemma 4.9 contract checked live) — a mismatch would throw.
  EpochedState state(base_instance(), test_config(/*verify_digest=*/true),
                     registry);
  const auto base = state.current();
  const auto report =
      state.advance(weight_batch(1, *base->instance, 40, 1'001));
  EXPECT_TRUE(report.delta);
  EXPECT_EQ(report.reason, "weight-only");
  EXPECT_EQ(report.epoch_id, 1u);
  EXPECT_EQ(report.mutations, 40u);
  EXPECT_EQ(state.current_epoch_id(), 1u);
  EXPECT_EQ(state.current()->digest, report.digest);
  EXPECT_EQ(
      registry.counter_value("dyn_epoch_advances_total", {{"path", "delta"}}),
      1u);
  EXPECT_EQ(
      registry.counter_value("dyn_epoch_advances_total", {{"path", "rewarm"}}),
      0u);
  EXPECT_EQ(registry.counter_value("dyn_update_mutations_total",
                                   {{"kind", "weight"}}),
            40u);
}

TEST(EpochedState, EveryIneligibleMutationKindFallsBackToRewarm) {
  metrics::Registry registry;
  EpochedState state(base_instance(), test_config(), registry);

  UpdateBatch insert = batch_of(1);
  insert.mutations.push_back({MutationKind::kInsert, 0, 500, 3});
  auto report = state.advance(insert);
  EXPECT_FALSE(report.delta);
  EXPECT_EQ(report.reason, "insert changes n and the profit vector");

  UpdateBatch tombstone = batch_of(2);
  tombstone.mutations.push_back({MutationKind::kDelete, 5, 0, 0});
  report = state.advance(tombstone);
  EXPECT_FALSE(report.delta);
  EXPECT_EQ(report.reason, "delete tombstones a profit");

  UpdateBatch reprice = batch_of(3);
  reprice.mutations.push_back(
      {MutationKind::kProfitUpdate, 6,
       state.current()->instance->item(6).profit + 7, 0});
  report = state.advance(reprice);
  EXPECT_FALSE(report.delta);
  EXPECT_EQ(report.reason, "profit update re-weights the sampling distribution");

  EXPECT_EQ(
      registry.counter_value("dyn_epoch_advances_total", {{"path", "rewarm"}}),
      3u);
  EXPECT_EQ(
      registry.counter_value("dyn_epoch_advances_total", {{"path", "delta"}}),
      0u);
  EXPECT_EQ(registry.counter_value("dyn_update_mutations_total",
                                   {{"kind", "insert"}}),
            1u);
  EXPECT_EQ(registry.counter_value("dyn_update_mutations_total",
                                   {{"kind", "delete"}}),
            1u);
  EXPECT_EQ(registry.counter_value("dyn_update_mutations_total",
                                   {{"kind", "profit"}}),
            1u);
}

TEST(EpochedState, ChainedDeltasStayDigestVerified) {
  metrics::Registry registry;
  EpochedState state(base_instance(), test_config(/*verify_digest=*/true),
                     registry);
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    const auto report = state.advance(
        weight_batch(epoch, *state.current()->instance, 25, 2'000 + epoch));
    EXPECT_TRUE(report.delta) << "epoch " << epoch << ": " << report.reason;
  }
  EXPECT_EQ(state.current_epoch_id(), 3u);
  EXPECT_EQ(
      registry.counter_value("dyn_epoch_advances_total", {{"path", "delta"}}),
      3u);
}

TEST(EpochedState, DeltaChainsOffTheReRecordedTraceAfterARewarm) {
  metrics::Registry registry;
  EpochedState state(base_instance(), test_config(/*verify_digest=*/true),
                     registry);
  // A rewarm re-records the trace over the mutated instance...
  UpdateBatch insert = batch_of(1);
  insert.mutations.push_back({MutationKind::kInsert, 0, 400, 2});
  EXPECT_FALSE(state.advance(insert).delta);
  // ...so the next weight-only batch replays against the *new* base and the
  // verify_digest gate proves the replay sound.
  const auto report = state.advance(
      weight_batch(2, *state.current()->instance, 30, 3'000));
  EXPECT_TRUE(report.delta) << report.reason;
  EXPECT_EQ(state.current_epoch_id(), 2u);
}

TEST(EpochedState, EmptyBatchAdvancesByReplayWithoutChangingTheRun) {
  metrics::Registry registry;
  EpochedState state(base_instance(500), test_config(), registry);
  const auto digest0 = state.current()->digest;
  const auto report = state.advance(batch_of(1));
  EXPECT_TRUE(report.delta);
  EXPECT_EQ(report.reason, "empty-batch");
  EXPECT_EQ(report.digest, digest0);
}

TEST(EpochedState, RejectsNonMonotoneEpochIds) {
  metrics::Registry registry;
  EpochedState state(base_instance(500), test_config(), registry);
  (void)state.advance(weight_batch(2, *state.current()->instance, 5, 4'000));
  EXPECT_THROW((void)state.advance(batch_of(2)),
               std::invalid_argument);
  EXPECT_THROW((void)state.advance(batch_of(0)),
               std::invalid_argument);
  // Gaps are fine: ids must be strictly increasing, not dense.
  EXPECT_NO_THROW((void)state.advance(batch_of(10)));
  EXPECT_EQ(state.current_epoch_id(), 10u);
}

TEST(EpochedState, HeldEpochSurvivesTheAdvance) {
  metrics::Registry registry;
  EpochedState state(base_instance(500), test_config(), registry);
  const auto epoch0 = state.current();
  (void)state.advance(weight_batch(1, *epoch0->instance, 10, 5'000));
  // A reader that captured epoch 0 keeps a fully usable bundle: the
  // instance, the LCA, and the run all stay alive and answerable — this is
  // what lets in-flight requests legally complete under the old epoch.
  EXPECT_EQ(epoch0->epoch_id, 0u);
  core::LcaKp::AnswerWitness witness;
  (void)epoch0->lca->answer_with_witness(*epoch0->run, 3, witness);
  EXPECT_EQ(witness.profit, epoch0->instance->item(3).profit);
  EXPECT_NE(state.current(), epoch0);
}

TEST(EpochedState, InvalidBatchLeavesTheCurrentEpochUntouched) {
  metrics::Registry registry;
  EpochedState state(base_instance(500), test_config(), registry);
  UpdateBatch bad = batch_of(1);
  bad.mutations.push_back({MutationKind::kDelete, 9'999, 0, 0});
  EXPECT_THROW((void)state.advance(bad), std::invalid_argument);
  EXPECT_EQ(state.current_epoch_id(), 0u);
  // The failed advance still permits a later, valid one.
  EXPECT_NO_THROW(
      (void)state.advance(weight_batch(1, *state.current()->instance, 5, 6'000)));
}

}  // namespace
}  // namespace lcaknap::dyn
