#include "dyn/delta.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "oracle/access.h"
#include "util/rng.h"

namespace lcaknap::dyn {
namespace {

constexpr std::uint64_t kTapeSeed = 11;

core::LcaKpConfig test_config() {
  core::LcaKpConfig config;
  config.eps = 0.25;
  config.seed = 0xD17A;
  config.large_samples = 2'000;
  config.quantile_samples = 8'192;
  return config;
}

knapsack::Instance base_instance(std::size_t n = 2'000) {
  return knapsack::make_family(knapsack::Family::kUncorrelated, n, 97);
}

UpdateBatch batch_of(std::uint64_t epoch_id) {
  UpdateBatch batch;
  batch.epoch_id = epoch_id;
  return batch;
}

/// A weight-only batch over distinct indices, weights drawn in
/// [1, capacity] so the mutated instance always validates.
UpdateBatch weight_batch(std::uint64_t epoch_id,
                         const knapsack::Instance& inst, std::size_t count,
                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  UpdateBatch batch;
  batch.epoch_id = epoch_id;
  std::vector<bool> used(inst.size(), false);
  while (batch.mutations.size() < count) {
    const auto index = static_cast<std::size_t>(rng.next_below(inst.size()));
    if (used[index]) continue;
    used[index] = true;
    const auto weight = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(inst.capacity())) + 1);
    batch.mutations.push_back(
        {MutationKind::kWeightUpdate, index, 0, weight});
  }
  return batch;
}

// --- plan_delta: the soundness rule, one verdict per mutation kind ---------

TEST(PlanDelta, EmptyBatchIsEligible) {
  const auto base = base_instance(100);
  const auto plan = plan_delta(base, batch_of(1));
  EXPECT_TRUE(plan.delta_eligible);
  EXPECT_EQ(plan.reason, "empty-batch");
}

TEST(PlanDelta, WeightOnlyBatchIsEligible) {
  const auto base = base_instance(100);
  const auto plan = plan_delta(base, weight_batch(1, base, 10, 5));
  EXPECT_TRUE(plan.delta_eligible);
  EXPECT_EQ(plan.reason, "weight-only");
}

TEST(PlanDelta, InsertFallsBack) {
  const auto base = base_instance(100);
  UpdateBatch batch = batch_of(1);
  batch.mutations.push_back({MutationKind::kInsert, 0, 50, 3});
  const auto plan = plan_delta(base, batch);
  EXPECT_FALSE(plan.delta_eligible);
  EXPECT_EQ(plan.reason, "insert changes n and the profit vector");
}

TEST(PlanDelta, DeleteFallsBack) {
  const auto base = base_instance(100);
  UpdateBatch batch = batch_of(1);
  batch.mutations.push_back({MutationKind::kDelete, 7, 0, 0});
  const auto plan = plan_delta(base, batch);
  EXPECT_FALSE(plan.delta_eligible);
  EXPECT_EQ(plan.reason, "delete tombstones a profit");
}

TEST(PlanDelta, ProfitChangeFallsBack) {
  const auto base = base_instance(100);
  UpdateBatch batch = batch_of(1);
  batch.mutations.push_back(
      {MutationKind::kProfitUpdate, 7, base.item(7).profit + 1, 0});
  const auto plan = plan_delta(base, batch);
  EXPECT_FALSE(plan.delta_eligible);
  EXPECT_EQ(plan.reason, "profit update re-weights the sampling distribution");
}

TEST(PlanDelta, ValueIdenticalProfitWriteIsEligible) {
  const auto base = base_instance(100);
  UpdateBatch batch = batch_of(1);
  batch.mutations.push_back(
      {MutationKind::kProfitUpdate, 7, base.item(7).profit, 0});
  batch.mutations.push_back({MutationKind::kWeightUpdate, 9, 0, 4});
  const auto plan = plan_delta(base, batch);
  EXPECT_TRUE(plan.delta_eligible);
  EXPECT_EQ(plan.reason, "weight-only");
}

TEST(PlanDelta, OutOfRangeIndexIsIneligibleNotAThrow) {
  const auto base = base_instance(100);
  UpdateBatch batch = batch_of(1);
  batch.mutations.push_back({MutationKind::kWeightUpdate, 999, 0, 4});
  EXPECT_FALSE(plan_delta(base, batch).delta_eligible);
  batch.mutations = {{MutationKind::kProfitUpdate, 999, 1, 0}};
  EXPECT_FALSE(plan_delta(base, batch).delta_eligible);
}

// --- replay_delta: the differential digest suite ---------------------------

/// The Lemma 4.9 contract extended across an epoch: for every
/// plan_delta-eligible batch, the replayed run must be run_digest-equal to a
/// fresh full warm-up of the mutated instance.
TEST(ReplayDelta, WeightOnlyBatchesAreDigestEqualToFreshWarmups) {
  const auto base = base_instance();
  const oracle::MaterializedAccess access(base);
  const core::LcaKp lca(access, test_config());
  core::WarmupTrace trace;
  (void)lca.run_warmup(kTapeSeed, 0, nullptr, &trace);
  EXPECT_EQ(trace.tape_seed, kTapeSeed);

  for (const std::size_t churn : {1u, 20u, 200u}) {
    const auto batch = weight_batch(1, base, churn, 1'000 + churn);
    ASSERT_TRUE(plan_delta(base, batch).delta_eligible);
    const auto mutated = apply_batch(base, batch);
    const oracle::MaterializedAccess mutated_access(mutated);
    const core::LcaKp mutated_lca(mutated_access, test_config());

    const auto delta = replay_delta(mutated_lca, trace);
    const auto fresh = mutated_lca.run_warmup(kTapeSeed, 0);
    EXPECT_EQ(core::run_digest(delta), core::run_digest(fresh))
        << "digest mismatch at churn " << churn;
  }
}

TEST(ReplayDelta, ChainedDeltasReplayFromTheOriginalTrace) {
  const auto base = base_instance();
  const oracle::MaterializedAccess access(base);
  const core::LcaKp lca(access, test_config());
  core::WarmupTrace trace;
  (void)lca.run_warmup(kTapeSeed, 0, nullptr, &trace);

  // Profits never change along a delta chain, so the epoch-0 trace stays
  // valid against every later instance in the chain.
  knapsack::Instance current = base;
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    const auto batch = weight_batch(epoch, current, 50, 7'000 + epoch);
    current = apply_batch(current, batch);
    const oracle::MaterializedAccess chained_access(current);
    const core::LcaKp chained_lca(chained_access, test_config());
    const auto delta = replay_delta(chained_lca, trace);
    const auto fresh = chained_lca.run_warmup(kTapeSeed, 0);
    EXPECT_EQ(core::run_digest(delta), core::run_digest(fresh))
        << "digest mismatch at epoch " << epoch;
  }
}

TEST(ReplayDelta, EmptyBatchReplaysTheIdenticalRun) {
  const auto base = base_instance(500);
  const oracle::MaterializedAccess access(base);
  const core::LcaKp lca(access, test_config());
  core::WarmupTrace trace;
  const auto original = lca.run_warmup(kTapeSeed, 0, nullptr, &trace);
  const auto replayed = replay_delta(lca, trace);
  EXPECT_EQ(core::run_digest(replayed), core::run_digest(original));
}

TEST(ReplayDelta, ThrowsWhenATracedLargeIndexStopsClassifyingLarge) {
  // One heavy item dominates the profit mass, so the step-1 sweep is all but
  // guaranteed to record it as large.
  std::vector<knapsack::Item> items(50, {10, 2});
  items[0] = {1'000, 2};
  const knapsack::Instance base(std::move(items), /*capacity=*/20);
  const oracle::MaterializedAccess access(base);
  const core::LcaKp lca(access, test_config());
  core::WarmupTrace trace;
  (void)lca.run_warmup(kTapeSeed, 0, nullptr, &trace);
  ASSERT_FALSE(trace.large_drawn.empty());

  // Repricing the heavy item (an ineligible batch — this calls the replay
  // directly to exercise its defensive invariant) drops its normalized
  // profit below eps^2: the traced-large set no longer replays.
  UpdateBatch batch = batch_of(1);
  batch.mutations.push_back({MutationKind::kProfitUpdate, 0, 10, 0});
  const auto mutated = apply_batch(base, batch);
  const oracle::MaterializedAccess mutated_access(mutated);
  const core::LcaKp mutated_lca(mutated_access, test_config());
  EXPECT_THROW((void)replay_delta(mutated_lca, trace), std::runtime_error);
}

TEST(ReplayDelta, ThrowsWhenTheSmallMassGateFlips) {
  const auto base = base_instance(500);
  const oracle::MaterializedAccess access(base);
  const core::LcaKp lca(access, test_config());
  core::WarmupTrace trace;
  (void)lca.run_warmup(kTapeSeed, 0, nullptr, &trace);
  // A tampered trace claiming the opposite gate outcome must be refused —
  // the gate is a pure function of large_mass, which the replay recomputes.
  core::WarmupTrace tampered = trace;
  tampered.quantile_swept = !tampered.quantile_swept;
  EXPECT_THROW((void)replay_delta(lca, tampered), std::runtime_error);
}

}  // namespace
}  // namespace lcaknap::dyn
