#include "dyn/update.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "knapsack/instance.h"

namespace lcaknap::dyn {
namespace {

UpdateBatch weight_only_batch(std::uint64_t epoch_id) {
  UpdateBatch batch;
  batch.epoch_id = epoch_id;
  batch.mutations.push_back(
      {MutationKind::kWeightUpdate, /*index=*/3, /*profit=*/0, /*weight=*/40});
  batch.mutations.push_back(
      {MutationKind::kWeightUpdate, /*index=*/7, /*profit=*/0, /*weight=*/55});
  return batch;
}

UpdateBatch mixed_batch(std::uint64_t epoch_id) {
  UpdateBatch batch;
  batch.epoch_id = epoch_id;
  batch.mutations.push_back(
      {MutationKind::kInsert, /*index=*/0, /*profit=*/900, /*weight=*/120});
  batch.mutations.push_back(
      {MutationKind::kDelete, /*index=*/1, /*profit=*/0, /*weight=*/0});
  batch.mutations.push_back(
      {MutationKind::kProfitUpdate, /*index=*/2, /*profit=*/500, /*weight=*/0});
  batch.mutations.push_back(
      {MutationKind::kWeightUpdate, /*index=*/4, /*profit=*/0, /*weight=*/9});
  return batch;
}

TEST(EpochLog, SerializeParseRoundTripsByteExactly) {
  const std::vector<UpdateBatch> batches = {weight_only_batch(1),
                                            mixed_batch(2)};
  const std::string text = serialize_epoch_log(batches);
  const auto parsed = parse_epoch_log(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].epoch_id, 1u);
  EXPECT_EQ(parsed[1].epoch_id, 2u);
  ASSERT_EQ(parsed[1].mutations.size(), 4u);
  EXPECT_EQ(parsed[1].mutations[0].kind, MutationKind::kInsert);
  EXPECT_EQ(parsed[1].mutations[0].profit, 900);
  EXPECT_EQ(parsed[1].mutations[0].weight, 120);
  EXPECT_EQ(parsed[1].mutations[1].kind, MutationKind::kDelete);
  EXPECT_EQ(parsed[1].mutations[1].index, 1u);
  // The round trip is byte-exact: re-serializing the parse reproduces the
  // original text, seals included.
  EXPECT_EQ(serialize_epoch_log(parsed), text);
}

TEST(EpochLog, SealAutoAcceptsTheComputedCrc) {
  const std::string text =
      "# hand-authored log\n"
      "epoch 1\n"
      "weight 3 40\n"
      "seal auto\n";
  const auto parsed = parse_epoch_log(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].epoch_id, 1u);
  ASSERT_EQ(parsed[0].mutations.size(), 1u);
  EXPECT_EQ(parsed[0].mutations[0].kind, MutationKind::kWeightUpdate);
}

TEST(EpochLog, SealMismatchIsATypedErrorWithLocation) {
  const std::string text =
      "epoch 1\n"
      "weight 3 40\n"
      "seal 0000000000000000\n";
  try {
    (void)parse_epoch_log(text);
    FAIL() << "expected EpochLogParseError";
  } catch (const EpochLogParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.token(), "0000000000000000");
    EXPECT_NE(std::string(e.what()).find("epoch log:3:"), std::string::npos);
  }
}

TEST(EpochLog, UnknownDirectivePinsLineAndColumn) {
  const std::string text =
      "epoch 1\n"
      "  reprice 3 40\n";
  try {
    (void)parse_epoch_log(text);
    FAIL() << "expected EpochLogParseError";
  } catch (const EpochLogParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.column(), 3u);  // 1-based, after the two-space indent
    EXPECT_EQ(e.token(), "reprice");
  }
}

TEST(EpochLog, NonMonotoneEpochIdsRejected) {
  const std::string text = serialize_epoch_log(
      std::vector<UpdateBatch>{weight_only_batch(2), weight_only_batch(2)});
  EXPECT_THROW((void)parse_epoch_log(text), EpochLogParseError);
}

TEST(EpochLog, MutationOutsideABatchRejected) {
  EXPECT_THROW((void)parse_epoch_log("weight 3 40\n"), EpochLogParseError);
}

TEST(EpochLog, UnsealedTrailingBatchRejected) {
  EXPECT_THROW((void)parse_epoch_log("epoch 1\nweight 3 40\n"),
               EpochLogParseError);
}

TEST(EpochLog, NonNumericOperandRejected) {
  try {
    (void)parse_epoch_log("epoch 1\nweight three 40\nseal auto\n");
    FAIL() << "expected EpochLogParseError";
  } catch (const EpochLogParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.token(), "three");
  }
}

TEST(EpochLog, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "\n# leading comment\n"
      "epoch 5\n"
      "# between directives\n"
      "delete 2\n"
      "\n"
      "seal auto\n";
  const auto parsed = parse_epoch_log(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].epoch_id, 5u);
  ASSERT_EQ(parsed[0].mutations.size(), 1u);
}

TEST(EpochLog, BatchCrcMatchesTheSerializedSeal) {
  const UpdateBatch batch = mixed_batch(3);
  const std::string log = serialize_epoch_log({&batch, 1});
  char expected[32];
  std::snprintf(expected, sizeof expected, "seal %016llx",
                static_cast<unsigned long long>(batch_crc(batch)));
  EXPECT_NE(log.find(expected), std::string::npos);
}

TEST(EpochLog, LoadEpochLogReadsAFile) {
  const auto path = std::filesystem::temp_directory_path() /
                    "lcaknap_test_epoch_log.elog";
  {
    std::ofstream os(path);
    os << serialize_epoch_log(std::vector<UpdateBatch>{weight_only_batch(1)});
  }
  const auto parsed = load_epoch_log(path.string());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].epoch_id, 1u);
  std::filesystem::remove(path);
  EXPECT_THROW((void)load_epoch_log(path.string()), std::runtime_error);
}

// --- apply_batch -----------------------------------------------------------

knapsack::Instance small_instance() {
  return knapsack::Instance(
      {{10, 5}, {20, 3}, {30, 8}, {40, 2}, {50, 7}}, /*capacity=*/10);
}

TEST(ApplyBatch, WeightAndProfitUpdatesWriteInPlace) {
  const auto base = small_instance();
  UpdateBatch batch;
  batch.epoch_id = 1;
  batch.mutations.push_back({MutationKind::kWeightUpdate, 0, 0, 9});
  batch.mutations.push_back({MutationKind::kProfitUpdate, 2, 77, 0});
  const auto next = apply_batch(base, batch);
  EXPECT_EQ(next.size(), base.size());
  EXPECT_EQ(next.item(0).weight, 9);
  EXPECT_EQ(next.item(0).profit, 10);
  EXPECT_EQ(next.item(2).profit, 77);
  // The input instance is untouched.
  EXPECT_EQ(base.item(0).weight, 5);
}

TEST(ApplyBatch, InsertAppendsAndDeleteTombstones) {
  const auto base = small_instance();
  UpdateBatch batch;
  batch.epoch_id = 1;
  batch.mutations.push_back({MutationKind::kInsert, 0, 15, 4});
  batch.mutations.push_back({MutationKind::kDelete, 1, 0, 0});
  const auto next = apply_batch(base, batch);
  ASSERT_EQ(next.size(), base.size() + 1);
  EXPECT_EQ(next.item(5).profit, 15);
  EXPECT_EQ(next.item(5).weight, 4);
  // Tombstone: (0, 0), every other index stable.
  EXPECT_EQ(next.item(1).profit, 0);
  EXPECT_EQ(next.item(1).weight, 0);
  EXPECT_EQ(next.item(2).profit, 30);
}

TEST(ApplyBatch, RejectsInvalidMutations) {
  const auto base = small_instance();
  UpdateBatch batch;
  batch.epoch_id = 1;
  batch.mutations.push_back({MutationKind::kDelete, 99, 0, 0});
  EXPECT_THROW((void)apply_batch(base, batch), std::invalid_argument);

  batch.mutations = {{MutationKind::kProfitUpdate, 0, -1, 0}};
  EXPECT_THROW((void)apply_batch(base, batch), std::invalid_argument);

  // A weight above the capacity violates the Definition 2.2 convention the
  // Instance constructor enforces.
  batch.mutations = {{MutationKind::kWeightUpdate, 0, 0, 11}};
  EXPECT_THROW((void)apply_batch(base, batch), std::invalid_argument);
}

TEST(ApplyBatch, RejectsTombstoningAllProfit) {
  const knapsack::Instance base({{10, 1}, {0, 1}}, /*capacity=*/5);
  UpdateBatch batch;
  batch.epoch_id = 1;
  batch.mutations.push_back({MutationKind::kDelete, 0, 0, 0});
  // Total profit would drop to zero, which Instance rejects.
  EXPECT_THROW((void)apply_batch(base, batch), std::invalid_argument);
}

}  // namespace
}  // namespace lcaknap::dyn
