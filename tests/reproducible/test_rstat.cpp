#include "reproducible/rstat.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace lcaknap::reproducible {
namespace {

TEST(RoundToOffsetGrid, LandsOnGridPoints) {
  for (const double u : {0.0, 0.25, 0.7}) {
    for (double v = -2.0; v <= 2.0; v += 0.137) {
      const double rounded = round_to_offset_grid(v, 0.1, u);
      const double k = (rounded / 0.1) - u;
      EXPECT_NEAR(k, std::round(k), 1e-9);
    }
  }
}

TEST(RoundToOffsetGrid, ErrorAtMostHalfSpacing) {
  for (const double u : {0.1, 0.5, 0.9}) {
    for (double v = 0.0; v <= 1.0; v += 0.0173) {
      EXPECT_LE(std::abs(round_to_offset_grid(v, 0.05, u) - v), 0.025 + 1e-12);
    }
  }
}

TEST(ReproducibleMean, AccuracyWithinSpacing) {
  util::Xoshiro256 rng(1);
  const util::Prf prf(99);
  std::vector<double> samples(20'000);
  for (auto& s : samples) s = rng.next_double();  // mean 0.5
  const double result = reproducible_mean(samples, 0.05, prf, 0);
  EXPECT_NEAR(result, 0.5, 0.05 / 2 + 0.02);
}

TEST(ReproducibleMean, IdenticalAcrossRunsWithSharedRandomness) {
  // Definition 2.5: same internal randomness r, fresh samples s1, s2.
  const double rho = 0.1;
  const double spacing = 0.05;
  const std::size_t n = rstat_sample_size(spacing, rho, 0.05);
  util::Xoshiro256 fresh(42);
  int disagreements = 0;
  constexpr int kPairs = 200;
  for (int pair = 0; pair < kPairs; ++pair) {
    const util::Prf prf(static_cast<std::uint64_t>(pair) * 7919 + 1);
    std::vector<double> s1(n), s2(n);
    for (auto& x : s1) x = fresh.next_double() < 0.37 ? 1.0 : 0.0;
    for (auto& x : s2) x = fresh.next_double() < 0.37 ? 1.0 : 0.0;
    if (reproducible_mean(s1, spacing, prf, 3) !=
        reproducible_mean(s2, spacing, prf, 3)) {
      ++disagreements;
    }
  }
  // Expected disagreement rate <= rho = 0.1; allow sampling slack.
  EXPECT_LE(disagreements, static_cast<int>(kPairs * rho * 2));
}

TEST(ReproducibleMean, DifferentQueryIdsUseDifferentOffsets) {
  const util::Prf prf(5);
  const std::vector<double> samples(1000, 0.5);
  const double a = reproducible_mean(samples, 0.2, prf, 1);
  const double b = reproducible_mean(samples, 0.2, prf, 2);
  // Same data, different grid offsets: outputs may differ but both within
  // spacing/2 of the truth.
  EXPECT_NEAR(a, 0.5, 0.1);
  EXPECT_NEAR(b, 0.5, 0.1);
}

TEST(ReproducibleMean, RejectsBadInput) {
  const util::Prf prf(1);
  EXPECT_THROW(reproducible_mean({}, 0.1, prf, 0), std::invalid_argument);
  const std::vector<double> one{0.5};
  EXPECT_THROW(reproducible_mean(one, 0.0, prf, 0), std::invalid_argument);
}

TEST(RStatSampleSize, ScalesInverselyWithRhoSquared) {
  const auto loose = rstat_sample_size(0.1, 0.2, 0.1);
  const auto tight = rstat_sample_size(0.1, 0.02, 0.1);
  EXPECT_NEAR(static_cast<double>(tight) / static_cast<double>(loose), 100.0, 1.0);
}

}  // namespace
}  // namespace lcaknap::reproducible
