#include "reproducible/rquantile.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace lcaknap::reproducible {
namespace {

RQuantileParams default_params(std::int64_t domain = 1 << 12) {
  RQuantileParams p;
  p.domain_size = domain;
  p.tau = 0.06;
  p.rho = 0.2;
  p.beta = 0.1;
  p.branching = 16;
  return p;
}

std::vector<std::int64_t> uniform_sample(std::int64_t domain, std::size_t n,
                                         util::Xoshiro256& rng) {
  std::vector<std::int64_t> s(n);
  for (auto& v : s) v = static_cast<std::int64_t>(rng.next_below(
                        static_cast<std::uint64_t>(domain)));
  return s;
}

class RQuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(RQuantileSweep, UniformQuantilesAreAccurate) {
  const double p = GetParam();
  const auto params = default_params();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(p * 1000) + 1);
  const auto samples = uniform_sample(params.domain_size, 60'000, rng);
  const util::Prf prf(21);
  const auto v = rquantile(samples, p, params, prf, 0);
  const double cdf = static_cast<double>(v + 1) / static_cast<double>(params.domain_size);
  EXPECT_NEAR(cdf, p, params.tau + 0.02) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, RQuantileSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

TEST(RQuantile, MedianMatchesPaddingReduction) {
  // p = 0.5 through the padding must land near the plain median.
  const auto params = default_params();
  util::Xoshiro256 rng(2);
  const auto samples = uniform_sample(params.domain_size, 50'000, rng);
  const util::Prf prf(22);
  const auto via_quantile = rquantile(samples, 0.5, params, prf, 0);
  const double cdf = static_cast<double>(via_quantile + 1) /
                     static_cast<double>(params.domain_size);
  EXPECT_NEAR(cdf, 0.5, params.tau + 0.02);
}

TEST(RQuantile, CdfOverloadMatchesSpanOverload) {
  const auto params = default_params();
  util::Xoshiro256 rng(3);
  const auto samples = uniform_sample(params.domain_size, 30'000, rng);
  const util::EmpiricalCdfInt ecdf(samples);
  const util::Prf prf(23);
  for (const double p : {0.2, 0.5, 0.8}) {
    EXPECT_EQ(rquantile(samples, p, params, prf, 4),
              rquantile(ecdf, p, params, prf, 4))
        << "p=" << p;
  }
}

TEST(RQuantile, ReproducibleAcrossFreshSamples) {
  auto params = default_params(1 << 10);
  params.tau = 0.08;
  util::Xoshiro256 fresh(29);
  int disagreements = 0;
  constexpr int kPairs = 50;
  const std::size_t n = 60'000;
  for (int pair = 0; pair < kPairs; ++pair) {
    const util::Prf prf(static_cast<std::uint64_t>(pair) * 31337 + 5);
    const auto draw = [&] {
      std::vector<std::int64_t> s(n);
      for (auto& v : s) {
        const double u = fresh.next_double();
        v = static_cast<std::int64_t>(u * u * static_cast<double>(params.domain_size - 1));
      }
      return s;
    };
    const auto q1 = rquantile(draw(), 0.7, params, prf, 1);
    const auto q2 = rquantile(draw(), 0.7, params, prf, 1);
    if (q1 != q2) ++disagreements;
  }
  EXPECT_LE(disagreements, static_cast<int>(kPairs * params.rho * 2.0 + 3));
}

TEST(RQuantile, ExtremeQuantilesStayInDomain) {
  const auto params = default_params();
  util::Xoshiro256 rng(4);
  const auto samples = uniform_sample(params.domain_size, 10'000, rng);
  const util::Prf prf(24);
  const auto lo = rquantile(samples, 0.01, params, prf, 0);
  const auto hi = rquantile(samples, 0.99, params, prf, 1);
  EXPECT_GE(lo, 0);
  EXPECT_LT(hi, params.domain_size);
  EXPECT_LE(lo, hi);
}

TEST(RQuantile, PointMass) {
  const auto params = default_params();
  const std::vector<std::int64_t> samples(5'000, 777);
  const util::Prf prf(25);
  EXPECT_EQ(rquantile(samples, 0.3, params, prf, 0), 777);
  EXPECT_EQ(rquantile(samples, 0.9, params, prf, 1), 777);
}

TEST(RQuantile, RejectsBadInput) {
  const auto params = default_params();
  const util::Prf prf(26);
  const std::vector<std::int64_t> samples{1, 2, 3};
  EXPECT_THROW(rquantile(samples, 0.0, params, prf, 0), std::invalid_argument);
  EXPECT_THROW(rquantile(samples, 1.0, params, prf, 0), std::invalid_argument);
  EXPECT_THROW(rquantile(std::vector<std::int64_t>{}, 0.5, params, prf, 0),
               std::invalid_argument);
  const std::vector<std::int64_t> bad{params.domain_size};
  EXPECT_THROW(rquantile(bad, 0.5, params, prf, 0), std::invalid_argument);
}

TEST(RQuantile, SampleSizeAccountsForPadding) {
  const auto params = default_params();
  RMedianParams mp;
  mp.domain_size = params.domain_size + 2;
  mp.tau = params.tau / 2.0;
  mp.rho = params.rho;
  mp.beta = params.beta;
  mp.branching = params.branching;
  EXPECT_EQ(rquantile_sample_size(params), 2 * rmedian_sample_size(mp));
}

}  // namespace
}  // namespace lcaknap::reproducible
