#include "reproducible/heavy_hitters.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>
#include <vector>

#include "util/rng.h"

namespace lcaknap::reproducible {
namespace {

HeavyHittersParams default_params() {
  HeavyHittersParams p;
  p.v = 0.1;
  p.slack = 0.03;
  p.rho = 0.2;
  p.beta = 0.1;
  return p;
}

TEST(HeavyHitters, FindsClearHeavyValues) {
  // Value 7 has frequency 0.5, value 9 has 0.3, the rest spread thin.
  util::Xoshiro256 rng(1);
  std::vector<std::int64_t> samples;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.next_double();
    if (u < 0.5) {
      samples.push_back(7);
    } else if (u < 0.8) {
      samples.push_back(9);
    } else {
      samples.push_back(100 + static_cast<std::int64_t>(rng.next_below(1000)));
    }
  }
  const util::Prf prf(31);
  const auto hitters = reproducible_heavy_hitters(samples, default_params(), prf, 0);
  EXPECT_TRUE(std::binary_search(hitters.begin(), hitters.end(), 7));
  EXPECT_TRUE(std::binary_search(hitters.begin(), hitters.end(), 9));
  // Thin values (frequency ~2e-4 each) must be excluded.
  for (const auto h : hitters) EXPECT_LT(h, 100);
}

TEST(HeavyHitters, OutputIsSortedAndDeduplicated) {
  std::vector<std::int64_t> samples;
  samples.insert(samples.end(), 500, 3);
  samples.insert(samples.end(), 500, 1);
  const util::Prf prf(32);
  const auto hitters = reproducible_heavy_hitters(samples, default_params(), prf, 0);
  ASSERT_EQ(hitters.size(), 2u);
  EXPECT_EQ(hitters[0], 1);
  EXPECT_EQ(hitters[1], 3);
}

TEST(HeavyHitters, ReproducibleAcrossFreshSamples) {
  auto params = default_params();
  util::Xoshiro256 fresh(7);
  // The provable budget (heavy_hitters_sample_size) is ~1e7 draws; use a
  // calibrated test-sized sample and a correspondingly looser bound.
  const std::size_t n = 200'000;
  int disagreements = 0;
  constexpr int kPairs = 40;
  for (int pair = 0; pair < kPairs; ++pair) {
    const util::Prf prf(static_cast<std::uint64_t>(pair) * 65537 + 9);
    const auto draw = [&] {
      std::vector<std::int64_t> s(n);
      for (auto& v : s) {
        const double u = fresh.next_double();
        // Frequencies: 0.30, 0.12, 0.08 (near threshold), rest thin.
        if (u < 0.30) {
          v = 1;
        } else if (u < 0.42) {
          v = 2;
        } else if (u < 0.50) {
          v = 3;
        } else {
          v = 1000 + static_cast<std::int64_t>(fresh.next_below(10'000));
        }
      }
      return s;
    };
    if (reproducible_heavy_hitters(draw(), params, prf, 0) !=
        reproducible_heavy_hitters(draw(), params, prf, 0)) {
      ++disagreements;
    }
  }
  EXPECT_LE(disagreements, static_cast<int>(kPairs * params.rho * 2.0 + 3));
}

/// The previous (pre-optimization) implementation: per-call `std::map`
/// frequency counts.  Kept verbatim as a reference so the sorted-vector
/// rewrite is pinned to produce byte-identical output.
std::vector<std::int64_t> map_reference(std::span<const std::int64_t> samples,
                                        const HeavyHittersParams& params,
                                        const util::Prf& prf,
                                        std::uint64_t query_id) {
  std::map<std::int64_t, std::size_t> counts;
  for (const auto s : samples) ++counts[s];
  const double u = prf.uniform(
      static_cast<std::uint64_t>(util::RandomStream::kHeavyHitters), query_id);
  const double theta = params.v - params.slack + 2.0 * params.slack * u;
  std::vector<std::int64_t> hitters;
  const auto n = static_cast<double>(samples.size());
  for (const auto& [value, count] : counts) {
    if (static_cast<double>(count) / n >= theta) hitters.push_back(value);
  }
  return hitters;
}

TEST(HeavyHitters, MatchesMapReferenceImplementation) {
  const auto params = default_params();
  util::Xoshiro256 rng(99);
  for (std::uint64_t query_id = 0; query_id < 20; ++query_id) {
    std::vector<std::int64_t> samples(20'000);
    for (auto& v : samples) {
      const double u = rng.next_double();
      if (u < 0.25) {
        v = -5;  // negative values must survive the rewrite too
      } else if (u < 0.40) {
        v = 0;
      } else if (u < 0.52) {
        v = 12;
      } else {
        v = static_cast<std::int64_t>(rng.next_below(2'000));
      }
    }
    const util::Prf prf(query_id * 31 + 7);
    EXPECT_EQ(reproducible_heavy_hitters(samples, params, prf, query_id),
              map_reference(samples, params, prf, query_id));
  }
}

TEST(HeavyHitters, ValidatesParameters) {
  const std::vector<std::int64_t> samples{1, 2, 3};
  const util::Prf prf(33);
  auto p = default_params();
  p.v = 0.0;
  EXPECT_THROW(reproducible_heavy_hitters(samples, p, prf, 0), std::invalid_argument);
  p = default_params();
  p.slack = p.v;  // slack must be < v
  EXPECT_THROW(reproducible_heavy_hitters(samples, p, prf, 0), std::invalid_argument);
  p = default_params();
  EXPECT_THROW(reproducible_heavy_hitters({}, p, prf, 0), std::invalid_argument);
}

}  // namespace
}  // namespace lcaknap::reproducible
