#include "reproducible/rmedian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace lcaknap::reproducible {
namespace {

/// True-CDF check of Definition 2.6 against a sample-generating model.
bool is_tau_approx_median(double cdf_at_value, double cdf_below_value, double tau) {
  // Pr[X <= x] >= 1/2 - tau  and  Pr[X >= x] = 1 - Pr[X < x] >= 1/2 - tau.
  return cdf_at_value >= 0.5 - tau && 1.0 - cdf_below_value >= 0.5 - tau;
}

RMedianParams default_params(std::int64_t domain = 1 << 12) {
  RMedianParams p;
  p.domain_size = domain;
  p.tau = 0.05;
  p.rho = 0.2;
  p.beta = 0.1;
  p.branching = 16;
  return p;
}

std::vector<std::int64_t> uniform_sample(std::int64_t domain, std::size_t n,
                                         util::Xoshiro256& rng) {
  std::vector<std::int64_t> s(n);
  for (auto& v : s) v = static_cast<std::int64_t>(rng.next_below(
                        static_cast<std::uint64_t>(domain)));
  return s;
}

TEST(RMedian, UniformDistributionMedianNearCenter) {
  const auto params = default_params();
  util::Xoshiro256 rng(1);
  const auto samples = uniform_sample(params.domain_size, 50'000, rng);
  const util::Prf prf(7);
  const auto m = rmedian(samples, params, prf, 0);
  // True CDF of uniform over [0, D): F(m) = (m+1)/D; tau-approx bounds.
  const double cdf = static_cast<double>(m + 1) / static_cast<double>(params.domain_size);
  const double below = static_cast<double>(m) / static_cast<double>(params.domain_size);
  EXPECT_TRUE(is_tau_approx_median(cdf, below, params.tau)) << "m=" << m;
}

TEST(RMedian, PointMassReturnsTheAtom) {
  const auto params = default_params();
  const std::vector<std::int64_t> samples(5'000, 1234);
  const util::Prf prf(8);
  EXPECT_EQ(rmedian(samples, params, prf, 0), 1234);
}

TEST(RMedian, TwoAtomsReturnsEither) {
  const auto params = default_params();
  std::vector<std::int64_t> samples;
  samples.insert(samples.end(), 5'000, 100);
  samples.insert(samples.end(), 5'000, 3000);
  const util::Prf prf(9);
  const auto m = rmedian(samples, params, prf, 0);
  // Any value in [100, 3000] is a tau-approximate median here.
  EXPECT_GE(m, 100);
  EXPECT_LE(m, 3000);
}

TEST(RMedian, SkewedAtomRespectsMass) {
  const auto params = default_params();
  std::vector<std::int64_t> samples;
  samples.insert(samples.end(), 9'000, 500);   // 90% mass at 500
  samples.insert(samples.end(), 1'000, 4000);
  const util::Prf prf(10);
  EXPECT_EQ(rmedian(samples, params, prf, 0), 500);
}

TEST(RMedian, DeterministicGivenSameSamplesAndSeed) {
  const auto params = default_params();
  util::Xoshiro256 rng(3);
  const auto samples = uniform_sample(params.domain_size, 10'000, rng);
  const util::Prf prf(11);
  EXPECT_EQ(rmedian(samples, params, prf, 5), rmedian(samples, params, prf, 5));
}

TEST(RMedian, ReproducibleAcrossFreshSamples) {
  // The Definition 2.5 experiment: shared r, fresh sample sets, many trials.
  auto params = default_params(1 << 10);
  params.tau = 0.08;
  params.rho = 0.2;
  const std::size_t n = 60'000;
  util::Xoshiro256 fresh(17);
  int disagreements = 0;
  constexpr int kPairs = 60;
  for (int pair = 0; pair < kPairs; ++pair) {
    const util::Prf prf(static_cast<std::uint64_t>(pair) * 104729 + 3);
    // A smooth non-uniform distribution: squared-uniform (denser near 0).
    const auto draw = [&]() {
      std::vector<std::int64_t> s(n);
      for (auto& v : s) {
        const double u = fresh.next_double();
        v = static_cast<std::int64_t>(u * u * static_cast<double>(params.domain_size - 1));
      }
      return s;
    };
    const auto m1 = rmedian(draw(), params, prf, 0);
    const auto m2 = rmedian(draw(), params, prf, 0);
    if (m1 != m2) ++disagreements;
  }
  // Calibrated budget: the measured rate must be comfortably below 1 and in
  // the vicinity of rho; allow 2x slack for the finite trial count.
  EXPECT_LE(disagreements, static_cast<int>(kPairs * params.rho * 2.0 + 3));
}

TEST(RMedian, DepthShrinksWithBranching) {
  auto p2 = default_params(1 << 20);
  p2.branching = 2;
  auto p64 = default_params(1 << 20);
  p64.branching = 64;
  EXPECT_EQ(rmedian_depth(p2), 20);
  EXPECT_EQ(rmedian_depth(p64), 4);  // ceil(20/6)
}

TEST(RMedian, SampleSizeGrowsWithDomain) {
  auto small = default_params(1 << 8);
  auto large = default_params(1LL << 40);
  EXPECT_LT(rmedian_sample_size(small), rmedian_sample_size(large));
}

TEST(RMedian, TargetQuantileGeneralization) {
  auto params = default_params();
  params.target = 0.9;
  util::Xoshiro256 rng(4);
  const auto samples = uniform_sample(params.domain_size, 50'000, rng);
  const util::Prf prf(12);
  const auto v = rmedian(samples, params, prf, 0);
  const double cdf = static_cast<double>(v + 1) / static_cast<double>(params.domain_size);
  EXPECT_NEAR(cdf, 0.9, params.tau + 0.02);
}

TEST(RMedian, ValidatesParameters) {
  const std::vector<std::int64_t> samples{1, 2, 3};
  const util::Prf prf(1);
  auto p = default_params();
  p.tau = 0.0;
  EXPECT_THROW(rmedian(samples, p, prf, 0), std::invalid_argument);
  p = default_params();
  p.domain_size = 1;
  EXPECT_THROW(rmedian(samples, p, prf, 0), std::invalid_argument);
  p = default_params();
  EXPECT_THROW(rmedian({}, p, prf, 0), std::invalid_argument);
  const std::vector<std::int64_t> out_of_domain{-1};
  EXPECT_THROW(rmedian(out_of_domain, p, prf, 0), std::invalid_argument);
}

TEST(RMedian, AtomExactlyAtMassHalfIsHandled) {
  // Adversarial: the CDF jumps from 0.5- to 1.0 at one atom; any value in
  // the gap straddles the target.  The output must still be a valid
  // tau-approximate median (here: one of the two atoms or a value between).
  const auto params = default_params();
  std::vector<std::int64_t> samples;
  samples.insert(samples.end(), 5'000, 700);   // mass 0.5 at 700
  samples.insert(samples.end(), 5'000, 2900);  // mass 0.5 at 2900
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const util::Prf prf(seed);
    const auto m = rmedian(samples, params, prf, 0);
    EXPECT_GE(m, 700);
    EXPECT_LE(m, 2900);
  }
}

TEST(RMedian, ManyTinyAtomsNearTarget) {
  // 50 atoms of mass 0.02 each straddling the median region: the dense-CDF
  // regime where naive rounding schemes degrade; the output must still be a
  // tau-approximate median of the empirical distribution.
  const auto params = default_params();
  std::vector<std::int64_t> samples;
  for (int a = 0; a < 50; ++a) {
    samples.insert(samples.end(), 200, 1000 + a * 7);
  }
  const util::Prf prf(77);
  const auto m = rmedian(samples, params, prf, 0);
  const util::EmpiricalCdfInt ecdf(samples);
  EXPECT_GE(ecdf.at(m), 0.5 - params.tau - 1e-9);
  EXPECT_GE(1.0 - ecdf.at(m - 1), 0.5 - params.tau - 1e-9);
}

TEST(RMedian, DomainEdgesAreValidOutputs) {
  // All mass at the bottom / top of the domain.
  const auto params = default_params();
  const util::Prf prf(78);
  const std::vector<std::int64_t> bottom(1'000, 0);
  EXPECT_EQ(rmedian(bottom, params, prf, 0), 0);
  const std::vector<std::int64_t> top(1'000, params.domain_size - 1);
  EXPECT_EQ(rmedian(top, params, prf, 1), params.domain_size - 1);
}

TEST(RMedianCdf, MatchesSpanVersion) {
  const auto params = default_params();
  util::Xoshiro256 rng(5);
  const auto samples = uniform_sample(params.domain_size, 20'000, rng);
  const util::EmpiricalCdfInt ecdf(samples);
  const util::Prf prf(13);
  EXPECT_EQ(rmedian(samples, params, prf, 2),
            rmedian_cdf([&](std::int64_t v) { return ecdf.at(v); }, params, prf, 2));
}

}  // namespace
}  // namespace lcaknap::reproducible
