#include "fault/chaos.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "util/virtual_clock.h"

namespace lcaknap::fault {
namespace {

FaultPlan hold_plan(double fail_rate, double corrupt_rate = 0.0,
                    std::uint64_t lat_min = 0, std::uint64_t lat_max = 0,
                    std::uint64_t seed = 0xC0FFEE) {
  FaultPhase phase;
  phase.label = "hold";
  phase.duration_us = 0;
  phase.fail_rate = fail_rate;
  phase.corrupt_rate = corrupt_rate;
  phase.latency_min_us = lat_min;
  phase.latency_max_us = lat_max;
  return FaultPlan({phase}, seed);
}

TEST(ChaosAccess, FailStopRateHonored) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 50, 1);
  const oracle::MaterializedAccess inner(inst);
  util::VirtualClock clock;
  metrics::Registry registry;
  const ChaosAccess chaos(inner, hold_plan(0.3), clock, /*armed=*/true, registry);
  int failures = 0;
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    try {
      (void)chaos.query(static_cast<std::size_t>(i % 50));
    } catch (const oracle::OracleUnavailable&) {
      ++failures;
    }
  }
  EXPECT_NEAR(static_cast<double>(failures) / kTrials, 0.3, 0.02);
  EXPECT_EQ(chaos.failstops_injected(), static_cast<std::uint64_t>(failures));
  EXPECT_EQ(chaos.calls_seen(), static_cast<std::uint64_t>(kTrials));
  EXPECT_EQ(registry
                .counter("fault_injected_total", "Faults injected by the chaos layer",
                         {{"kind", "failstop"}})
                .value(),
            static_cast<std::uint64_t>(failures));
}

TEST(ChaosAccess, SameSeedSameFaultSequence) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 40, 2);
  const oracle::MaterializedAccess inner(inst);
  const auto replay = [&inst, &inner](std::uint64_t seed) {
    util::VirtualClock clock;
    metrics::Registry registry;
    const ChaosAccess chaos(inner, hold_plan(0.4, 0.0, 0, 0, seed), clock,
                            /*armed=*/true, registry);
    std::string outcomes;
    for (int i = 0; i < 4'000; ++i) {
      try {
        (void)chaos.query(static_cast<std::size_t>(i % inst.size()));
        outcomes.push_back('.');
      } catch (const oracle::OracleUnavailable&) {
        outcomes.push_back('X');
      }
    }
    return outcomes;
  };
  const auto first = replay(99);
  EXPECT_EQ(first, replay(99));   // bit-identical fault sequence
  EXPECT_NE(first, replay(100));  // and the seed actually matters
}

TEST(ChaosAccess, LatencySleepsOnInjectedClock) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 30, 3);
  const oracle::MaterializedAccess inner(inst);
  util::VirtualClock clock;
  metrics::Registry registry;
  const ChaosAccess chaos(inner, hold_plan(0.0, 0.0, 100, 400), clock,
                          /*armed=*/true, registry);
  constexpr int kCalls = 500;
  std::uint64_t previous = clock.now_us();
  for (int i = 0; i < kCalls; ++i) {
    (void)chaos.query(static_cast<std::size_t>(i % 30));
    const auto now = clock.now_us();
    const auto slept = now - previous;
    EXPECT_GE(slept, 100u);
    EXPECT_LE(slept, 400u);
    previous = now;
  }
  EXPECT_EQ(chaos.latencies_injected(), static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(chaos.failstops_injected(), 0u);
}

TEST(ChaosAccess, DisarmedPassesThroughUncounted) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 20, 4);
  const oracle::MaterializedAccess inner(inst);
  util::VirtualClock clock;
  metrics::Registry registry;
  ChaosAccess chaos(inner, hold_plan(1.0), clock, /*armed=*/false, registry);
  EXPECT_EQ(chaos.phase_index(), ChaosAccess::kInactive);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NO_THROW((void)chaos.query(static_cast<std::size_t>(i % 20)));
  }
  EXPECT_EQ(chaos.calls_seen(), 0u);
  EXPECT_EQ(chaos.failstops_injected(), 0u);
}

TEST(ChaosAccess, ArmRestartsPhaseSchedule) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 20, 5);
  const oracle::MaterializedAccess inner(inst);
  util::VirtualClock clock;
  metrics::Registry registry;
  FaultPhase outage;
  outage.label = "outage";
  outage.duration_us = 100'000;
  outage.fail_rate = 1.0;
  FaultPhase recovered;
  recovered.label = "recovered";
  recovered.duration_us = 0;
  ChaosAccess chaos(inner, FaultPlan({outage, recovered}, 6), clock,
                    /*armed=*/false, registry);
  // A long warm-up elapses while disarmed; arming must restart the script,
  // not resume it mid-way.
  clock.advance_us(10'000'000);
  chaos.arm();
  EXPECT_EQ(chaos.phase_index(), 0u);
  EXPECT_THROW((void)chaos.query(0), oracle::OracleUnavailable);
  clock.advance_us(100'000);  // outage window passes
  EXPECT_EQ(chaos.phase_index(), 1u);
  EXPECT_NO_THROW((void)chaos.query(0));
  EXPECT_EQ(registry
                .gauge("fault_plan_phase",
                       "Index of the fault plan phase currently active")
                .value(),
            1.0);
}

TEST(ChaosAccess, CorruptionViolatesAnInstanceInvariant) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 40, 7);
  const oracle::MaterializedAccess inner(inst);
  util::VirtualClock clock;
  metrics::Registry registry;
  const ChaosAccess chaos(inner, hold_plan(0.0, 1.0), clock, /*armed=*/true,
                          registry);
  for (std::size_t i = 0; i < 40; ++i) {
    const auto item = chaos.query(i);
    const bool violates = item.profit > chaos.total_profit() || item.weight < 0 ||
                          item.weight > chaos.total_weight();
    EXPECT_TRUE(violates) << "corrupted item " << i << " satisfies all invariants";
    EXPECT_NE(item, inst.item(i));
  }
  EXPECT_EQ(chaos.corruptions_injected(), 40u);

  // Sampled draws corrupt too (sometimes via an out-of-range index).
  util::Xoshiro256 rng(11);
  bool saw_bad_index = false;
  for (int i = 0; i < 200; ++i) {
    const auto draw = chaos.weighted_sample(rng);
    if (draw.index >= chaos.size()) saw_bad_index = true;
  }
  EXPECT_TRUE(saw_bad_index);
}

TEST(ChaosAccess, CorruptionRateHonored) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 50, 8);
  const oracle::MaterializedAccess inner(inst);
  util::VirtualClock clock;
  metrics::Registry registry;
  const ChaosAccess chaos(inner, hold_plan(0.0, 0.2), clock, /*armed=*/true,
                          registry);
  constexpr int kTrials = 20'000;
  int corrupted = 0;
  for (int i = 0; i < kTrials; ++i) {
    const auto index = static_cast<std::size_t>(i % 50);
    if (chaos.query(index) != inst.item(index)) ++corrupted;
  }
  EXPECT_NEAR(static_cast<double>(corrupted) / kTrials, 0.2, 0.02);
  EXPECT_EQ(chaos.corruptions_injected(), static_cast<std::uint64_t>(corrupted));
}

}  // namespace
}  // namespace lcaknap::fault
