#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fault/chaos.h"
#include "fault/circuit_breaker.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/flaky.h"
#include "util/virtual_clock.h"

/// Multi-threaded hammers for the resilience layer (run under TSan in CI,
/// alongside tests/oracle/test_concurrent_access.cpp).  Concurrency makes
/// per-thread sequences scheduler-dependent, so these tests assert
/// *conservation*: every call is accounted for exactly once, and the
/// breaker/budget books balance against the observed outcomes.

namespace lcaknap::fault {
namespace {

constexpr int kThreads = 8;
constexpr int kCallsPerThread = 4'000;

TEST(ConcurrentResilience, BreakerHammerConservesOutcomes) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 64, 1);
  const oracle::MaterializedAccess storage(inst);
  metrics::Registry registry;
  const oracle::FlakyAccess flaky(storage, 0.3, /*seed=*/21, registry);
  util::VirtualClock clock;
  CircuitBreakerConfig config;
  config.window = 16;
  config.failure_rate_threshold = 0.5;
  config.consecutive_failures = 4;
  config.open_cooldown_us = 200;
  config.half_open_probes = 2;
  const BreakerAccess guarded(flaky, config, clock, registry);

  std::atomic<std::uint64_t> ok{0}, unavailable{0}, rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        try {
          (void)guarded.query(static_cast<std::size_t>((t + i) % 64));
          ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const CircuitOpen&) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          // Let the cooldown elapse on the shared virtual timeline so the
          // breaker flaps between open/half-open/closed under contention.
          clock.advance_us(50);
        } catch (const oracle::OracleUnavailable&) {
          unavailable.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kCallsPerThread;
  // Outcome conservation: every call ended exactly one way.
  EXPECT_EQ(ok.load() + unavailable.load() + rejected.load(), total);
  // Call conservation: exactly the non-rejected calls reached the inner
  // oracle, and each of those either succeeded or saw an injected failure.
  EXPECT_EQ(storage.query_count() + flaky.failures_injected(), total - rejected.load());
  EXPECT_EQ(storage.query_count(), ok.load());
  EXPECT_EQ(flaky.failures_injected(), unavailable.load());
  // Rejections are what the breaker says it rejected.
  const auto counters = guarded.breaker().counters();
  EXPECT_EQ(counters.rejected, rejected.load());
  // Transition books balance: the breaker can only reach half-open from
  // open, and only close from half-open; at most one trip is unresolved.
  EXPECT_GT(counters.to_open, 0u);
  EXPECT_LE(counters.to_half_open, counters.to_open);
  EXPECT_LE(counters.to_closed, counters.to_half_open);
  EXPECT_GE(counters.to_open, counters.to_half_open);
}

TEST(ConcurrentResilience, RetryBudgetAccountingStaysBounded) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 64, 2);
  const oracle::MaterializedAccess storage(inst);
  metrics::Registry registry;
  const oracle::FlakyAccess flaky(storage, 0.4, /*seed=*/33, registry);
  util::VirtualClock clock;
  oracle::RetryConfig config;
  config.max_attempts = 5;
  config.base_backoff_us = 10;
  config.max_backoff_us = 100;
  config.retry_budget_ratio = 0.2;
  config.retry_budget_initial = 64;
  const oracle::RetryingAccess retrying(flaky, config, clock, registry);

  std::atomic<std::uint64_t> ok{0}, failed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        try {
          (void)retrying.query(static_cast<std::size_t>((t + i) % 64));
          ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const oracle::OracleUnavailable&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kCallsPerThread;
  EXPECT_EQ(ok.load() + failed.load(), total);
  // Inner-call conservation: every inner call is a first attempt or a retry.
  EXPECT_EQ(storage.query_count() + flaky.failures_injected(),
            total + retrying.retries_performed());
  // Budget accounting under contention is optimistically relaxed: each
  // concurrent caller may overspend by at most one token, so total retries
  // never exceed the funded allowance plus that per-thread slack.
  const auto allowance =
      config.retry_budget_initial +
      static_cast<std::uint64_t>(config.retry_budget_ratio *
                                 static_cast<double>(ok.load()));
  EXPECT_LE(retrying.retries_performed(), allowance + kThreads);
  // The budget valve really engaged: with a 40% failure rate and a 0.2
  // ratio, demand for retries outstrips supply.
  EXPECT_GT(retrying.budget_exhausted(), 0u);
  // Sleeps all landed on the virtual clock (no real waiting in this test).
  EXPECT_EQ(retrying.backoff_slept_us(), clock.now_us());
}

}  // namespace
}  // namespace lcaknap::fault
