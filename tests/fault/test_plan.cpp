#include "fault/plan.h"

#include <gtest/gtest.h>

#include <limits>

namespace lcaknap::fault {
namespace {

std::vector<FaultPhase> three_phases() {
  FaultPhase steady;
  steady.label = "steady";
  steady.duration_us = 100'000;
  FaultPhase outage;
  outage.label = "outage";
  outage.duration_us = 50'000;
  outage.fail_rate = 1.0;
  FaultPhase hold;
  hold.label = "recovered";
  hold.duration_us = 0;  // hold forever
  return {steady, outage, hold};
}

TEST(FaultPlan, RejectsEmptyPhaseList) {
  EXPECT_THROW(FaultPlan({}, 1), std::invalid_argument);
}

TEST(FaultPlan, RejectsRatesOutsideUnitInterval) {
  FaultPhase phase;
  phase.duration_us = 1000;
  phase.fail_rate = 1.5;
  EXPECT_THROW(FaultPlan({phase}, 1), std::invalid_argument);
  phase.fail_rate = -0.1;
  EXPECT_THROW(FaultPlan({phase}, 1), std::invalid_argument);
  phase.fail_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(FaultPlan({phase}, 1), std::invalid_argument);
  phase.fail_rate = 0.0;
  phase.corrupt_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(FaultPlan({phase}, 1), std::invalid_argument);
}

TEST(FaultPlan, RejectsInvertedLatencyRange) {
  FaultPhase phase;
  phase.duration_us = 1000;
  phase.latency_min_us = 500;
  phase.latency_max_us = 100;
  EXPECT_THROW(FaultPlan({phase}, 1), std::invalid_argument);
}

TEST(FaultPlan, RejectsZeroDurationBeforeLastPhase) {
  FaultPhase zero;
  zero.duration_us = 0;
  FaultPhase tail;
  tail.duration_us = 1000;
  EXPECT_THROW(FaultPlan({zero, tail}, 1), std::invalid_argument);
  // Zero on the last phase is the hold-forever idiom and must be accepted.
  EXPECT_NO_THROW(FaultPlan({tail, zero}, 1));
}

TEST(FaultPlan, RejectsCyclingWithZeroTotalDuration) {
  FaultPhase hold;
  hold.duration_us = 0;
  EXPECT_THROW(FaultPlan({hold}, 1, /*cycle=*/true), std::invalid_argument);
}

TEST(FaultPlan, PhaseIndexWalksEdges) {
  const FaultPlan plan(three_phases(), 7);
  EXPECT_EQ(plan.total_duration_us(), 150'000u);
  EXPECT_EQ(plan.phase_index_at(0), 0u);
  EXPECT_EQ(plan.phase_index_at(99'999), 0u);
  EXPECT_EQ(plan.phase_index_at(100'000), 1u);
  EXPECT_EQ(plan.phase_index_at(149'999), 1u);
  EXPECT_EQ(plan.phase_index_at(150'000), 2u);
}

TEST(FaultPlan, NonCyclingHoldsLastPhaseForever) {
  const FaultPlan plan(three_phases(), 7);
  EXPECT_EQ(plan.phase_index_at(150'000), 2u);
  EXPECT_EQ(plan.phase_index_at(10'000'000'000ull), 2u);
  EXPECT_EQ(plan.phase_at(10'000'000'000ull).label, "recovered");
}

TEST(FaultPlan, CyclingWrapsModuloTotalDuration) {
  auto phases = three_phases();
  phases[2].duration_us = 50'000;  // cycling plans have no hold phase
  const FaultPlan plan(std::move(phases), 7, /*cycle=*/true);
  EXPECT_EQ(plan.total_duration_us(), 200'000u);
  EXPECT_TRUE(plan.cycles());
  EXPECT_EQ(plan.phase_index_at(200'000), 0u);  // wraps to the start
  EXPECT_EQ(plan.phase_index_at(310'000), 1u);  // 310k % 200k = 110k: outage
  EXPECT_EQ(plan.phase_index_at(960'000), 2u);  // 960k % 200k = 160k: third
}

TEST(FaultPlan, ParsesFullGrammar) {
  const auto plan = parse_fault_plan(
      "steady:200;outage:100:fail=1;brownout:150:fail=0.2,lat=100..400;"
      "window:50:corrupt=0.25,lat=10;tail:0",
      /*seed=*/42);
  ASSERT_EQ(plan.phases().size(), 5u);
  EXPECT_EQ(plan.seed(), 42u);

  EXPECT_EQ(plan.phases()[0].label, "steady");
  EXPECT_EQ(plan.phases()[0].duration_us, 200'000u);  // ms in, us out
  EXPECT_EQ(plan.phases()[0].fail_rate, 0.0);

  EXPECT_EQ(plan.phases()[1].fail_rate, 1.0);

  EXPECT_EQ(plan.phases()[2].fail_rate, 0.2);
  EXPECT_EQ(plan.phases()[2].latency_min_us, 100u);
  EXPECT_EQ(plan.phases()[2].latency_max_us, 400u);

  EXPECT_EQ(plan.phases()[3].corrupt_rate, 0.25);
  EXPECT_EQ(plan.phases()[3].latency_min_us, 10u);  // single value: min == max
  EXPECT_EQ(plan.phases()[3].latency_max_us, 10u);

  EXPECT_EQ(plan.phases()[4].duration_us, 0u);  // trailing hold
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_plan("", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("noduration", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(":100", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("steady:abc", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("steady:100:bogus=1", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("steady:100:fail", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("steady:100:fail=2", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("steady:100:fail=nan", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("steady:100:lat=400..100", 1),
               std::invalid_argument);
}

/// Runs the parser on a malformed spec and returns the typed error.
FaultPlanParseError parse_error_of(const std::string& spec) {
  try {
    (void)parse_fault_plan(spec, 1);
  } catch (const FaultPlanParseError& error) {
    return error;
  }
  ADD_FAILURE() << "parse unexpectedly succeeded for: " << spec;
  return FaultPlanParseError("unreachable", 0, 0, "");
}

TEST(FaultPlan, ParseErrorsPointAtTheOffendingToken) {
  // One pin per malformed shape: the error names the token and lands the
  // cursor on it (1-based line:column), so a 40-line chaos script fails
  // with "fault plan:17:12: ..." instead of a bare what().
  {
    const auto error = parse_error_of("noduration");
    EXPECT_EQ(error.line(), 1u);
    EXPECT_EQ(error.column(), 1u);
    EXPECT_EQ(error.token(), "noduration");
    EXPECT_NE(std::string(error.what()).find("fault plan:1:1:"),
              std::string::npos)
        << error.what();
  }
  {  // empty label
    const auto error = parse_error_of(":100");
    EXPECT_EQ(error.column(), 1u);
    EXPECT_EQ(error.token(), ":100");
  }
  {  // unparsable duration: cursor on the duration field, not the phase
    const auto error = parse_error_of("steady:abc");
    EXPECT_EQ(error.line(), 1u);
    EXPECT_EQ(error.column(), 8u);
    EXPECT_EQ(error.token(), "abc");
  }
  {  // unknown knob: cursor on the key
    const auto error = parse_error_of("steady:100:bogus=1");
    EXPECT_EQ(error.column(), 12u);
    EXPECT_EQ(error.token(), "bogus");
    EXPECT_NE(std::string(error.what()).find("unknown knob"),
              std::string::npos);
  }
  {  // knob without '='
    const auto error = parse_error_of("steady:100:fail");
    EXPECT_EQ(error.column(), 12u);
    EXPECT_EQ(error.token(), "fail");
  }
  {  // rate outside [0, 1]: cursor on the value, not the key
    const auto error = parse_error_of("steady:100:fail=2");
    EXPECT_EQ(error.column(), 17u);
    EXPECT_EQ(error.token(), "2");
    EXPECT_NE(std::string(error.what()).find("bad fail rate"),
              std::string::npos);
  }
  {  // NaN rate
    const auto error = parse_error_of("steady:100:corrupt=nan");
    EXPECT_EQ(error.column(), 20u);
    EXPECT_EQ(error.token(), "nan");
  }
  {  // malformed latency max: cursor past the '..'
    const auto error = parse_error_of("s:100:lat=1..zz");
    EXPECT_EQ(error.column(), 14u);
    EXPECT_EQ(error.token(), "zz");
    EXPECT_NE(std::string(error.what()).find("bad latency max"),
              std::string::npos);
  }
  {  // empty knob between commas
    const auto error = parse_error_of("s:100:fail=0.2,,lat=5");
    EXPECT_EQ(error.column(), 16u);
    EXPECT_EQ(error.token(), "");
  }
}

TEST(FaultPlan, ParseErrorsCarryTheLineInMultiLineScripts) {
  // Newline joins ';' as a phase separator, so scripted plans read one
  // phase per line — and a bad line is reported as that line.
  {
    const auto error = parse_error_of("steady:200\noutage:abc");
    EXPECT_EQ(error.line(), 2u);
    EXPECT_EQ(error.column(), 8u);
    EXPECT_EQ(error.token(), "abc");
    EXPECT_NE(std::string(error.what()).find("fault plan:2:8:"),
              std::string::npos)
        << error.what();
  }
  {
    const auto error =
        parse_error_of("steady:200\noutage:100:fail=1\nbrown:50:lat=9..x");
    EXPECT_EQ(error.line(), 3u);
    EXPECT_EQ(error.column(), 17u);
    EXPECT_EQ(error.token(), "x");
  }
  // ';' on one line keeps every offset on line 1.
  {
    const auto error = parse_error_of("a:100;b:xyz");
    EXPECT_EQ(error.line(), 1u);
    EXPECT_EQ(error.column(), 9u);
    EXPECT_EQ(error.token(), "xyz");
  }
}

TEST(FaultPlan, NewlineSeparatedScriptsParseLikeSemicolons) {
  const auto by_newline = parse_fault_plan(
      "steady:200\noutage:100:fail=1\ntail:0", /*seed=*/42);
  const auto by_semicolon = parse_fault_plan(
      "steady:200;outage:100:fail=1;tail:0", /*seed=*/42);
  ASSERT_EQ(by_newline.phases().size(), 3u);
  ASSERT_EQ(by_semicolon.phases().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(by_newline.phases()[i].label, by_semicolon.phases()[i].label);
    EXPECT_EQ(by_newline.phases()[i].duration_us,
              by_semicolon.phases()[i].duration_us);
    EXPECT_EQ(by_newline.phases()[i].fail_rate,
              by_semicolon.phases()[i].fail_rate);
  }
}

TEST(FaultPlan, ParseErrorIsCatchableAsInvalidArgument) {
  // FaultPlanParseError derives std::invalid_argument: callers that predate
  // the typed error (and every existing EXPECT_THROW above) keep working.
  EXPECT_THROW((void)parse_fault_plan("steady:abc", 1), std::invalid_argument);
  bool caught = false;
  try {
    (void)parse_fault_plan("steady:abc", 1);
  } catch (const std::invalid_argument& error) {
    caught = true;
    EXPECT_NE(std::string(error.what()).find("'abc'"), std::string::npos);
  }
  EXPECT_TRUE(caught);
}

TEST(FaultPlan, DescribeMentionsEveryPhase) {
  const auto plan =
      parse_fault_plan("steady:200;outage:100:fail=1;tail:0", /*seed=*/3);
  const auto text = plan.describe();
  EXPECT_NE(text.find("steady"), std::string::npos);
  EXPECT_NE(text.find("outage"), std::string::npos);
  EXPECT_NE(text.find("fail=1"), std::string::npos);
  EXPECT_NE(text.find("(hold)"), std::string::npos);
}

}  // namespace
}  // namespace lcaknap::fault
