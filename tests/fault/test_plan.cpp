#include "fault/plan.h"

#include <gtest/gtest.h>

#include <limits>

namespace lcaknap::fault {
namespace {

std::vector<FaultPhase> three_phases() {
  FaultPhase steady;
  steady.label = "steady";
  steady.duration_us = 100'000;
  FaultPhase outage;
  outage.label = "outage";
  outage.duration_us = 50'000;
  outage.fail_rate = 1.0;
  FaultPhase hold;
  hold.label = "recovered";
  hold.duration_us = 0;  // hold forever
  return {steady, outage, hold};
}

TEST(FaultPlan, RejectsEmptyPhaseList) {
  EXPECT_THROW(FaultPlan({}, 1), std::invalid_argument);
}

TEST(FaultPlan, RejectsRatesOutsideUnitInterval) {
  FaultPhase phase;
  phase.duration_us = 1000;
  phase.fail_rate = 1.5;
  EXPECT_THROW(FaultPlan({phase}, 1), std::invalid_argument);
  phase.fail_rate = -0.1;
  EXPECT_THROW(FaultPlan({phase}, 1), std::invalid_argument);
  phase.fail_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(FaultPlan({phase}, 1), std::invalid_argument);
  phase.fail_rate = 0.0;
  phase.corrupt_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(FaultPlan({phase}, 1), std::invalid_argument);
}

TEST(FaultPlan, RejectsInvertedLatencyRange) {
  FaultPhase phase;
  phase.duration_us = 1000;
  phase.latency_min_us = 500;
  phase.latency_max_us = 100;
  EXPECT_THROW(FaultPlan({phase}, 1), std::invalid_argument);
}

TEST(FaultPlan, RejectsZeroDurationBeforeLastPhase) {
  FaultPhase zero;
  zero.duration_us = 0;
  FaultPhase tail;
  tail.duration_us = 1000;
  EXPECT_THROW(FaultPlan({zero, tail}, 1), std::invalid_argument);
  // Zero on the last phase is the hold-forever idiom and must be accepted.
  EXPECT_NO_THROW(FaultPlan({tail, zero}, 1));
}

TEST(FaultPlan, RejectsCyclingWithZeroTotalDuration) {
  FaultPhase hold;
  hold.duration_us = 0;
  EXPECT_THROW(FaultPlan({hold}, 1, /*cycle=*/true), std::invalid_argument);
}

TEST(FaultPlan, PhaseIndexWalksEdges) {
  const FaultPlan plan(three_phases(), 7);
  EXPECT_EQ(plan.total_duration_us(), 150'000u);
  EXPECT_EQ(plan.phase_index_at(0), 0u);
  EXPECT_EQ(plan.phase_index_at(99'999), 0u);
  EXPECT_EQ(plan.phase_index_at(100'000), 1u);
  EXPECT_EQ(plan.phase_index_at(149'999), 1u);
  EXPECT_EQ(plan.phase_index_at(150'000), 2u);
}

TEST(FaultPlan, NonCyclingHoldsLastPhaseForever) {
  const FaultPlan plan(three_phases(), 7);
  EXPECT_EQ(plan.phase_index_at(150'000), 2u);
  EXPECT_EQ(plan.phase_index_at(10'000'000'000ull), 2u);
  EXPECT_EQ(plan.phase_at(10'000'000'000ull).label, "recovered");
}

TEST(FaultPlan, CyclingWrapsModuloTotalDuration) {
  auto phases = three_phases();
  phases[2].duration_us = 50'000;  // cycling plans have no hold phase
  const FaultPlan plan(std::move(phases), 7, /*cycle=*/true);
  EXPECT_EQ(plan.total_duration_us(), 200'000u);
  EXPECT_TRUE(plan.cycles());
  EXPECT_EQ(plan.phase_index_at(200'000), 0u);  // wraps to the start
  EXPECT_EQ(plan.phase_index_at(310'000), 1u);  // 310k % 200k = 110k: outage
  EXPECT_EQ(plan.phase_index_at(960'000), 2u);  // 960k % 200k = 160k: third
}

TEST(FaultPlan, ParsesFullGrammar) {
  const auto plan = parse_fault_plan(
      "steady:200;outage:100:fail=1;brownout:150:fail=0.2,lat=100..400;"
      "window:50:corrupt=0.25,lat=10;tail:0",
      /*seed=*/42);
  ASSERT_EQ(plan.phases().size(), 5u);
  EXPECT_EQ(plan.seed(), 42u);

  EXPECT_EQ(plan.phases()[0].label, "steady");
  EXPECT_EQ(plan.phases()[0].duration_us, 200'000u);  // ms in, us out
  EXPECT_EQ(plan.phases()[0].fail_rate, 0.0);

  EXPECT_EQ(plan.phases()[1].fail_rate, 1.0);

  EXPECT_EQ(plan.phases()[2].fail_rate, 0.2);
  EXPECT_EQ(plan.phases()[2].latency_min_us, 100u);
  EXPECT_EQ(plan.phases()[2].latency_max_us, 400u);

  EXPECT_EQ(plan.phases()[3].corrupt_rate, 0.25);
  EXPECT_EQ(plan.phases()[3].latency_min_us, 10u);  // single value: min == max
  EXPECT_EQ(plan.phases()[3].latency_max_us, 10u);

  EXPECT_EQ(plan.phases()[4].duration_us, 0u);  // trailing hold
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_plan("", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("noduration", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(":100", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("steady:abc", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("steady:100:bogus=1", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("steady:100:fail", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("steady:100:fail=2", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("steady:100:fail=nan", 1), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("steady:100:lat=400..100", 1),
               std::invalid_argument);
}

TEST(FaultPlan, DescribeMentionsEveryPhase) {
  const auto plan =
      parse_fault_plan("steady:200;outage:100:fail=1;tail:0", /*seed=*/3);
  const auto text = plan.describe();
  EXPECT_NE(text.find("steady"), std::string::npos);
  EXPECT_NE(text.find("outage"), std::string::npos);
  EXPECT_NE(text.find("fail=1"), std::string::npos);
  EXPECT_NE(text.find("(hold)"), std::string::npos);
}

}  // namespace
}  // namespace lcaknap::fault
