#include "fault/verifying.h"

#include <gtest/gtest.h>

#include <functional>

#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/flaky.h"

namespace lcaknap::fault {
namespace {

/// Wraps a real oracle and lets a test mutate the answer on its way out —
/// the minimal model of a corrupting transport.
class TamperAccess final : public oracle::InstanceAccess {
 public:
  explicit TamperAccess(const oracle::InstanceAccess& inner) : inner_(&inner) {}

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

  std::function<void(knapsack::Item&)> tamper_item;
  std::function<void(oracle::WeightedDraw&)> tamper_draw;

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override {
    auto item = inner_->query(i);
    if (tamper_item) tamper_item(item);
    return item;
  }
  [[nodiscard]] oracle::WeightedDraw do_sample(util::Xoshiro256& rng) const override {
    auto draw = inner_->weighted_sample(rng);
    if (tamper_draw) tamper_draw(draw);
    return draw;
  }

 private:
  const oracle::InstanceAccess* inner_;
};

class VerifyingTest : public ::testing::Test {
 protected:
  VerifyingTest()
      : inst_(knapsack::make_family(knapsack::Family::kUncorrelated, 40, 1)),
        inner_(inst_),
        tamper_(inner_),
        verifying_(tamper_, registry_) {}

  knapsack::Instance inst_;
  oracle::MaterializedAccess inner_;
  TamperAccess tamper_;
  metrics::Registry registry_;
  VerifyingAccess verifying_;
};

TEST_F(VerifyingTest, CleanAnswersPassThroughUntouched) {
  util::Xoshiro256 rng(3);
  for (std::size_t i = 0; i < inst_.size(); ++i) {
    EXPECT_EQ(verifying_.query(i), inst_.item(i));
    EXPECT_NO_THROW((void)verifying_.weighted_sample(rng));
  }
  EXPECT_EQ(verifying_.corruptions_detected(), 0u);
}

TEST_F(VerifyingTest, DetectsProfitAboveTotal) {
  tamper_.tamper_item = [this](knapsack::Item& item) {
    item.profit = inner_.total_profit() + 1;
  };
  EXPECT_THROW((void)verifying_.query(0), CorruptedAnswer);
  EXPECT_EQ(verifying_.corruptions_detected(), 1u);
}

TEST_F(VerifyingTest, DetectsNegativeWeight) {
  tamper_.tamper_item = [](knapsack::Item& item) { item.weight = -5; };
  EXPECT_THROW((void)verifying_.query(0), CorruptedAnswer);
}

TEST_F(VerifyingTest, DetectsWeightAboveTotal) {
  tamper_.tamper_item = [this](knapsack::Item& item) {
    item.weight = inner_.total_weight() + 7;
  };
  EXPECT_THROW((void)verifying_.query(0), CorruptedAnswer);
}

TEST_F(VerifyingTest, DetectsOutOfRangeSampleIndex) {
  tamper_.tamper_draw = [this](oracle::WeightedDraw& draw) {
    draw.index = inner_.size() + 3;
  };
  util::Xoshiro256 rng(5);
  EXPECT_THROW((void)verifying_.weighted_sample(rng), CorruptedAnswer);
  EXPECT_EQ(verifying_.corruptions_detected(), 1u);
}

TEST_F(VerifyingTest, DetectionIsRetryable) {
  // CorruptedAnswer must be catchable as OracleUnavailable, so every retry
  // and degradation path written against the latter handles it for free.
  tamper_.tamper_item = [](knapsack::Item& item) { item.weight = -1; };
  EXPECT_THROW((void)verifying_.query(0), oracle::OracleUnavailable);

  // A one-shot corruption is healed by the retry layer: the second attempt
  // re-reads the true item and the caller never sees the corruption.
  int remaining = 1;
  tamper_.tamper_item = [&remaining](knapsack::Item& item) {
    if (remaining > 0) {
      --remaining;
      item.weight = -1;
    }
  };
  const oracle::RetryingAccess retrying(verifying_, /*max_attempts=*/4, registry_);
  EXPECT_EQ(retrying.query(2), inst_.item(2));
  EXPECT_EQ(retrying.retries_performed(), 1u);
}

TEST_F(VerifyingTest, CountsDetectionsInRegistry) {
  tamper_.tamper_item = [](knapsack::Item& item) { item.weight = -1; };
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW((void)verifying_.query(0), CorruptedAnswer);
  }
  EXPECT_EQ(verifying_.corruptions_detected(), 3u);
  EXPECT_EQ(registry_
                .counter("oracle_corruptions_detected_total",
                         "Oracle answers rejected by invariant verification")
                .value(),
            3u);
}

}  // namespace
}  // namespace lcaknap::fault
