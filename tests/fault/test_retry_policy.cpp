#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/flaky.h"
#include "util/virtual_clock.h"

namespace lcaknap::oracle {
namespace {

/// Fails or succeeds per a fixed script (true = throw), then succeeds.
class ScriptedAccess final : public InstanceAccess {
 public:
  ScriptedAccess(const InstanceAccess& inner, std::vector<bool> failures)
      : inner_(&inner), failures_(std::move(failures)) {}

  [[nodiscard]] std::size_t size() const noexcept override { return inner_->size(); }
  [[nodiscard]] std::int64_t capacity() const noexcept override {
    return inner_->capacity();
  }
  [[nodiscard]] std::int64_t total_profit() const noexcept override {
    return inner_->total_profit();
  }
  [[nodiscard]] std::int64_t total_weight() const noexcept override {
    return inner_->total_weight();
  }

 protected:
  [[nodiscard]] knapsack::Item do_query(std::size_t i) const override {
    step();
    return inner_->query(i);
  }
  [[nodiscard]] WeightedDraw do_sample(util::Xoshiro256& rng) const override {
    step();
    return inner_->weighted_sample(rng);
  }

 private:
  void step() const {
    const auto n = next_++;
    if (n < failures_.size() && failures_[n]) throw OracleUnavailable();
  }

  const InstanceAccess* inner_;
  std::vector<bool> failures_;
  mutable std::size_t next_ = 0;
};

std::vector<bool> always_fail(std::size_t n) { return std::vector<bool>(n, true); }

class RetryPolicyTest : public ::testing::Test {
 protected:
  RetryPolicyTest()
      : inst_(knapsack::make_family(knapsack::Family::kUncorrelated, 30, 1)),
        storage_(inst_) {}

  knapsack::Instance inst_;
  MaterializedAccess storage_;
  util::VirtualClock clock_;
  metrics::Registry registry_;
};

TEST_F(RetryPolicyTest, BackoffSleepsOnInjectedClockWithinBounds) {
  RetryConfig config;
  config.max_attempts = 8;
  config.base_backoff_us = 100;
  config.max_backoff_us = 10'000;
  config.backoff_multiplier = 3.0;
  const ScriptedAccess dead(storage_, always_fail(64));
  const RetryingAccess retrying(dead, config, clock_, registry_);

  EXPECT_THROW((void)retrying.query(0), OracleUnavailable);
  EXPECT_EQ(retrying.retries_performed(), 7u);  // 8 attempts = 7 retries
  EXPECT_EQ(retrying.backoff_slept_us(), clock_.now_us());
  // 7 sleeps, each in [base, max].
  EXPECT_GE(retrying.backoff_slept_us(), 7u * 100u);
  EXPECT_LE(retrying.backoff_slept_us(), 7u * 10'000u);
  const auto& hist = registry_.histogram(
      "oracle_backoff_sleep_us",
      "Backoff sleeps between oracle retry attempts, in microseconds",
      backoff_sleep_buckets());
  EXPECT_EQ(hist.count(), 7u);
  EXPECT_EQ(hist.sum(), static_cast<double>(retrying.backoff_slept_us()));
}

TEST_F(RetryPolicyTest, JitterIsDeterministicPerSeed) {
  RetryConfig config;
  config.max_attempts = 10;
  config.base_backoff_us = 50;
  config.max_backoff_us = 100'000;
  const auto slept = [&](std::uint64_t seed) {
    auto seeded = config;
    seeded.jitter_seed = seed;
    util::VirtualClock clock;
    metrics::Registry registry;
    const ScriptedAccess dead(storage_, always_fail(64));
    const RetryingAccess retrying(dead, seeded, clock, registry);
    EXPECT_THROW((void)retrying.query(0), OracleUnavailable);
    return retrying.backoff_slept_us();
  };
  EXPECT_EQ(slept(7), slept(7));
  EXPECT_NE(slept(7), slept(8));
}

TEST_F(RetryPolicyTest, BudgetBoundsTotalRetries) {
  RetryConfig config;
  config.max_attempts = 10;
  config.retry_budget_ratio = 0.5;
  config.retry_budget_initial = 3;
  const ScriptedAccess dead(storage_, always_fail(1'000));
  const RetryingAccess retrying(dead, config, clock_, registry_);

  // First call: 3 funded retries, then the purse is empty and the failure
  // escapes on attempt 4 of 10.
  EXPECT_THROW((void)retrying.query(0), OracleUnavailable);
  EXPECT_EQ(retrying.retries_performed(), 3u);
  EXPECT_EQ(retrying.budget_exhausted(), 1u);

  // With zero successes nothing is earned: later calls fail immediately.
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW((void)retrying.query(0), OracleUnavailable);
  }
  EXPECT_EQ(retrying.retries_performed(), 3u);
  EXPECT_EQ(retrying.budget_exhausted(), 6u);
  EXPECT_EQ(registry_
                .counter("oracle_retry_budget_exhausted_total",
                         "Oracle calls that gave up because the global retry "
                         "budget was empty")
                .value(),
            6u);
}

TEST_F(RetryPolicyTest, SuccessesReplenishTheBudget) {
  RetryConfig config;
  config.max_attempts = 10;
  config.retry_budget_ratio = 1.0;  // one retry token per successful call
  config.retry_budget_initial = 0;
  // Script: 1 failure (unfunded, escapes), 2 successes (earn 2 tokens),
  // then fail-fail-success — both retries are funded and the call succeeds.
  const ScriptedAccess scripted(storage_, {true, false, false, true, true, false});
  const RetryingAccess retrying(scripted, config, clock_, registry_);

  EXPECT_THROW((void)retrying.query(0), OracleUnavailable);
  EXPECT_EQ(retrying.budget_exhausted(), 1u);
  EXPECT_EQ(retrying.query(1), inst_.item(1));
  EXPECT_EQ(retrying.query(2), inst_.item(2));
  EXPECT_EQ(retrying.query(3), inst_.item(3));  // absorbs two failures
  EXPECT_EQ(retrying.retries_performed(), 2u);
  EXPECT_EQ(retrying.budget_exhausted(), 1u);
}

TEST_F(RetryPolicyTest, AttemptTimeoutCapsRetryTime) {
  RetryConfig config;
  config.max_attempts = 100;
  config.base_backoff_us = 1'000;
  config.max_backoff_us = 1'000'000;
  config.backoff_multiplier = 1.0;  // every sleep is exactly base
  config.attempt_timeout_us = 2'500;
  const ScriptedAccess dead(storage_, always_fail(1'000));
  const RetryingAccess retrying(dead, config, clock_, registry_);

  EXPECT_THROW((void)retrying.query(0), OracleUnavailable);
  // Sleeps land at 1000 and 2000 us of call time; the third would end at
  // 3000 >= 2500, so the policy gives up instead of sleeping.
  EXPECT_EQ(retrying.retries_performed(), 2u);
  EXPECT_EQ(retrying.timed_out(), 1u);
  EXPECT_EQ(clock_.now_us(), 2'000u);
}

TEST_F(RetryPolicyTest, LegacyShapeRetriesImmediately) {
  const ScriptedAccess flaky_twice(storage_, {true, true, false});
  const RetryingAccess retrying(flaky_twice, /*max_attempts=*/16, registry_);
  EXPECT_EQ(retrying.query(5), inst_.item(5));
  EXPECT_EQ(retrying.retries_performed(), 2u);
  EXPECT_EQ(retrying.backoff_slept_us(), 0u);  // no backoff in legacy shape
  EXPECT_EQ(retrying.timed_out(), 0u);
  EXPECT_EQ(retrying.budget_exhausted(), 0u);
}

TEST_F(RetryPolicyTest, ValidatesConfig) {
  RetryConfig config;
  config.max_attempts = 0;
  EXPECT_THROW(RetryingAccess(storage_, config, clock_, registry_),
               std::invalid_argument);
  config = RetryConfig{};
  config.base_backoff_us = 1'000;
  config.max_backoff_us = 100;
  EXPECT_THROW(RetryingAccess(storage_, config, clock_, registry_),
               std::invalid_argument);
  config = RetryConfig{};
  config.backoff_multiplier = 0.5;
  EXPECT_THROW(RetryingAccess(storage_, config, clock_, registry_),
               std::invalid_argument);
  config.backoff_multiplier = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(RetryingAccess(storage_, config, clock_, registry_),
               std::invalid_argument);
  config = RetryConfig{};
  config.retry_budget_ratio = -0.5;
  EXPECT_THROW(RetryingAccess(storage_, config, clock_, registry_),
               std::invalid_argument);
  config.retry_budget_ratio = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(RetryingAccess(storage_, config, clock_, registry_),
               std::invalid_argument);
}

}  // namespace
}  // namespace lcaknap::oracle
