#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/lca_kp.h"
#include "fault/chaos.h"
#include "fault/circuit_breaker.h"
#include "fault/verifying.h"
#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/flaky.h"
#include "util/virtual_clock.h"

/// The ISSUE acceptance tests for the resilience layer as a whole:
///
///  1. determinism — the same FaultPlan seed replayed over a fresh
///     VirtualClock produces the identical fault sequence, breaker
///     transitions, and outcome counts;
///  2. consistency — LCA answers served through every non-corrupting fault
///     plan equal the fault-free answers for the same LCA seed, and answers
///     served through a corrupting plan equal them too once VerifyingAccess
///     turns corruption into retries (Definition 2.3 as a runtime property).

namespace lcaknap::fault {
namespace {

FaultPlan stormy_plan(std::uint64_t seed) {
  FaultPhase steady;
  steady.label = "steady";
  steady.duration_us = 20'000;
  FaultPhase outage;
  outage.label = "outage";
  outage.duration_us = 30'000;
  outage.fail_rate = 1.0;
  FaultPhase brownout;
  brownout.label = "brownout";
  brownout.duration_us = 30'000;
  brownout.fail_rate = 0.3;
  brownout.latency_min_us = 5;
  brownout.latency_max_us = 40;
  FaultPhase recovered;
  recovered.label = "recovered";
  recovered.duration_us = 0;
  return FaultPlan({steady, outage, brownout, recovered}, seed);
}

oracle::RetryConfig resilient_retries() {
  oracle::RetryConfig config;
  config.max_attempts = 6;
  config.base_backoff_us = 50;
  config.max_backoff_us = 5'000;
  config.retry_budget_ratio = 0.5;
  config.retry_budget_initial = 32;
  return config;
}

TEST(ResilienceStack, SameFaultSeedReplaysIdentically) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 100, 1);
  // One full client stack, replayed from scratch: storage -> chaos ->
  // verifying -> retrying -> breaker, all on one virtual clock.
  const auto replay = [&inst](std::uint64_t plan_seed) {
    const oracle::MaterializedAccess storage(inst);
    util::VirtualClock clock;
    metrics::Registry registry;
    const ChaosAccess chaos(storage, stormy_plan(plan_seed), clock,
                            /*armed=*/true, registry);
    const VerifyingAccess verified(chaos, registry);
    const oracle::RetryingAccess retrying(verified, resilient_retries(), clock,
                                          registry);
    CircuitBreakerConfig breaker_config;
    breaker_config.open_cooldown_us = 5'000;  // short enough to recover in-test
    const BreakerAccess guarded(retrying, breaker_config, clock, registry);

    std::string outcomes;
    for (int i = 0; i < 2'000; ++i) {
      try {
        (void)guarded.query(static_cast<std::size_t>(i) % inst.size());
        outcomes.push_back('.');
      } catch (const CircuitOpen&) {
        outcomes.push_back('O');
      } catch (const oracle::OracleUnavailable&) {
        outcomes.push_back('X');
      }
      clock.advance_us(25);  // the pacing between client calls
    }
    const auto counters = guarded.breaker().counters();
    std::ostringstream signature;
    signature << outcomes << '|' << chaos.failstops_injected() << ','
              << chaos.latencies_injected() << ',' << chaos.corruptions_injected()
              << '|' << retrying.retries_performed() << ','
              << retrying.backoff_slept_us() << ',' << retrying.budget_exhausted()
              << '|' << counters.to_open << ',' << counters.to_half_open << ','
              << counters.to_closed << ',' << counters.rejected;
    return signature.str();
  };

  const auto first = replay(0xFA111);
  EXPECT_EQ(first, replay(0xFA111));  // bit-identical end to end
  EXPECT_NE(first, replay(0xFA112));

  // Sanity: the scripted storm actually exercised every mechanism.
  EXPECT_NE(first.find('O'), std::string::npos);  // breaker fast-fails
  EXPECT_NE(first.find('.'), std::string::npos);  // recovery serves again
}

class StackConsistencyTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kTapeSeed = 0xCAFE;

  StackConsistencyTest()
      : inst_(knapsack::make_family(knapsack::Family::kUncorrelated, 500, 9)),
        storage_(inst_) {
    config_.eps = 0.25;
    config_.seed = 0x5E;
    config_.quantile_samples = 5'000;
  }

  /// Fault-free reference: warm once, answer every item.
  std::vector<bool> baseline_answers() const {
    const core::LcaKp lca(storage_, config_);
    util::Xoshiro256 tape(util::mix64(kTapeSeed));
    const auto run = lca.run_pipeline(tape);
    std::vector<bool> answers(inst_.size());
    for (std::size_t i = 0; i < inst_.size(); ++i) {
      answers[i] = lca.answer_from(run, i);
    }
    return answers;
  }

  /// Warm through the stack with chaos disarmed (Theorem 4.1's one-time
  /// warm-up happens before the storm), arm, then answer every item,
  /// retrying at the caller when the whole stack gives up — answer_from
  /// costs one query and never touches the sampling tape, so caller-level
  /// retries cannot shift randomness.
  std::vector<bool> answers_through(ChaosAccess& chaos,
                                    const oracle::InstanceAccess& stack_top,
                                    util::VirtualClock& clock) const {
    const core::LcaKp lca(stack_top, config_);
    util::Xoshiro256 tape(util::mix64(kTapeSeed));
    const auto run = lca.run_pipeline(tape);
    chaos.arm();
    std::vector<bool> answers(inst_.size());
    for (std::size_t i = 0; i < inst_.size(); ++i) {
      // Pacing between requests: fault-free phases produce no sleeps of
      // their own, so without this the virtual timeline would stall at the
      // plan's first steady window and the storm would never arrive.
      clock.advance_us(100);
      for (;;) {
        try {
          answers[i] = lca.answer_from(run, i);
          break;
        } catch (const oracle::OracleUnavailable&) {
        }
      }
    }
    return answers;
  }

  knapsack::Instance inst_;
  oracle::MaterializedAccess storage_;
  core::LcaKpConfig config_;
};

TEST_F(StackConsistencyTest, NonCorruptingPlanPreservesLcaAnswers) {
  util::VirtualClock clock;
  metrics::Registry registry;
  ChaosAccess chaos(storage_, stormy_plan(0xBEEF), clock, /*armed=*/false,
                    registry);
  const VerifyingAccess verified(chaos, registry);
  const oracle::RetryingAccess retrying(verified, resilient_retries(), clock,
                                        registry);
  const auto answers = answers_through(chaos, retrying, clock);
  EXPECT_EQ(answers, baseline_answers());
  EXPECT_GT(chaos.failstops_injected(), 0u);  // the storm really happened
  // E16's falsifiable zero-violation prediction: with corruption rate 0,
  // the verifier must never fire.
  EXPECT_EQ(verified.corruptions_detected(), 0u);
}

TEST_F(StackConsistencyTest, VerifierHealsCorruptingPlan) {
  FaultPhase corrupting;
  corrupting.label = "corruption-window";
  corrupting.duration_us = 0;
  corrupting.corrupt_rate = 0.4;
  util::VirtualClock clock;
  metrics::Registry registry;
  ChaosAccess chaos(storage_, FaultPlan({corrupting}, 0xD00D), clock,
                    /*armed=*/false, registry);
  const VerifyingAccess verified(chaos, registry);
  const oracle::RetryingAccess retrying(verified, /*max_attempts=*/32, registry);
  const auto answers = answers_through(chaos, retrying, clock);
  EXPECT_EQ(answers, baseline_answers());
  EXPECT_GT(chaos.corruptions_injected(), 0u);
  // Every injected corruption was caught: none slipped past the invariants
  // into an answer (equality above), and none vanished unobserved.
  EXPECT_EQ(verified.corruptions_detected(), chaos.corruptions_injected());
}

}  // namespace
}  // namespace lcaknap::fault
