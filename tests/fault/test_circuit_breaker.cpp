#include "fault/circuit_breaker.h"

#include <gtest/gtest.h>

#include <limits>

#include "knapsack/generators.h"
#include "metrics/metrics.h"
#include "oracle/flaky.h"
#include "util/virtual_clock.h"

namespace lcaknap::fault {
namespace {

CircuitBreakerConfig small_config() {
  CircuitBreakerConfig config;
  config.window = 8;
  config.failure_rate_threshold = 0.5;
  config.consecutive_failures = 3;
  config.open_cooldown_us = 10'000;
  config.half_open_probes = 2;
  return config;
}

TEST(CircuitBreaker, RejectsBadConfig) {
  util::VirtualClock clock;
  metrics::Registry registry;
  auto config = small_config();
  config.window = 0;
  EXPECT_THROW(CircuitBreaker(config, clock, registry), std::invalid_argument);
  config = small_config();
  config.failure_rate_threshold = 1.5;
  EXPECT_THROW(CircuitBreaker(config, clock, registry), std::invalid_argument);
  config.failure_rate_threshold = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(CircuitBreaker(config, clock, registry), std::invalid_argument);
  config = small_config();
  config.half_open_probes = 0;
  EXPECT_THROW(CircuitBreaker(config, clock, registry), std::invalid_argument);
}

TEST(CircuitBreaker, TripsOnConsecutiveFailures) {
  util::VirtualClock clock;
  metrics::Registry registry;
  CircuitBreaker breaker(small_config(), clock, registry);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  }
  // A success resets the consecutive counter...
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // ...so the third uninterrupted failure is what trips it.
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().to_open, 1u);
}

TEST(CircuitBreaker, TripsOnWindowFailureRate) {
  util::VirtualClock clock;
  metrics::Registry registry;
  auto config = small_config();
  config.consecutive_failures = 0;  // isolate the rate trip
  CircuitBreaker breaker(config, clock, registry);
  // Alternate success/failure: never 2 consecutive, but once the 8-wide
  // window is full at 4/8 = 50% failures the rate trip fires.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(breaker.allow());
    if (i % 2 == 0) {
      breaker.record_failure();
    } else {
      breaker.record_success();
    }
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  }
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();  // window full now: 4 failures, 4 successes
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();  // window stays at 4/8 = threshold: rate trip fires
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreaker, OpenRejectsUntilCooldownThenProbes) {
  util::VirtualClock clock;
  metrics::Registry registry;
  CircuitBreaker breaker(small_config(), clock, registry);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  EXPECT_FALSE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.counters().rejected, 2u);

  clock.advance_us(10'000);  // cooldown elapses on the virtual clock
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.counters().to_half_open, 1u);

  // One more probe fits the quota of 2; a third is rejected.
  EXPECT_TRUE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.counters().rejected, 3u);

  // Both probes succeed: the breaker closes and normal traffic resumes.
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.counters().to_closed, 1u);
  EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopens) {
  util::VirtualClock clock;
  metrics::Registry registry;
  CircuitBreaker breaker(small_config(), clock, registry);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  clock.advance_us(10'000);
  ASSERT_TRUE(breaker.allow());
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().to_open, 2u);
  // The cooldown restarts from the re-trip.
  EXPECT_FALSE(breaker.allow());
  clock.advance_us(10'000);
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, ClosingResetsTheWindow) {
  util::VirtualClock clock;
  metrics::Registry registry;
  auto config = small_config();
  config.consecutive_failures = 2;
  CircuitBreaker breaker(config, clock, registry);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  clock.advance_us(10'000);
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  ASSERT_EQ(breaker.state(), BreakerState::kClosed);
  // History was wiped on close: one new failure must not re-trip.
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, ExportsStateAndTransitions) {
  util::VirtualClock clock;
  metrics::Registry registry;
  CircuitBreaker breaker(small_config(), clock, registry);
  auto& gauge = registry.gauge(
      "breaker_state", "Circuit breaker state (0 closed, 1 open, 2 half-open)");
  EXPECT_EQ(gauge.value(), 0.0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  EXPECT_EQ(gauge.value(), 1.0);
  EXPECT_EQ(registry
                .counter("breaker_transitions_total",
                         "Circuit breaker state transitions", {{"to", "open"}})
                .value(),
            1u);
  clock.advance_us(10'000);
  ASSERT_TRUE(breaker.allow());
  EXPECT_EQ(gauge.value(), 2.0);
}

TEST(BreakerAccess, OpenBreakerSkipsInnerOracle) {
  const auto inst = knapsack::make_family(knapsack::Family::kUncorrelated, 20, 1);
  const oracle::MaterializedAccess storage(inst);
  util::VirtualClock clock;
  metrics::Registry registry;
  const oracle::FlakyAccess dead(storage, 0.999999, /*seed=*/5, registry);
  const BreakerAccess guarded(dead, small_config(), clock, registry);

  // Drive the breaker open against the (effectively) dead oracle.
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW((void)guarded.query(0), oracle::OracleUnavailable);
  }
  ASSERT_EQ(guarded.breaker().state(), BreakerState::kOpen);

  const auto calls_at_trip = dead.query_count();
  for (int i = 0; i < 100; ++i) {
    EXPECT_THROW((void)guarded.query(0), CircuitOpen);
  }
  // Fast-fail means the inner oracle never saw those 100 calls.
  EXPECT_EQ(dead.query_count(), calls_at_trip);
  EXPECT_EQ(guarded.breaker().counters().rejected, 100u);
}

TEST(BreakerAccess, CircuitOpenIsOracleUnavailable) {
  EXPECT_THROW(throw CircuitOpen(), oracle::OracleUnavailable);
}

TEST(BreakerAccess, BreakerStateNamesAreStable) {
  EXPECT_STREQ(breaker_state_name(BreakerState::kClosed), "closed");
  EXPECT_STREQ(breaker_state_name(BreakerState::kOpen), "open");
  EXPECT_STREQ(breaker_state_name(BreakerState::kHalfOpen), "half_open");
}

}  // namespace
}  // namespace lcaknap::fault
