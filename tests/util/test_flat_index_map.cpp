#include "util/flat_index_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "util/rng.h"

namespace lcaknap::util {
namespace {

TEST(FlatIndexMap, EmplaceFirstWins) {
  FlatIndexMap<int> map;
  EXPECT_TRUE(map.emplace(7, 1));
  EXPECT_FALSE(map.emplace(7, 2));  // matches std::map::emplace semantics
  EXPECT_EQ(map.size(), 1u);
  const auto entries = map.extract_sorted();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].second, 1);
}

TEST(FlatIndexMap, ContainsAndEmpty) {
  FlatIndexMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(3));
  map.emplace(3, 9);
  EXPECT_TRUE(map.contains(3));
  EXPECT_FALSE(map.contains(4));
  EXPECT_FALSE(map.empty());
}

TEST(FlatIndexMap, ExtractSortedMatchesStdMapOrder) {
  // Adversarial-ish keys: clustered, huge, and zero, inserted in random
  // order; extract_sorted must reproduce std::map's iteration exactly.
  FlatIndexMap<std::string> flat(4);  // force several growths
  std::map<std::size_t, std::string> reference;
  Xoshiro256 rng(123);
  for (int i = 0; i < 500; ++i) {
    const std::size_t key = (rng() % 5 == 0) ? rng() : rng() % 64;
    const std::string value = std::to_string(key) + "v";
    flat.emplace(key, value);
    reference.emplace(key, value);
  }
  flat.emplace(0, "0v");
  reference.emplace(0, "0v");

  const auto entries = flat.extract_sorted();
  ASSERT_EQ(entries.size(), reference.size());
  std::size_t i = 0;
  for (const auto& [key, value] : reference) {
    EXPECT_EQ(entries[i].first, key);
    EXPECT_EQ(entries[i].second, value);
    ++i;
  }
}

TEST(FlatIndexMap, GrowthPreservesEntries) {
  FlatIndexMap<std::size_t> map(1);
  for (std::size_t k = 0; k < 2'000; ++k) map.emplace(k * 3, k);
  EXPECT_EQ(map.size(), 2'000u);
  const auto entries = map.extract_sorted();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].first, i * 3);
    EXPECT_EQ(entries[i].second, i);
  }
}

TEST(FlatIndexMap, CollidingKeysProbeCorrectly) {
  // Keys chosen dense enough that linear probing must chain; every key must
  // remain individually addressable.
  FlatIndexMap<std::size_t> map(8);
  for (std::size_t k = 100; k < 120; ++k) map.emplace(k, k * k);
  for (std::size_t k = 100; k < 120; ++k) {
    EXPECT_TRUE(map.contains(k));
    EXPECT_FALSE(map.emplace(k, 0));
  }
  EXPECT_FALSE(map.contains(99));
  EXPECT_FALSE(map.contains(120));
}

}  // namespace
}  // namespace lcaknap::util
