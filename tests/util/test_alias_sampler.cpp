#include "util/alias_sampler.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.h"

namespace lcaknap::util {
namespace {

TEST(AliasSampler, RejectsBadWeights) {
  EXPECT_THROW(AliasSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{1.0, -1.0}), std::invalid_argument);
}

TEST(AliasSampler, SingleBucketAlwaysSampled) {
  const AliasSampler sampler(std::vector<double>{3.0});
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(AliasSampler, ZeroWeightNeverSampled) {
  const AliasSampler sampler(std::vector<double>{1.0, 0.0, 1.0});
  Xoshiro256 rng(2);
  for (int i = 0; i < 10'000; ++i) EXPECT_NE(sampler.sample(rng), 1u);
}

TEST(AliasSampler, MatchesDistributionChiSquare) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  const AliasSampler sampler(weights);
  Xoshiro256 rng(3);
  std::vector<std::size_t> counts(weights.size(), 0);
  constexpr int kTrials = 200'000;
  for (int i = 0; i < kTrials; ++i) ++counts[sampler.sample(rng)];
  const std::vector<double> probs{0.1, 0.2, 0.3, 0.4};
  // 3 degrees of freedom: 99.9th percentile ~16.3.
  EXPECT_LT(chi_square(counts, probs), 16.3);
}

TEST(AliasSampler, HighlySkewedWeights) {
  // One item carries 99.9% of the mass — the "needle" pattern weighted
  // sampling exists to catch.
  std::vector<double> weights(1000, 0.001);
  weights[500] = 999.0;
  const AliasSampler sampler(weights);
  Xoshiro256 rng(4);
  int hits = 0;
  constexpr int kTrials = 10'000;
  for (int i = 0; i < kTrials; ++i) {
    if (sampler.sample(rng) == 500) ++hits;
  }
  EXPECT_GT(hits, kTrials * 0.99 * 0.995);
}

}  // namespace
}  // namespace lcaknap::util
