// Randomized property sweeps for the exact rational layer: ordering,
// arithmetic, and double round-trips verified against a 128-bit reference.

#include <gtest/gtest.h>

#include "util/rational.h"
#include "util/rng.h"

namespace lcaknap::util {
namespace {

std::strong_ordering reference_cmp(std::int64_t an, std::int64_t ad,
                                   std::int64_t bn, std::int64_t bd) {
  // ad, bd > 0 by construction below.
  const __int128 lhs = static_cast<__int128>(an) * bd;
  const __int128 rhs = static_cast<__int128>(bn) * ad;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

TEST(RationalProperty, OrderingMatchesInt128Reference) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 20'000; ++trial) {
    const std::int64_t an = rng.next_in(-1'000'000, 1'000'000);
    const std::int64_t ad = rng.next_in(1, 1'000'000);
    const std::int64_t bn = rng.next_in(-1'000'000, 1'000'000);
    const std::int64_t bd = rng.next_in(1, 1'000'000);
    const Rational a(an, ad), b(bn, bd);
    ASSERT_EQ(a <=> b, reference_cmp(an, ad, bn, bd))
        << an << "/" << ad << " vs " << bn << "/" << bd;
  }
}

TEST(RationalProperty, AdditionAgreesWithReference) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 10'000; ++trial) {
    const std::int64_t an = rng.next_in(-100'000, 100'000);
    const std::int64_t ad = rng.next_in(1, 100'000);
    const std::int64_t bn = rng.next_in(-100'000, 100'000);
    const std::int64_t bd = rng.next_in(1, 100'000);
    const Rational sum = Rational(an, ad) + Rational(bn, bd);
    // Reference: sum == (an*bd + bn*ad) / (ad*bd), compared exactly.
    const __int128 ref_num = static_cast<__int128>(an) * bd +
                             static_cast<__int128>(bn) * ad;
    const __int128 ref_den = static_cast<__int128>(ad) * bd;
    const __int128 lhs = static_cast<__int128>(sum.num()) * ref_den;
    const __int128 rhs = ref_num * sum.den();
    ASSERT_EQ(lhs, rhs);
  }
}

TEST(RationalProperty, MultiplicationAgreesWithReference) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 10'000; ++trial) {
    const std::int64_t an = rng.next_in(-100'000, 100'000);
    const std::int64_t ad = rng.next_in(1, 100'000);
    const std::int64_t bn = rng.next_in(-100'000, 100'000);
    const std::int64_t bd = rng.next_in(1, 100'000);
    const Rational product = Rational(an, ad) * Rational(bn, bd);
    const __int128 ref_num = static_cast<__int128>(an) * bn;
    const __int128 ref_den = static_cast<__int128>(ad) * bd;
    const __int128 lhs = static_cast<__int128>(product.num()) * ref_den;
    const __int128 rhs = ref_num * product.den();
    ASSERT_EQ(lhs, rhs);
  }
}

TEST(RationalProperty, FromDoubleRoundTripsBoundedDenominators) {
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 5'000; ++trial) {
    const std::int64_t num = rng.next_in(-999, 999);
    const std::int64_t den = rng.next_in(1, 999);
    const Rational original(num, den);
    const Rational recovered =
        Rational::from_double(original.to_double(), /*max_den=*/1'000);
    ASSERT_EQ(recovered, original)
        << num << "/" << den << " -> " << recovered.to_string();
  }
}

TEST(RationalProperty, ReductionIsCanonical) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 10'000; ++trial) {
    const std::int64_t num = rng.next_in(-10'000, 10'000);
    const std::int64_t den = rng.next_in(1, 10'000);
    const std::int64_t k = rng.next_in(1, 1'000);
    // Scaling numerator and denominator together must not change the value.
    ASSERT_EQ(Rational(num, den), Rational(num * k, den * k));
  }
}

TEST(CmpProductsProperty, MatchesInt128Reference) {
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 20'000; ++trial) {
    const std::int64_t a1 = rng.next_in(-2'000'000'000LL, 2'000'000'000LL);
    const std::int64_t a2 = rng.next_in(-2'000'000'000LL, 2'000'000'000LL);
    const std::int64_t b1 = rng.next_in(-2'000'000'000LL, 2'000'000'000LL);
    const std::int64_t b2 = rng.next_in(-2'000'000'000LL, 2'000'000'000LL);
    const __int128 lhs = static_cast<__int128>(a1) * a2;
    const __int128 rhs = static_cast<__int128>(b1) * b2;
    const auto expected = lhs < rhs   ? std::strong_ordering::less
                          : lhs > rhs ? std::strong_ordering::greater
                                      : std::strong_ordering::equal;
    ASSERT_EQ(cmp_products(a1, a2, b1, b2), expected);
  }
}

}  // namespace
}  // namespace lcaknap::util
