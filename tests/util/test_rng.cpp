#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace lcaknap::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  std::uint64_t a = 7, b = 7;
  EXPECT_EQ(splitmix64(a), splitmix64(b));
  EXPECT_EQ(a, b);
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 0;
  const auto first = splitmix64(s);
  const auto second = splitmix64(s);
  EXPECT_NE(first, second);
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 4096; ++x) outputs.insert(mix64(x));
  EXPECT_EQ(outputs.size(), 4096u);
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1'000'000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(17);
  constexpr std::uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.next_below(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kTrials / kBound, 500);
  }
}

TEST(Xoshiro256, NextInCoversInclusiveRange) {
  Xoshiro256 rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Prf, SameKeySameTape) {
  const Prf a(42), b(42);
  for (std::uint64_t s = 0; s < 4; ++s) {
    for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(a.word(s, i), b.word(s, i));
  }
}

TEST(Prf, DifferentKeysDiffer) {
  const Prf a(42), b(43);
  int equal = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    if (a.word(0, i) == b.word(0, i)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Prf, StreamsAreIndependentAddresses) {
  const Prf p(7);
  EXPECT_NE(p.word(0, 5), p.word(1, 5));
  EXPECT_NE(p.word(2, 0), p.word(3, 0));
}

TEST(Prf, UniformInUnitInterval) {
  const Prf p(11);
  double sum = 0.0;
  constexpr int kN = 10'000;
  for (int i = 0; i < kN; ++i) {
    const double u = p.uniform(1, static_cast<std::uint64_t>(i));
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Prf, SubkeyDerivationIsStable) {
  const Prf p(99);
  EXPECT_EQ(p.subkey(1).key(), p.subkey(1).key());
  EXPECT_NE(p.subkey(1).key(), p.subkey(2).key());
  EXPECT_NE(p.subkey(1).key(), p.key());
}

}  // namespace
}  // namespace lcaknap::util
