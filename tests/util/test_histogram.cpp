#include "util/histogram.h"

#include <gtest/gtest.h>

#include <sstream>

namespace lcaknap::util {
namespace {

TEST(Histogram, ValidatesArguments) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsObservationsCorrectly) {
  Histogram h(0.0, 1.0, 4);
  for (const double x : {0.1, 0.3, 0.35, 0.6, 0.9}) h.add(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(7.0);
  h.add(1.0);  // exactly hi clamps into the top bin
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
}

TEST(Histogram, BinRanges) {
  const Histogram h(0.0, 2.0, 4);
  const auto [lo, hi] = h.bin_range(1);
  EXPECT_DOUBLE_EQ(lo, 0.5);
  EXPECT_DOUBLE_EQ(hi, 1.0);
  EXPECT_THROW(h.bin_range(4), std::out_of_range);
}

TEST(Histogram, AddAllAndPrint) {
  Histogram h(0.0, 10.0, 5);
  const std::vector<double> xs{1.0, 1.5, 3.0, 9.0, 9.5, 9.9};
  h.add_all(xs);
  std::ostringstream oss;
  h.print(oss, "demo");
  const std::string out = oss.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_EQ(h.count(), xs.size());
}

}  // namespace
}  // namespace lcaknap::util
