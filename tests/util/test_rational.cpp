#include "util/rational.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lcaknap::util {
namespace {

TEST(Rational, ReducesToLowestTerms) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesSignIntoNumerator) {
  const Rational r(3, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, OrderingIsExact) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(2, 3), Rational(3, 5));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0, 1));
}

TEST(Rational, OrderingExactWhereDoublesFail) {
  // 10^17 / (10^17 + 1) vs (10^17 - 1) / 10^17: doubles see equality.
  const std::int64_t big = 100'000'000'000'000'000;
  const Rational a(big, big + 1);
  const Rational b(big - 1, big);
  EXPECT_EQ(a.to_double(), b.to_double());  // the double collision
  EXPECT_GT(a, b);                          // the exact truth
}

TEST(Rational, MultiplicationIsExact) {
  const Rational product = Rational(2, 3) * Rational(9, 4);
  EXPECT_EQ(product, Rational(3, 2));
}

TEST(Rational, AdditionIsExact) {
  const Rational sum = Rational(1, 6) + Rational(1, 3);
  EXPECT_EQ(sum, Rational(1, 2));
}

TEST(Rational, OverflowIsDetected) {
  const std::int64_t big = 3'000'000'000'000'000'000;
  EXPECT_THROW(Rational(big, 1) * Rational(big, 1), std::overflow_error);
}

TEST(Rational, FromDoubleRecoverSimpleFractions) {
  EXPECT_EQ(Rational::from_double(0.5), Rational(1, 2));
  EXPECT_EQ(Rational::from_double(0.25), Rational(1, 4));
  EXPECT_EQ(Rational::from_double(2.0 / 3.0), Rational(2, 3));
  EXPECT_EQ(Rational::from_double(-0.2), Rational(-1, 5));
}

TEST(Rational, FromDoubleHandlesIntegers) {
  EXPECT_EQ(Rational::from_double(7.0), Rational(7, 1));
  EXPECT_EQ(Rational::from_double(0.0), Rational(0, 1));
}

TEST(Rational, FromDoubleApproximatesWithinDenominatorBound) {
  const double pi = 3.14159265358979;
  const Rational approx = Rational::from_double(pi, 1000);
  EXPECT_LE(approx.den(), 1000);
  EXPECT_NEAR(approx.to_double(), pi, 1e-5);
}

TEST(Rational, FromDoubleRejectsNonFinite) {
  EXPECT_THROW(Rational::from_double(1.0 / 0.0), std::invalid_argument);
}

TEST(CmpProducts, MatchesExactArithmetic) {
  EXPECT_EQ(cmp_products(3, 4, 2, 6), std::strong_ordering::equal);
  EXPECT_EQ(cmp_products(3, 5, 2, 6), std::strong_ordering::greater);
  EXPECT_EQ(cmp_products(1, 5, 2, 6), std::strong_ordering::less);
  // Near the 64-bit boundary where doubles round.
  const std::int64_t big = 4'000'000'000'000'000'000;
  EXPECT_EQ(cmp_products(big, 2, big, 2), std::strong_ordering::equal);
  EXPECT_EQ(cmp_products(big, 2, big - 1, 2), std::strong_ordering::greater);
}

}  // namespace
}  // namespace lcaknap::util
