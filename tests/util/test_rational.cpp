#include "util/rational.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "util/rng.h"

namespace lcaknap::util {
namespace {

TEST(Rational, ReducesToLowestTerms) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesSignIntoNumerator) {
  const Rational r(3, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, OrderingIsExact) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(2, 3), Rational(3, 5));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0, 1));
}

TEST(Rational, OrderingExactWhereDoublesFail) {
  // 10^17 / (10^17 + 1) vs (10^17 - 1) / 10^17: doubles see equality.
  const std::int64_t big = 100'000'000'000'000'000;
  const Rational a(big, big + 1);
  const Rational b(big - 1, big);
  EXPECT_EQ(a.to_double(), b.to_double());  // the double collision
  EXPECT_GT(a, b);                          // the exact truth
}

TEST(Rational, MultiplicationIsExact) {
  const Rational product = Rational(2, 3) * Rational(9, 4);
  EXPECT_EQ(product, Rational(3, 2));
}

TEST(Rational, AdditionIsExact) {
  const Rational sum = Rational(1, 6) + Rational(1, 3);
  EXPECT_EQ(sum, Rational(1, 2));
}

TEST(Rational, OverflowIsDetected) {
  const std::int64_t big = 3'000'000'000'000'000'000;
  EXPECT_THROW(Rational(big, 1) * Rational(big, 1), std::overflow_error);
}

TEST(Rational, FromDoubleRecoverSimpleFractions) {
  EXPECT_EQ(Rational::from_double(0.5), Rational(1, 2));
  EXPECT_EQ(Rational::from_double(0.25), Rational(1, 4));
  EXPECT_EQ(Rational::from_double(2.0 / 3.0), Rational(2, 3));
  EXPECT_EQ(Rational::from_double(-0.2), Rational(-1, 5));
}

TEST(Rational, FromDoubleHandlesIntegers) {
  EXPECT_EQ(Rational::from_double(7.0), Rational(7, 1));
  EXPECT_EQ(Rational::from_double(0.0), Rational(0, 1));
}

TEST(Rational, FromDoubleApproximatesWithinDenominatorBound) {
  const double pi = 3.14159265358979;
  const Rational approx = Rational::from_double(pi, 1000);
  EXPECT_LE(approx.den(), 1000);
  EXPECT_NEAR(approx.to_double(), pi, 1e-5);
}

TEST(Rational, FromDoubleRejectsNonFinite) {
  EXPECT_THROW(Rational::from_double(1.0 / 0.0), std::invalid_argument);
}

TEST(CmpProducts, MatchesExactArithmetic) {
  EXPECT_EQ(cmp_products(3, 4, 2, 6), std::strong_ordering::equal);
  EXPECT_EQ(cmp_products(3, 5, 2, 6), std::strong_ordering::greater);
  EXPECT_EQ(cmp_products(1, 5, 2, 6), std::strong_ordering::less);
  // Near the 64-bit boundary where doubles round.
  const std::int64_t big = 4'000'000'000'000'000'000;
  EXPECT_EQ(cmp_products(big, 2, big, 2), std::strong_ordering::equal);
  EXPECT_EQ(cmp_products(big, 2, big - 1, 2), std::strong_ordering::greater);
}

TEST(CmpProducts, FastPathAgreesWithWideOnOverflowingOperands) {
  // Operands whose cross products exceed 64 bits: the checked fast path must
  // detect the overflow and route to the 128-bit reference, agreeing with
  // `cmp_products_wide` everywhere.
  const std::int64_t big = 4'000'000'000'000'000'000;  // big*3 overflows int64
  const std::int64_t kCases[][4] = {
      {big, 3, big, 3},          {big, 3, big - 1, 3},
      {big - 1, 3, big, 3},      {-big, 3, big, 3},
      {big, 3, -big, 3},         {-big, 3, -big, 3},
      {-big, -3, big, 3},        {big, 3, 2, 5},
      {2, 5, big, 3},            {INT64_MAX, INT64_MAX, INT64_MIN, INT64_MIN},
      {INT64_MIN, 2, INT64_MAX, 2},
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(cmp_products(c[0], c[1], c[2], c[3]),
              cmp_products_wide(c[0], c[1], c[2], c[3]))
        << c[0] << "*" << c[1] << " vs " << c[2] << "*" << c[3];
  }
}

TEST(CmpProducts, FastPathAgreesWithWideOnRandomOperands) {
  // Mixed magnitudes so both the fast path and the fallback get exercised.
  Xoshiro256 rng(55);
  const auto draw = [&rng]() -> std::int64_t {
    const auto raw = static_cast<std::int64_t>(rng());
    switch (rng.next_below(3)) {
      case 0: return raw % 1'000;              // small: fast path
      case 1: return raw % 2'000'000'000;      // realistic profit/weight scale
      default: return raw;                     // full range: overflow likely
    }
  };
  for (int i = 0; i < 200'000; ++i) {
    const std::int64_t a1 = draw(), a2 = draw(), b1 = draw(), b2 = draw();
    ASSERT_EQ(cmp_products(a1, a2, b1, b2), cmp_products_wide(a1, a2, b1, b2))
        << a1 << "*" << a2 << " vs " << b1 << "*" << b2;
  }
}

TEST(Rational, ComparisonAgreesWithWideReferenceNearOverflow) {
  // Rational::operator<=> takes the same checked fast path; pin it against
  // the 128-bit cross products on reduced fractions with huge components.
  Xoshiro256 rng(56);
  for (int i = 0; i < 20'000; ++i) {
    const auto num1 = static_cast<std::int64_t>(rng()) | 1;
    const auto num2 = static_cast<std::int64_t>(rng()) | 1;
    const auto den1 = static_cast<std::int64_t>(rng.next_below(INT64_MAX)) | 1;
    const auto den2 = static_cast<std::int64_t>(rng.next_below(INT64_MAX)) | 1;
    const Rational a(num1, den1);
    const Rational b(num2, den2);
    ASSERT_EQ(a <=> b, cmp_products_wide(a.num(), b.den(), b.num(), a.den()))
        << a.to_string() << " vs " << b.to_string();
  }
}

}  // namespace
}  // namespace lcaknap::util
