#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lcaknap::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ReportsThreadCount) {
  const ThreadPool pool(5);
  EXPECT_EQ(pool.thread_count(), 5u);
}

TEST(ThreadPool, WaitIdleRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The exception is consumed: the pool is clean again.
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, RethrowFirstKeepsRunningRemainingTasks) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::logic_error("first"); });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&completed] { completed.fetch_add(1); });
  }
  pool.submit([] { throw std::runtime_error("second"); });
  // First captured exception wins; later ones from this generation drop.
  EXPECT_THROW(
      {
        try {
          pool.wait_idle();
        } catch (const std::logic_error& e) {
          EXPECT_STREQ(e.what(), "first");
          throw;
        }
      },
      std::logic_error);
  EXPECT_EQ(completed.load(), 50);
}

TEST(ThreadPool, ParallelForPropagatesWorkerFailure) {
  ThreadPool pool(3);
  std::atomic<int> visited{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&visited](std::size_t i) {
                          visited.fetch_add(1);
                          if (i == 13) throw std::runtime_error("index 13");
                        }),
      std::runtime_error);
  // Every index was still attempted (rethrow happens at the wait).
  EXPECT_EQ(visited.load(), 64);
  // The pool is reusable after a failed parallel_for.
  pool.parallel_for(8, [&visited](std::size_t) { visited.fetch_add(1); });
  EXPECT_EQ(visited.load(), 72);
}

TEST(ThreadPool, DestructionWithPendingExceptionIsSafe) {
  // A pool destroyed without wait_idle() swallows the pending exception
  // (destructors cannot throw); this must not crash or leak the task queue.
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("never observed"); });
    pool.submit([&completed] { completed.fetch_add(1); });
  }
  EXPECT_EQ(completed.load(), 1);
}

TEST(ThreadPool, TasksRunConcurrently) {
  // Handshake: two tasks that each wait for the other's arrival.  Completing
  // within the deadline is only possible if they overlap in time.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  std::atomic<bool> both_seen{false};
  for (int t = 0; t < 2; ++t) {
    pool.submit([&arrived, &both_seen] {
      arrived.fetch_add(1);
      for (int spin = 0; spin < 200'000'000; ++spin) {
        if (arrived.load() == 2) {
          both_seen.store(true);
          break;
        }
      }
    });
  }
  pool.wait_idle();
  EXPECT_TRUE(both_seen.load());
}

}  // namespace
}  // namespace lcaknap::util
