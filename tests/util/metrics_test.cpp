#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "metrics/exporters.h"
#include "util/rng.h"

namespace lcaknap::metrics {
namespace {

TEST(Counter, ConcurrentIncrementsAreExact) {
  Registry registry;
  Counter& counter = registry.counter("test_total", "concurrency probe");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.counter_value("test_total"), counter.value());
}

TEST(Registry, SameNameAndLabelsReturnsSameInstrument) {
  Registry registry;
  Counter& a = registry.counter("x_total", "help");
  Counter& b = registry.counter("x_total", "help");
  EXPECT_EQ(&a, &b);
  // Label order must not matter.
  Counter& l1 = registry.counter("y_total", "help", {{"a", "1"}, {"b", "2"}});
  Counter& l2 = registry.counter("y_total", "help", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&l1, &l2);
  Counter& other = registry.counter("y_total", "help", {{"a", "2"}, {"b", "2"}});
  EXPECT_NE(&l1, &other);
}

TEST(Registry, KindMismatchThrows) {
  Registry registry;
  (void)registry.counter("dual_use", "as counter");
  EXPECT_THROW((void)registry.gauge("dual_use", "as gauge"), std::invalid_argument);
  EXPECT_THROW(
      (void)registry.histogram("dual_use", "as histogram", {1.0, 2.0}),
      std::invalid_argument);
}

TEST(Registry, CounterValueOfUnknownNameIsZero) {
  Registry registry;
  EXPECT_EQ(registry.counter_value("never_registered_total"), 0u);
}

TEST(Gauge, SetAndConcurrentAddAreExact) {
  Registry registry;
  Gauge& gauge = registry.gauge("test_gauge", "probe");
  gauge.set(10.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 10.0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.value(), 10.0 + kThreads * kPerThread);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BucketAssignmentAndTotals) {
  Histogram hist({10.0, 20.0, 30.0});
  hist.observe(5.0);    // -> le=10
  hist.observe(10.0);   // boundary counts into le=10 (cumulative semantics)
  hist.observe(15.0);   // -> le=20
  hist.observe(100.0);  // -> +Inf
  const auto counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 130.0);
}

TEST(Histogram, PercentilesMatchKnownUniformDistribution) {
  // 10000 observations uniform on (0, 1000) into 100 linear buckets: the
  // interpolated percentile must sit within one bucket width of the truth.
  Histogram hist(Histogram::linear_buckets(10.0, 10.0, 100));
  util::Xoshiro256 rng(99);
  constexpr int kSamples = 10'000;
  for (int i = 0; i < kSamples; ++i) hist.observe(rng.next_double() * 1000.0);
  EXPECT_NEAR(hist.percentile(0.50), 500.0, 15.0);
  EXPECT_NEAR(hist.percentile(0.95), 950.0, 15.0);
  EXPECT_NEAR(hist.percentile(0.99), 990.0, 15.0);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kSamples));
}

TEST(Histogram, PercentileOnPointMassInterpolatesWithinOneBucket) {
  Histogram hist({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) hist.observe(25.0);
  // Everything is in the (20, 30] bucket; any percentile must land there.
  EXPECT_GE(hist.percentile(0.50), 20.0);
  EXPECT_LE(hist.percentile(0.50), 30.0);
  EXPECT_GE(hist.percentile(0.99), 20.0);
  EXPECT_LE(hist.percentile(0.99), 30.0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram hist({1.0, 2.0});
  EXPECT_DOUBLE_EQ(hist.percentile(0.5), 0.0);
}

TEST(Histogram, ConcurrentObservationsAreExact) {
  Histogram hist(Histogram::exponential_buckets(1.0, 2.0, 10));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) hist.observe(rng.next_double() * 600.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto c : hist.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, hist.count());
}

TEST(ScopedTimer, ObservesElapsedOnDestruction) {
  Histogram hist(Histogram::exponential_buckets(0.1, 4.0, 12));
  {
    const ScopedTimer span(hist);
  }
  EXPECT_EQ(hist.count(), 1u);
  {
    ScopedTimer span(hist);
    span.cancel();
  }
  EXPECT_EQ(hist.count(), 1u);  // cancelled span records nothing
}

TEST(Exporters, PrometheusExpositionIsWellFormed) {
  Registry registry;
  registry.counter("requests_total", "total requests").inc(7);
  registry.counter("shard_total", "per-shard", {{"shard", "0"}}).inc(2);
  registry.gauge("temperature", "degrees").set(21.5);
  Histogram& hist = registry.histogram("latency_us", "latency", {10.0, 100.0});
  hist.observe(5.0);
  hist.observe(50.0);
  hist.observe(500.0);

  std::ostringstream os;
  write_registry(registry, ExportFormat::kPrometheus, os);
  const std::string out = os.str();

  EXPECT_NE(out.find("# HELP requests_total total requests\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("requests_total 7\n"), std::string::npos);
  EXPECT_NE(out.find("shard_total{shard=\"0\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE temperature gauge\n"), std::string::npos);
  EXPECT_NE(out.find("temperature 21.5\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE latency_us histogram\n"), std::string::npos);
  // Buckets are cumulative and end in +Inf == count.
  EXPECT_NE(out.find("latency_us_bucket{le=\"10\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("latency_us_bucket{le=\"100\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("latency_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("latency_us_sum 555\n"), std::string::npos);
  EXPECT_NE(out.find("latency_us_count 3\n"), std::string::npos);

  // Every non-comment line is `name{labels} value` with a parseable value.
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# ", 0) == 0) continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable sample value in: " << line;
  }
}

TEST(Exporters, PrometheusExportFollowsRegistrationOrder) {
  // Export order is defined by registration order (`families_`), not by the
  // name-lookup table — this pins it so the `by_name_` container can change
  // (ordered map -> hash map) without reordering operator-facing output.
  Registry registry;
  const std::vector<std::string> names{"zulu_total", "alpha_total",
                                       "mike_total", "bravo_total"};
  for (const auto& name : names) registry.counter(name, "help " + name).inc();
  // Re-registering must not move a family to the back.
  registry.counter("zulu_total", "help zulu_total").inc();

  std::ostringstream os;
  write_registry(registry, ExportFormat::kPrometheus, os);
  const std::string out = os.str();
  std::size_t previous = 0;
  for (const auto& name : names) {
    const auto pos = out.find("# HELP " + name);
    ASSERT_NE(pos, std::string::npos) << name;
    EXPECT_GE(pos, previous) << name << " exported out of registration order";
    previous = pos;
  }
}

TEST(Exporters, JsonLinesAreOneObjectPerInstrument) {
  Registry registry;
  registry.counter("requests_total", "total").inc(3);
  registry.gauge("level", "g").set(0.25);
  registry.histogram("lat", "h", {1.0}).observe(0.5);

  std::ostringstream os;
  write_registry(registry, ExportFormat::kJson, os);
  const std::string out = os.str();

  EXPECT_NE(
      out.find("{\"name\":\"requests_total\",\"type\":\"counter\",\"labels\":{},"
               "\"value\":3}\n"),
      std::string::npos);
  EXPECT_NE(out.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(out.find("\"buckets\":[{\"le\":1,\"count\":1},{\"le\":\"+Inf\","
                     "\"count\":0}]"),
            std::string::npos);
  // Exactly one line per instrument.
  std::size_t lines = 0;
  for (const char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);
}

TEST(Exporters, ParseFormatNames) {
  EXPECT_EQ(parse_export_format("prom"), ExportFormat::kPrometheus);
  EXPECT_EQ(parse_export_format("prometheus"), ExportFormat::kPrometheus);
  EXPECT_EQ(parse_export_format("json"), ExportFormat::kJson);
  EXPECT_EQ(parse_export_format("jsonl"), ExportFormat::kJson);
  EXPECT_THROW(parse_export_format("xml"), std::invalid_argument);
}

TEST(Exporters, PrometheusEscapesLabelValues) {
  Registry registry;
  registry.counter("esc_total", "h", {{"path", "a\"b\\c\nd"}}).inc(1);
  std::ostringstream os;
  write_registry(registry, ExportFormat::kPrometheus, os);
  EXPECT_NE(os.str().find("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(GlobalRegistry, IsASingleton) {
  EXPECT_EQ(&global_registry(), &global_registry());
}

}  // namespace
}  // namespace lcaknap::metrics
