#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace lcaknap::util {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci_half_width(), 0.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  Xoshiro256 rng(1);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.next_double());
  for (int i = 0; i < 10'000; ++i) large.add(rng.next_double());
  EXPECT_GT(small.ci_half_width(), large.ci_half_width());
}

TEST(EmpiricalCdf, StepFunctionValues) {
  const std::vector<double> data{1.0, 2.0, 2.0, 5.0};
  const EmpiricalCdf cdf(data);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(4.9), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInverseOfCdf) {
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0};
  const EmpiricalCdf cdf(data);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.75), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(EmpiricalCdfInt, MatchesDoubleVersion) {
  const std::vector<std::int64_t> data{3, 1, 4, 1, 5};
  const EmpiricalCdfInt cdf(data);
  EXPECT_DOUBLE_EQ(cdf.at(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1), 0.4);
  EXPECT_DOUBLE_EQ(cdf.at(4), 0.8);
  EXPECT_DOUBLE_EQ(cdf.at(5), 1.0);
  EXPECT_EQ(cdf.quantile(0.5), 3);
  EXPECT_EQ(cdf.quantile(0.95), 5);
}

TEST(EmpiricalCdfInt, EmptyUsesFallback) {
  const EmpiricalCdfInt cdf(std::vector<std::int64_t>{});
  EXPECT_EQ(cdf.quantile(0.5, -7), -7);
  EXPECT_DOUBLE_EQ(cdf.at(0), 0.0);
}

TEST(DkwSampleSize, MatchesClosedForm) {
  const double eps = 0.05, delta = 0.1;
  const auto n = dkw_sample_size(eps, delta);
  EXPECT_EQ(n, static_cast<std::size_t>(
                   std::ceil(std::log(2.0 / delta) / (2.0 * eps * eps))));
  // Empirical check: with n samples the sup-deviation rarely exceeds eps.
  Xoshiro256 rng(2);
  int violations = 0;
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<double> sample(n);
    for (auto& x : sample) x = rng.next_double();
    const EmpiricalCdf cdf(sample);
    double worst = 0.0;
    for (double x = 0.0; x <= 1.0; x += 0.01) {
      worst = std::max(worst, std::abs(cdf.at(x) - x));
    }
    if (worst > eps) ++violations;
  }
  EXPECT_LE(violations, 10);  // nominal rate is 10%, allow generous margin
}

TEST(WilsonInterval, ContainsPointEstimate) {
  const auto iv = wilson_interval(80, 100);
  EXPECT_LT(iv.lo, 0.8);
  EXPECT_GT(iv.hi, 0.8);
  EXPECT_GT(iv.lo, 0.69);
  EXPECT_LT(iv.hi, 0.89);
}

TEST(WilsonInterval, DegenerateCases) {
  const auto zero = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const auto all = wilson_interval(50, 50);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
  const auto none = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 1.0);
}

TEST(EmpiricalCdfInt, CountingSortConstructorEquivalent) {
  // The counting-sort constructor must produce the exact sorted
  // representation of the generic one — every readout identical.
  Xoshiro256 rng(17);
  const std::int64_t domain = 1 << 12;
  std::vector<std::int64_t> data(50'000);
  for (auto& v : data) v = static_cast<std::int64_t>(rng.next_below(domain));
  const EmpiricalCdfInt generic(data);
  const EmpiricalCdfInt counting(data, domain);
  ASSERT_EQ(counting.size(), generic.size());
  for (std::int64_t x : {0L, 1L, 7L, domain / 2, domain - 1, domain + 5}) {
    EXPECT_DOUBLE_EQ(counting.at(x), generic.at(x)) << "x=" << x;
  }
  for (const double p : {1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-6}) {
    EXPECT_EQ(counting.quantile(p), generic.quantile(p)) << "p=" << p;
  }
}

TEST(EmpiricalCdfInt, CountingSortConstructorValidates) {
  const std::vector<std::int64_t> negative{-1, 2};
  EXPECT_THROW(EmpiricalCdfInt(negative, 8), std::invalid_argument);
  const std::vector<std::int64_t> too_big{0, 8};
  EXPECT_THROW(EmpiricalCdfInt(too_big, 8), std::invalid_argument);
  const std::vector<std::int64_t> fine{0, 7};
  EXPECT_THROW(EmpiricalCdfInt(fine, 0), std::invalid_argument);
  EXPECT_NO_THROW(EmpiricalCdfInt(fine, 8));
}

TEST(EmpiricalCdfInt, CountingSortConstructorEmptyData) {
  const EmpiricalCdfInt cdf(std::vector<std::int64_t>{}, 16);
  EXPECT_EQ(cdf.size(), 0u);
  EXPECT_EQ(cdf.quantile(0.5, 99), 99);
}

TEST(ChiSquare, UniformDataScoresLow) {
  Xoshiro256 rng(3);
  std::vector<std::size_t> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[rng.next_below(10)];
  const std::vector<double> probs(10, 0.1);
  // 9 degrees of freedom: 99.9th percentile is ~27.9.
  EXPECT_LT(chi_square(counts, probs), 27.9);
}

TEST(ChiSquare, SkewedDataScoresHigh) {
  std::vector<std::size_t> counts{1000, 10, 10, 10};
  const std::vector<double> probs(4, 0.25);
  EXPECT_GT(chi_square(counts, probs), 100.0);
}

TEST(ChiSquare, RejectsBadInput) {
  const std::vector<std::size_t> counts{1, 2};
  const std::vector<double> probs{1.0};
  EXPECT_THROW(chi_square(counts, probs), std::invalid_argument);
}

}  // namespace
}  // namespace lcaknap::util
