#include "util/iterated_log.h"

#include <gtest/gtest.h>

namespace lcaknap::util {
namespace {

TEST(LogStar, KnownValues) {
  EXPECT_EQ(log_star(0.5), 0);
  EXPECT_EQ(log_star(1.0), 0);
  EXPECT_EQ(log_star(2.0), 1);
  EXPECT_EQ(log_star(4.0), 2);
  EXPECT_EQ(log_star(16.0), 3);
  EXPECT_EQ(log_star(65536.0), 4);
  // 2^65536 overflows double, but anything up to ~1e308 is still <= 5.
  EXPECT_EQ(log_star(1e308), 5);
}

TEST(LogStar, MonotoneNondecreasing) {
  int previous = 0;
  for (double n = 1.0; n < 1e12; n *= 3.0) {
    const int now = log_star(n);
    EXPECT_GE(now, previous);
    previous = now;
  }
}

TEST(Log2Ceil, KnownValues) {
  EXPECT_EQ(log2_ceil(1), 0);
  EXPECT_EQ(log2_ceil(2), 1);
  EXPECT_EQ(log2_ceil(3), 2);
  EXPECT_EQ(log2_ceil(4), 2);
  EXPECT_EQ(log2_ceil(5), 3);
  EXPECT_EQ(log2_ceil(1ULL << 40), 40);
  EXPECT_EQ(log2_ceil((1ULL << 40) + 1), 41);
}

}  // namespace
}  // namespace lcaknap::util
