// Statistical quality checks on the randomness layer: the consistency
// machinery leans on the PRF behaving like independent uniform bits per
// (stream, index) address, and on the sampling generator's uniformity.

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace lcaknap::util {
namespace {

TEST(RngStatistics, PrfWordsAreUniformPerStream) {
  const Prf prf(0x57A7);
  for (const std::uint64_t stream : {0ULL, 1ULL, 0x6EEDULL}) {
    std::vector<std::size_t> buckets(16, 0);
    constexpr int kN = 64'000;
    for (int i = 0; i < kN; ++i) {
      ++buckets[prf.word(stream, static_cast<std::uint64_t>(i)) & 15];
    }
    const std::vector<double> probs(16, 1.0 / 16.0);
    // df = 15: 99.9th percentile ~ 37.7.
    EXPECT_LT(chi_square(buckets, probs), 37.7) << "stream " << stream;
  }
}

TEST(RngStatistics, PrfStreamsAreUncorrelated) {
  // Matching addresses across two streams must not co-vary: count the joint
  // distribution of (bit from stream a, bit from stream b).
  const Prf prf(0x57A8);
  std::vector<std::size_t> joint(4, 0);
  constexpr int kN = 64'000;
  for (int i = 0; i < kN; ++i) {
    const auto a = prf.word(1, static_cast<std::uint64_t>(i)) & 1;
    const auto b = prf.word(2, static_cast<std::uint64_t>(i)) & 1;
    ++joint[(a << 1) | b];
  }
  const std::vector<double> probs(4, 0.25);
  EXPECT_LT(chi_square(joint, probs), 16.3);  // df = 3, 99.9th pct
}

TEST(RngStatistics, PrfAvalancheOnAdjacentAddresses) {
  // Adjacent indices must produce words differing in ~32 of 64 bits.
  const Prf prf(0x57A9);
  RunningStats flipped;
  for (std::uint64_t i = 0; i < 4'096; ++i) {
    const auto x = prf.word(0, i) ^ prf.word(0, i + 1);
    flipped.add(static_cast<double>(__builtin_popcountll(x)));
  }
  EXPECT_NEAR(flipped.mean(), 32.0, 1.0);
  EXPECT_GT(flipped.stddev(), 2.0);  // binomial(64, 1/2) has sd = 4
}

TEST(RngStatistics, XoshiroDoublesHaveUniformMoments) {
  Xoshiro256 rng(0x57AA);
  RunningStats stats;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) stats.add(rng.next_double());
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.002);
}

TEST(RngStatistics, XoshiroLowBitsPassChiSquare) {
  // Lemire's bounded sampling leans on low-bit quality too.
  Xoshiro256 rng(0x57AB);
  std::vector<std::size_t> buckets(8, 0);
  constexpr int kN = 80'000;
  for (int i = 0; i < kN; ++i) ++buckets[rng() & 7];
  const std::vector<double> probs(8, 0.125);
  EXPECT_LT(chi_square(buckets, probs), 24.3);  // df = 7, 99.9th pct
}

TEST(RngStatistics, SeedsProduceDecorrelatedTapes) {
  // Replica tapes are seeded sequentially; nearby seeds must not correlate.
  Xoshiro256 a(100), b(101);
  std::vector<std::size_t> joint(4, 0);
  for (int i = 0; i < 64'000; ++i) {
    ++joint[((a() & 1) << 1) | (b() & 1)];
  }
  const std::vector<double> probs(4, 0.25);
  EXPECT_LT(chi_square(joint, probs), 16.3);
}

}  // namespace
}  // namespace lcaknap::util
