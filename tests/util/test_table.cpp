#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace lcaknap::util {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5);
  t.row().cell("beta").cell(static_cast<long long>(42));
  std::ostringstream oss;
  t.print(oss, "demo");
  const std::string out = oss.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5000"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

}  // namespace
}  // namespace lcaknap::util
