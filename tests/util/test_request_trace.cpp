#include "util/request_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

/// \file test_request_trace.cpp
/// The recorded-request-log vocabulary: exact round-trips, strict typed
/// parse errors with 1-based line numbers, and the file wrappers.

namespace lcaknap::util {
namespace {

std::vector<TraceRecord> sample_records() {
  return {
      TraceRecord{0, 17, "default"},
      TraceRecord{5, 3, "tenant-a"},
      TraceRecord{5, 3, "tenant-a"},  // duplicates and ties are legal
      TraceRecord{120, 999'999, "A.b_c-9"},
  };
}

TEST(RequestTrace, StreamRoundTripIsExact) {
  const auto records = sample_records();
  std::stringstream ss;
  write_trace(records, ss);
  EXPECT_EQ(read_trace(ss), records);
}

TEST(RequestTrace, EmptyTraceRoundTrips) {
  std::stringstream ss;
  write_trace({}, ss);
  EXPECT_TRUE(read_trace(ss).empty());
}

TEST(RequestTrace, FileRoundTripIsExact) {
  const auto path =
      (std::filesystem::temp_directory_path() / "lcaknap_trace_rt.trace")
          .string();
  const auto records = sample_records();
  save_trace_file(records, path);
  EXPECT_EQ(load_trace_file(path), records);
  std::remove(path.c_str());
}

TEST(RequestTrace, MissingHeaderIsLineOne) {
  std::stringstream ss("");
  try {
    (void)read_trace(ss);
    FAIL() << "want TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line(), 1u);
  }
}

TEST(RequestTrace, BadMagicRejected) {
  std::stringstream ss("not-a-trace 1\n");
  EXPECT_THROW((void)read_trace(ss), TraceParseError);
}

TEST(RequestTrace, UnsupportedVersionRejected) {
  std::stringstream ss("lcaknap-trace 2\n");
  EXPECT_THROW((void)read_trace(ss), TraceParseError);
}

TEST(RequestTrace, MalformedRecordCarriesLineNumber) {
  std::stringstream ss("lcaknap-trace 1\n0 1 default\nnot numbers here?\n");
  try {
    (void)read_trace(ss);
    FAIL() << "want TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(RequestTrace, TrailingFieldRejected) {
  std::stringstream ss("lcaknap-trace 1\n0 1 default extra\n");
  EXPECT_THROW((void)read_trace(ss), TraceParseError);
}

TEST(RequestTrace, TenantAlphabetEnforced) {
  std::stringstream ss("lcaknap-trace 1\n0 1 bad/tenant\n");
  EXPECT_THROW((void)read_trace(ss), TraceParseError);
}

TEST(RequestTrace, BackwardsTimestampRejected) {
  std::stringstream ss("lcaknap-trace 1\n10 1 default\n9 2 default\n");
  try {
    (void)read_trace(ss);
    FAIL() << "want TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(RequestTrace, MissingFileThrowsRuntimeError) {
  EXPECT_THROW((void)load_trace_file("/nonexistent/lcaknap.trace"),
               std::runtime_error);
}

}  // namespace
}  // namespace lcaknap::util
