#include "cert/verifier.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "cert/cert_log.h"
#include "cert/certificate.h"
#include "metrics/metrics.h"
#include "serve/engine.h"
#include "cert_test_env.h"

/// LogVerifier semantics: clean round trips (writer -> log -> verifier, and
/// the full ServeEngine certify path), every semantic tamper mapped to its
/// typed reason, sequence auditing, fingerprint pinning, and the sampled
/// audit's structural/semantic split.

namespace lcaknap::cert {
namespace {

class CertVerify : public CertTestEnv {};

/// Writes header + the given (already seq-stamped) records as one segment
/// buffer, bypassing CertLog — for tampering with writer-side invariants.
std::string raw_segment(const store::SnapshotFingerprint& fp,
                        const std::vector<CertRecord>& records) {
  std::string bytes;
  encode_header(bytes, fp);
  for (const auto& record : records) encode_record(bytes, record);
  return bytes;
}

TEST_F(CertVerify, AcceptsEveryAnswerTheWarmStateProduces) {
  {
    CertLog log({.directory = dir()}, fingerprint());
    for (std::size_t i = 0; i < 600; ++i) (void)log.append(record_for(i));
  }
  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  const auto report = verifier.verify_path(dir());
  EXPECT_TRUE(report.clean()) << (report.examples.empty()
                                      ? "no examples"
                                      : report.examples.front());
  EXPECT_EQ(report.records, 600u);
  EXPECT_EQ(report.records_checked, 600u);
  EXPECT_EQ(report.accepted, 600u);
  EXPECT_EQ(registry.counter_value("cert_records_verified_total"), 600u);
}

TEST_F(CertVerify, ServeEngineCertifyPathRoundTripsCleanly) {
  metrics::Registry registry;
  serve::EngineConfig config;
  config.workers = 3;
  config.queue_capacity = 4'096;
  config.batcher.max_batch_size = 16;
  config.cache.capacity = 256;
  config.cache.shards = 2;
  config.warmup_tape_seed = kTapeSeed;
  config.certify = true;
  config.cert_dir = dir();
  serve::ServeEngine engine(lca(), config, registry);

  std::vector<std::future<serve::Response>> futures;
  for (std::size_t q = 0; q < 2'000; ++q) {
    futures.push_back(engine.submit(q % 300));  // repeats: cache-hit certifies
  }
  for (auto& future : futures) {
    ASSERT_EQ(future.get().outcome, serve::Outcome::kOk);
  }
  engine.drain();
  const auto stats = engine.stats();
  // Certification is per evaluated *batch*, so fewer records than requests —
  // but never zero skips allowed: every kOk answer was witness-backed here.
  EXPECT_GT(stats.cert_records, 0u);
  EXPECT_EQ(stats.cert_skipped, 0u);

  const LogVerifier verifier(fingerprint(), engine.run(), {}, registry);
  const auto report = verifier.verify_path(dir());
  EXPECT_TRUE(report.clean()) << (report.examples.empty()
                                      ? "no examples"
                                      : report.examples.front());
  EXPECT_EQ(report.records, stats.cert_records);
}

TEST_F(CertVerify, FlippedAnswerBitIsAnAnswerMismatch) {
  CertRecord record = record_for(11);
  record.seq = 0;
  // Flip the answer *and* the tag coherently, so only re-derivation from the
  // warm state can catch it.
  record.answer = !record.answer;
  const bool large = record.case_tag == CaseTag::kLargeHit ||
                     record.case_tag == CaseTag::kLargeMiss;
  record.case_tag = large ? (record.answer ? CaseTag::kLargeHit
                                           : CaseTag::kLargeMiss)
                          : (record.answer ? CaseTag::kSmallAccept
                                           : CaseTag::kSmallReject);
  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  EXPECT_EQ(verifier.check_record(record), RejectReason::kAnswerMismatch);
}

TEST_F(CertVerify, IncoherentTagAnswerPairIsACaseMismatch) {
  CertRecord record = record_for(11);
  record.answer = !record.answer;  // tag left alone: pair now incoherent
  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  EXPECT_EQ(verifier.check_record(record), RejectReason::kCaseMismatch);
}

TEST_F(CertVerify, WrongBranchTagIsACaseMismatch) {
  CertRecord record = record_for(11);
  const bool was_large = record.case_tag == CaseTag::kLargeHit ||
                         record.case_tag == CaseTag::kLargeMiss;
  // Claim the other branch, keeping the tag/answer pair coherent.
  record.case_tag = was_large
                        ? (record.answer ? CaseTag::kSmallAccept
                                         : CaseTag::kSmallReject)
                        : (record.answer ? CaseTag::kLargeHit
                                         : CaseTag::kLargeMiss);
  record.threshold_idx = was_large ? active_threshold_index(run()) : -1;
  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  EXPECT_EQ(verifier.check_record(record), RejectReason::kCaseMismatch);
}

TEST_F(CertVerify, StaleThresholdIndexIsAThresholdMismatch) {
  // Find a small-branch record (the threshold echo only exists there).
  CertRecord record;
  bool found = false;
  for (std::size_t i = 0; i < 600 && !found; ++i) {
    record = record_for(i);
    found = record.case_tag == CaseTag::kSmallAccept ||
            record.case_tag == CaseTag::kSmallReject;
  }
  ASSERT_TRUE(found) << "test instance produced no small-branch answers";
  record.threshold_idx += 1;  // a different EPS entry than the active one
  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  EXPECT_EQ(verifier.check_record(record), RejectReason::kThresholdMismatch);
}

TEST_F(CertVerify, OutOfRangeWitnessIsAWitnessInvariant) {
  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  CertRecord record = record_for(11);
  record.item = fingerprint().n;  // index out of range
  EXPECT_EQ(verifier.check_record(record), RejectReason::kWitnessInvariant);

  record = record_for(11);
  record.profit = fingerprint().total_profit + 1;
  EXPECT_EQ(verifier.check_record(record), RejectReason::kWitnessInvariant);

  record = record_for(11);
  record.weight = -1;
  EXPECT_EQ(verifier.check_record(record), RejectReason::kWitnessInvariant);
}

TEST_F(CertVerify, NonMonotoneSequenceIsRejected) {
  std::vector<CertRecord> records = {record_for(1), record_for(2),
                                     record_for(3)};
  records[0].seq = 0;
  records[1].seq = 7;
  records[2].seq = 7;  // replayed / duplicated query id
  const auto bytes = raw_segment(fingerprint(), records);

  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  VerifyReport report;
  std::int64_t last_seq = -1;
  verifier.verify_segment(bytes, report, last_seq);
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(
      report.by_reason[static_cast<std::size_t>(RejectReason::kSequence)], 1u);
}

TEST_F(CertVerify, ForeignSnapshotFingerprintRejectsTheWholeSegment) {
  // A log written under a different tape seed: same instance, different
  // serving context — the header must pin it out.
  auto foreign = fingerprint();
  foreign.tape_seed = kTapeSeed + 1;
  const auto bytes = raw_segment(foreign, {record_for(1)});

  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  VerifyReport report;
  std::int64_t last_seq = -1;
  verifier.verify_segment(bytes, report, last_seq);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.records, 0u);  // no record of a foreign segment is read
  EXPECT_EQ(report.by_reason[static_cast<std::size_t>(
                RejectReason::kFingerprintMismatch)],
            1u);
}

TEST_F(CertVerify, SampledAuditChecksEveryKthButCrcsEverything) {
  constexpr std::uint64_t kRecords = 100;
  {
    CertLog log({.directory = dir()}, fingerprint());
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      (void)log.append(record_for(i % 600));
    }
  }
  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {.sample_every = 7},
                             registry);
  const auto report = verifier.verify_path(dir());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records, kRecords);
  EXPECT_EQ(report.accepted, kRecords);  // structure: all 100
  EXPECT_EQ(report.records_checked, (kRecords + 6) / 7);  // semantics: 15

  // A structural defect in an *unsampled* record is still caught: sampling
  // never skips the CRC pass.
  const auto segments = CertLog::list_segments(dir());
  ASSERT_EQ(segments.size(), 1u);
  std::string bytes;
  {
    std::ifstream is(segments[0], std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(is)),
                 std::istreambuf_iterator<char>());
  }
  // Record 1 (not a multiple of 7, so semantically unsampled): flip one bit.
  const std::size_t at = kCertHeaderBytes + kCertRecordBytes + 20;
  bytes[at] = static_cast<char>(bytes[at] ^ 1);
  VerifyReport tampered;
  std::int64_t last_seq = -1;
  verifier.verify_segment(bytes, tampered, last_seq);
  EXPECT_FALSE(tampered.clean());
  EXPECT_EQ(
      tampered.by_reason[static_cast<std::size_t>(RejectReason::kCorrupt)],
      1u);
}

TEST_F(CertVerify, RejectionsFeedTheLabelledRejectionCounters) {
  auto foreign = fingerprint();
  foreign.tape_seed = kTapeSeed + 1;
  const auto bytes = raw_segment(foreign, {});

  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  VerifyReport report;
  std::int64_t last_seq = -1;
  verifier.verify_segment(bytes, report, last_seq);
  EXPECT_EQ(registry.counter_value(
                "cert_records_rejected_total",
                {{"reason", "fingerprint-mismatch"}}),
            1u);
}

}  // namespace
}  // namespace lcaknap::cert
