#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>

#include "cert/cert_log.h"
#include "cert/certificate.h"
#include "cert/verifier.h"
#include "metrics/metrics.h"
#include "cert_test_env.h"

/// Corruption fuzz over the certificate format, in the same exhaustive style
/// as the snapshot fuzz (tests/store/test_snapshot_fuzz.cpp): every
/// single-bit flip of a record, of a header, and of a whole written log
/// segment must produce a *typed* rejection — never a verified record, never
/// a crash, never an untyped exception.

namespace lcaknap::cert {
namespace {

class CertFuzz : public CertTestEnv {};

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

TEST_F(CertFuzz, EveryRecordBitFlipIsRejected) {
  std::string good;
  CertRecord record = record_for(17);
  record.seq = 9;
  encode_record(good, record);
  ASSERT_NO_THROW((void)decode_record(good));

  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      try {
        (void)decode_record(bad);
        FAIL() << "record bit flip at byte " << byte << " bit " << bit
               << " decoded successfully";
      } catch (const CertCorrupt&) {
        // expected: the record CRC covers every payload byte
      } catch (const std::exception& e) {
        FAIL() << "record bit flip at byte " << byte << " bit " << bit
               << " threw an unexpected type: " << e.what();
      }
    }
  }
}

TEST_F(CertFuzz, EveryHeaderBitFlipIsRejected) {
  std::string good;
  encode_header(good, fingerprint());
  ASSERT_NO_THROW((void)decode_header(good));

  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      try {
        (void)decode_header(bad);
        FAIL() << "header bit flip at byte " << byte << " bit " << bit
               << " decoded successfully";
      } catch (const CertCorrupt&) {
        // expected: the header CRC covers magic, version, size, fingerprint
      } catch (const std::exception& e) {
        FAIL() << "header bit flip at byte " << byte << " bit " << bit
               << " threw an unexpected type: " << e.what();
      }
    }
  }
}

/// The acceptance-bar fuzz: every single-bit flip anywhere in a *written*
/// log segment must make the offline verifier report a typed rejection.
TEST_F(CertFuzz, EveryLogSegmentBitFlipIsRejectedTyped) {
  constexpr std::size_t kRecords = 6;
  {
    CertLog log({.directory = dir()}, fingerprint());
    for (std::size_t i = 0; i < kRecords; ++i) (void)log.append(record_for(i));
  }
  const auto segments = CertLog::list_segments(dir());
  ASSERT_EQ(segments.size(), 1u);
  const std::string good = read_file(segments[0]);
  ASSERT_EQ(good.size(), kCertHeaderBytes + kRecords * kCertRecordBytes);

  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  {
    VerifyReport report;
    std::int64_t last_seq = -1;
    verifier.verify_segment(good, report, last_seq);
    ASSERT_TRUE(report.clean());
    ASSERT_EQ(report.accepted, kRecords);
  }

  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      VerifyReport report;
      std::int64_t last_seq = -1;
      verifier.verify_segment(bad, report, last_seq);
      ASSERT_FALSE(report.clean())
          << "bit flip at byte " << byte << " bit " << bit
          << " verified clean";
      // The rejection must be typed: every rejection lands in a taxonomy
      // bucket (by_reason sums to the rejection count by construction; this
      // pins that the bucket is a *structural* one for a bit flip).
      const auto structural =
          report.by_reason[static_cast<std::size_t>(RejectReason::kTruncated)] +
          report.by_reason[static_cast<std::size_t>(RejectReason::kCorrupt)] +
          report.by_reason[static_cast<std::size_t>(
              RejectReason::kFingerprintMismatch)] +
          report.by_reason[static_cast<std::size_t>(RejectReason::kSequence)];
      EXPECT_GE(structural, 1u)
          << "bit flip at byte " << byte << " bit " << bit
          << " rejected, but not with a structural reason";
    }
  }
}

TEST_F(CertFuzz, MidRecordTruncationsAreRejected) {
  constexpr std::size_t kRecords = 3;
  {
    CertLog log({.directory = dir()}, fingerprint());
    for (std::size_t i = 0; i < kRecords; ++i) (void)log.append(record_for(i));
  }
  const std::string good = read_file(CertLog::list_segments(dir())[0]);

  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  for (std::size_t length = 0; length < good.size(); ++length) {
    const bool at_record_boundary =
        length >= kCertHeaderBytes &&
        (length - kCertHeaderBytes) % kCertRecordBytes == 0;
    if (at_record_boundary) continue;  // indistinguishable from a short log
    VerifyReport report;
    std::int64_t last_seq = -1;
    verifier.verify_segment(std::string_view(good).substr(0, length), report,
                            last_seq);
    EXPECT_FALSE(report.clean()) << "prefix of length " << length;
    EXPECT_GE(report.by_reason[static_cast<std::size_t>(
                  RejectReason::kTruncated)],
              1u)
        << "prefix of length " << length;
  }
}

}  // namespace
}  // namespace lcaknap::cert
