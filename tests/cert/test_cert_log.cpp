#include "cert/cert_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cert/verifier.h"
#include "metrics/metrics.h"
#include "cert_test_env.h"

/// CertLog writer protocol: header-first segments, atomic seal-by-rename,
/// rotation, log-wide strictly-increasing sequence numbers, inert-on-failure
/// appends — plus the concurrency hammer the TSan CI job runs.

namespace lcaknap::cert {
namespace {

class CertLogTest : public CertTestEnv {};
class CertLogConcurrency : public CertTestEnv {};

TEST_F(CertLogTest, EmptyLogIsOneVerifiableHeaderOnlySegment) {
  {
    const CertLog log({.directory = dir()}, fingerprint());
    // The header is written at open, before any append.
  }
  const auto segments = CertLog::list_segments(dir());
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_TRUE(segments[0].ends_with(".seg")) << segments[0];
  EXPECT_EQ(std::filesystem::file_size(segments[0]), kCertHeaderBytes);

  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  const auto report = verifier.verify_path(dir());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.segments, 1u);
  EXPECT_EQ(report.records, 0u);
}

TEST_F(CertLogTest, AssignsStrictlyIncreasingSequenceNumbers) {
  CertLog log({.directory = dir()}, fingerprint());
  for (std::uint64_t expected = 0; expected < 100; ++expected) {
    EXPECT_EQ(log.append(record_for(expected % 50)), expected);
  }
  EXPECT_EQ(log.records_written(), 100u);
  EXPECT_EQ(log.append_failures(), 0u);
}

TEST_F(CertLogTest, RotatesAtSegmentCapacityAndStaysVerifiable) {
  constexpr std::uint64_t kPerSegment = 4;
  constexpr std::uint64_t kTotal = 10;
  {
    CertLog log({.directory = dir(), .max_records_per_segment = kPerSegment},
                fingerprint());
    for (std::uint64_t i = 0; i < kTotal; ++i) {
      (void)log.append(record_for(i));
    }
    // 10 appends at 4/segment: two sealed rotations + the active segment.
    EXPECT_EQ(log.segments_sealed(), 2u);
  }
  const auto segments = CertLog::list_segments(dir());
  ASSERT_EQ(segments.size(), 3u);
  // Sealed segments sort (and replay) in index order.
  EXPECT_LT(segments[0], segments[1]);
  EXPECT_LT(segments[1], segments[2]);

  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  const auto report = verifier.verify_path(dir());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.segments, 3u);
  EXPECT_EQ(report.records, kTotal);  // seq continuity across rotations
}

TEST_F(CertLogTest, SealIsIdempotentAndAppendsReopen) {
  CertLog log({.directory = dir()}, fingerprint());
  (void)log.append(record_for(1));
  log.seal();
  log.seal();  // idempotent: no second segment, no error
  EXPECT_EQ(log.segments_sealed(), 1u);
  (void)log.append(record_for(2));  // reopens a fresh segment
  log.seal();
  EXPECT_EQ(log.segments_sealed(), 2u);

  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  const auto report = verifier.verify_path(dir());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records, 2u);
}

TEST_F(CertLogTest, SkipIsCountedSeparately) {
  CertLog log({.directory = dir()}, fingerprint());
  (void)log.append(record_for(3));
  log.skip();
  log.skip();
  EXPECT_EQ(log.records_written(), 1u);
  EXPECT_EQ(log.records_skipped(), 2u);
}

TEST_F(CertLogTest, UnusableDirectoryThrowsIoError) {
  const std::string file_not_dir = dir() + "/plain-file";
  std::ofstream(file_not_dir) << "x";
  EXPECT_THROW(CertLog({.directory = file_not_dir}, fingerprint()),
               CertIoError);
}

/// The TSan hammer: engine workers append concurrently while a drainer
/// seals mid-stream.  Every append must land exactly once, the final log
/// must verify clean, and sequence numbers must be unique log-wide.
TEST_F(CertLogConcurrency, ConcurrentAppendersWithMidStreamSeals) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 400;
  // Small segments so rotation and the appender/sealer race both happen.
  CertLog log({.directory = dir(), .max_records_per_segment = 128},
              fingerprint());

  // Precomputed payloads keep the hammer focused on CertLog itself.
  std::vector<CertRecord> protos;
  protos.reserve(600);
  for (std::size_t i = 0; i < 600; ++i) protos.push_back(record_for(i));

  std::atomic<std::size_t> started{0};
  std::vector<std::thread> appenders;
  appenders.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&, t] {
      started.fetch_add(1);
      while (started.load() < kThreads) std::this_thread::yield();
      for (std::size_t k = 0; k < kPerThread; ++k) {
        (void)log.append(protos[(t * kPerThread + k) % protos.size()]);
      }
    });
  }
  std::thread sealer([&] {
    while (started.load() < kThreads) std::this_thread::yield();
    for (int s = 0; s < 5; ++s) {
      log.seal();
      std::this_thread::yield();
    }
  });
  for (auto& thread : appenders) thread.join();
  sealer.join();
  log.seal();

  EXPECT_EQ(log.records_written(), kThreads * kPerThread);
  EXPECT_EQ(log.append_failures(), 0u);

  metrics::Registry registry;
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  const auto report = verifier.verify_path(dir());
  EXPECT_TRUE(report.clean()) << (report.examples.empty()
                                      ? "no examples"
                                      : report.examples.front());
  // The verifier's strictly-increasing sequence check doubles as the
  // exactly-once proof: N unique, ordered records across all segments.
  EXPECT_EQ(report.records, kThreads * kPerThread);
}

}  // namespace
}  // namespace lcaknap::cert
