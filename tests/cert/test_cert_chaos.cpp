#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <limits>

#include "cert/certificate.h"
#include "cert/verifier.h"
#include "fault/chaos.h"
#include "fault/plan.h"
#include "fault/verifying.h"
#include "metrics/metrics.h"
#include "cert_test_env.h"

/// The chaos drill (ISSUE 6 acceptance): `fault::ChaosAccess` corruption is
/// wrong-but-well-formed and always violates a free-metadata invariant —
/// exactly the invariants `fault::VerifyingAccess` checks online and the
/// offline verifier mirrors.  So if a corrupted witness ever leaked into a
/// certificate record, `verify-log` must reject it as kWitnessInvariant, for
/// 100% of the corruptions the online guard would have flagged.

namespace lcaknap::cert {
namespace {

class CertChaos : public CertTestEnv {};

/// Every call corrupted, forever; no fail-stops, no latency.
fault::FaultPlan always_corrupt(std::uint64_t seed) {
  return fault::parse_fault_plan("corrupt:0:corrupt=1", seed);
}

/// Builds the record a (buggy or compromised) writer would emit for a
/// corrupted item: case tag, threshold echo, and answer all *internally
/// consistent* with the corrupted witness, so the invariant mirror is the
/// only check that can catch it — the drill's worst case.
CertRecord record_from_witness(const store::SnapshotFingerprint& fp,
                               const core::LcaKpRun& warm, std::size_t item,
                               const knapsack::Item& witnessed) {
  const double norm_profit = static_cast<double>(witnessed.profit) /
                             static_cast<double>(fp.total_profit);
  const bool large = norm_profit > fp.eps * fp.eps;
  bool answer = false;
  if (large) {
    answer = warm.index_large.contains(item);
  } else {
    const double efficiency =
        witnessed.weight == 0
            ? std::numeric_limits<double>::infinity()
            : norm_profit / (static_cast<double>(witnessed.weight) /
                             static_cast<double>(fp.total_weight));
    const iky::EfficiencyDomain domain(static_cast<int>(fp.domain_bits));
    answer = warm.e_small_grid >= 0 &&
             domain.to_grid(efficiency) >= warm.e_small_grid;
  }
  CertRecord record;
  record.item = item;
  record.profit = witnessed.profit;
  record.weight = witnessed.weight;
  record.case_tag = large
                        ? (answer ? CaseTag::kLargeHit : CaseTag::kLargeMiss)
                        : (answer ? CaseTag::kSmallAccept
                                  : CaseTag::kSmallReject);
  record.answer = answer;
  record.threshold_idx = large ? -1 : active_threshold_index(warm);
  return record;
}

TEST_F(CertChaos, VerifierCatchesEveryCorruptionTheOnlineGuardFlags) {
  constexpr std::size_t kQueries = 400;
  constexpr std::uint64_t kChaosSeed = 0xC405;

  // Pass 1 — online: the scripted corruption behind VerifyingAccess.  Every
  // flagged call throws CorruptedAnswer before the item reaches anyone.
  std::uint64_t online_flagged = 0;
  {
    metrics::Registry registry;
    const fault::ChaosAccess chaos(access(), always_corrupt(kChaosSeed),
                                   util::system_clock(), /*armed=*/true,
                                   registry);
    const fault::VerifyingAccess guard(chaos, registry);
    for (std::size_t i = 0; i < kQueries; ++i) {
      try {
        (void)guard.query(i % 600);
      } catch (const fault::CorruptedAnswer&) {
        ++online_flagged;
      }
    }
    EXPECT_EQ(online_flagged, guard.corruptions_detected());
  }
  ASSERT_GT(online_flagged, 0u);

  // Pass 2 — offline: an identical chaos replay (same plan seed, same call
  // order) with NO online guard, as if a compromised serving path certified
  // the corrupted witnesses.  The offline verifier must reject every record
  // the online guard would have flagged, all as kWitnessInvariant.
  metrics::Registry registry;
  const fault::ChaosAccess chaos(access(), always_corrupt(kChaosSeed),
                                 util::system_clock(), /*armed=*/true,
                                 registry);
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  std::uint64_t offline_rejected = 0;
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto witnessed = chaos.query(i % 600);
    const auto record =
        record_from_witness(fingerprint(), run(), i % 600, witnessed);
    const auto reason = verifier.check_record(record);
    if (reason.has_value()) {
      EXPECT_EQ(*reason, RejectReason::kWitnessInvariant)
          << "call " << i << " rejected for the wrong reason";
      ++offline_rejected;
    }
  }

  // 100%: chaos corruption is undetectable-free by construction, so the
  // offline mirror catches exactly what the online guard catches.
  EXPECT_EQ(offline_rejected, online_flagged);
  EXPECT_EQ(offline_rejected, kQueries);  // corrupt_rate=1: every call
}

TEST_F(CertChaos, UncorruptedWitnessesStillVerify) {
  // Disarmed chaos: pass-through answers must certify cleanly, proving the
  // drill's rejections come from the corruption, not the harness.
  metrics::Registry registry;
  const fault::ChaosAccess chaos(access(), always_corrupt(1), util::system_clock(),
                                 /*armed=*/false, registry);
  const LogVerifier verifier(fingerprint(), run(), {}, registry);
  for (std::size_t i = 0; i < 100; ++i) {
    const auto witnessed = chaos.query(i);
    const auto record = record_from_witness(fingerprint(), run(), i, witnessed);
    EXPECT_EQ(verifier.check_record(record), std::nullopt) << "item " << i;
  }
}

}  // namespace
}  // namespace lcaknap::cert
