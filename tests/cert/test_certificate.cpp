#include "cert/certificate.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "store/snapshot.h"

/// Record/header codec unit tests: canonical fixed-width encoding,
/// lossless round trips for every case tag, and typed rejection of every
/// structural defect (bad tag, bad answer byte, nonzero reserved bytes,
/// wrong size) even when the CRC has been recomputed to match.

namespace lcaknap::cert {
namespace {

CertRecord sample_record() {
  CertRecord record;
  record.seq = 42;
  record.item = 137;
  record.profit = 9'001;
  record.weight = 77;
  record.case_tag = CaseTag::kSmallAccept;
  record.answer = true;
  record.threshold_idx = 3;
  return record;
}

store::SnapshotFingerprint sample_fingerprint() {
  store::SnapshotFingerprint fp;
  fp.n = 600;
  fp.capacity = 10'000;
  fp.total_profit = 123'456;
  fp.total_weight = 98'765;
  fp.eps = 0.3;
  fp.seed = 0xFEED;
  fp.domain_bits = 20;
  fp.branching = 4;
  fp.tau = 0.01;
  fp.rho = 0.02;
  fp.beta = 0.5;
  fp.large_samples = 500;
  fp.quantile_samples = 1'024;
  fp.tape_seed = 2;
  fp.warmup_shards = 64;
  return fp;
}

/// Re-seals a tampered record encoding so only the *structural* validation
/// (not the CRC) can reject it.
void reseal(std::string& bytes) {
  ASSERT_EQ(bytes.size(), kCertRecordBytes);
  const auto crc = store::crc64(
      std::string_view(bytes).substr(0, kCertRecordBytes - 8));
  for (int b = 0; b < 8; ++b) {
    bytes[kCertRecordBytes - 8 + static_cast<std::size_t>(b)] =
        static_cast<char>((crc >> (8 * b)) & 0xFF);
  }
}

TEST(CertRecord, EncodesFixedWidth) {
  std::string bytes;
  encode_record(bytes, sample_record());
  EXPECT_EQ(bytes.size(), kCertRecordBytes);
  std::string header;
  encode_header(header, sample_fingerprint());
  EXPECT_EQ(header.size(), kCertHeaderBytes);
}

TEST(CertRecord, RoundTripsEveryCaseTag) {
  for (int tag = 0; tag < kCaseTagCount; ++tag) {
    CertRecord record = sample_record();
    record.case_tag = static_cast<CaseTag>(tag);
    record.answer = record.case_tag == CaseTag::kLargeHit ||
                    record.case_tag == CaseTag::kSmallAccept;
    record.threshold_idx =
        (record.case_tag == CaseTag::kLargeHit ||
         record.case_tag == CaseTag::kLargeMiss)
            ? -1
            : 5;
    std::string bytes;
    encode_record(bytes, record);
    EXPECT_EQ(decode_record(bytes), record) << case_tag_name(record.case_tag);
  }
}

TEST(CertRecord, EncodingIsCanonical) {
  // Equal records must encode to equal bytes — the property that lets logs
  // be compared or content-addressed as raw bytes.
  std::string a;
  std::string b;
  encode_record(a, sample_record());
  encode_record(b, sample_record());
  EXPECT_EQ(a, b);

  // encode appends (callers batch records into one buffer).
  std::string both;
  encode_record(both, sample_record());
  encode_record(both, sample_record());
  EXPECT_EQ(both.size(), 2 * kCertRecordBytes);
  EXPECT_EQ(both.substr(0, kCertRecordBytes), a);
}

TEST(CertRecord, HeaderRoundTripsFingerprint) {
  const auto fp = sample_fingerprint();
  std::string bytes;
  encode_header(bytes, fp);
  const auto decoded = decode_header(bytes);
  EXPECT_TRUE(decoded.equals(fp));
}

TEST(CertRecord, RejectsUnknownCaseTagEvenWithValidCrc) {
  std::string bytes;
  encode_record(bytes, sample_record());
  bytes[32] = static_cast<char>(kCaseTagCount);  // case byte
  reseal(bytes);
  EXPECT_THROW((void)decode_record(bytes), CertCorrupt);
}

TEST(CertRecord, RejectsNonBooleanAnswerByteEvenWithValidCrc) {
  std::string bytes;
  encode_record(bytes, sample_record());
  bytes[33] = 2;  // answer byte: only 0/1 are canonical
  reseal(bytes);
  EXPECT_THROW((void)decode_record(bytes), CertCorrupt);
}

TEST(CertRecord, RejectsNonzeroReservedBytesEvenWithValidCrc) {
  for (const std::size_t reserved : {34u, 35u}) {
    std::string bytes;
    encode_record(bytes, sample_record());
    bytes[reserved] = 1;
    reseal(bytes);
    EXPECT_THROW((void)decode_record(bytes), CertCorrupt)
        << "reserved byte " << reserved;
  }
}

TEST(CertRecord, RejectsWrongSizes) {
  std::string bytes;
  encode_record(bytes, sample_record());
  EXPECT_THROW((void)decode_record(std::string_view(bytes).substr(0, 10)),
               CertTruncated);
  EXPECT_THROW((void)decode_record(bytes + std::string(1, '\0')), CertCorrupt);

  std::string header;
  encode_header(header, sample_fingerprint());
  EXPECT_THROW((void)decode_header(std::string_view(header).substr(0, 20)),
               CertTruncated);
  // Extra bytes past a valid header are record territory, not a header
  // defect — decode_header reads exactly kCertHeaderBytes.
  EXPECT_NO_THROW((void)decode_header(header + std::string(1, '\0')));
}

TEST(CertRecord, CaseOfMatchesWitnessSemantics) {
  using Witness = core::LcaKp::AnswerWitness;
  EXPECT_EQ(case_of(Witness{10, 5, true, true}), CaseTag::kLargeHit);
  EXPECT_EQ(case_of(Witness{10, 5, true, false}), CaseTag::kLargeMiss);
  EXPECT_EQ(case_of(Witness{10, 5, false, true}), CaseTag::kSmallAccept);
  EXPECT_EQ(case_of(Witness{10, 5, false, false}), CaseTag::kSmallReject);
}

}  // namespace
}  // namespace lcaknap::cert
