#ifndef LCAKNAP_TESTS_CERT_CERT_TEST_ENV_H
#define LCAKNAP_TESTS_CERT_CERT_TEST_ENV_H

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "cert/certificate.h"
#include "core/lca_kp.h"
#include "knapsack/generators.h"
#include "oracle/access.h"
#include "store/snapshot.h"

/// Shared substrate for the certificate tests: one small instance + warm
/// LCA state per suite (the warm-up is the expensive part), plus a per-test
/// scratch directory for log segments.

namespace lcaknap::cert {

/// The serving context every cert test certifies against.  Mirrors the
/// snapshot-fuzz sizing: small enough for exhaustive bit-flip loops, big
/// enough that both membership branches and cache reuse occur.
class CertTestEnv : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kTapeSeed = 2;

  static void SetUpTestSuite() {
    instance_ = new knapsack::Instance(
        knapsack::make_family(knapsack::Family::kUncorrelated, 600, 4));
    access_ = new oracle::MaterializedAccess(*instance_);
    core::LcaKpConfig config;
    config.eps = 0.3;
    config.seed = 0xFEED;
    config.large_samples = 500;
    config.quantile_samples = 1'024;
    lca_ = new core::LcaKp(*access_, config);
    run_ = new core::LcaKpRun(lca_->run_warmup(kTapeSeed));
    fingerprint_ = new store::SnapshotFingerprint(
        store::fingerprint_of(*lca_, kTapeSeed));
  }
  static void TearDownTestSuite() {
    delete fingerprint_;
    delete run_;
    delete lca_;
    delete access_;
    delete instance_;
    fingerprint_ = nullptr;
    run_ = nullptr;
    lca_ = nullptr;
    access_ = nullptr;
    instance_ = nullptr;
  }

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lcaknap_cert_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A fully-valid record for item `i` (seq left 0 — the writer assigns it),
  /// built the same way the engine's certify path builds one.
  static CertRecord record_for(std::size_t i) {
    core::LcaKp::AnswerWitness witness;
    (void)lca_->answer_with_witness(*run_, i, witness);
    CertRecord record;
    record.item = i;
    record.profit = witness.profit;
    record.weight = witness.weight;
    record.case_tag = case_of(witness);
    record.answer = witness.answer;
    record.threshold_idx = witness.large ? -1 : active_threshold_index(*run_);
    return record;
  }

  static const core::LcaKp& lca() { return *lca_; }
  static const core::LcaKpRun& run() { return *run_; }
  static const store::SnapshotFingerprint& fingerprint() { return *fingerprint_; }
  static const oracle::MaterializedAccess& access() { return *access_; }
  [[nodiscard]] std::string dir() const { return dir_.string(); }

 private:
  inline static const knapsack::Instance* instance_ = nullptr;
  inline static const oracle::MaterializedAccess* access_ = nullptr;
  inline static const core::LcaKp* lca_ = nullptr;
  inline static const core::LcaKpRun* run_ = nullptr;
  inline static const store::SnapshotFingerprint* fingerprint_ = nullptr;
  std::filesystem::path dir_;
};

}  // namespace lcaknap::cert

#endif  // LCAKNAP_TESTS_CERT_CERT_TEST_ENV_H
