#include "lowerbound/maximal_hard.h"

#include <cmath>
#include <stdexcept>

namespace lcaknap::lowerbound {

WeightOracle::WeightOracle(std::size_t n, std::size_t i, std::size_t j,
                           int w_j_quarters)
    : n_(n), i_(i), j_(j), w_j_quarters_(w_j_quarters) {
  if (n < 2 || i >= n || j >= n || i == j) {
    throw std::invalid_argument("WeightOracle: bad planted indices");
  }
  if (w_j_quarters != 1 && w_j_quarters != 3) {
    throw std::invalid_argument("WeightOracle: w_j must be 1/4 or 3/4");
  }
}

int WeightOracle::query(std::size_t k) const {
  if (k >= n_) throw std::out_of_range("WeightOracle::query");
  ++queries_;
  if (k == i_) return 3;
  if (k == j_) return w_j_quarters_;
  return 0;
}

knapsack::Instance make_maximal_instance(std::size_t n, std::size_t i,
                                         std::size_t j, bool j_is_light) {
  std::vector<knapsack::Item> items(n, knapsack::Item{1, 0});
  items.at(i).weight = 3;
  items.at(j).weight = j_is_light ? 1 : 3;
  return {std::move(items), /*capacity=*/4};
}

namespace {

/// Core of both scan strategies; `order_prf` decides both what the scan
/// looks at and how ties between the two heavy items are broken (a random
/// ranking, the standard LCA random-order technique — consistent across runs
/// exactly when the randomness is the shared seed).
bool scan_answer(const WeightOracle& oracle, std::size_t k, std::uint64_t budget,
                 const util::Prf& order_prf) {
  const int wk = oracle.query(k);
  if (wk != 3) return true;  // weight 0 or 1/4: always in the maximal solution
  // Weight 3/4: look for the other special item.
  const std::size_t n = oracle.size();
  for (std::uint64_t step = 0; step < budget; ++step) {
    const auto probe =
        static_cast<std::size_t>(order_prf.word(/*stream=*/0, step) % n);
    if (probe == k) continue;
    const int w = oracle.query(probe);
    if (w == 1) return true;  // the unique maximal solution holds everything
    if (w == 3) {
      // Random-ranking tie-break: keep the item ranked first.
      return order_prf.word(/*stream=*/1, k) < order_prf.word(/*stream=*/1, probe);
    }
  }
  // Lemma 3.5: without information about the other special item, "yes" is
  // forced (the all-items case has probability 1/3 and errs otherwise).
  return true;
}

}  // namespace

bool SharedScanStrategy::answer(const WeightOracle& oracle, std::size_t k,
                                std::uint64_t budget, const util::Prf& shared,
                                util::Xoshiro256& /*rng*/) const {
  // The scan order comes from the shared seed r, so the two runs of a round
  // inspect the same pseudorandom item sequence.
  return scan_answer(oracle, k, budget, shared.subkey(0xACCE55));
}

bool FreshScanStrategy::answer(const WeightOracle& oracle, std::size_t k,
                               std::uint64_t budget, const util::Prf& /*shared*/,
                               util::Xoshiro256& rng) const {
  // Fresh randomness: every run scans its own sequence.
  return scan_answer(oracle, k, budget, util::Prf(rng()));
}

MaximalGameReport play_maximal_game(std::size_t n, std::uint64_t budget,
                                    std::size_t trials,
                                    const MaximalStrategy& strategy,
                                    std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("play_maximal_game: n must be >= 2");
  if (trials == 0) throw std::invalid_argument("play_maximal_game: trials >= 1");
  MaximalGameReport report;
  report.n = n;
  report.budget = budget;
  report.trials = trials;

  util::Xoshiro256 rng(seed);
  std::size_t successes = 0;
  std::uint64_t total_queries = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const auto i = static_cast<std::size_t>(rng.next_below(n));
    std::size_t j = static_cast<std::size_t>(rng.next_below(n - 1));
    if (j >= i) ++j;
    const bool light = rng.next_double() < 0.5;
    const WeightOracle oracle(n, i, j, light ? 1 : 3);
    // Fresh seed r per round (the LCA definition fixes r per solution, and
    // each round is a new instance/solution pair).
    const util::Prf shared(util::mix64(seed ^ (trial * 0x9E3779B97F4A7C15ULL)));

    const bool answer_i = strategy.answer(oracle, i, budget, shared, rng);
    const bool answer_j = strategy.answer(oracle, j, budget, shared, rng);

    // Judge against the maximal solutions of the planted instance.
    const bool consistent = light ? (answer_i && answer_j)
                                  : (answer_i != answer_j);
    if (consistent) ++successes;
    total_queries += oracle.query_count();
  }
  report.success_rate =
      static_cast<double>(successes) / static_cast<double>(trials);
  report.mean_queries_per_round =
      static_cast<double>(total_queries) / static_cast<double>(trials);
  const double coverage =
      1.0 - std::pow(1.0 - 1.0 / static_cast<double>(n),
                     static_cast<double>(budget));
  report.predicted_success = 0.5 + coverage / 2.0;
  return report;
}

}  // namespace lcaknap::lowerbound
