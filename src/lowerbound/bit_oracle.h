#ifndef LCAKNAP_LOWERBOUND_BIT_ORACLE_H
#define LCAKNAP_LOWERBOUND_BIT_ORACLE_H

#include <cstdint>
#include <vector>

/// \file bit_oracle.h
/// Query access to a bit string x in {0,1}^n, with counting — the substrate
/// of the randomized query-complexity arguments in Section 3.  Each call to
/// `query` is one unit of cost; the reductions of Theorems 3.2/3.3 translate
/// one Knapsack-instance query into at most one bit query, so these counters
/// are exactly the quantity the lower bounds speak about.

namespace lcaknap::lowerbound {

class BitOracle {
 public:
  explicit BitOracle(std::vector<std::uint8_t> bits) : bits_(std::move(bits)) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }

  [[nodiscard]] bool query(std::size_t i) const {
    ++queries_;
    return bits_.at(i) != 0;
  }

  [[nodiscard]] std::uint64_t query_count() const noexcept { return queries_; }
  void reset_count() const noexcept { queries_ = 0; }

  /// Ground truth, for the referee only (not counted).
  [[nodiscard]] bool or_value() const noexcept {
    for (const auto b : bits_) {
      if (b != 0) return true;
    }
    return false;
  }

 private:
  std::vector<std::uint8_t> bits_;
  mutable std::uint64_t queries_ = 0;
};

}  // namespace lcaknap::lowerbound

#endif  // LCAKNAP_LOWERBOUND_BIT_ORACLE_H
