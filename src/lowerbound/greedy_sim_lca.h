#ifndef LCAKNAP_LOWERBOUND_GREEDY_SIM_LCA_H
#define LCAKNAP_LOWERBOUND_GREEDY_SIM_LCA_H

#include <cstdint>

#include "oracle/access.h"
#include "util/rng.h"

/// \file greedy_sim_lca.h
/// The classical LCA design technique the paper's related work surveys
/// ([NO08; YYI12; MRVX12]): simulate a greedy algorithm under a random
/// ordering drawn from the shared seed.  Here: add items in shared-random
/// priority order, keeping each one that still fits — the result is a
/// maximal feasible solution, and "is item k in it?" is answered by replaying
/// the prefix of the order before k.
///
/// Two properties make this the perfect foil for Theorem 3.4:
///  * it is a *correct, perfectly consistent* LCA for maximal feasibility
///    (priorities are a pure function of (seed, index); replicas agree by
///    construction), and
///  * its query cost is the queried item's position in the order — Θ(n) on
///    average — and Theorem 3.4 says this is *necessary*: the budget-capped
///    variant (`answer_budgeted`) must guess once the budget runs out, and on
///    the hard distribution its correctness degrades exactly as Lemma 3.5
///    predicts.  `bench_lb_maximal` measures both.

namespace lcaknap::lowerbound {

class RandomOrderMaximalLca {
 public:
  /// `access` must outlive this object; `seed` is the shared random tape.
  RandomOrderMaximalLca(const oracle::InstanceAccess& access, std::uint64_t seed);

  /// Exact answer: replays every higher-priority item (queries each once,
  /// except when the knapsack fills up early).  Always correct, always
  /// consistent.
  [[nodiscard]] bool answer(std::size_t k) const;

  /// Budget-capped answer: replays at most `budget` higher-priority items;
  /// if the replay is truncated, falls back to the locally-safe guess
  /// ("yes" iff the item alone fits the remaining optimistic capacity) —
  /// the forced move of Lemma 3.5.
  [[nodiscard]] bool answer_budgeted(std::size_t k, std::uint64_t budget) const;

  /// The priority of index i (exposed for tests; pure function of the seed).
  [[nodiscard]] std::uint64_t priority(std::size_t i) const noexcept;

 private:
  /// Shared implementation; `budget` = UINT64_MAX means unbounded.
  [[nodiscard]] bool replay(std::size_t k, std::uint64_t budget) const;

  const oracle::InstanceAccess* access_;
  util::Prf prf_;
};

}  // namespace lcaknap::lowerbound

#endif  // LCAKNAP_LOWERBOUND_GREEDY_SIM_LCA_H
