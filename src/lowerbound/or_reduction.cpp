#include "lowerbound/or_reduction.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace lcaknap::lowerbound {

knapsack::Instance make_or_instance(const std::vector<std::uint8_t>& x,
                                    std::int64_t beta_num, std::int64_t beta_den) {
  if (beta_num <= 0 || beta_den <= 0 || beta_num >= beta_den) {
    throw std::invalid_argument("make_or_instance: need 0 < beta < 1");
  }
  std::vector<knapsack::Item> items;
  items.reserve(x.size() + 1);
  for (const auto bit : x) {
    // Profit scale: a set bit is worth beta_den ("1"), item n is worth
    // beta_num ("beta"); zero bits are worth 0.
    items.push_back({bit != 0 ? beta_den : 0, 1});
  }
  items.push_back({beta_num, 1});
  return {std::move(items), /*capacity=*/1};
}

bool RandomProbeStrategy::answer(const BitOracle& oracle, std::uint64_t budget,
                                 util::Xoshiro256& rng) const {
  const std::size_t n = oracle.size();
  const std::size_t probes = static_cast<std::size_t>(
      std::min<std::uint64_t>(budget, n));
  // Partial Fisher–Yates over the index set: distinct uniform probes.
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  for (std::size_t k = 0; k < probes; ++k) {
    const std::size_t pick =
        k + static_cast<std::size_t>(rng.next_below(n - k));
    std::swap(indices[k], indices[pick]);
    if (oracle.query(indices[k])) return false;  // found a 1: s_n not optimal
  }
  return true;  // saw only zeros: claim s_n optimal (OR = 0)
}

bool FullReadStrategy::answer(const BitOracle& oracle, std::uint64_t /*budget*/,
                              util::Xoshiro256& /*rng*/) const {
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    if (oracle.query(i)) return false;
  }
  return true;
}

OrGameReport play_or_game(std::size_t n, std::uint64_t budget, std::size_t trials,
                          const OrStrategy& strategy, util::Xoshiro256& rng) {
  if (n < 2) throw std::invalid_argument("play_or_game: n must be >= 2");
  if (trials == 0) throw std::invalid_argument("play_or_game: trials must be >= 1");
  OrGameReport report;
  report.n = n;
  report.budget = budget;
  report.trials = trials;

  std::size_t successes = 0;
  std::uint64_t total_queries = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    // Hard distribution: all zeros w.p. 1/2, a single planted 1 otherwise.
    std::vector<std::uint8_t> x(n - 1, 0);
    const bool planted = rng.next_double() < 0.5;
    if (planted) x[rng.next_below(n - 1)] = 1;

    const BitOracle oracle(std::move(x));
    const bool claim_s_n_optimal = strategy.answer(oracle, budget, rng);
    // s_n is in the (alpha-approximate) solution iff OR(x) == 0.
    const bool truth = !planted;
    if (claim_s_n_optimal == truth) ++successes;
    total_queries += oracle.query_count();
  }
  report.success_rate =
      static_cast<double>(successes) / static_cast<double>(trials);
  report.mean_queries =
      static_cast<double>(total_queries) / static_cast<double>(trials);
  const double coverage =
      std::min(1.0, static_cast<double>(budget) / static_cast<double>(n - 1));
  report.predicted_ceiling = 0.5 + coverage / 2.0;
  return report;
}

}  // namespace lcaknap::lowerbound
