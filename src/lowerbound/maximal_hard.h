#ifndef LCAKNAP_LOWERBOUND_MAXIMAL_HARD_H
#define LCAKNAP_LOWERBOUND_MAXIMAL_HARD_H

#include <cstdint>

#include "knapsack/instance.h"
#include "util/rng.h"

/// \file maximal_hard.h
/// Theorem 3.4: no sublinear LCA provides query access to a *maximal
/// feasible* solution.  The hard distribution plants two special items among
/// n: item i with weight 3/4 and item j with weight 1/4 or 3/4 (fair coin);
/// all other weights are 0 and the capacity is 1.  If w_j = 1/4 the unique
/// maximal solution contains everything; if w_j = 3/4 a maximal solution
/// contains exactly one of {i, j}.  Lemma 3.5 shows a budgeted algorithm
/// queried on a weight-3/4 item must answer "yes" unless it finds the other
/// special item, and the (s_i, s_j) query sequence then forces an error with
/// constant probability — success is capped at 4/5 for budgets below n/11.
///
/// Weights are stored in quarters (0, 1, 3) with capacity 4, keeping the
/// substrate integral.

namespace lcaknap::lowerbound {

/// Counted weight-query access to a planted instance.
class WeightOracle {
 public:
  /// `w_j_quarters` is 1 or 3.
  WeightOracle(std::size_t n, std::size_t i, std::size_t j, int w_j_quarters);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  /// Weight of item k in quarters (counted).
  [[nodiscard]] int query(std::size_t k) const;
  [[nodiscard]] std::uint64_t query_count() const noexcept { return queries_; }

  // Referee-only views (not counted).
  [[nodiscard]] std::size_t special_i() const noexcept { return i_; }
  [[nodiscard]] std::size_t special_j() const noexcept { return j_; }
  [[nodiscard]] bool j_is_light() const noexcept { return w_j_quarters_ == 1; }

 private:
  std::size_t n_;
  std::size_t i_;
  std::size_t j_;
  int w_j_quarters_;
  mutable std::uint64_t queries_ = 0;
};

/// Materializes the planted instance as a Knapsack Instance (profits 0 are
/// not allowed by our normalization, so every profit is 1 — maximality does
/// not depend on profits).
[[nodiscard]] knapsack::Instance make_maximal_instance(std::size_t n, std::size_t i,
                                                       std::size_t j,
                                                       bool j_is_light);

/// A budgeted memoryless strategy answering "is item k in the maximal
/// solution?".  `shared` is the LCA's read-only seed r (equal across the two
/// queries of a game round); `rng` is the run's fresh randomness.
class MaximalStrategy {
 public:
  virtual ~MaximalStrategy() = default;
  [[nodiscard]] virtual bool answer(const WeightOracle& oracle, std::size_t k,
                                    std::uint64_t budget, const util::Prf& shared,
                                    util::Xoshiro256& rng) const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// The natural LCA: weight 0 or 1/4 -> yes.  Weight 3/4 -> scan up to
/// `budget` other items in an order derived from the *shared* seed; if the
/// other special item is found, break the tie deterministically (keep the
/// smaller index); otherwise answer the forced "yes" of Lemma 3.5.
class SharedScanStrategy final : public MaximalStrategy {
 public:
  [[nodiscard]] bool answer(const WeightOracle& oracle, std::size_t k,
                            std::uint64_t budget, const util::Prf& shared,
                            util::Xoshiro256& rng) const override;
  [[nodiscard]] const char* name() const override { return "shared-scan"; }
};

/// Ablation: identical, but the scan order uses the run's *fresh* randomness
/// — the two runs of a round look at different item sets, losing even the
/// coordination the shared seed provides.
class FreshScanStrategy final : public MaximalStrategy {
 public:
  [[nodiscard]] bool answer(const WeightOracle& oracle, std::size_t k,
                            std::uint64_t budget, const util::Prf& shared,
                            util::Xoshiro256& rng) const override;
  [[nodiscard]] const char* name() const override { return "fresh-scan"; }
};

struct MaximalGameReport {
  std::size_t n = 0;
  std::uint64_t budget = 0;
  std::size_t trials = 0;
  /// Fraction of rounds whose two answers were consistent with some maximal
  /// feasible solution.
  double success_rate = 0.0;
  double mean_queries_per_round = 0.0;
  /// Lemma 3.5's cap for sublinear budgets: 1/2 + coverage-driven slack.
  double predicted_success = 0.0;
};

/// Plays `trials` rounds: draw a planted instance, query s_i then s_j as two
/// independent runs sharing only the seed, and judge consistency.
[[nodiscard]] MaximalGameReport play_maximal_game(std::size_t n, std::uint64_t budget,
                                                  std::size_t trials,
                                                  const MaximalStrategy& strategy,
                                                  std::uint64_t seed);

}  // namespace lcaknap::lowerbound

#endif  // LCAKNAP_LOWERBOUND_MAXIMAL_HARD_H
