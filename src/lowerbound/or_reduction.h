#ifndef LCAKNAP_LOWERBOUND_OR_REDUCTION_H
#define LCAKNAP_LOWERBOUND_OR_REDUCTION_H

#include <cstdint>
#include <vector>

#include "knapsack/instance.h"
#include "lowerbound/bit_oracle.h"
#include "util/rng.h"

/// \file or_reduction.h
/// Theorems 3.2 and 3.3: the reduction from OR_{n-1} to LCA queries on
/// Knapsack, and the game harness that measures it empirically.
///
/// The instance I(x) (Figure 1): items 1..n-1 have (profit x_i, weight 1);
/// item n has (profit beta, weight 1); the capacity is 1, so any feasible
/// solution holds at most one item.  Item n belongs to the (unique) optimal —
/// or alpha-approximate, for beta < alpha — solution iff OR(x) = 0.  An LCA
/// answering the single query "is item n in the solution?" therefore computes
/// OR_{n-1}, and each of its instance queries costs at most one bit query,
/// so its time complexity inherits the Omega(n) randomized query lower bound
/// of OR (Lemma 3.1).
///
/// The game harness plays the *hard distribution* for OR — all-zeros with
/// probability 1/2, a single uniformly planted 1 otherwise — against any
/// budgeted strategy, reporting its success rate.  The theory predicts a
/// ceiling of 1/2 + q/(2(n-1)) + o(1) for q bit queries; the full-read
/// strategy (q = n-1) is the only one that escapes it.

namespace lcaknap::lowerbound {

/// Materializes I(x) with integer profits: x_i = 1 items get profit
/// `beta_den`, item n gets `beta_num` (so beta = beta_num / beta_den), and
/// all weights and the capacity are 1.
[[nodiscard]] knapsack::Instance make_or_instance(const std::vector<std::uint8_t>& x,
                                                  std::int64_t beta_num = 1,
                                                  std::int64_t beta_den = 2);

/// A budgeted strategy for the single LCA query "is s_n in the solution?".
/// Returns its answer; may spend at most `budget` bit queries.
class OrStrategy {
 public:
  virtual ~OrStrategy() = default;
  /// Answers true iff it believes s_n is in the solution (i.e. OR(x) == 0).
  [[nodiscard]] virtual bool answer(const BitOracle& oracle, std::uint64_t budget,
                                    util::Xoshiro256& rng) const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// The natural randomized strategy (optimal up to constants): probe `budget`
/// uniformly random distinct bits; claim s_n optimal iff no 1 was seen.
class RandomProbeStrategy final : public OrStrategy {
 public:
  [[nodiscard]] bool answer(const BitOracle& oracle, std::uint64_t budget,
                            util::Xoshiro256& rng) const override;
  [[nodiscard]] const char* name() const override { return "random-probe"; }
};

/// Reads every bit; always correct, always n-1 queries.
class FullReadStrategy final : public OrStrategy {
 public:
  [[nodiscard]] bool answer(const BitOracle& oracle, std::uint64_t budget,
                            util::Xoshiro256& rng) const override;
  [[nodiscard]] const char* name() const override { return "full-read"; }
};

struct OrGameReport {
  std::size_t n = 0;
  std::uint64_t budget = 0;
  std::size_t trials = 0;
  double success_rate = 0.0;
  double mean_queries = 0.0;
  /// The theoretical ceiling 1/2 + min(1, q/(n-1))/2 for budgeted strategies
  /// on this distribution.
  double predicted_ceiling = 0.0;
};

/// Plays `trials` rounds of the hard distribution against the strategy.
[[nodiscard]] OrGameReport play_or_game(std::size_t n, std::uint64_t budget,
                                        std::size_t trials, const OrStrategy& strategy,
                                        util::Xoshiro256& rng);

}  // namespace lcaknap::lowerbound

#endif  // LCAKNAP_LOWERBOUND_OR_REDUCTION_H
