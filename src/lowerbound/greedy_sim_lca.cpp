#include "lowerbound/greedy_sim_lca.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace lcaknap::lowerbound {

RandomOrderMaximalLca::RandomOrderMaximalLca(const oracle::InstanceAccess& access,
                                             std::uint64_t seed)
    : access_(&access), prf_(seed) {}

std::uint64_t RandomOrderMaximalLca::priority(std::size_t i) const noexcept {
  return prf_.word(/*stream=*/0x6EED, static_cast<std::uint64_t>(i));
}

bool RandomOrderMaximalLca::replay(std::size_t k, std::uint64_t budget) const {
  const std::size_t n = access_->size();
  const std::uint64_t pk = priority(k);

  // Locally (no oracle cost) determine the items preceding k in the shared
  // random order; ties break toward the smaller index.
  std::vector<std::size_t> before;
  before.reserve(n / 2);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == k) continue;
    const std::uint64_t pi = priority(i);
    if (pi < pk || (pi == pk && i < k)) before.push_back(i);
  }
  std::sort(before.begin(), before.end(), [this](std::size_t a, std::size_t b) {
    const std::uint64_t pa = priority(a);
    const std::uint64_t pb = priority(b);
    return pa != pb ? pa < pb : a < b;
  });

  // Replay the greedy prefix.
  std::int64_t remaining = access_->capacity();
  std::uint64_t replayed = 0;
  for (const std::size_t i : before) {
    if (replayed >= budget) {
      // Out of budget: the locally-safe guess (Lemma 3.5's forced move) —
      // claim membership iff the item fits the optimistically-remaining
      // capacity.
      const auto item = access_->query(k);
      return item.weight <= remaining;
    }
    const auto item = access_->query(i);
    ++replayed;
    if (item.weight <= remaining) remaining -= item.weight;
    // Once nothing has weight left only zero-weight items (which never
    // change `remaining`) can still join; stop replaying.
    if (remaining == 0) break;
  }
  const auto item = access_->query(k);
  return item.weight <= remaining;
}

bool RandomOrderMaximalLca::answer(std::size_t k) const {
  return replay(k, std::numeric_limits<std::uint64_t>::max());
}

bool RandomOrderMaximalLca::answer_budgeted(std::size_t k, std::uint64_t budget) const {
  return replay(k, budget);
}

}  // namespace lcaknap::lowerbound
