#include "reproducible/rmedian.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "reproducible/rstat.h"
#include "util/stats.h"

namespace lcaknap::reproducible {

namespace {

void validate(const RMedianParams& params) {
  if (params.domain_size < 2) {
    throw std::invalid_argument("rmedian: domain_size must be >= 2");
  }
  if (!(params.tau > 0.0 && params.tau < 0.5)) {
    throw std::invalid_argument("rmedian: tau must be in (0, 0.5)");
  }
  if (!(params.rho > 0.0 && params.rho < 1.0)) {
    throw std::invalid_argument("rmedian: rho must be in (0, 1)");
  }
  if (!(params.beta > 0.0 && params.beta < 1.0)) {
    throw std::invalid_argument("rmedian: beta must be in (0, 1)");
  }
  if (params.branching < 2) {
    throw std::invalid_argument("rmedian: branching must be >= 2");
  }
  if (!(params.target > 0.0 && params.target < 1.0)) {
    throw std::invalid_argument("rmedian: target must be in (0, 1)");
  }
}

}  // namespace

int rmedian_depth(const RMedianParams& params) {
  validate(params);
  return static_cast<int>(std::ceil(std::log2(static_cast<double>(params.domain_size)) /
                                    std::log2(static_cast<double>(params.branching))));
}

std::size_t rmedian_sample_size(const RMedianParams& params) {
  validate(params);
  const double spacing = params.tau;
  const int levels = rmedian_depth(params);
  const double probes = static_cast<double>(levels) * (params.branching - 1);
  // Accuracy needs delta <= tau/4; reproducibility needs the union over all
  // probed boundaries of the straddle events to stay below rho.
  const double delta_accuracy = params.tau / 4.0;
  const double delta_repro = params.rho * spacing / (2.0 * probes);
  const double delta = std::min(delta_accuracy, delta_repro);
  return util::dkw_sample_size(delta, params.beta / 2.0);
}

std::int64_t rmedian(std::span<const std::int64_t> samples,
                     const RMedianParams& params, const util::Prf& prf,
                     std::uint64_t query_id) {
  if (samples.empty()) throw std::invalid_argument("rmedian: no samples");
  for (const auto s : samples) {
    if (s < 0 || s >= params.domain_size) {
      throw std::invalid_argument("rmedian: sample outside [0, domain_size)");
    }
  }
  const util::EmpiricalCdfInt ecdf(samples);
  return rmedian_cdf([&ecdf](std::int64_t v) { return ecdf.at(v); }, params, prf,
                     query_id);
}

std::int64_t rmedian_cdf(const CdfFn& cdf, const RMedianParams& params,
                         const util::Prf& prf, std::uint64_t query_id) {
  validate(params);
  const double spacing = params.tau;
  const double target = params.target;
  const util::Prf search_prf =
      prf.subkey(static_cast<std::uint64_t>(util::RandomStream::kRMedianSearch));

  // Invariant: rounded-F(lo) < target (or lo == -1) and the answer lies in
  // (lo, hi].  hi starts at the top of the domain, whose CDF is exactly 1.
  std::int64_t lo = -1;
  std::int64_t hi = params.domain_size - 1;
  std::uint64_t level = 0;
  while (hi - lo > 1) {
    // One shared grid offset per (invocation, level): all boundary estimates
    // at this level round on the same grid, keeping them monotone.
    const double offset = search_prf.uniform(query_id, level);
    const std::int64_t span = hi - lo;
    const auto g = static_cast<std::int64_t>(params.branching);
    std::int64_t new_lo = lo;
    std::int64_t new_hi = hi;
    std::int64_t previous_probe = lo;
    for (std::int64_t j = 1; j < g; ++j) {
      const std::int64_t probe = lo + (span * j) / g;
      if (probe <= previous_probe || probe >= hi) continue;
      previous_probe = probe;
      const double rounded = round_to_offset_grid(cdf(probe), spacing, offset);
      if (rounded >= target) {
        new_hi = probe;
        break;
      }
      new_lo = probe;
    }
    if (new_lo == lo && new_hi == hi) {
      // Degenerate split (span smaller than branching produced no interior
      // probes); fall back to the midpoint to guarantee progress.
      const std::int64_t mid = lo + span / 2;
      const double rounded = round_to_offset_grid(cdf(mid), spacing, offset);
      if (rounded >= target) {
        new_hi = mid;
      } else {
        new_lo = mid;
      }
    }
    lo = new_lo;
    hi = new_hi;
    ++level;
  }
  return hi;
}

}  // namespace lcaknap::reproducible
