#ifndef LCAKNAP_REPRODUCIBLE_RQUANTILE_H
#define LCAKNAP_REPRODUCIBLE_RQUANTILE_H

#include <cstdint>
#include <span>

#include "reproducible/rmedian.h"
#include "util/rng.h"
#include "util/stats.h"

/// \file rquantile.h
/// Algorithm 1 of the paper (rQuantile): reproducible tau-approximate
/// p-quantiles, by reduction to the reproducible median.
///
/// To find the p-quantile of an array T of n elements, append
/// x = (1 - p) * n copies of -infinity and y = p * n copies of +infinity;
/// the median of the padded array T' equals the p-quantile of T.  On the
/// distribution side this halves every original probability and places mass
/// (1-p)/2 on -infinity and p/2 on +infinity; the domain grows from 2^d to
/// 2^{d+1} and the required median accuracy is tau/2 (Theorem 4.5).

namespace lcaknap::reproducible {

struct RQuantileParams {
  std::int64_t domain_size = 1LL << 20;  ///< |X| of the *original* domain
  double tau = 0.05;   ///< accuracy of the returned approximate quantile
  double rho = 0.1;    ///< target reproducibility parameter
  double beta = 0.05;  ///< failure probability
  int branching = 16;  ///< branching factor of the underlying median search
};

/// Advisory sample size (delegates to the padded median's requirement).
[[nodiscard]] std::size_t rquantile_sample_size(const RQuantileParams& params);

/// Reproducible tau-approximate p-quantile of `samples` (values in
/// [0, domain_size)).  The same (prf, query_id) discipline as rmedian
/// applies; two replicas calling with equal ids and the same prf key agree
/// with probability at least 1 - rho (given enough samples).
[[nodiscard]] std::int64_t rquantile(std::span<const std::int64_t> samples, double p,
                                     const RQuantileParams& params,
                                     const util::Prf& prf, std::uint64_t query_id);

/// Overload over a pre-sorted sample (one sort serves Algorithm 2's t
/// quantile calls on the same Q̄).  The padded CDF of the reduction is
/// evaluated arithmetically instead of materializing the padded array.
[[nodiscard]] std::int64_t rquantile(const util::EmpiricalCdfInt& base, double p,
                                     const RQuantileParams& params,
                                     const util::Prf& prf, std::uint64_t query_id);

}  // namespace lcaknap::reproducible

#endif  // LCAKNAP_REPRODUCIBLE_RQUANTILE_H
