#include "reproducible/rstat.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/stats.h"

namespace lcaknap::reproducible {

double round_to_offset_grid(double value, double spacing, double offset_u) noexcept {
  assert(spacing > 0.0);
  assert(offset_u >= 0.0 && offset_u < 1.0);
  const double shifted = value / spacing - offset_u;
  return (std::round(shifted) + offset_u) * spacing;
}

double reproducible_mean(std::span<const double> samples, double spacing,
                         const util::Prf& prf, std::uint64_t query_id) {
  if (samples.empty()) throw std::invalid_argument("reproducible_mean: no samples");
  if (spacing <= 0.0) throw std::invalid_argument("reproducible_mean: spacing <= 0");
  double sum = 0.0;
  for (const double s : samples) sum += s;
  const double mean = sum / static_cast<double>(samples.size());
  const double u = prf.uniform(
      static_cast<std::uint64_t>(util::RandomStream::kRStatOffset), query_id);
  return round_to_offset_grid(mean, spacing, u);
}

std::size_t rstat_sample_size(double spacing, double rho, double beta) {
  if (spacing <= 0.0 || rho <= 0.0 || beta <= 0.0 || beta >= 1.0) {
    throw std::invalid_argument("rstat_sample_size: bad parameters");
  }
  // Need 2*delta/spacing <= rho, i.e. delta <= rho*spacing/2, with
  // delta = sqrt(log(2/beta) / (2n)) (Hoeffding).
  const double delta = rho * spacing / 2.0;
  return static_cast<std::size_t>(
      std::ceil(std::log(2.0 / beta) / (2.0 * delta * delta)));
}

}  // namespace lcaknap::reproducible
