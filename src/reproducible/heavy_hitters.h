#ifndef LCAKNAP_REPRODUCIBLE_HEAVY_HITTERS_H
#define LCAKNAP_REPRODUCIBLE_HEAVY_HITTERS_H

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

/// \file heavy_hitters.h
/// rho-reproducible v-heavy-hitters (the companion primitive of [ILPS22]).
///
/// Returns the set of values whose empirical frequency clears a *randomly
/// shifted* threshold drawn from the shared randomness: theta is uniform in
/// [v - slack, v + slack].  Two runs disagree on a value only when its two
/// frequency estimates straddle theta, so the output *set* is identical
/// across runs with probability >= 1 - rho given enough samples.
///
/// LCA-KP uses coupon-collection (Lemma 4.2) to find the large items; the
/// heavy-hitters route is the natural alternative and is exercised by the
/// reproducible-large-items extension and bench E8.

namespace lcaknap::reproducible {

struct HeavyHittersParams {
  double v = 0.01;      ///< frequency threshold
  double slack = 0.005; ///< half-width of the randomized threshold window
  double rho = 0.1;     ///< target reproducibility (advisory, drives sample size)
  double beta = 0.05;   ///< failure probability (advisory)
};

/// Advisory sample size: per-value estimates accurate to rho*slack with
/// failure beta, for up to 2/v candidate values.
[[nodiscard]] std::size_t heavy_hitters_sample_size(const HeavyHittersParams& params);

/// Values of `samples` whose empirical frequency reaches the shared random
/// threshold, in increasing order.  Replicas passing the same (prf,
/// query_id) receive identical sets with probability >= 1 - rho.
[[nodiscard]] std::vector<std::int64_t> reproducible_heavy_hitters(
    std::span<const std::int64_t> samples, const HeavyHittersParams& params,
    const util::Prf& prf, std::uint64_t query_id);

}  // namespace lcaknap::reproducible

#endif  // LCAKNAP_REPRODUCIBLE_HEAVY_HITTERS_H
