#ifndef LCAKNAP_REPRODUCIBLE_RMEDIAN_H
#define LCAKNAP_REPRODUCIBLE_RMEDIAN_H

#include <cstdint>
#include <functional>
#include <span>

#include "util/rng.h"

/// \file rmedian.h
/// rho-reproducible tau-approximate median over a finite ordered domain
/// (Definition 2.6 / Theorem 2.7 of the paper, after [ILPS22, Theorem 4.2]).
///
/// The domain is the integer grid {0, 1, ..., domain_size - 1}; callers map
/// their ordered universe (here: normalized Knapsack efficiencies, see
/// Section 4.2's "mapping to a finite domain") onto this grid with an exact,
/// deterministic, order-preserving map so that all replicas agree on it.
///
/// Construction (documented substitution; see DESIGN.md): a g-ary search for
/// the smallest domain value whose CDF reaches the target, where every CDF
/// evaluation is a reproducible statistical query (rstat.h).  All boundaries
/// probed at one level share a single grid offset, so rounded CDF values stay
/// monotone and the chosen branch is identical across replicas unless some
/// boundary estimate falls within the empirical error of a grid edge.  Depth
/// is ceil(log(domain_size)/log(branching)); with branching = Theta(1/tau^2)
/// this is O(log |X| / log(1/tau)) reproducible levels, our stand-in for the
/// (3/tau^2)^{log* |X|} tower of [ILPS22].  The guarantees the paper consumes
/// — Definition 2.5 reproducibility, tau-approximate quantiles, and domain
/// dependence far below linear — are preserved and measured by bench E8.

namespace lcaknap::reproducible {

struct RMedianParams {
  std::int64_t domain_size = 1LL << 20;  ///< |X|
  double tau = 0.05;   ///< CDF accuracy of the returned approximate median
  double rho = 0.1;    ///< target reproducibility parameter (drives grid spacing)
  double beta = 0.05;  ///< failure probability (drives the advisory sample size)
  int branching = 16;  ///< g of the g-ary search (>= 2)
  /// Quantile target; 0.5 is the median.  rquantile.h uses the paper's
  /// padding reduction instead of this knob, but exposing the target lets
  /// tests compare the two routes.
  double target = 0.5;
};

/// Number of reproducible levels the search performs.
[[nodiscard]] int rmedian_depth(const RMedianParams& params);

/// Advisory sample size: enough draws that (a) the empirical CDF is within
/// tau/4 everywhere (DKW with failure beta/2) and (b) per-level rounding
/// disagreements total at most rho (union bound over all probed boundaries).
[[nodiscard]] std::size_t rmedian_sample_size(const RMedianParams& params);

/// Computes the reproducible approximate median of `samples` (values in
/// [0, domain_size)).  `prf` carries the shared internal randomness;
/// `query_id` must identify this median invocation uniquely within the
/// enclosing algorithm (replicas use equal ids, distinct statistics use
/// distinct ids).  Throws std::invalid_argument on empty input or
/// out-of-domain samples.
[[nodiscard]] std::int64_t rmedian(std::span<const std::int64_t> samples,
                                   const RMedianParams& params,
                                   const util::Prf& prf, std::uint64_t query_id);

/// Same search, driven by an arbitrary empirical CDF evaluator
/// F̂(v) = fraction of the sample <= v.  Lets callers that run many quantile
/// queries over one sample (Algorithm 2 reuses Q̄ for every rQuantile call)
/// sort once instead of per call.
using CdfFn = std::function<double(std::int64_t)>;
[[nodiscard]] std::int64_t rmedian_cdf(const CdfFn& cdf, const RMedianParams& params,
                                       const util::Prf& prf, std::uint64_t query_id);

}  // namespace lcaknap::reproducible

#endif  // LCAKNAP_REPRODUCIBLE_RMEDIAN_H
