#include "reproducible/heavy_hitters.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/stats.h"

namespace lcaknap::reproducible {

namespace {
void validate(const HeavyHittersParams& params) {
  if (!(params.v > 0.0 && params.v < 1.0)) {
    throw std::invalid_argument("heavy_hitters: v must be in (0, 1)");
  }
  if (!(params.slack > 0.0 && params.slack < params.v)) {
    throw std::invalid_argument("heavy_hitters: slack must be in (0, v)");
  }
}
}  // namespace

std::size_t heavy_hitters_sample_size(const HeavyHittersParams& params) {
  validate(params);
  // Each candidate's straddle probability is ~2*delta/(2*slack); at most
  // ~2/v values can have frequency near v, so delta <= rho*slack*v / 2 keeps
  // the union below rho.
  const double delta = params.rho * params.slack * params.v / 2.0;
  return util::dkw_sample_size(delta, params.beta / 2.0);
}

std::vector<std::int64_t> reproducible_heavy_hitters(
    std::span<const std::int64_t> samples, const HeavyHittersParams& params,
    const util::Prf& prf, std::uint64_t query_id) {
  validate(params);
  if (samples.empty()) {
    throw std::invalid_argument("heavy_hitters: no samples");
  }
  // Frequencies via sort + single run-length pass: one contiguous buffer
  // instead of a node-based `std::map` rebuilt on every call.  Sorting also
  // yields the increasing output order the map used to provide for free.
  std::vector<std::int64_t> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  const double u = prf.uniform(
      static_cast<std::uint64_t>(util::RandomStream::kHeavyHitters), query_id);
  const double theta = params.v - params.slack + 2.0 * params.slack * u;

  std::vector<std::int64_t> hitters;
  const auto n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    if (static_cast<double>(j - i) / n >= theta) hitters.push_back(sorted[i]);
    i = j;
  }
  return hitters;  // sorted pass emits values in increasing order
}

}  // namespace lcaknap::reproducible
