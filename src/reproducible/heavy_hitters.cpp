#include "reproducible/heavy_hitters.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/stats.h"

namespace lcaknap::reproducible {

namespace {
void validate(const HeavyHittersParams& params) {
  if (!(params.v > 0.0 && params.v < 1.0)) {
    throw std::invalid_argument("heavy_hitters: v must be in (0, 1)");
  }
  if (!(params.slack > 0.0 && params.slack < params.v)) {
    throw std::invalid_argument("heavy_hitters: slack must be in (0, v)");
  }
}
}  // namespace

std::size_t heavy_hitters_sample_size(const HeavyHittersParams& params) {
  validate(params);
  // Each candidate's straddle probability is ~2*delta/(2*slack); at most
  // ~2/v values can have frequency near v, so delta <= rho*slack*v / 2 keeps
  // the union below rho.
  const double delta = params.rho * params.slack * params.v / 2.0;
  return util::dkw_sample_size(delta, params.beta / 2.0);
}

std::vector<std::int64_t> reproducible_heavy_hitters(
    std::span<const std::int64_t> samples, const HeavyHittersParams& params,
    const util::Prf& prf, std::uint64_t query_id) {
  validate(params);
  if (samples.empty()) {
    throw std::invalid_argument("heavy_hitters: no samples");
  }
  std::map<std::int64_t, std::size_t> counts;
  for (const auto s : samples) ++counts[s];

  const double u = prf.uniform(
      static_cast<std::uint64_t>(util::RandomStream::kHeavyHitters), query_id);
  const double theta = params.v - params.slack + 2.0 * params.slack * u;

  std::vector<std::int64_t> hitters;
  const auto n = static_cast<double>(samples.size());
  for (const auto& [value, count] : counts) {
    if (static_cast<double>(count) / n >= theta) hitters.push_back(value);
  }
  return hitters;  // std::map iteration is already in increasing order
}

}  // namespace lcaknap::reproducible
