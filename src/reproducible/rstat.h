#ifndef LCAKNAP_REPRODUCIBLE_RSTAT_H
#define LCAKNAP_REPRODUCIBLE_RSTAT_H

#include <cstdint>
#include <span>

#include "util/rng.h"

/// \file rstat.h
/// Reproducible statistical queries (the rSTAT primitive of [ILPS22]).
///
/// A statistical query estimates E[f(X)] for bounded f.  Two independent runs
/// compute empirical means that differ by up to ~2*delta; rounding both to a
/// grid whose *offset* is drawn from the shared internal randomness makes the
/// outputs *identical* unless a grid boundary happens to fall between them —
/// an event of probability at most 2*delta/spacing over the offset.  This
/// trade (statistical accuracy for exact output equality) is the engine
/// behind every reproducible primitive in this library and, through them,
/// behind the consistency of LCA-KP (Lemma 4.9).

namespace lcaknap::reproducible {

/// Rounds `value` to the nearest point of the grid {(k + offset_u) * spacing}.
/// offset_u must lie in [0, 1).
[[nodiscard]] double round_to_offset_grid(double value, double spacing,
                                          double offset_u) noexcept;

/// rho-reproducible mean of bounded observations.
///
///  * `samples`  — i.i.d. draws of the statistic (fresh randomness, differs
///                 across runs);
///  * `spacing`  — output grid spacing tau: the rounded answer is within
///                 tau/2 + (empirical error) of the true mean;
///  * `prf`/`query_id` — shared internal randomness; all replicas must pass
///                 the same (prf key, query_id) to be mutually reproducible.
///
/// Reproducibility across two runs with n samples each is at least
/// 1 - 2*delta/spacing where delta is the empirical deviation
/// (~ sqrt(log(1/beta) / 2n) for [0,1]-bounded statistics).
[[nodiscard]] double reproducible_mean(std::span<const double> samples, double spacing,
                                       const util::Prf& prf, std::uint64_t query_id);

/// Sample size making `reproducible_mean` rho-reproducible with failure
/// probability beta, for [0,1]-bounded statistics: the empirical deviation
/// must satisfy 2*delta/spacing <= rho.
[[nodiscard]] std::size_t rstat_sample_size(double spacing, double rho, double beta);

}  // namespace lcaknap::reproducible

#endif  // LCAKNAP_REPRODUCIBLE_RSTAT_H
