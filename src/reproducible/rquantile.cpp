#include "reproducible/rquantile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include "util/stats.h"
#include <vector>

namespace lcaknap::reproducible {

namespace {

RMedianParams padded_params(const RQuantileParams& params) {
  RMedianParams mp;
  // Domain gains the two sentinels: -infinity below and +infinity above.
  mp.domain_size = params.domain_size + 2;
  mp.tau = params.tau / 2.0;  // Theorem 4.5: run the median at accuracy tau/2
  mp.rho = params.rho;
  mp.beta = params.beta;
  mp.branching = params.branching;
  mp.target = 0.5;
  return mp;
}

}  // namespace

std::size_t rquantile_sample_size(const RQuantileParams& params) {
  // The padding doubles the array, so require twice the padded median's need.
  return 2 * rmedian_sample_size(padded_params(params));
}

std::int64_t rquantile(std::span<const std::int64_t> samples, double p,
                       const RQuantileParams& params, const util::Prf& prf,
                       std::uint64_t query_id) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("rquantile: p must be in (0, 1)");
  }
  if (samples.empty()) throw std::invalid_argument("rquantile: no samples");
  const std::size_t n = samples.size();
  // x copies of -infinity (encoded 0) and y copies of +infinity (encoded
  // domain_size + 1); original values shift up by one.
  const auto x = static_cast<std::size_t>(std::llround((1.0 - p) * static_cast<double>(n)));
  const std::size_t y = n - x;
  std::vector<std::int64_t> padded;
  padded.reserve(2 * n);
  for (const auto s : samples) {
    if (s < 0 || s >= params.domain_size) {
      throw std::invalid_argument("rquantile: sample outside [0, domain_size)");
    }
    padded.push_back(s + 1);
  }
  padded.insert(padded.end(), x, 0);
  padded.insert(padded.end(), y, params.domain_size + 1);

  const std::int64_t median = rmedian(padded, padded_params(params), prf, query_id);
  // Unmap, clamping the sentinels onto the nearest real domain value.
  return std::clamp<std::int64_t>(median - 1, 0, params.domain_size - 1);
}

std::int64_t rquantile(const util::EmpiricalCdfInt& base, double p,
                       const RQuantileParams& params, const util::Prf& prf,
                       std::uint64_t query_id) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("rquantile: p must be in (0, 1)");
  }
  if (base.size() == 0) throw std::invalid_argument("rquantile: no samples");
  const auto n = static_cast<double>(base.size());
  const double x = std::round((1.0 - p) * n);  // -infinity copies
  // Padded empirical CDF over the extended domain [0, domain_size + 2):
  // encoded value 0 is -infinity, v in [1, domain_size] is original v - 1,
  // domain_size + 1 is +infinity.
  const auto padded_cdf = [&base, n, x,
                           domain = params.domain_size](std::int64_t v) -> double {
    if (v < 0) return 0.0;
    double count = x;  // all -infinity copies are <= any v >= 0
    if (v >= 1) count += base.at(std::min(v, domain) - 1) * n;
    if (v >= domain + 1) count += n - x;  // +infinity copies
    return count / (2.0 * n);
  };
  const std::int64_t median =
      rmedian_cdf(padded_cdf, padded_params(params), prf, query_id);
  return std::clamp<std::int64_t>(median - 1, 0, params.domain_size - 1);
}

}  // namespace lcaknap::reproducible
