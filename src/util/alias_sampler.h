#ifndef LCAKNAP_UTIL_ALIAS_SAMPLER_H
#define LCAKNAP_UTIL_ALIAS_SAMPLER_H

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

/// \file alias_sampler.h
/// Walker's alias method: O(n) preprocessing, O(1) per draw from an arbitrary
/// discrete distribution.  Backs the weighted-sampling oracle of Section 4
/// (items are drawn with probability proportional to their profit).

namespace lcaknap::util {

/// Immutable alias table over indices [0, n).
class AliasSampler {
 public:
  /// Builds the table from non-negative weights; at least one weight must be
  /// positive.  Weights need not be normalised.
  explicit AliasSampler(std::span<const double> weights);

  /// Draws an index with probability weight[i] / sum(weights).
  [[nodiscard]] std::size_t sample(Xoshiro256& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;        // acceptance probability per bucket
  std::vector<std::size_t> alias_;  // fallback index per bucket
};

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_ALIAS_SAMPLER_H
