#include "util/alias_sampler.h"

#include <cassert>
#include <stdexcept>

namespace lcaknap::util {

AliasSampler::AliasSampler(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasSampler: empty weights");
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasSampler: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasSampler: zero total weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining buckets are (numerically) full.
  for (const std::size_t i : large) prob_[i] = 1.0;
  for (const std::size_t i : small) prob_[i] = 1.0;
}

std::size_t AliasSampler::sample(Xoshiro256& rng) const noexcept {
  const std::size_t bucket = rng.next_below(prob_.size());
  return rng.next_double() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace lcaknap::util
