#ifndef LCAKNAP_UTIL_VIRTUAL_CLOCK_H
#define LCAKNAP_UTIL_VIRTUAL_CLOCK_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

/// \file virtual_clock.h
/// Time as a dependency.  The resilience layer (src/fault/) schedules fault
/// phases, backoff sleeps, and circuit-breaker cooldowns against a `Clock`
/// interface instead of calling std::chrono directly, so the same code runs
/// in two modes:
///
///  * `SystemClock` — real monotonic time and real sleeps (production, the
///    chaos-soak bench, the CLI);
///  * `VirtualClock` — an atomic microsecond counter that only advances when
///    someone sleeps on it.  Tests drive outages, latency ramps, and breaker
///    cooldowns through it deterministically and instantly: the same fault
///    plan replayed over a fresh VirtualClock produces the identical event
///    sequence, with no wall-clock sleeps and no timing flakiness.

namespace lcaknap::util {

/// Monotonic microsecond clock plus a sleep primitive.  `now_us` is relative
/// to the clock's own epoch (construction), which is all the fault layer
/// needs — only durations are ever compared.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual std::uint64_t now_us() const = 0;
  virtual void sleep_us(std::uint64_t us) = 0;
};

/// Real time: steady_clock reads and this_thread sleeps.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_us() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }
  void sleep_us(std::uint64_t us) override {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

 private:
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

/// Simulated time: an atomic counter.  `sleep_us` advances it instantly, so
/// a test that "waits out" a 10-second outage finishes in microseconds of
/// real time.  Concurrent sleepers simply accumulate (each sleep advances
/// the shared timeline), which keeps the counter monotonic under threads.
class VirtualClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_us() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void sleep_us(std::uint64_t us) override { advance_us(us); }
  /// Moves time forward without a sleeper (e.g. "the outage window passes").
  void advance_us(std::uint64_t us) {
    now_.fetch_add(us, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_{0};
};

/// Process-wide real clock, the default for every fault-layer constructor.
inline Clock& system_clock() {
  static SystemClock clock;
  return clock;
}

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_VIRTUAL_CLOCK_H
