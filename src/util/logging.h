#ifndef LCAKNAP_UTIL_LOGGING_H
#define LCAKNAP_UTIL_LOGGING_H

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>

/// \file logging.h
/// Minimal leveled logging.  Off by default so tests and benches stay quiet;
/// the examples flip the level to Info to narrate what they do.

namespace lcaknap::util {

enum class LogLevel : int { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Global log level (atomic; safe to flip from any thread).
inline std::atomic<LogLevel>& log_level() {
  static std::atomic<LogLevel> level{LogLevel::kError};
  return level;
}

namespace detail {
inline std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

inline void emit(const char* tag, const std::string& message) {
  const std::lock_guard lock(log_mutex());
  std::cerr << "[" << tag << "] " << message << "\n";
}
}  // namespace detail

template <typename... Args>
void log_at(LogLevel level, const char* tag, const Args&... args) {
  if (static_cast<int>(log_level().load(std::memory_order_relaxed)) <
      static_cast<int>(level)) {
    return;
  }
  std::ostringstream oss;
  (oss << ... << args);
  detail::emit(tag, oss.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  log_at(LogLevel::kInfo, "info", args...);
}

template <typename... Args>
void log_error(const Args&... args) {
  log_at(LogLevel::kError, "error", args...);
}

template <typename... Args>
void log_debug(const Args&... args) {
  log_at(LogLevel::kDebug, "debug", args...);
}

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_LOGGING_H
