#include "util/rng.h"

#include <cassert>

namespace lcaknap::util {

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : next_below(span));
}

}  // namespace lcaknap::util
