#ifndef LCAKNAP_UTIL_TABLE_H
#define LCAKNAP_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.h
/// Fixed-width ASCII table printer.  Every benchmark binary reports its
/// experiment as one or more of these tables (the paper has no tables of its
/// own, so these *are* the reproduction artifacts recorded in EXPERIMENTS.md).

namespace lcaknap::util {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed numeric rows: formats doubles with 4 significant
  /// decimals and integers plainly.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& cell(const std::string& s);
    RowBuilder& cell(double v, int precision = 4);
    RowBuilder& cell(long long v);
    RowBuilder& cell(unsigned long long v);
    RowBuilder& cell(int v) { return cell(static_cast<long long>(v)); }
    RowBuilder& cell(long v) { return cell(static_cast<long long>(v)); }
    RowBuilder& cell(unsigned v) { return cell(static_cast<unsigned long long>(v)); }
    RowBuilder& cell(unsigned long v) { return cell(static_cast<unsigned long long>(v)); }
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  [[nodiscard]] RowBuilder row() { return RowBuilder(*this); }

  /// Renders the table with aligned columns and a separator under the header.
  void print(std::ostream& os, const std::string& title = "") const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
[[nodiscard]] std::string format_double(double v, int precision = 4);

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_TABLE_H
