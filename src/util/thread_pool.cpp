#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace lcaknap::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_ != nullptr) {
    const std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down with no work left
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard lock(mutex_);
      if (error != nullptr && first_error_ == nullptr) first_error_ = error;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace lcaknap::util
