#ifndef LCAKNAP_UTIL_RNG_H
#define LCAKNAP_UTIL_RNG_H

#include <cstdint>
#include <limits>

/// \file rng.h
/// Deterministic pseudo-randomness for Local Computation Algorithms.
///
/// An LCA (Definition 2.2 of the paper) is given a read-only random seed `r`
/// that is *shared* across all runs answering queries on the same instance;
/// in addition, each run draws its own, *fresh* randomness when it samples
/// items from the instance.  This header provides both halves:
///
///  * `SplitMix64` / `Xoshiro256` — fast, high-quality stream generators used
///    for fresh per-run randomness (sample tapes, workload generation).
///  * `Prf` — a keyed pseudo-random function mapping (stream, index) pairs to
///    64-bit words.  It realises the read-only random tape `r`: every replica
///    holding the same key reads identical words at identical addresses
///    without any coordination, which is exactly what the consistency proof
///    (Lemma 4.9) requires of the shared internal randomness.

namespace lcaknap::util {

/// SplitMix64 step: advances `state` and returns a well-mixed 64-bit word.
/// Used for seeding and as a cheap one-shot mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless strong mixer (two rounds of the SplitMix64 finalizer).  Suitable
/// as a PRF round function for non-cryptographic reproducibility purposes.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  x = (x ^ (x >> 33)) * 0xFF51AFD7ED558CCDULL;
  x = (x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53ULL;
  return x ^ (x >> 33);
}

/// xoshiro256** generator (Blackman & Vigna).  Fast, 256-bit state, passes
/// BigCrush; the work-horse for fresh sampling randomness.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64, as recommended by
  /// the xoshiro authors (avoids all-zero and low-entropy states).
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x1B2E4D5F6A7C8E9FULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).  `bound` must be positive.  Uses Lemire's
  /// rejection-free-in-expectation multiply-shift with rejection for exactness.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Keyed pseudo-random function: a read-only, randomly-filled tape addressed
/// by (stream, index).  Two replicas constructed with the same key observe
/// identical tape contents — this object *is* the LCA's shared random seed
/// `r` of Definition 2.2, made random-access.
class Prf {
 public:
  explicit constexpr Prf(std::uint64_t key) noexcept : key_(key) {}

  /// 64-bit word at address (stream, index).
  [[nodiscard]] constexpr std::uint64_t word(std::uint64_t stream,
                                             std::uint64_t index) const noexcept {
    // Feistel-free keyed mixing: decorrelate the two coordinates with
    // distinct odd constants before the strong finalizer.
    const std::uint64_t a = mix64(key_ ^ (stream * 0x9E3779B97F4A7C15ULL));
    return mix64(a ^ (index * 0xD1B54A32D192ED03ULL) ^ 0x8CB92BA72F3D8DD7ULL);
  }

  /// Uniform double in [0, 1) at address (stream, index).
  [[nodiscard]] constexpr double uniform(std::uint64_t stream,
                                         std::uint64_t index) const noexcept {
    return static_cast<double>(word(stream, index) >> 11) * 0x1.0p-53;
  }

  /// Derives an independent sub-key, e.g. one per algorithm phase.
  [[nodiscard]] constexpr Prf subkey(std::uint64_t label) const noexcept {
    return Prf(mix64(key_ ^ (label * 0xA0761D6478BD642FULL)));
  }

  [[nodiscard]] constexpr std::uint64_t key() const noexcept { return key_; }

 private:
  std::uint64_t key_;
};

/// Well-known stream labels for `Prf::subkey`, so every module draws its
/// shared randomness from a disjoint part of the tape.
enum class RandomStream : std::uint64_t {
  kRStatOffset = 1,     ///< grid offsets used by reproducible statistical queries
  kRMedianSearch = 2,   ///< thresholds used by the reproducible median search
  kRQuantilePad = 3,    ///< padding decisions in the quantile-to-median reduction
  kLcaTieBreak = 4,     ///< deterministic tie-breaking inside LCA-KP
  kHeavyHitters = 5,    ///< reproducible heavy-hitters thresholds
};

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_RNG_H
