#ifndef LCAKNAP_UTIL_ITERATED_LOG_H
#define LCAKNAP_UTIL_ITERATED_LOG_H

#include <cmath>
#include <cstdint>

/// \file iterated_log.h
/// The iterated logarithm log* and small bit utilities.  log* appears in the
/// paper's main query-complexity bound, (1/eps)^{O(log* n)} (Theorem 4.1).

namespace lcaknap::util {

/// log* n: the number of times log2 must be applied before the value drops
/// to at most 1.  log_star(1) == 0, log_star(2) == 1, log_star(16) == 3,
/// log_star(65536) == 4, log_star(2^65536) == 5.
[[nodiscard]] inline int log_star(double n) noexcept {
  int iterations = 0;
  while (n > 1.0) {
    // Guard against pathological inputs; log2 of anything representable
    // reaches <= 1 within a handful of steps.
    n = std::log2(n);
    ++iterations;
    if (iterations > 64) break;
  }
  return iterations;
}

/// Ceiling of log2 for positive integers; log2_ceil(1) == 0.
[[nodiscard]] inline int log2_ceil(std::uint64_t n) noexcept {
  int bits = 0;
  std::uint64_t value = 1;
  while (value < n) {
    value <<= 1;
    ++bits;
    if (bits >= 64) break;
  }
  return bits;
}

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_ITERATED_LOG_H
