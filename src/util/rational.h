#ifndef LCAKNAP_UTIL_RATIONAL_H
#define LCAKNAP_UTIL_RATIONAL_H

#include <compare>
#include <cstdint>
#include <string>

/// \file rational.h
/// Exact rational arithmetic for efficiency values.
///
/// Section 4.2 of the paper ("Mapping to a finite domain") observes that when
/// profits and weights are integers of polynomial bit-length, every efficiency
/// ratio p/w lives in a *known, finite* ordered domain X of size 2^poly(n).
/// Reproducibility of the quantile computation hinges on all replicas agreeing
/// exactly on the order of these values, so we never compare efficiencies
/// through floating point: `Rational` keeps (numerator, denominator) in 64
/// bits and compares via 128-bit cross products, which is exact for all
/// operands below 2^63.

namespace lcaknap::util {

/// A reduced fraction num/den with den > 0.  Immutable value type.
class Rational {
 public:
  /// Zero.
  constexpr Rational() noexcept : num_(0), den_(1) {}

  /// Constructs num/den, reducing to lowest terms and normalising the sign
  /// into the numerator.  `den` must be non-zero.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

  /// Exact three-way comparison via 128-bit cross multiplication.
  [[nodiscard]] friend constexpr std::strong_ordering operator<=>(
      const Rational& a, const Rational& b) noexcept {
    const __int128 lhs = static_cast<__int128>(a.num_) * b.den_;
    const __int128 rhs = static_cast<__int128>(b.num_) * a.den_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  [[nodiscard]] friend constexpr bool operator==(const Rational& a,
                                                 const Rational& b) noexcept {
    return (a <=> b) == std::strong_ordering::equal;
  }

  /// Exact product; throws std::overflow_error if the reduced result does not
  /// fit in 64 bits.
  [[nodiscard]] Rational operator*(const Rational& other) const;

  /// Exact sum; throws std::overflow_error on 64-bit overflow of the result.
  [[nodiscard]] Rational operator+(const Rational& other) const;

  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  [[nodiscard]] std::string to_string() const;

  /// Best rational approximation of `x` with denominator at most `max_den`,
  /// via the Stern–Brocot tree.  Used to snap user-facing `double` parameters
  /// (like epsilon) onto the exact grid once, so that all replicas share the
  /// same exact value.
  [[nodiscard]] static Rational from_double(double x, std::int64_t max_den = 1'000'000);

 private:
  std::int64_t num_;
  std::int64_t den_;
};

/// Exact comparison of the products a1*a2 and b1*b2 where every factor fits
/// in 64 bits and each product fits in 128 bits.  Used for "triple product"
/// threshold tests of the form  p * C1  <=>  w * C2  that arise when
/// comparing normalized efficiencies to rational thresholds.
[[nodiscard]] constexpr std::strong_ordering cmp_products(
    std::int64_t a1, std::int64_t a2, std::int64_t b1, std::int64_t b2) noexcept {
  const __int128 lhs = static_cast<__int128>(a1) * a2;
  const __int128 rhs = static_cast<__int128>(b1) * b2;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_RATIONAL_H
