#ifndef LCAKNAP_UTIL_RATIONAL_H
#define LCAKNAP_UTIL_RATIONAL_H

#include <compare>
#include <cstdint>
#include <string>

/// \file rational.h
/// Exact rational arithmetic for efficiency values.
///
/// Section 4.2 of the paper ("Mapping to a finite domain") observes that when
/// profits and weights are integers of polynomial bit-length, every efficiency
/// ratio p/w lives in a *known, finite* ordered domain X of size 2^poly(n).
/// Reproducibility of the quantile computation hinges on all replicas agreeing
/// exactly on the order of these values, so we never compare efficiencies
/// through floating point: `Rational` keeps (numerator, denominator) in 64
/// bits and compares via cross products, which is exact for all operands
/// below 2^63.
///
/// Comparison cost matters: the greedy sorts and the warm-up's efficiency
/// handling call these comparators O(n log n) times.  Both `operator<=>` and
/// `cmp_products` therefore take an overflow-checked `int64` fast path
/// (`__builtin_mul_overflow`, a single mul + flags test on x86-64) and fall
/// back to full 128-bit products only when either cross product could
/// overflow — which for realistic instance profits/weights (< 2^31) never
/// happens.  The two paths agree exactly by construction; bench_warmup's
/// rational microbench (E17) measures what the fast path buys, and
/// `cmp_products_wide` keeps the always-128-bit reference alive for that
/// comparison and for the property tests.

namespace lcaknap::util {

/// A reduced fraction num/den with den > 0.  Immutable value type.
class Rational {
 public:
  /// Zero.
  constexpr Rational() noexcept : num_(0), den_(1) {}

  /// Constructs num/den, reducing to lowest terms and normalising the sign
  /// into the numerator.  `den` must be non-zero.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

  /// Exact three-way comparison: overflow-checked int64 cross products, with
  /// a 128-bit fallback when either product might not fit.
  [[nodiscard]] friend constexpr std::strong_ordering operator<=>(
      const Rational& a, const Rational& b) noexcept {
    std::int64_t lhs = 0;
    std::int64_t rhs = 0;
    if (!__builtin_mul_overflow(a.num_, b.den_, &lhs) &&
        !__builtin_mul_overflow(b.num_, a.den_, &rhs)) {
      if (lhs < rhs) return std::strong_ordering::less;
      if (lhs > rhs) return std::strong_ordering::greater;
      return std::strong_ordering::equal;
    }
    const __int128 wide_lhs = static_cast<__int128>(a.num_) * b.den_;
    const __int128 wide_rhs = static_cast<__int128>(b.num_) * a.den_;
    if (wide_lhs < wide_rhs) return std::strong_ordering::less;
    if (wide_lhs > wide_rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  [[nodiscard]] friend constexpr bool operator==(const Rational& a,
                                                 const Rational& b) noexcept {
    return (a <=> b) == std::strong_ordering::equal;
  }

  /// Exact product; throws std::overflow_error if the reduced result does not
  /// fit in 64 bits.
  [[nodiscard]] Rational operator*(const Rational& other) const;

  /// Exact sum; throws std::overflow_error on 64-bit overflow of the result.
  [[nodiscard]] Rational operator+(const Rational& other) const;

  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  [[nodiscard]] std::string to_string() const;

  /// Best rational approximation of `x` with denominator at most `max_den`,
  /// via the Stern–Brocot tree.  Used to snap user-facing `double` parameters
  /// (like epsilon) onto the exact grid once, so that all replicas share the
  /// same exact value.
  [[nodiscard]] static Rational from_double(double x, std::int64_t max_den = 1'000'000);

 private:
  std::int64_t num_;
  std::int64_t den_;
};

/// Always-128-bit comparison of the products a1*a2 and b1*b2 where every
/// factor fits in 64 bits and each product fits in 128 bits.  This is the
/// reference implementation `cmp_products` must agree with; it also anchors
/// the fast-vs-wide microbench in bench_warmup (E17).
[[nodiscard]] constexpr std::strong_ordering cmp_products_wide(
    std::int64_t a1, std::int64_t a2, std::int64_t b1, std::int64_t b2) noexcept {
  const __int128 lhs = static_cast<__int128>(a1) * a2;
  const __int128 rhs = static_cast<__int128>(b1) * b2;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

/// Exact comparison of the products a1*a2 and b1*b2 where every factor fits
/// in 64 bits and each product fits in 128 bits.  Used for "triple product"
/// threshold tests of the form  p * C1  <=>  w * C2  that arise when
/// comparing normalized efficiencies to rational thresholds.  Overflow-checked
/// int64 fast path; falls back to `cmp_products_wide` only when a product
/// could exceed 64 bits.
[[nodiscard]] constexpr std::strong_ordering cmp_products(
    std::int64_t a1, std::int64_t a2, std::int64_t b1, std::int64_t b2) noexcept {
  std::int64_t lhs = 0;
  std::int64_t rhs = 0;
  if (!__builtin_mul_overflow(a1, a2, &lhs) &&
      !__builtin_mul_overflow(b1, b2, &rhs)) {
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  return cmp_products_wide(a1, a2, b1, b2);
}

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_RATIONAL_H
