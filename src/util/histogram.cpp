#include "util/histogram.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace lcaknap::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
}

void Histogram::add(double x) noexcept {
  const double position = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto bin = position < 0.0 ? std::size_t{0}
                            : static_cast<std::size_t>(position);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (const double x : xs) add(x);
}

std::size_t Histogram::bin_count(std::size_t bin) const { return counts_.at(bin); }

std::pair<double, double> Histogram::bin_range(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return {lo_ + width * static_cast<double>(bin),
          lo_ + width * static_cast<double>(bin + 1)};
}

void Histogram::print(std::ostream& os, const std::string& title,
                      std::size_t bar_width) const {
  if (!title.empty()) os << "== " << title << " ==\n";
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto [bin_lo, bin_hi] = bin_range(b);
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    os << std::fixed << std::setprecision(3) << "[" << std::setw(8) << bin_lo
       << ", " << std::setw(8) << bin_hi << ")  " << std::setw(7) << counts_[b]
       << "  " << std::string(bar, '#') << "\n";
  }
  os.flush();
}

}  // namespace lcaknap::util
