#ifndef LCAKNAP_UTIL_STATS_H
#define LCAKNAP_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// \file stats.h
/// Statistical utilities shared by the reproducibility layer, the tests and
/// the benchmark harness: streaming moments, empirical CDFs/quantiles, the
/// Dvoretzky–Kiefer–Wolfowitz sample-size bound, confidence intervals for
/// Bernoulli rates, and a chi-square goodness-of-fit statistic.

namespace lcaknap::util {

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two observations).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Half-width of a normal-approximation confidence interval on the mean.
  [[nodiscard]] double ci_half_width(double z = 1.96) const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Empirical distribution over a sorted copy of the data.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::span<const double> data);

  /// F̂(x) = fraction of observations <= x.
  [[nodiscard]] double at(double x) const noexcept;
  /// Smallest observation v with F̂(v) >= p (the empirical p-quantile).
  [[nodiscard]] double quantile(double p) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

/// One cell of a pre-aggregated integer multiset: `count` observations of
/// `value` (the warm-up trace stores its quantile sweep this way).
struct WeightedValue {
  std::int64_t value = 0;
  std::size_t count = 0;
};

/// Integer-domain empirical CDF, used by the reproducible-median machinery
/// whose domain is a grid of 2^d integers.
class EmpiricalCdfInt {
 public:
  explicit EmpiricalCdfInt(std::span<const std::int64_t> data);

  /// Counting constructor for data known to lie in [0, domain_size):
  /// O(n + domain) instead of O(n log n), a large win for the warm-up's
  /// millions of grid-mapped efficiency samples over a 2^12-cell domain.
  /// Stores only the cumulative histogram — O(domain) memory, never a
  /// per-observation copy — and every readout (at, quantile, size) returns
  /// exactly what the generic constructor's sorted representation would.
  EmpiricalCdfInt(std::span<const std::int64_t> data, std::int64_t domain_size);

  /// Same cumulative-histogram CDF from pre-aggregated (value, count) cells
  /// (values in [0, domain_size), counts summed per value): O(cells +
  /// domain), independent of the total observation count.  The delta
  /// warm-up replay's path — its trace already holds counts, so expanding
  /// them back into individual observations would cost the very
  /// O(samples) the replay exists to avoid.
  EmpiricalCdfInt(std::span<const WeightedValue> weighted,
                  std::int64_t domain_size);

  [[nodiscard]] double at(std::int64_t x) const noexcept;
  /// Smallest observed value v with F̂(v) >= p; `fallback` when no data.
  [[nodiscard]] std::int64_t quantile(double p, std::int64_t fallback = 0) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  /// Sorted observations (generic constructor) — empty in histogram mode.
  std::vector<std::int64_t> sorted_;
  /// cum_[v] = observations <= v (histogram mode) — empty in sorted mode.
  std::vector<std::size_t> cum_;
  std::size_t n_ = 0;
};

/// DKW inequality: sample size guaranteeing sup_x |F̂(x) - F(x)| <= eps with
/// probability at least 1 - delta.
[[nodiscard]] std::size_t dkw_sample_size(double eps, double delta) noexcept;

/// Wilson-score confidence interval for a Bernoulli success rate.
struct RateInterval {
  double lo;
  double hi;
};
[[nodiscard]] RateInterval wilson_interval(std::size_t successes, std::size_t trials,
                                           double z = 1.96) noexcept;

/// Pearson chi-square statistic for observed counts against expected
/// probabilities (both spans must have equal, positive length).
[[nodiscard]] double chi_square(std::span<const std::size_t> observed,
                                std::span<const double> expected_probs);

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_STATS_H
