#ifndef LCAKNAP_UTIL_THREAD_POOL_H
#define LCAKNAP_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// A small fixed-size thread pool.  LCAs are *parallelizable* by definition
/// (Definition 2.3): independent replicas sharing only the random seed must
/// produce consistent answers.  The consistency harness and the distributed
/// serving example run replicas on this pool to exercise that property for
/// real, not just sequentially.

namespace lcaknap::util {

class ThreadPool {
 public:
  /// Starts `threads` workers (defaults to hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  ///
  /// Exception propagation (rethrow-first semantics): if any task threw
  /// since the last wait, the *first* captured exception is rethrown here
  /// once — remaining tasks still ran to completion, and later exceptions
  /// from the same generation are dropped.  A pool destroyed with a pending
  /// exception swallows it (destructors cannot throw); callers that care
  /// must wait_idle() before destruction.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  /// Waits via wait_idle(), so a throwing fn surfaces here (first exception
  /// wins; every index is still attempted).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;  ///< first uncaught task exception, if any
};

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_THREAD_POOL_H
