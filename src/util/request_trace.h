#ifndef LCAKNAP_UTIL_REQUEST_TRACE_H
#define LCAKNAP_UTIL_REQUEST_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

/// \file request_trace.h
/// Recorded request logs: the trace vocabulary shared by the workload
/// generator (`core::generate_workload`'s `trace` shape) and the network
/// load generator (`lcaknap_loadgen --trace-record / --trace-replay`).
///
/// A trace is the replayable ground truth of real traffic: synthetic shapes
/// (uniform/zipf/hotspot) approximate popularity, but a recorded log carries
/// the exact item sequence, tenant attribution, and timing an incident or a
/// capacity test actually saw.  Replaying it makes performance work
/// falsifiable — the same byte sequence drives the serving stack before and
/// after a change (experiment E22 replays traces through the batch answer
/// path).
///
/// Format (versioned, line-oriented, append-friendly):
///
///     lcaknap-trace 1
///     <timestamp_us> <item> <tenant>
///     ...
///
/// Timestamps are microseconds relative to the recording's start and must be
/// non-decreasing; `tenant` is a `[A-Za-z0-9._-]+` id (the wire protocol's
/// tenant alphabet).  Parsing is strict: any malformed line is a typed
/// `TraceParseError` carrying the 1-based line number, never a silently
/// skipped record.

namespace lcaknap::util {

/// One recorded request.
struct TraceRecord {
  std::uint64_t timestamp_us = 0;  ///< microseconds since recording start
  std::uint64_t item = 0;          ///< queried item index
  std::string tenant = "default";  ///< tenant id ([A-Za-z0-9._-]+)

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Malformed trace input; `line()` is the 1-based offending line.
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(std::size_t line, const std::string& what)
      : std::runtime_error("trace line " + std::to_string(line) + ": " + what),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Serializes `records` in the versioned text format.
void write_trace(const std::vector<TraceRecord>& records, std::ostream& os);

/// Parses a trace; throws `TraceParseError` on any malformed header or
/// record (bad field count, non-numeric fields, tenant outside the
/// `[A-Za-z0-9._-]+` alphabet, or a timestamp going backwards).
[[nodiscard]] std::vector<TraceRecord> read_trace(std::istream& is);

/// File wrappers; throw `std::runtime_error` when the file cannot be
/// opened, `TraceParseError` on malformed content.
void save_trace_file(const std::vector<TraceRecord>& records,
                     const std::string& path);
[[nodiscard]] std::vector<TraceRecord> load_trace_file(const std::string& path);

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_REQUEST_TRACE_H
