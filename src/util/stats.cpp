#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace lcaknap::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci_half_width(double z) const noexcept {
  return n_ >= 2 ? z * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

EmpiricalCdf::EmpiricalCdf(std::span<const double> data)
    : sorted_(data.begin(), data.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const noexcept {
  if (sorted_.empty()) return 0.0;
  const double clamped = std::clamp(p, 0.0, 1.0);
  const auto n = static_cast<double>(sorted_.size());
  auto idx = static_cast<std::size_t>(std::ceil(clamped * n));
  if (idx > 0) --idx;
  idx = std::min(idx, sorted_.size() - 1);
  return sorted_[idx];
}

EmpiricalCdfInt::EmpiricalCdfInt(std::span<const std::int64_t> data)
    : sorted_(data.begin(), data.end()), n_(data.size()) {
  std::sort(sorted_.begin(), sorted_.end());
}

EmpiricalCdfInt::EmpiricalCdfInt(std::span<const std::int64_t> data,
                                 std::int64_t domain_size) {
  if (domain_size <= 0) {
    throw std::invalid_argument("EmpiricalCdfInt: domain_size must be positive");
  }
  cum_.assign(static_cast<std::size_t>(domain_size), 0);
  for (const auto v : data) {
    if (v < 0 || v >= domain_size) {
      throw std::invalid_argument("EmpiricalCdfInt: value outside [0, domain_size)");
    }
    ++cum_[static_cast<std::size_t>(v)];
  }
  for (std::size_t value = 1; value < cum_.size(); ++value) {
    cum_[value] += cum_[value - 1];
  }
  n_ = cum_.empty() ? 0 : cum_.back();
}

EmpiricalCdfInt::EmpiricalCdfInt(std::span<const WeightedValue> weighted,
                                 std::int64_t domain_size) {
  if (domain_size <= 0) {
    throw std::invalid_argument("EmpiricalCdfInt: domain_size must be positive");
  }
  cum_.assign(static_cast<std::size_t>(domain_size), 0);
  for (const auto& [value, count] : weighted) {
    if (value < 0 || value >= domain_size) {
      throw std::invalid_argument("EmpiricalCdfInt: value outside [0, domain_size)");
    }
    cum_[static_cast<std::size_t>(value)] += count;
  }
  for (std::size_t value = 1; value < cum_.size(); ++value) {
    cum_[value] += cum_[value - 1];
  }
  n_ = cum_.empty() ? 0 : cum_.back();
}

double EmpiricalCdfInt::at(std::int64_t x) const noexcept {
  if (n_ == 0) return 0.0;
  if (!cum_.empty()) {
    if (x < 0) return 0.0;
    const auto idx = std::min(static_cast<std::size_t>(x), cum_.size() - 1);
    return static_cast<double>(cum_[idx]) / static_cast<double>(n_);
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(n_);
}

std::int64_t EmpiricalCdfInt::quantile(double p, std::int64_t fallback) const noexcept {
  if (n_ == 0) return fallback;
  const double clamped = std::clamp(p, 0.0, 1.0);
  auto idx = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(n_)));
  if (idx > 0) --idx;
  idx = std::min(idx, n_ - 1);
  if (!cum_.empty()) {
    // The idx-th order statistic: the smallest value v with cum_[v] > idx —
    // exactly sorted_[idx] of the expanded representation.
    const auto it = std::upper_bound(cum_.begin(), cum_.end(), idx);
    return static_cast<std::int64_t>(it - cum_.begin());
  }
  return sorted_[idx];
}

std::size_t dkw_sample_size(double eps, double delta) noexcept {
  assert(eps > 0 && delta > 0 && delta < 1);
  return static_cast<std::size_t>(
      std::ceil(std::log(2.0 / delta) / (2.0 * eps * eps)));
}

RateInterval wilson_interval(std::size_t successes, std::size_t trials,
                             double z) noexcept {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double chi_square(std::span<const std::size_t> observed,
                  std::span<const double> expected_probs) {
  if (observed.size() != expected_probs.size() || observed.empty()) {
    throw std::invalid_argument("chi_square: mismatched or empty inputs");
  }
  std::size_t total = 0;
  for (const auto count : observed) total += count;
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_probs[i] * static_cast<double>(total);
    if (expected <= 0.0) {
      throw std::invalid_argument("chi_square: non-positive expected count");
    }
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

}  // namespace lcaknap::util
