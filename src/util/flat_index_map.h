#ifndef LCAKNAP_UTIL_FLAT_INDEX_MAP_H
#define LCAKNAP_UTIL_FLAT_INDEX_MAP_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.h"

/// \file flat_index_map.h
/// Open-addressing hash map from item indices to small values, tuned for the
/// warm-up's large-item dedup (Lemma 4.2): the sweep draws millions of
/// weighted samples but keeps only the O(1/eps^2) distinct large items, so
/// the dedup structure is hit once per sample and must not allocate per
/// insert or chase pointers.  `std::map` (the previous implementation) does
/// both; this table is a single flat array probed linearly from a mixed hash,
/// insert-only, and growth doubles the array.  Iteration order of a hash
/// table is not deterministic across capacities, so consumers that need the
/// old `std::map` ordering call `extract_sorted()`, which yields entries in
/// increasing key order — making the structure a drop-in replacement on the
/// determinism-critical paths (the warm-up digest covers this).

namespace lcaknap::util {

/// Insert-only open-addressing map keyed by `std::size_t`.  First insert for
/// a key wins (matching `std::map::emplace`); values must be movable.
template <typename Value>
class FlatIndexMap {
 public:
  /// `expected` sizes the initial table (rounded up to a power of two at
  /// twice the expected occupancy, keeping the load factor below 1/2).
  explicit FlatIndexMap(std::size_t expected = 16) {
    std::size_t capacity = 16;
    while (capacity < expected * 2) capacity *= 2;
    slots_.resize(capacity);
  }

  /// Inserts (key, value) if the key is absent; returns true on insert.
  bool emplace(std::size_t key, const Value& value) {
    if ((size_ + 1) * 2 > slots_.size()) grow();
    const std::size_t slot = probe(key);
    if (slots_[slot].occupied) return false;
    slots_[slot].occupied = true;
    slots_[slot].key = key;
    slots_[slot].value = value;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(std::size_t key) const {
    return slots_[probe(key)].occupied;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// All entries in increasing key order (the order `std::map` iteration
  /// used to provide).  The table is left intact.
  [[nodiscard]] std::vector<std::pair<std::size_t, Value>> extract_sorted() const {
    std::vector<std::pair<std::size_t, Value>> entries;
    entries.reserve(size_);
    for (const auto& slot : slots_) {
      if (slot.occupied) entries.emplace_back(slot.key, slot.value);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return entries;
  }

 private:
  struct Slot {
    std::size_t key = 0;
    Value value{};
    bool occupied = false;
  };

  /// First slot that is empty or holds `key` (linear probing; the table
  /// always has empty slots because the load factor stays below 1/2).
  [[nodiscard]] std::size_t probe(std::size_t key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = mix64(static_cast<std::uint64_t>(key)) & mask;
    while (slots_[slot].occupied && slots_[slot].key != key) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(old.size() * 2);
    for (auto& slot : old) {
      if (!slot.occupied) continue;
      const std::size_t target = probe(slot.key);
      slots_[target].occupied = true;
      slots_[target].key = slot.key;
      slots_[target].value = std::move(slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_FLAT_INDEX_MAP_H
