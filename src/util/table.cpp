#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lcaknap::util {

std::string format_double(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: cell count does not match headers");
  }
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(const std::string& s) {
  cells_.push_back(s);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double v, int precision) {
  cells_.push_back(format_double(v, precision));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(long long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(unsigned long long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

}  // namespace lcaknap::util
