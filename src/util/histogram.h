#ifndef LCAKNAP_UTIL_HISTOGRAM_H
#define LCAKNAP_UTIL_HISTOGRAM_H

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

/// \file histogram.h
/// Fixed-bin histogram with ASCII rendering, used by benches to show the
/// distribution of per-run quantities (values served, samples drawn) rather
/// than just their means.

namespace lcaknap::util {

class Histogram {
 public:
  /// `bins` equal-width bins over [lo, hi]; out-of-range observations clamp
  /// into the end bins.  Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return total_; }
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  /// [lower, upper) edges of a bin.
  [[nodiscard]] std::pair<double, double> bin_range(std::size_t bin) const;

  /// Renders one line per bin: range, count, and a proportional bar.
  void print(std::ostream& os, const std::string& title = "",
             std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace lcaknap::util

#endif  // LCAKNAP_UTIL_HISTOGRAM_H
