#include "util/request_trace.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace lcaknap::util {

namespace {

constexpr const char* kMagic = "lcaknap-trace";
constexpr int kVersion = 1;

[[nodiscard]] bool valid_tenant(const std::string& tenant) noexcept {
  if (tenant.empty()) return false;
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

void write_trace(const std::vector<TraceRecord>& records, std::ostream& os) {
  os << kMagic << " " << kVersion << "\n";
  for (const auto& record : records) {
    os << record.timestamp_us << " " << record.item << " " << record.tenant
       << "\n";
  }
}

std::vector<TraceRecord> read_trace(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(is, line)) {
    throw TraceParseError(1, "missing header");
  }
  ++line_no;
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != kMagic) {
      throw TraceParseError(line_no, "bad magic (want \"" +
                                         std::string(kMagic) + " 1\")");
    }
    if (version != kVersion) {
      throw TraceParseError(line_no,
                            "unsupported version " + std::to_string(version));
    }
  }
  std::vector<TraceRecord> records;
  std::uint64_t previous_ts = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;  // trailing newline tolerance
    std::istringstream fields(line);
    TraceRecord record;
    std::string trailing;
    if (!(fields >> record.timestamp_us >> record.item >> record.tenant)) {
      throw TraceParseError(line_no, "want <timestamp_us> <item> <tenant>");
    }
    if (fields >> trailing) {
      throw TraceParseError(line_no, "trailing field: " + trailing);
    }
    if (!valid_tenant(record.tenant)) {
      throw TraceParseError(line_no, "bad tenant id: " + record.tenant);
    }
    if (record.timestamp_us < previous_ts) {
      throw TraceParseError(line_no, "timestamp goes backwards");
    }
    previous_ts = record.timestamp_us;
    records.push_back(std::move(record));
  }
  return records;
}

void save_trace_file(const std::vector<TraceRecord>& records,
                     const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open trace file: " + path);
  write_trace(records, os);
  if (!os.good()) throw std::runtime_error("short write to trace: " + path);
}

std::vector<TraceRecord> load_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(is);
}

}  // namespace lcaknap::util
