#include "util/rational.h"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lcaknap::util {

namespace {

/// Reduces a 128-bit fraction to a 64-bit Rational, throwing on overflow.
Rational reduce128(__int128 num, __int128 den) {
  if (den == 0) throw std::invalid_argument("Rational: zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  // gcd over unsigned 128-bit magnitudes (Euclid).
  unsigned __int128 a = num < 0 ? static_cast<unsigned __int128>(-num)
                                : static_cast<unsigned __int128>(num);
  unsigned __int128 b = static_cast<unsigned __int128>(den);
  while (b != 0) {
    const unsigned __int128 t = a % b;
    a = b;
    b = t;
  }
  if (a > 1) {
    const auto g = static_cast<__int128>(a);
    num /= g;
    den /= g;
  }
  constexpr __int128 kMax = std::numeric_limits<std::int64_t>::max();
  constexpr __int128 kMin = std::numeric_limits<std::int64_t>::min();
  if (num > kMax || num < kMin || den > kMax) {
    throw std::overflow_error("Rational: result exceeds 64 bits after reduction");
  }
  return {static_cast<std::int64_t>(num), static_cast<std::int64_t>(den)};
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  if (den_ == 0) throw std::invalid_argument("Rational: zero denominator");
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::operator*(const Rational& other) const {
  return reduce128(static_cast<__int128>(num_) * other.num_,
                   static_cast<__int128>(den_) * other.den_);
}

Rational Rational::operator+(const Rational& other) const {
  return reduce128(static_cast<__int128>(num_) * other.den_ +
                       static_cast<__int128>(other.num_) * den_,
                   static_cast<__int128>(den_) * other.den_);
}

std::string Rational::to_string() const {
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::from_double(double x, std::int64_t max_den) {
  if (!std::isfinite(x)) throw std::invalid_argument("Rational::from_double: non-finite");
  assert(max_den >= 1);
  const bool negative = x < 0;
  const double magnitude = negative ? -x : x;
  // Split off the integer part first so the Stern–Brocot descent below only
  // ever walks the fractional tree, whose mediant denominators grow each step.
  const double int_part_d = std::floor(magnitude);
  if (int_part_d > 1e15) throw std::overflow_error("Rational::from_double: magnitude too large");
  const auto int_part = static_cast<std::int64_t>(int_part_d);
  double target = magnitude - int_part_d;
  // Stern–Brocot descent keeping the best mediant with denominator <= max_den.
  std::int64_t lo_n = 0, lo_d = 1;          // 0/1
  std::int64_t hi_n = 1, hi_d = 0;          // 1/0 = +inf
  std::int64_t best_n = 0, best_d = 1;
  double best_err = target;
  while (true) {
    const std::int64_t mid_n = lo_n + hi_n;
    const std::int64_t mid_d = lo_d + hi_d;
    if (mid_d > max_den) break;
    const double mid = static_cast<double>(mid_n) / static_cast<double>(mid_d);
    const double err = std::abs(mid - target);
    if (err < best_err) {
      best_err = err;
      best_n = mid_n;
      best_d = mid_d;
      if (err == 0) break;
    }
    if (mid < target) {
      lo_n = mid_n;
      lo_d = mid_d;
    } else {
      hi_n = mid_n;
      hi_d = mid_d;
    }
  }
  const __int128 with_int =
      static_cast<__int128>(int_part) * best_d + best_n;
  if (with_int > std::numeric_limits<std::int64_t>::max()) {
    throw std::overflow_error("Rational::from_double: result exceeds 64 bits");
  }
  const auto n = static_cast<std::int64_t>(with_int);
  return {negative ? -n : n, best_d};
}

}  // namespace lcaknap::util
