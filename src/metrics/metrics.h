#ifndef LCAKNAP_METRICS_METRICS_H
#define LCAKNAP_METRICS_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

/// \file metrics.h
/// The observability layer: a thread-safe registry of named metric families.
///
/// Every claim in the paper is a statement about query counts — the lower
/// bounds of Theorems 3.2–3.4 bound them from below, Theorem 4.1 from above —
/// so the serving stack surfaces those counts as live metrics instead of
/// ad-hoc per-bench counter reads.  Four instrument kinds:
///
///  * `Counter`   — monotonic u64 (e.g. `oracle_queries_total`);
///  * `Gauge`     — settable double (e.g. `serving_warmup_sim_ms`);
///  * `Histogram` — fixed cumulative buckets with count/sum and
///                  interpolated percentile readout (e.g.
///                  `serving_query_latency_us`);
///  * `ScopedTimer` — RAII span that observes its elapsed wall time, in
///                  microseconds, into a histogram.
///
/// Instruments are registered once per (name, labels) pair and live for the
/// registry's lifetime, so callers may cache the returned references.  All
/// mutation paths are lock-free atomics; registration takes a mutex.
/// Exporters (see exporters.h) read a consistent `Snapshot`.

namespace lcaknap::metrics {

/// Sorted key/value label set, e.g. {{"shard", "3"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter.  Increments are relaxed atomics: exact
/// under any interleaving, imposing no ordering (same discipline as the
/// legacy `InstanceAccess` counters they canonicalize).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double, with an atomic add for accumulation.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram in the Prometheus style: strictly increasing
/// finite upper bounds plus an implicit +Inf bucket.  Observations are
/// lock-free; percentile readout interpolates linearly inside the bucket
/// that crosses the requested rank (the +Inf bucket reports its lower edge).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;
  /// Interpolated quantile, p in [0, 1].  Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return upper_bounds_;
  }
  /// Per-bucket (non-cumulative) counts; index upper_bounds().size() is +Inf.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  /// `count` buckets growing geometrically from `start` by `factor`.
  static std::vector<double> exponential_buckets(double start, double factor,
                                                 std::size_t count);
  static std::vector<double> linear_buckets(double start, double width,
                                            std::size_t count);

 private:
  std::vector<double> upper_bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // size bounds+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// RAII span: observes the elapsed wall time (microseconds) into `hist` on
/// destruction, unless `cancel()`ed first.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->observe(elapsed_us());
  }

  [[nodiscard]] double elapsed_us() const noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void cancel() noexcept { hist_ = nullptr; }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Read-only copy of a registry's state, taken under the registration lock
/// but reading instrument values with relaxed loads (monotone counters may
/// be mid-increment; each value is individually exact).
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::string help;
    Labels labels;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::string help;
    Labels labels;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::string help;
    Labels labels;
    std::vector<double> upper_bounds;       ///< finite bounds; +Inf implicit
    std::vector<std::uint64_t> bucket_counts;  ///< size upper_bounds + 1
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Thread-safe metric registry.  Families are identified by name; instruments
/// within a family by their label set.  Registering the same (name, labels)
/// twice returns the same instrument; reusing a name with a different
/// instrument kind throws std::invalid_argument.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upper_bounds, const Labels& labels = {});

  /// Current value of a counter, or 0 if the (name, labels) pair was never
  /// registered.  Benches use before/after deltas of this to cross-check the
  /// legacy accessors.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name,
                                            const Labels& labels = {}) const;

  [[nodiscard]] Snapshot snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<Instrument> instruments;  // registration order
  };

  Family& family(const std::string& name, const std::string& help, Kind kind);
  static Instrument* find(std::vector<Instrument>& instruments, const Labels& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;  // registration order
  /// Name lookup only — O(1) hash instead of the former ordered map's tree
  /// walk per registration/lookup.  Export order is defined by `families_`
  /// (registration order), never by this table's iteration order, so the
  /// switch cannot reorder exporter output (pinned by the exporter tests).
  std::unordered_map<std::string, Family*> by_name_;
};

/// The process-wide default registry; the serving stack's instruments all
/// live here unless a caller supplies its own registry.
Registry& global_registry();

}  // namespace lcaknap::metrics

#endif  // LCAKNAP_METRICS_METRICS_H
