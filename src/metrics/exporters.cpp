#include "metrics/exporters.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

namespace lcaknap::metrics {

namespace {

/// Shortest-round-trip formatting for sample values; Prometheus and JSON both
/// accept plain decimal or exponent notation.
std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, v);
    if (std::strtod(candidate, nullptr) == v) return candidate;
  }
  return buf;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{a="x",b="y"}` (empty string for no labels); `extra` appends one
/// more pair, used for histogram `le`.
std::string label_block(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + escape_label_value(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + escape_label_value(extra_value) + "\"";
  }
  return out + "}";
}

std::string json_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
  return out + "}";
}

}  // namespace

ExportFormat parse_export_format(const std::string& name) {
  if (name == "prom" || name == "prometheus") return ExportFormat::kPrometheus;
  if (name == "json" || name == "jsonl") return ExportFormat::kJson;
  throw std::invalid_argument("unknown metrics format: " + name +
                              " (expected prom or json)");
}

void write_prometheus(const Snapshot& snapshot, std::ostream& os) {
  std::string last_family;
  const auto header = [&](const std::string& name, const std::string& help,
                          const char* type) {
    if (name == last_family) return;  // one header per family
    last_family = name;
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " " << type << "\n";
  };
  for (const auto& c : snapshot.counters) {
    header(c.name, c.help, "counter");
    os << c.name << label_block(c.labels) << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    header(g.name, g.help, "gauge");
    os << g.name << label_block(g.labels) << " " << format_value(g.value) << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    header(h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      const std::string le =
          i < h.upper_bounds.size() ? format_value(h.upper_bounds[i]) : "+Inf";
      os << h.name << "_bucket" << label_block(h.labels, "le", le) << " "
         << cumulative << "\n";
    }
    os << h.name << "_sum" << label_block(h.labels) << " " << format_value(h.sum)
       << "\n";
    os << h.name << "_count" << label_block(h.labels) << " " << h.count << "\n";
  }
}

void write_json_lines(const Snapshot& snapshot, std::ostream& os) {
  for (const auto& c : snapshot.counters) {
    os << "{\"name\":\"" << json_escape(c.name) << "\",\"type\":\"counter\","
       << "\"labels\":" << json_labels(c.labels) << ",\"value\":" << c.value
       << "}\n";
  }
  for (const auto& g : snapshot.gauges) {
    os << "{\"name\":\"" << json_escape(g.name) << "\",\"type\":\"gauge\","
       << "\"labels\":" << json_labels(g.labels)
       << ",\"value\":" << format_value(g.value) << "}\n";
  }
  for (const auto& h : snapshot.histograms) {
    os << "{\"name\":\"" << json_escape(h.name) << "\",\"type\":\"histogram\","
       << "\"labels\":" << json_labels(h.labels) << ",\"count\":" << h.count
       << ",\"sum\":" << format_value(h.sum) << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"le\":";
      if (i < h.upper_bounds.size()) {
        os << format_value(h.upper_bounds[i]);
      } else {
        os << "\"+Inf\"";
      }
      os << ",\"count\":" << h.bucket_counts[i] << "}";
    }
    os << "]}\n";
  }
}

void write_registry(const Registry& registry, ExportFormat format, std::ostream& os) {
  const Snapshot snap = registry.snapshot();
  switch (format) {
    case ExportFormat::kPrometheus: write_prometheus(snap, os); break;
    case ExportFormat::kJson: write_json_lines(snap, os); break;
  }
}

}  // namespace lcaknap::metrics
