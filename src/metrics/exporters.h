#ifndef LCAKNAP_METRICS_EXPORTERS_H
#define LCAKNAP_METRICS_EXPORTERS_H

#include <iosfwd>
#include <string>

#include "metrics/metrics.h"

/// \file exporters.h
/// Registry serialization, selectable at runtime:
///
///  * Prometheus text exposition (version 0.0.4) — `# HELP` / `# TYPE`
///    headers, `_bucket{le=...}` / `_sum` / `_count` series for histograms —
///    ready for a scrape endpoint or the textfile collector;
///  * JSON lines — one self-describing object per instrument, for piping
///    into `jq` or a log-based metrics store.
///
/// Both exporters work from a `Snapshot`, so they never hold the registry
/// lock while formatting.

namespace lcaknap::metrics {

enum class ExportFormat {
  kPrometheus,
  kJson,
};

/// Parses "prom"/"prometheus" or "json"/"jsonl"; throws std::invalid_argument
/// otherwise.
[[nodiscard]] ExportFormat parse_export_format(const std::string& name);

void write_prometheus(const Snapshot& snapshot, std::ostream& os);
void write_json_lines(const Snapshot& snapshot, std::ostream& os);

/// Snapshots `registry` and writes it in `format`.
void write_registry(const Registry& registry, ExportFormat format, std::ostream& os);

}  // namespace lcaknap::metrics

#endif  // LCAKNAP_METRICS_EXPORTERS_H
