#include "metrics/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace lcaknap::metrics {

namespace {

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

void Gauge::add(double delta) noexcept { atomic_add(value_, delta); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  if (upper_bounds_.empty()) {
    throw std::invalid_argument("Histogram: needs at least one bucket bound");
  }
  if (!std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()) ||
      std::adjacent_find(upper_bounds_.begin(), upper_bounds_.end()) !=
          upper_bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(upper_bounds_.size() + 1);
  for (std::size_t i = 0; i <= upper_bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double x) noexcept {
  const auto it = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), x);
  const auto bucket = static_cast<std::size_t>(it - upper_bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
}

double Histogram::sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(upper_bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::percentile(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = p * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // The +Inf bucket has no finite upper edge; report its lower edge.
    if (i >= upper_bounds_.size()) return upper_bounds_.back();
    const double lower = i == 0 ? std::min(0.0, upper_bounds_[0]) : upper_bounds_[i - 1];
    const double upper = upper_bounds_[i];
    const double within =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
  }
  return upper_bounds_.back();
}

std::vector<double> Histogram::exponential_buckets(double start, double factor,
                                                   std::size_t count) {
  if (!(start > 0.0) || !(factor > 1.0) || count == 0) {
    throw std::invalid_argument("exponential_buckets: start > 0, factor > 1, count > 0");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::linear_buckets(double start, double width,
                                              std::size_t count) {
  if (!(width > 0.0) || count == 0) {
    throw std::invalid_argument("linear_buckets: width > 0, count > 0");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

Registry::Family& Registry::family(const std::string& name, const std::string& help,
                                   Kind kind) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second->kind != kind) {
      throw std::invalid_argument("metrics: family '" + name +
                                  "' already registered with a different kind");
    }
    return *it->second;
  }
  auto owned = std::make_unique<Family>();
  owned->name = name;
  owned->help = help;
  owned->kind = kind;
  Family* raw = owned.get();
  families_.push_back(std::move(owned));
  by_name_[name] = raw;
  return *raw;
}

Registry::Instrument* Registry::find(std::vector<Instrument>& instruments,
                                     const Labels& labels) {
  for (auto& instrument : instruments) {
    if (instrument.labels == labels) return &instrument;
  }
  return nullptr;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  const auto key = sorted(labels);
  const std::lock_guard lock(mutex_);
  auto& fam = family(name, help, Kind::kCounter);
  if (auto* existing = find(fam.instruments, key)) return *existing->counter;
  fam.instruments.push_back({key, std::make_unique<Counter>(), nullptr, nullptr});
  return *fam.instruments.back().counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  const auto key = sorted(labels);
  const std::lock_guard lock(mutex_);
  auto& fam = family(name, help, Kind::kGauge);
  if (auto* existing = find(fam.instruments, key)) return *existing->gauge;
  fam.instruments.push_back({key, nullptr, std::make_unique<Gauge>(), nullptr});
  return *fam.instruments.back().gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               std::vector<double> upper_bounds,
                               const Labels& labels) {
  const auto key = sorted(labels);
  const std::lock_guard lock(mutex_);
  auto& fam = family(name, help, Kind::kHistogram);
  if (auto* existing = find(fam.instruments, key)) return *existing->histogram;
  fam.instruments.push_back(
      {key, nullptr, nullptr, std::make_unique<Histogram>(std::move(upper_bounds))});
  return *fam.instruments.back().histogram;
}

std::uint64_t Registry::counter_value(const std::string& name,
                                      const Labels& labels) const {
  const auto key = sorted(labels);
  const std::lock_guard lock(mutex_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second->kind != Kind::kCounter) return 0;
  for (const auto& instrument : it->second->instruments) {
    if (instrument.labels == key) return instrument.counter->value();
  }
  return 0;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  const std::lock_guard lock(mutex_);
  for (const auto& fam : families_) {
    for (const auto& instrument : fam->instruments) {
      switch (fam->kind) {
        case Kind::kCounter:
          snap.counters.push_back(
              {fam->name, fam->help, instrument.labels, instrument.counter->value()});
          break;
        case Kind::kGauge:
          snap.gauges.push_back(
              {fam->name, fam->help, instrument.labels, instrument.gauge->value()});
          break;
        case Kind::kHistogram: {
          const Histogram& h = *instrument.histogram;
          snap.histograms.push_back({fam->name, fam->help, instrument.labels,
                                     h.upper_bounds(), h.bucket_counts(), h.count(),
                                     h.sum()});
          break;
        }
      }
    }
  }
  return snap;
}

Registry& global_registry() {
  static Registry registry;
  return registry;
}

}  // namespace lcaknap::metrics
