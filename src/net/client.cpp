#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

namespace lcaknap::net {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// Socket errors that mean "the peer is gone", not "this process is broken":
/// the retryable class a failover layer may safely answer by trying a
/// sibling replica.
[[nodiscard]] bool peer_gone(int err) noexcept {
  return err == ECONNRESET || err == ECONNREFUSED || err == ECONNABORTED ||
         err == EPIPE || err == ETIMEDOUT || err == EHOSTUNREACH ||
         err == ENETUNREACH || err == ENETRESET;
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(EINVAL, std::generic_category(),
                            "inet_pton('" + host + "')");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    // A refused or unreachable connect is the canonical "replica dead"
    // signal; surface it as the retryable class.
    throw ConnectionLost(err, "connect to " + host + ":" +
                                  std::to_string(port));
  }
  const int yes = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), inbuf_(std::move(other.inbuf_)) {}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::fail(int err, const char* what) {
  if (peer_gone(err)) {
    // A dead peer makes the fd useless; close it so connected() reports the
    // truth and a pooling caller (fleet::FleetClient) reconnects cleanly.
    close();
    throw ConnectionLost(err, what);
  }
  throw std::system_error(err, std::generic_category(), what);
}

void Client::write_all(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that reset must surface as EPIPE -> typed
    // ConnectionLost, never a process-fatal SIGPIPE.
    const ssize_t wrote =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      // A reset mid-frame leaves a partial write on the wire: the frame
      // never reached the server whole, so the call is safely retryable
      // against a sibling replica.
      fail(errno, sent == 0 ? "write" : "write (partial frame sent)");
    }
    sent += static_cast<std::size_t>(wrote);
  }
}

void Client::send(const RequestFrame& frame) {
  std::string bytes;
  encode(frame, bytes);
  write_all(bytes);
}

ResponseFrame Client::recv(std::string* raw) {
  while (true) {
    ResponseFrame response;
    const std::size_t consumed = decode(inbuf_, response);
    if (consumed != 0) {
      if (raw != nullptr) raw->assign(inbuf_, 0, consumed);
      inbuf_.erase(0, consumed);
      return response;
    }
    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      fail(errno, "read");
    }
    if (got == 0) {
      // EOF with a response outstanding: the server died (or tore the
      // connection down) mid-pipeline — typed retryable, distinct from a
      // malformed frame (WireDecodeError).
      close();
      throw ConnectionLost(ECONNRESET,
                           "server closed the connection mid-response");
    }
    inbuf_.append(chunk, static_cast<std::size_t>(got));
  }
}

ResponseFrame Client::call(const RequestFrame& frame, std::string* raw) {
  send(frame);
  return recv(raw);
}

}  // namespace lcaknap::net
