#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

namespace lcaknap::net {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(EINVAL, std::generic_category(),
                            "inet_pton('" + host + "')");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "connect");
  }
  const int yes = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), inbuf_(std::move(other.inbuf_)) {}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::write_all(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote =
        ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    sent += static_cast<std::size_t>(wrote);
  }
}

void Client::send(const RequestFrame& frame) {
  std::string bytes;
  encode(frame, bytes);
  write_all(bytes);
}

ResponseFrame Client::recv(std::string* raw) {
  while (true) {
    ResponseFrame response;
    const std::size_t consumed = decode(inbuf_, response);
    if (consumed != 0) {
      if (raw != nullptr) raw->assign(inbuf_, 0, consumed);
      inbuf_.erase(0, consumed);
      return response;
    }
    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (got == 0) {
      throw std::system_error(ECONNRESET, std::generic_category(),
                              "server closed the connection mid-response");
    }
    inbuf_.append(chunk, static_cast<std::size_t>(got));
  }
}

ResponseFrame Client::call(const RequestFrame& frame, std::string* raw) {
  send(frame);
  return recv(raw);
}

}  // namespace lcaknap::net
