#ifndef LCAKNAP_NET_SERVER_H
#define LCAKNAP_NET_SERVER_H

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "metrics/metrics.h"
#include "net/session.h"
#include "net/wire.h"

/// \file server.h
/// The non-blocking TCP front door: one epoll event loop, many connections.
///
/// Lemma 4.9 makes this shape sound at any fan-out: answers are a pure
/// function of the shared seed, so every connection can hit the same warm
/// state with zero coordination — the only scarce resources are sockets,
/// buffers, and engine queue slots, and each has an explicit shed:
///
///   * **accept**: beyond `max_connections`, new connections are closed
///     immediately (never left dangling in the backlog);
///   * **per-connection in-flight cap**: a connection with
///     `max_inflight_per_connection` frames outstanding gets kOverloaded
///     responses, synchronously, without the frame ever touching a queue —
///     one pipelining-abusive client cannot occupy the engine;
///   * **per-tenant quota and engine admission**: the router's layers,
///     also surfacing as kOverloaded on the wire.
///
/// An overloaded server *answers* (with kOverloaded) rather than stalling
/// the event loop or silently dropping: wire conservation — every decoded
/// frame produces exactly one response frame — is asserted by tests and the
/// E20 bench.
///
/// Threading: the event loop owns all connection state (buffers, in-flight
/// counts); engine threads never touch it.  Completions are marshalled —
/// the router callback encodes the response, appends it to a mutex-guarded
/// ready list, and signals an eventfd the loop polls; the loop moves bytes
/// onto the connection's write buffer.  A completion for a connection that
/// died in the meantime is dropped by id lookup, never a dangling write.
///
/// Malformed frames (typed `WireDecodeError`) get a best-effort kBadRequest
/// response and the connection is closed after flush — past a framing
/// error, the byte stream can no longer be trusted.
///
/// Metrics: `net_connections`, `net_frames_total{status}`,
/// `net_bytes_in_total`, `net_bytes_out_total`, `net_frame_latency_us`,
/// `net_decode_errors_total` (see docs/OBSERVABILITY.md / NETWORKING.md).

namespace lcaknap::net {

struct ServerConfig {
  /// Listen port on 127.0.0.1; 0 picks an ephemeral port (read `port()`).
  std::uint16_t port = 0;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 256;
  /// Frames outstanding per connection before synchronous kOverloaded.
  std::size_t max_inflight_per_connection = 128;
  /// Honour `RequestFrame::kFlagShutdown` (off by default: a remote peer
  /// must not stop a production server; the two-process integration test
  /// and the CLI's --allow-shutdown turn it on).
  bool allow_shutdown = false;
  /// Echoed on every response frame so fleet clients and the consistency
  /// checker can attribute answers (docs/FLEET.md).  0 = unassigned; the
  /// fleet orchestrator assigns each replica a distinct id.
  std::uint64_t replica_id = 0;
  /// listen(2) backlog.
  int backlog = 128;
};

/// Point-in-time wire counters.  Conservation (once quiescent): every
/// response answers either a decoded frame or a decode error, so
/// `frames_in == sum(by_status) - decode_errors` — zero silent drops.
struct ServerStats {
  std::uint64_t accepted = 0;       ///< connections accepted and served
  std::uint64_t at_capacity = 0;    ///< connections shed at the accept gate
  std::uint64_t open = 0;           ///< connections currently open
  std::uint64_t frames_in = 0;      ///< well-formed request frames decoded
  std::uint64_t decode_errors = 0;  ///< typed wire errors (connection torn down)
  std::uint64_t inflight_shed = 0;  ///< kOverloaded from the per-connection cap
  std::uint64_t health_probes = 0;  ///< kFlagHealth frames answered
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Responses sent, indexed by `WireStatus`.
  std::array<std::uint64_t, 8> by_status{};

  /// Responses that answered a well-formed frame (the conservation LHS
  /// partner of `frames_in`).
  [[nodiscard]] std::uint64_t responses_to_frames() const {
    std::uint64_t sum = 0;
    for (const auto count : by_status) sum += count;
    return sum - decode_errors;
  }
};

class Server {
 public:
  /// Binds 127.0.0.1:`config.port`, starts listening and the event loop.
  /// Throws `std::system_error` if the socket setup fails.  `router` must
  /// outlive the server.
  Server(TenantRouter& router, const ServerConfig& config,
         metrics::Registry& registry = metrics::global_registry());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting, closes every connection, and joins the event loop.
  /// In-flight engine work still completes (the router owns it); its
  /// completions for dead connections are dropped.  Idempotent.
  void stop();

  /// Blocks until a gated shutdown frame was honoured or `stop()` ran.
  void wait_shutdown();
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ServerStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string inbuf;
    std::string outbuf;
    std::size_t out_offset = 0;   ///< flushed prefix of outbuf
    std::size_t inflight = 0;     ///< frames routed, response not yet queued
    bool closing = false;         ///< flush outbuf, then close
    bool want_write = false;      ///< EPOLLOUT currently armed
  };

  /// Completion mailbox shared with router callbacks; outlives the server
  /// if engine threads still hold callbacks when it is destroyed.
  struct Sink {
    std::mutex mutex;
    std::vector<std::pair<std::uint64_t, std::string>> ready;
    int event_fd = -1;
    bool closed = false;
    ~Sink();
    /// Appends pre-encoded response bytes for connection `conn_id` and
    /// wakes the loop; no-op once closed.
    void push(std::uint64_t conn_id, std::string bytes);
  };

  void event_loop();
  void handle_accept();
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  void handle_completions();
  void handle_frame(Connection& conn, const RequestFrame& frame,
                    std::chrono::steady_clock::time_point received_at);
  /// Encodes + queues a response on the loop thread and counts its status.
  void respond(Connection& conn, const ResponseFrame& response);
  void count_status(WireStatus status);
  void flush(Connection& conn);
  void update_write_interest(Connection& conn);
  void close_connection(std::uint64_t conn_id);

  TenantRouter* router_;
  ServerConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  std::shared_ptr<Sink> sink_;

  metrics::Gauge* connections_gauge_;
  std::array<metrics::Counter*, 8> frames_by_status_{};
  metrics::Counter* bytes_in_counter_;
  metrics::Counter* bytes_out_counter_;
  metrics::Counter* decode_errors_counter_;
  metrics::Histogram* frame_latency_us_;

  std::unordered_map<std::uint64_t, Connection> connections_;  ///< loop-owned
  std::unordered_map<int, std::uint64_t> conn_by_fd_;          ///< loop-owned
  std::uint64_t next_conn_id_ = 1;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> at_capacity_{0};
  std::atomic<std::uint64_t> open_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> inflight_shed_{0};
  std::atomic<std::uint64_t> health_probes_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::array<std::atomic<std::uint64_t>, 8> by_status_{};

  std::thread loop_;
};

}  // namespace lcaknap::net

#endif  // LCAKNAP_NET_SERVER_H
