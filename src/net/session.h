#ifndef LCAKNAP_NET_SESSION_H
#define LCAKNAP_NET_SESSION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/lca_kp.h"
#include "metrics/metrics.h"
#include "net/wire.h"
#include "serve/engine.h"
#include "store/state_store.h"

/// \file session.h
/// The tenant-routing session layer between the wire and the engines.
///
/// A serving process hosts many tenants; each decoded `RequestFrame` names
/// one by instance id.  `TenantRouter` owns one `ServeEngine` per tenant
/// and routes frames:
///
///   route(frame, cb) ── tenant lookup ──> kUnknownTenant (typed, instant)
///                    ── admission quota ─> kOverloaded   (per-tenant cap)
///                    ── cold tenant ─────> hydrate-on-first-touch: one
///                        background hydration per tenant (single-flight —
///                        the `StateStore` coalesces concurrent warm-ups,
///                        and the router additionally parks frames that
///                        arrive mid-hydration instead of blocking the
///                        caller, completing them when the engine is up)
///                    ── warm tenant ─────> `ServeEngine::submit(item, cb)`
///                        with the frame's relative deadline on the
///                        engine's clock
///
/// Isolation is structural, not cooperative: every tenant has its own
/// engine (queue, workers, cache, breaker/degrade policy) over its own
/// warm state, so a chaos-plan brownout on one tenant's oracle can only
/// consume that tenant's resources — the integration suite pins that a
/// browned-out tenant never changes a healthy tenant's answers.
///
/// `route()` never blocks on warm-up or evaluation; the callback fires
/// exactly once, from the router thread (rejections), a hydration thread
/// (parked frames failing), or an engine thread (served answers).  Wire
/// conservation extends the engine law: frames routed == callbacks fired,
/// with every status accounted.

namespace lcaknap::net {

/// One tenant's serving recipe.  `lca` (and the oracle access behind it)
/// must outlive the router.
struct TenantConfig {
  const core::LcaKp* lca = nullptr;
  /// Engine knobs for this tenant (workers, queue bound, batcher, cache,
  /// degrade, certify...).  `warm_state` is overwritten by hydration.
  serve::EngineConfig engine;
  /// Warm-up tape of the tenant's one-time Theorem 4.1 run; part of the
  /// snapshot fingerprint the StateStore verifies.
  std::uint64_t tape_seed = 7;
  /// Per-tenant admission quota: frames in flight (parked + engine) beyond
  /// this are shed kOverloaded before touching the engine.  The noisy
  /// neighbour bound: one tenant's burst cannot queue out another's.
  std::size_t max_inflight = 1024;
};

/// Where a tenant sits in the hydration state machine, for health/readiness
/// probes (`RequestFrame::kFlagHealth`): only `kWarm` serves answers.
enum class TenantReadiness {
  kUnknownTenant,  ///< not registered with this router
  kCold,           ///< registered, nothing warmed yet
  kHydrating,      ///< warm-up or snapshot restore in flight
  kWarm,           ///< engine up; answers are being served
  kFailed,         ///< hydration failed; frames are answered kError
};

/// Point-in-time router counters (the wire-level conservation operands).
struct RouterStats {
  std::uint64_t routed = 0;           ///< route() calls accepted for any path
  std::uint64_t completed = 0;        ///< callbacks fired
  std::uint64_t unknown_tenant = 0;   ///< kUnknownTenant rejections
  std::uint64_t quota_shed = 0;       ///< kOverloaded from per-tenant quotas
  std::uint64_t parked = 0;           ///< frames parked during hydration
  std::uint64_t hydrations = 0;       ///< engines brought up
  std::uint64_t hydration_failures = 0;
};

class TenantRouter {
 public:
  TenantRouter(store::StateStore& store,
               metrics::Registry& registry = metrics::global_registry());
  /// Joins hydration threads and drains every tenant engine: all accepted
  /// frames complete before destruction.
  ~TenantRouter();

  TenantRouter(const TenantRouter&) = delete;
  TenantRouter& operator=(const TenantRouter&) = delete;

  /// Declares a tenant (cold; nothing is warmed until first touch).
  /// Throws `std::invalid_argument` for an invalid id, a null `lca`, or a
  /// duplicate registration.
  void register_tenant(const std::string& id, TenantConfig config);

  /// Routes one decoded frame; `cb` fires exactly once with the response
  /// (the frame's `request_id` echoed).  Never blocks on warm-up or
  /// evaluation.
  void route(const RequestFrame& frame,
             std::function<void(const ResponseFrame&)> cb);

  /// Eagerly hydrates every registered tenant (blocking; used by the CLI
  /// before announcing the listen port so first requests are warm).
  void warm_all();

  /// Completes all in-flight work and joins hydration threads.  Subsequent
  /// route() calls are shed kOverloaded.  Idempotent.
  void drain();

  [[nodiscard]] RouterStats stats() const;
  [[nodiscard]] std::vector<std::string> tenant_ids() const;
  /// The tenant's position in the hydration state machine — the payload of
  /// a health/readiness frame.  Never blocks on hydration.
  [[nodiscard]] TenantReadiness readiness(const std::string& id) const;
  /// The tenant's engine, or nullptr while cold/hydrating (test hook).
  [[nodiscard]] const serve::ServeEngine* engine(const std::string& id) const;
  /// Mutable engine access for the update-applier path (`serve --updates`):
  /// the applier thread calls `advance_epoch` on it between request bursts.
  /// nullptr while cold/hydrating — the applier must wait for warmth.
  [[nodiscard]] serve::ServeEngine* engine_mut(const std::string& id);

 private:
  struct Parked {
    std::uint64_t request_id;
    std::uint64_t item;
    std::uint64_t deadline_us;
    std::function<void(const ResponseFrame&)> cb;
  };
  enum class TenantState { kCold, kHydrating, kWarm, kFailed };
  struct Tenant {
    TenantConfig config;
    std::mutex mutex;
    TenantState state = TenantState::kCold;
    std::unique_ptr<serve::ServeEngine> engine;
    std::vector<Parked> parked;
    /// Frames accepted and not yet completed (parked + inside the engine).
    std::atomic<std::size_t> inflight{0};
  };

  void hydrate(const std::string& id, Tenant& tenant);
  void submit_to_engine(Tenant& tenant, std::uint64_t request_id,
                        std::uint64_t item, std::uint64_t deadline_us,
                        std::function<void(const ResponseFrame&)> cb);
  void complete(Tenant& tenant, std::uint64_t request_id, WireStatus status,
                const std::function<void(const ResponseFrame&)>& cb,
                bool answer = false, bool cache_hit = false,
                std::uint64_t epoch_id = 0);

  store::StateStore* store_;
  metrics::Registry* registry_;
  metrics::Gauge* tenants_warm_;
  metrics::Counter* hydration_failures_;

  mutable std::mutex mutex_;  ///< guards the tenant map and thread list
  std::unordered_map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::vector<std::thread> hydrators_;
  std::atomic<bool> draining_{false};

  std::atomic<std::uint64_t> routed_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> unknown_tenant_{0};
  std::atomic<std::uint64_t> quota_shed_{0};
  std::atomic<std::uint64_t> parked_count_{0};
  std::atomic<std::uint64_t> hydrations_{0};
  std::atomic<std::uint64_t> hydration_failures_count_{0};
};

}  // namespace lcaknap::net

#endif  // LCAKNAP_NET_SESSION_H
