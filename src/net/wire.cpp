#include "net/wire.h"

#include <string>

#include "store/snapshot.h"

namespace lcaknap::net {
namespace {

// Bytes after the length prefix, excluding the variable tenant id.
constexpr std::size_t kRequestFixed = 4 + 2 + 2 + 8 + 8 + 8 + 2 + 8;
// Responses are fixed-layout (version 2 added the replica_id u64, version 3
// the epoch_id u64).
constexpr std::size_t kResponseLen = 4 + 2 + 2 + 8 + 8 + 8 + 1 + 1 + 8;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint8_t get_u8(std::string_view buf, std::size_t& at) {
  return static_cast<std::uint8_t>(buf[at++]);
}
std::uint16_t get_u16(std::string_view buf, std::size_t& at) {
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(get_u8(buf, at)) << (8 * i);
  return v;
}
std::uint32_t get_u32(std::string_view buf, std::size_t& at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(get_u8(buf, at)) << (8 * i);
  return v;
}
std::uint64_t get_u64(std::string_view buf, std::size_t& at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(get_u8(buf, at)) << (8 * i);
  return v;
}

/// Seals the frame appended to `out` since `frame_start`: CRC over every
/// byte written so far (length prefix included), appended last.
void seal(std::string& out, std::size_t frame_start) {
  const std::uint64_t crc = store::crc64(
      std::string_view(out).substr(frame_start, out.size() - frame_start));
  put_u64(out, crc);
}

/// Common prologue: reads and bounds-checks the length prefix.  Returns the
/// frame length, or 0 when the buffer is still incomplete.
std::size_t frame_length(std::string_view buffer, std::size_t min_len,
                         std::size_t max_len, bool exact) {
  if (buffer.size() < 4) return 0;
  std::size_t at = 0;
  const std::uint32_t len = get_u32(buffer, at);
  if (len < min_len || len > max_len || (exact && len != min_len)) {
    throw WireDecodeError(WireError::kBadLength,
                          "frame length " + std::to_string(len) +
                              " outside [" + std::to_string(min_len) + ", " +
                              std::to_string(max_len) + "]");
  }
  if (buffer.size() < 4 + static_cast<std::size_t>(len)) return 0;
  return len;
}

/// Verifies the trailing CRC of the frame occupying buffer[0, 4+len).
void check_crc(std::string_view buffer, std::size_t len) {
  const std::size_t body = 4 + len - 8;  // everything the CRC covers
  std::size_t at = body;
  const std::uint64_t stored = get_u64(buffer, at);
  const std::uint64_t actual = store::crc64(buffer.substr(0, body));
  if (stored != actual) {
    throw WireDecodeError(WireError::kBadCrc, "frame checksum mismatch");
  }
}

}  // namespace

bool valid_tenant(std::string_view tenant) noexcept {
  if (tenant.empty() || tenant.size() > kMaxTenantBytes) return false;
  for (const char c : tenant) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void encode(const RequestFrame& frame, std::string& out) {
  if (!valid_tenant(frame.tenant)) {
    throw std::invalid_argument("invalid tenant id: '" + frame.tenant + "'");
  }
  const std::size_t frame_start = out.size();
  put_u32(out, static_cast<std::uint32_t>(kRequestFixed + frame.tenant.size()));
  put_u32(out, kRequestMagic);
  put_u16(out, kWireVersion);
  put_u16(out, frame.flags);
  put_u64(out, frame.request_id);
  put_u64(out, frame.item);
  put_u64(out, frame.deadline_us);
  put_u16(out, static_cast<std::uint16_t>(frame.tenant.size()));
  out.append(frame.tenant);
  seal(out, frame_start);
}

void encode(const ResponseFrame& frame, std::string& out) {
  const std::size_t frame_start = out.size();
  put_u32(out, static_cast<std::uint32_t>(kResponseLen));
  put_u32(out, kResponseMagic);
  put_u16(out, kWireVersion);
  put_u16(out, static_cast<std::uint16_t>(frame.status));
  put_u64(out, frame.request_id);
  put_u64(out, frame.replica_id);
  put_u64(out, frame.epoch_id);
  put_u8(out, frame.answer ? 1 : 0);
  put_u8(out, frame.cache_hit ? 1 : 0);
  seal(out, frame_start);
}

std::size_t decode(std::string_view buffer, RequestFrame& frame) {
  const std::size_t len = frame_length(buffer, kRequestFixed,
                                       kMaxFrameBytes, /*exact=*/false);
  if (len == 0) return 0;
  std::size_t at = 4;
  const std::uint32_t magic = get_u32(buffer, at);
  if (magic != kRequestMagic) {
    throw WireDecodeError(WireError::kBadMagic, "not a request frame");
  }
  const std::uint16_t version = get_u16(buffer, at);
  if (version != kWireVersion) {
    throw WireDecodeError(WireError::kBadVersion,
                          "protocol version " + std::to_string(version) +
                              " != " + std::to_string(kWireVersion));
  }
  frame.flags = get_u16(buffer, at);
  frame.request_id = get_u64(buffer, at);
  frame.item = get_u64(buffer, at);
  frame.deadline_us = get_u64(buffer, at);
  const std::uint16_t tenant_len = get_u16(buffer, at);
  // Structural cross-check: the length prefix and the tenant length must
  // agree exactly, so a bit flip in either is typed kBadLength immediately.
  if (kRequestFixed + static_cast<std::size_t>(tenant_len) != len) {
    throw WireDecodeError(WireError::kBadLength,
                          "tenant length inconsistent with frame length");
  }
  const std::string_view tenant = buffer.substr(at, tenant_len);
  if (!valid_tenant(tenant)) {
    throw WireDecodeError(WireError::kBadTenant, "invalid tenant id");
  }
  check_crc(buffer, len);
  frame.tenant.assign(tenant);
  return 4 + len;
}

std::size_t decode(std::string_view buffer, ResponseFrame& frame) {
  const std::size_t len = frame_length(buffer, kResponseLen, kResponseLen,
                                       /*exact=*/true);
  if (len == 0) return 0;
  std::size_t at = 4;
  const std::uint32_t magic = get_u32(buffer, at);
  if (magic != kResponseMagic) {
    throw WireDecodeError(WireError::kBadMagic, "not a response frame");
  }
  const std::uint16_t version = get_u16(buffer, at);
  if (version != kWireVersion) {
    throw WireDecodeError(WireError::kBadVersion,
                          "protocol version " + std::to_string(version) +
                              " != " + std::to_string(kWireVersion));
  }
  const std::uint16_t status = get_u16(buffer, at);
  if (status > static_cast<std::uint16_t>(WireStatus::kShuttingDown)) {
    throw WireDecodeError(WireError::kBadStatus,
                          "status " + std::to_string(status) + " out of range");
  }
  frame.status = static_cast<WireStatus>(status);
  frame.request_id = get_u64(buffer, at);
  frame.replica_id = get_u64(buffer, at);
  frame.epoch_id = get_u64(buffer, at);
  frame.answer = get_u8(buffer, at) != 0;
  frame.cache_hit = get_u8(buffer, at) != 0;
  check_crc(buffer, len);
  return 4 + len;
}

std::size_t encoded_response_size() noexcept { return 4 + kResponseLen; }

}  // namespace lcaknap::net
