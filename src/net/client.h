#ifndef LCAKNAP_NET_CLIENT_H
#define LCAKNAP_NET_CLIENT_H

#include <cstdint>
#include <string>
#include <system_error>

#include "net/wire.h"

/// \file client.h
/// Blocking protocol client: the test harness, the CLI's remote commands,
/// and one load-generator connection each speak through it.
///
/// Two usage modes:
///  * **serial** — `call()` is one round-trip; responses arrive in request
///    order by construction, which is what the byte-identical two-process
///    comparison needs (pipelined responses may legally interleave);
///  * **pipelined** — `send()` queues frames without waiting and `recv()`
///    pulls whatever response completes next; the load generator keeps a
///    window of these in flight per connection.
///
/// `recv(raw)` optionally captures the exact response bytes as they came
/// off the socket — the integration suite compares those across replicas,
/// pinning Lemma 4.9 at wire granularity, not just answer granularity.

namespace lcaknap::net {

/// The peer is gone: connect refused, the socket reset mid-pipeline, or the
/// server closed the connection with a response outstanding (a partial
/// write/read).  Typed so a failover layer (fleet::FleetClient) can tell
/// "replica dead — retry a sibling" apart from `WireDecodeError` ("frame
/// malformed — retrying elsewhere would just re-decode garbage") and from
/// local configuration errors (plain `std::system_error`).
class ConnectionLost : public std::system_error {
 public:
  ConnectionLost(int err, const std::string& what)
      : std::system_error(err, std::generic_category(), what) {}
};

class Client {
 public:
  /// Connects to `host:port` (blocking).  A refused/unreachable peer throws
  /// `ConnectionLost` (retryable — the replica may be down); local setup
  /// failures (bad host string, no sockets) throw plain `std::system_error`.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  /// One serial round-trip.  Throws `ConnectionLost` when the peer dies
  /// mid-call (retryable) or `WireDecodeError` on a malformed response.
  ResponseFrame call(const RequestFrame& frame, std::string* raw = nullptr);

  /// Queues one frame (blocking write, no response wait).  A peer that
  /// resets mid-write (EPIPE/ECONNRESET, including a partial write) throws
  /// `ConnectionLost`.
  void send(const RequestFrame& frame);
  /// Blocks for the next response frame; `raw`, when non-null, receives
  /// its exact wire bytes.  A connection that closes or resets with the
  /// response outstanding throws `ConnectionLost`.
  ResponseFrame recv(std::string* raw = nullptr);

  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  /// Maps a socket errno to the typed hierarchy: peer-gone errnos close the
  /// fd and throw `ConnectionLost`; everything else is `std::system_error`.
  [[noreturn]] void fail(int err, const char* what);
  void write_all(const std::string& bytes);

  int fd_ = -1;
  std::string inbuf_;  ///< bytes read past the last decoded response
};

}  // namespace lcaknap::net

#endif  // LCAKNAP_NET_CLIENT_H
