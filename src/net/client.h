#ifndef LCAKNAP_NET_CLIENT_H
#define LCAKNAP_NET_CLIENT_H

#include <cstdint>
#include <string>

#include "net/wire.h"

/// \file client.h
/// Blocking protocol client: the test harness, the CLI's remote commands,
/// and one load-generator connection each speak through it.
///
/// Two usage modes:
///  * **serial** — `call()` is one round-trip; responses arrive in request
///    order by construction, which is what the byte-identical two-process
///    comparison needs (pipelined responses may legally interleave);
///  * **pipelined** — `send()` queues frames without waiting and `recv()`
///    pulls whatever response completes next; the load generator keeps a
///    window of these in flight per connection.
///
/// `recv(raw)` optionally captures the exact response bytes as they came
/// off the socket — the integration suite compares those across replicas,
/// pinning Lemma 4.9 at wire granularity, not just answer granularity.

namespace lcaknap::net {

class Client {
 public:
  /// Connects to `host:port` (blocking).  Throws `std::system_error`.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  /// One serial round-trip.  Throws on socket failure or a malformed
  /// response (`WireDecodeError`).
  ResponseFrame call(const RequestFrame& frame, std::string* raw = nullptr);

  /// Queues one frame (blocking write, no response wait).
  void send(const RequestFrame& frame);
  /// Blocks for the next response frame; `raw`, when non-null, receives
  /// its exact wire bytes.
  ResponseFrame recv(std::string* raw = nullptr);

  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  void write_all(const std::string& bytes);

  int fd_ = -1;
  std::string inbuf_;  ///< bytes read past the last decoded response
};

}  // namespace lcaknap::net

#endif  // LCAKNAP_NET_CLIENT_H
