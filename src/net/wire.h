#ifndef LCAKNAP_NET_WIRE_H
#define LCAKNAP_NET_WIRE_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "serve/request.h"

/// \file wire.h
/// The length-prefixed binary protocol of the network front-end (src/net/).
///
/// One request frame carries one membership query ("is item i in tenant T's
/// solution?") and one response frame carries the answer plus the serving
/// outcome as a `WireStatus` — the engine's conservation law extended to the
/// socket: every frame in produces exactly one status out, including
/// explicit `kOverloaded` under backpressure (a loaded server says "no",
/// it never silently drops or stalls).
///
/// Byte layout (all integers little-endian; see docs/NETWORKING.md):
///
///   request  := len:u32 magic:u32('LKRQ') version:u16 flags:u16
///               request_id:u64 item:u64 deadline_us:u64
///               tenant_len:u16 tenant:bytes crc:u64
///   response := len:u32 magic:u32('LKRS') version:u16 status:u16
///               request_id:u64 replica_id:u64 epoch_id:u64
///               answer:u8 cache_hit:u8 crc:u64
///
/// Version 2 added `replica_id` (echoed on every response) and the health
/// flag: a request with `kFlagHealth` set is a readiness probe for its
/// tenant — answered on the event loop without touching the engine, with
/// `answer` = 1 iff the tenant's warm state is hydrated and serving.  The
/// fleet layer (src/fleet/, docs/FLEET.md) gates snapshot-shipped bootstrap
/// on it and attributes every answer to the replica that produced it.
///
/// Version 3 added `epoch_id`: the instance epoch the answer was derived
/// under (0 for static instances; see docs/DYNAMIC.md).  Under live updates
/// a client observing an epoch flip mid-stream is seeing an advance, not an
/// inconsistency — answers are consistent *within* an epoch, and the frame
/// says which one.
///
/// `len` counts every byte after the length field itself.  The trailing CRC
/// (CRC-64/XZ, same polynomial as the snapshot format) covers the *whole*
/// frame including the length prefix, so a bit flip anywhere — length
/// included — is caught.  Defense is layered like the snapshot decoder:
/// length bounds first (cap + exact structural size cross-checked against
/// `tenant_len`), then magic, version, field domains, and CRC last; every
/// failure is a typed `WireDecodeError`, never a crash or a bogus decode
/// (the fuzz suite flips every bit of a valid frame to pin this).
///
/// `decode()` is incremental: it returns 0 when the buffer does not yet
/// hold a complete frame (read more bytes), or the number of bytes
/// consumed.  Deadlines travel as *relative* microseconds (0 = none): the
/// client and server clocks never need agreement.

namespace lcaknap::net {

inline constexpr std::uint32_t kRequestMagic = 0x5152'4B4Cu;   // "LKRQ"
inline constexpr std::uint32_t kResponseMagic = 0x5352'4B4Cu;  // "LKRS"
inline constexpr std::uint16_t kWireVersion = 3;
/// Tenant ids are StateStore instance ids: `[A-Za-z0-9._-]+`, bounded.
inline constexpr std::size_t kMaxTenantBytes = 64;
/// Hard cap on `len` for either frame kind; anything larger is kBadLength
/// before a single payload byte is trusted.
inline constexpr std::size_t kMaxFrameBytes = 256;

/// How a request left the server, on the wire.  Mirrors `serve::Outcome`
/// plus the two statuses only the front-end can produce.
enum class WireStatus : std::uint16_t {
  kOk = 0,
  kOverloaded = 1,        ///< shed: engine queue, connection in-flight cap,
                          ///< or tenant admission quota
  kDeadlineExceeded = 2,  ///< shed: the request's deadline passed
  kDegraded = 3,          ///< answered from the warm-state fallback rule
  kError = 4,             ///< evaluation failed
  kBadRequest = 5,        ///< the frame decoded but was semantically invalid
  kUnknownTenant = 6,     ///< no such instance registered with the router
  kShuttingDown = 7,      ///< acknowledgement of an honoured shutdown frame
};

[[nodiscard]] constexpr const char* wire_status_name(WireStatus status) noexcept {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kOverloaded: return "overloaded";
    case WireStatus::kDeadlineExceeded: return "deadline";
    case WireStatus::kDegraded: return "degraded";
    case WireStatus::kError: return "error";
    case WireStatus::kBadRequest: return "bad_request";
    case WireStatus::kUnknownTenant: return "unknown_tenant";
    case WireStatus::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

/// The engine outcome → wire status projection (a bijection on the shared
/// five; the wire adds its own statuses on top).
[[nodiscard]] constexpr WireStatus wire_status_of(serve::Outcome outcome) noexcept {
  switch (outcome) {
    case serve::Outcome::kOk: return WireStatus::kOk;
    case serve::Outcome::kOverloaded: return WireStatus::kOverloaded;
    case serve::Outcome::kDeadlineExceeded: return WireStatus::kDeadlineExceeded;
    case serve::Outcome::kDegraded: return WireStatus::kDegraded;
    case serve::Outcome::kError: return WireStatus::kError;
  }
  return WireStatus::kError;
}

/// One membership query on the wire.
struct RequestFrame {
  /// Gated remote shutdown (the two-process integration test uses it); the
  /// server ignores the flag unless started with allow_shutdown.
  static constexpr std::uint16_t kFlagShutdown = 1u << 0;
  /// Health/readiness probe for `tenant`: answered instantly on the event
  /// loop (`answer` = warm-and-serving), never routed to an engine.  A
  /// joining replica reports warm through it (snapshot-shipped bootstrap,
  /// docs/FLEET.md); `item` and `deadline_us` are ignored.
  static constexpr std::uint16_t kFlagHealth = 1u << 1;

  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;   ///< echoed verbatim in the response
  std::uint64_t item = 0;
  std::uint64_t deadline_us = 0;  ///< relative budget; 0 = no deadline
  std::string tenant;             ///< StateStore instance id
};

/// One answer on the wire.
struct ResponseFrame {
  std::uint64_t request_id = 0;
  /// Which replica produced this response (ServerConfig::replica_id, echoed
  /// on every frame).  The fleet's failover bookkeeping and the consistency
  /// checker attribute answers by it; 0 = unassigned (single-process use).
  std::uint64_t replica_id = 0;
  /// Instance epoch the answer was derived under (`serve::Response::
  /// epoch_id`); 0 for static instances and non-answer statuses.
  std::uint64_t epoch_id = 0;
  WireStatus status = WireStatus::kError;
  bool answer = false;
  bool cache_hit = false;
};

/// Why a frame was rejected.  `kNeedMore` is never thrown (incomplete input
/// is signalled by decode() returning 0); everything else is.
enum class WireError : std::uint8_t {
  kBadLength,   ///< length prefix out of bounds or inconsistent with fields
  kBadMagic,    ///< not a request/response frame
  kBadVersion,  ///< protocol version mismatch
  kBadTenant,   ///< tenant id empty, oversized, or with invalid characters
  kBadStatus,   ///< response status outside the enum
  kBadCrc,      ///< checksum mismatch — corruption in flight
};

[[nodiscard]] constexpr const char* wire_error_name(WireError error) noexcept {
  switch (error) {
    case WireError::kBadLength: return "bad_length";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kBadTenant: return "bad_tenant";
    case WireError::kBadStatus: return "bad_status";
    case WireError::kBadCrc: return "bad_crc";
  }
  return "unknown";
}

/// Typed decode failure; the connection that produced it is torn down (the
/// stream can no longer be trusted to be frame-aligned).
class WireDecodeError : public std::runtime_error {
 public:
  WireDecodeError(WireError error, const std::string& detail)
      : std::runtime_error(detail), error_(error) {}
  [[nodiscard]] WireError error() const noexcept { return error_; }

 private:
  WireError error_;
};

/// True iff `tenant` is a valid instance id: nonempty, ≤ kMaxTenantBytes,
/// characters from `[A-Za-z0-9._-]` (the StateStore id alphabet).
[[nodiscard]] bool valid_tenant(std::string_view tenant) noexcept;

/// Appends one encoded frame to `out`.  Throws `std::invalid_argument` for
/// an invalid tenant (encoding never produces an undecodable frame).
void encode(const RequestFrame& frame, std::string& out);
void encode(const ResponseFrame& frame, std::string& out);

/// Decodes one frame from the front of `buffer`.  Returns the bytes
/// consumed, or 0 when the buffer does not yet hold a complete frame.
/// Throws `WireDecodeError` on any malformed input.
[[nodiscard]] std::size_t decode(std::string_view buffer, RequestFrame& frame);
[[nodiscard]] std::size_t decode(std::string_view buffer, ResponseFrame& frame);

/// Exact encoded size of a response frame (they are fixed-layout).
[[nodiscard]] std::size_t encoded_response_size() noexcept;

}  // namespace lcaknap::net

#endif  // LCAKNAP_NET_WIRE_H
