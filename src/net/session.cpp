#include "net/session.h"

#include <stdexcept>
#include <utility>

namespace lcaknap::net {

TenantRouter::TenantRouter(store::StateStore& store,
                           metrics::Registry& registry)
    : store_(&store),
      registry_(&registry),
      tenants_warm_(&registry.gauge(
          "net_tenants_warm",
          "Tenants with a warm engine in the router (hydrated, serving)")),
      hydration_failures_(&registry.counter(
          "net_hydration_failures_total",
          "Tenant hydrations that failed; their parked frames were "
          "completed kError")) {}

TenantRouter::~TenantRouter() { drain(); }

void TenantRouter::register_tenant(const std::string& id,
                                   TenantConfig config) {
  if (!valid_tenant(id)) {
    throw std::invalid_argument("invalid tenant id: '" + id + "'");
  }
  if (config.lca == nullptr) {
    throw std::invalid_argument("tenant '" + id + "' has no algorithm");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] =
      tenants_.emplace(id, std::make_unique<Tenant>());
  if (!inserted) {
    throw std::invalid_argument("tenant '" + id + "' already registered");
  }
  it->second->config = std::move(config);
}

void TenantRouter::complete(Tenant& tenant, std::uint64_t request_id,
                            WireStatus status,
                            const std::function<void(const ResponseFrame&)>& cb,
                            bool answer, bool cache_hit,
                            std::uint64_t epoch_id) {
  ResponseFrame response;
  response.request_id = request_id;
  response.status = status;
  response.answer = answer;
  response.cache_hit = cache_hit;
  response.epoch_id = epoch_id;
  tenant.inflight.fetch_sub(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  cb(response);
}

void TenantRouter::submit_to_engine(
    Tenant& tenant, std::uint64_t request_id, std::uint64_t item,
    std::uint64_t deadline_us, std::function<void(const ResponseFrame&)> cb) {
  // The engine fires the completion exactly once from one of its threads;
  // translate its outcome onto the wire and settle the tenant's quota there.
  auto on_done = [this, &tenant, request_id,
                  cb = std::move(cb)](const serve::Response& r) {
    complete(tenant, request_id, wire_status_of(r.outcome), cb, r.answer,
             r.cache_hit, r.epoch_id);
  };
  if (deadline_us == 0) {
    tenant.engine->submit(static_cast<std::size_t>(item), std::move(on_done));
  } else {
    tenant.engine->submit(
        static_cast<std::size_t>(item),
        std::chrono::microseconds(static_cast<std::int64_t>(deadline_us)),
        std::move(on_done));
  }
}

void TenantRouter::route(const RequestFrame& frame,
                         std::function<void(const ResponseFrame&)> cb) {
  routed_.fetch_add(1, std::memory_order_relaxed);
  Tenant* tenant = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = tenants_.find(frame.tenant); it != tenants_.end()) {
      tenant = it->second.get();
    }
  }
  if (tenant == nullptr) {
    unknown_tenant_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    ResponseFrame response;
    response.request_id = frame.request_id;
    response.status = WireStatus::kUnknownTenant;
    cb(response);
    return;
  }
  // Per-tenant admission quota, settled before any queue is touched: the
  // optimistic increment is undone on shed so the counter never drifts.
  const std::size_t now_inflight =
      tenant->inflight.fetch_add(1, std::memory_order_relaxed) + 1;
  if (draining_.load(std::memory_order_relaxed) ||
      now_inflight > tenant->config.max_inflight) {
    quota_shed_.fetch_add(1, std::memory_order_relaxed);
    complete(*tenant, frame.request_id, WireStatus::kOverloaded, cb);
    return;
  }
  bool start_hydration = false;
  bool parked = false;
  bool failed = false;
  {
    std::lock_guard<std::mutex> lock(tenant->mutex);
    switch (tenant->state) {
      case TenantState::kWarm:
        break;  // fall through to the engine below
      case TenantState::kCold:
        tenant->state = TenantState::kHydrating;
        start_hydration = true;
        [[fallthrough]];
      case TenantState::kHydrating:
        parked_count_.fetch_add(1, std::memory_order_relaxed);
        tenant->parked.push_back(Parked{frame.request_id, frame.item,
                                        frame.deadline_us, std::move(cb)});
        parked = true;
        break;
      case TenantState::kFailed:
        failed = true;
        break;
    }
  }
  if (failed) {
    complete(*tenant, frame.request_id, WireStatus::kError, cb);
    return;
  }
  if (start_hydration) {
    const std::string id = frame.tenant;
    std::lock_guard<std::mutex> lock(mutex_);
    hydrators_.emplace_back(
        [this, id, tenant] { hydrate(id, *tenant); });
    return;
  }
  if (parked) return;  // the hydration epilogue will submit it
  submit_to_engine(*tenant, frame.request_id, frame.item, frame.deadline_us,
                   std::move(cb));
}

void TenantRouter::hydrate(const std::string& id, Tenant& tenant) {
  std::unique_ptr<serve::ServeEngine> engine;
  std::exception_ptr error;
  try {
    // Single-flight is layered: the StateStore coalesces concurrent
    // warm-ups of the same id across the process, and the router's state
    // machine guarantees at most one hydration thread per tenant anyway.
    auto run = store_->get(id, *tenant.config.lca, tenant.config.tape_seed);
    serve::EngineConfig engine_config = tenant.config.engine;
    engine_config.warm_state = std::move(run);
    engine_config.warmup_tape_seed = tenant.config.tape_seed;
    engine = std::make_unique<serve::ServeEngine>(*tenant.config.lca,
                                                  engine_config, *registry_);
  } catch (...) {
    error = std::current_exception();
  }
  std::vector<Parked> parked;
  {
    std::lock_guard<std::mutex> lock(tenant.mutex);
    parked.swap(tenant.parked);
    if (error) {
      tenant.state = TenantState::kFailed;
    } else {
      tenant.engine = std::move(engine);
      tenant.state = TenantState::kWarm;
    }
  }
  if (error) {
    hydration_failures_count_.fetch_add(1, std::memory_order_relaxed);
    hydration_failures_->inc();
    for (auto& p : parked) {
      complete(tenant, p.request_id, WireStatus::kError, p.cb);
    }
    return;
  }
  hydrations_.fetch_add(1, std::memory_order_relaxed);
  tenants_warm_->add(1.0);
  for (auto& p : parked) {
    submit_to_engine(tenant, p.request_id, p.item, p.deadline_us,
                     std::move(p.cb));
  }
}

void TenantRouter::warm_all() {
  std::vector<std::pair<std::string, Tenant*>> cold;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, tenant] : tenants_) {
      std::lock_guard<std::mutex> tlock(tenant->mutex);
      if (tenant->state == TenantState::kCold) {
        tenant->state = TenantState::kHydrating;
        cold.emplace_back(id, tenant.get());
      }
    }
  }
  for (auto& [id, tenant] : cold) hydrate(id, *tenant);
}

void TenantRouter::drain() {
  draining_.store(true, std::memory_order_relaxed);
  // Re-check after joining: a route racing the drain flag may have spawned
  // one more hydrator between our swap and its emplace.
  while (true) {
    std::vector<std::thread> hydrators;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      hydrators.swap(hydrators_);
    }
    if (hydrators.empty()) break;
    for (auto& t : hydrators) {
      if (t.joinable()) t.join();
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, tenant] : tenants_) {
    (void)id;
    if (tenant->engine != nullptr) tenant->engine->drain();
  }
}

RouterStats TenantRouter::stats() const {
  RouterStats stats;
  stats.routed = routed_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.unknown_tenant = unknown_tenant_.load(std::memory_order_relaxed);
  stats.quota_shed = quota_shed_.load(std::memory_order_relaxed);
  stats.parked = parked_count_.load(std::memory_order_relaxed);
  stats.hydrations = hydrations_.load(std::memory_order_relaxed);
  stats.hydration_failures =
      hydration_failures_count_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<std::string> TenantRouter::tenant_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) ids.push_back(id);
  return ids;
}

TenantReadiness TenantRouter::readiness(const std::string& id) const {
  Tenant* tenant = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tenants_.find(id);
    if (it == tenants_.end()) return TenantReadiness::kUnknownTenant;
    tenant = it->second.get();
  }
  std::lock_guard<std::mutex> tlock(tenant->mutex);
  switch (tenant->state) {
    case TenantState::kCold: return TenantReadiness::kCold;
    case TenantState::kHydrating: return TenantReadiness::kHydrating;
    case TenantState::kWarm: return TenantReadiness::kWarm;
    case TenantState::kFailed: return TenantReadiness::kFailed;
  }
  return TenantReadiness::kFailed;
}

const serve::ServeEngine* TenantRouter::engine(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) return nullptr;
  std::lock_guard<std::mutex> tlock(it->second->mutex);
  return it->second->engine.get();
}

serve::ServeEngine* TenantRouter::engine_mut(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) return nullptr;
  std::lock_guard<std::mutex> tlock(it->second->mutex);
  return it->second->engine.get();
}

}  // namespace lcaknap::net
