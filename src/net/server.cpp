#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace lcaknap::net {
namespace {

constexpr std::size_t kReadChunk = 4096;

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

std::vector<double> frame_latency_buckets() {
  // 1 us up by factor 2 to ~0.5 s: loopback cache hits at the bottom,
  // hydration-parked and deadline-scale frames at the top.
  return metrics::Histogram::exponential_buckets(1.0, 2.0, 20);
}

}  // namespace

Server::Sink::~Sink() {
  if (event_fd >= 0) ::close(event_fd);
}

void Server::Sink::push(std::uint64_t conn_id, std::string bytes) {
  std::lock_guard<std::mutex> lock(mutex);
  if (closed) return;
  ready.emplace_back(conn_id, std::move(bytes));
  const std::uint64_t one = 1;
  // The eventfd write can only fail if the counter saturates; the loop is
  // already guaranteed to wake in that case.
  (void)!::write(event_fd, &one, sizeof(one));
}

Server::Server(TenantRouter& router, const ServerConfig& config,
               metrics::Registry& registry)
    : router_(&router),
      config_(config),
      connections_gauge_(&registry.gauge(
          "net_connections", "Client connections currently open")),
      bytes_in_counter_(&registry.counter(
          "net_bytes_in_total", "Bytes read from client connections")),
      bytes_out_counter_(&registry.counter(
          "net_bytes_out_total", "Bytes written to client connections")),
      decode_errors_counter_(&registry.counter(
          "net_decode_errors_total",
          "Typed wire decode failures (the connection is closed)")),
      frame_latency_us_(&registry.histogram(
          "net_frame_latency_us",
          "Frame latency in microseconds: request decoded to response "
          "queued on the connection",
          frame_latency_buckets())) {
  for (std::size_t s = 0; s < frames_by_status_.size(); ++s) {
    frames_by_status_[s] = &registry.counter(
        "net_frames_total", "Request frames answered, by wire status",
        {{"status", wire_status_name(static_cast<WireStatus>(s))}});
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int yes = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    throw_errno("bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    ::close(listen_fd_);
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, config.backlog) < 0) {
    ::close(listen_fd_);
    throw_errno("listen");
  }
  set_nonblocking(listen_fd_);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    ::close(listen_fd_);
    throw_errno("epoll_create1");
  }
  sink_ = std::make_shared<Sink>();
  sink_->event_fd = ::eventfd(0, EFD_NONBLOCK);
  if (sink_->event_fd < 0) {
    ::close(epoll_fd_);
    ::close(listen_fd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(listener)");
  }
  ev.data.fd = sink_->event_fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, sink_->event_fd, &ev) < 0) {
    throw_errno("epoll_ctl(eventfd)");
  }
  loop_ = std::thread([this] { event_loop(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (loop_.joinable()) loop_.join();
    return;
  }
  sink_->push(0, std::string());  // wake the loop; conn id 0 never exists
  if (loop_.joinable()) loop_.join();
  {
    std::lock_guard<std::mutex> lock(sink_->mutex);
    sink_->closed = true;
    sink_->ready.clear();
  }
  for (auto& [id, conn] : connections_) {
    (void)id;
    ::close(conn.fd);
  }
  connections_.clear();
  conn_by_fd_.clear();
  open_.store(0, std::memory_order_relaxed);
  connections_gauge_->set(0.0);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  epoll_fd_ = -1;
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_cv_.notify_all();
  }
}

void Server::wait_shutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_.load(std::memory_order_relaxed) ||
           stopping_.load(std::memory_order_relaxed);
  });
}

void Server::event_loop() {
  std::array<epoll_event, 64> events;
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; the server can only stop
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        handle_accept();
        continue;
      }
      if (fd == sink_->event_fd) {
        std::uint64_t drained = 0;
        (void)!::read(sink_->event_fd, &drained, sizeof(drained));
        handle_completions();
        continue;
      }
      const auto by_fd = conn_by_fd_.find(fd);
      if (by_fd == conn_by_fd_.end()) continue;
      const std::uint64_t conn_id = by_fd->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_connection(conn_id);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        const auto it = connections_.find(conn_id);
        if (it != connections_.end()) handle_readable(it->second);
      }
      if (events[i].events & EPOLLOUT) {
        const auto it = connections_.find(conn_id);
        if (it != connections_.end()) handle_writable(it->second);
      }
    }
    // Completions may have been pushed synchronously by route() during
    // handle_readable; drain them without waiting for the eventfd round.
    handle_completions();
  }
}

void Server::handle_accept() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or a transient error: nothing to accept
    if (connections_.size() >= config_.max_connections) {
      // Shed at the gate: close immediately instead of serving slowly or
      // letting the kernel backlog hide the overload.
      at_capacity_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int yes = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
    const std::uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.id = id;
    connections_.emplace(id, std::move(conn));
    conn_by_fd_.emplace(fd, id);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      conn_by_fd_.erase(fd);
      connections_.erase(id);
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_.fetch_add(1, std::memory_order_relaxed);
    connections_gauge_->add(1.0);
  }
}

void Server::handle_readable(Connection& conn) {
  char chunk[kReadChunk];
  bool peer_closed = false;
  while (true) {
    const ssize_t got = ::read(conn.fd, chunk, sizeof(chunk));
    if (got > 0) {
      bytes_in_.fetch_add(static_cast<std::uint64_t>(got),
                          std::memory_order_relaxed);
      bytes_in_counter_->inc(static_cast<std::uint64_t>(got));
      conn.inbuf.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    peer_closed = true;
    break;
  }

  const auto received_at = std::chrono::steady_clock::now();
  std::size_t consumed_total = 0;
  while (!conn.closing) {
    RequestFrame frame;
    std::size_t consumed = 0;
    try {
      consumed = decode(
          std::string_view(conn.inbuf).substr(consumed_total), frame);
    } catch (const WireDecodeError&) {
      // The stream is no longer frame-aligned: answer what we can and tear
      // the connection down (typed, counted, never a crash).
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      decode_errors_counter_->inc();
      ResponseFrame response;
      response.request_id = 0;
      response.status = WireStatus::kBadRequest;
      respond(conn, response);
      conn.closing = true;
      break;
    }
    if (consumed == 0) break;
    consumed_total += consumed;
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    handle_frame(conn, frame, received_at);
  }
  if (consumed_total > 0) conn.inbuf.erase(0, consumed_total);

  if (conn.closing) {
    flush(conn);
    if (conn.out_offset >= conn.outbuf.size()) close_connection(conn.id);
    return;
  }
  if (peer_closed) {
    close_connection(conn.id);
    return;
  }
  flush(conn);
  update_write_interest(conn);
}

void Server::handle_frame(Connection& conn, const RequestFrame& frame,
                          std::chrono::steady_clock::time_point received_at) {
  if (frame.flags & RequestFrame::kFlagHealth) {
    // Readiness probe: answered on the loop thread straight from the
    // router's state machine, never queued behind real work — a hydrating
    // replica must still answer "not ready" instantly.
    health_probes_.fetch_add(1, std::memory_order_relaxed);
    ResponseFrame response;
    response.request_id = frame.request_id;
    const auto readiness = router_->readiness(frame.tenant);
    if (readiness == TenantReadiness::kUnknownTenant) {
      response.status = WireStatus::kUnknownTenant;
    } else {
      response.status = WireStatus::kOk;
      response.answer = readiness == TenantReadiness::kWarm;
    }
    respond(conn, response);
    return;
  }
  if (frame.flags & RequestFrame::kFlagShutdown) {
    ResponseFrame response;
    response.request_id = frame.request_id;
    if (config_.allow_shutdown) {
      response.status = WireStatus::kShuttingDown;
      respond(conn, response);
      shutdown_requested_.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(shutdown_mutex_);
      shutdown_cv_.notify_all();
    } else {
      // The flag is gated: an unauthorized shutdown is a bad request, not
      // an outage.
      response.status = WireStatus::kBadRequest;
      respond(conn, response);
    }
    return;
  }
  if (conn.inflight >= config_.max_inflight_per_connection) {
    // Backpressure, synchronously: the frame never touches a queue and the
    // client hears "overloaded" instead of silence.
    inflight_shed_.fetch_add(1, std::memory_order_relaxed);
    ResponseFrame response;
    response.request_id = frame.request_id;
    response.status = WireStatus::kOverloaded;
    respond(conn, response);
    return;
  }
  conn.inflight += 1;
  // The callback runs on an arbitrary engine/router thread (or this one,
  // synchronously, for rejections): encode there, hand the bytes to the
  // loop through the sink.  `latency` is observed at enqueue time in
  // handle_completions via the pre-encoded timestamp closure instead; we
  // keep it simple and observe here only for synchronous completions.
  auto sink = sink_;
  const std::uint64_t conn_id = conn.id;
  const std::uint64_t replica_id = config_.replica_id;
  metrics::Histogram* latency = frame_latency_us_;
  router_->route(frame, [sink, conn_id, replica_id, latency,
                         received_at](const ResponseFrame& response) {
    ResponseFrame attributed = response;
    attributed.replica_id = replica_id;
    std::string bytes;
    encode(attributed, bytes);
    latency->observe(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - received_at)
                         .count());
    sink->push(conn_id, std::move(bytes));
  });
}

void Server::handle_completions() {
  std::vector<std::pair<std::uint64_t, std::string>> ready;
  {
    std::lock_guard<std::mutex> lock(sink_->mutex);
    ready.swap(sink_->ready);
  }
  for (auto& [conn_id, bytes] : ready) {
    if (bytes.empty()) continue;  // stop() wake marker
    const auto it = connections_.find(conn_id);
    if (it == connections_.end()) {
      // The connection died while the engine worked; the response has
      // nowhere to go.  The router already counted the completion.
      continue;
    }
    Connection& conn = it->second;
    if (conn.inflight > 0) conn.inflight -= 1;
    // Routed completions carry a decoded status in their bytes; recover it
    // for the status counters without re-decoding: byte 10..11 is status.
    ResponseFrame response;
    try {
      (void)decode(bytes, response);
      count_status(response.status);
    } catch (const WireDecodeError&) {
      // Unreachable: we encoded these bytes ourselves.
    }
    conn.outbuf.append(bytes);
    flush(conn);
    update_write_interest(conn);
  }
}

void Server::respond(Connection& conn, const ResponseFrame& response) {
  ResponseFrame attributed = response;
  attributed.replica_id = config_.replica_id;
  encode(attributed, conn.outbuf);
  count_status(response.status);
  frame_latency_us_->observe(0.0);
  flush(conn);
  update_write_interest(conn);
}

void Server::count_status(WireStatus status) {
  const auto s = static_cast<std::size_t>(status);
  if (s < by_status_.size()) {
    by_status_[s].fetch_add(1, std::memory_order_relaxed);
    frames_by_status_[s]->inc();
  }
}

void Server::flush(Connection& conn) {
  while (conn.out_offset < conn.outbuf.size()) {
    // MSG_NOSIGNAL: a peer that resets with a response in flight must be an
    // EPIPE errno (-> conn.closing below), never a process-fatal SIGPIPE.
    const ssize_t wrote =
        ::send(conn.fd, conn.outbuf.data() + conn.out_offset,
               conn.outbuf.size() - conn.out_offset, MSG_NOSIGNAL);
    if (wrote > 0) {
      bytes_out_.fetch_add(static_cast<std::uint64_t>(wrote),
                           std::memory_order_relaxed);
      bytes_out_counter_->inc(static_cast<std::uint64_t>(wrote));
      conn.out_offset += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (wrote < 0 && errno == EINTR) continue;
    conn.closing = true;  // peer is gone; close once we unwind
    break;
  }
  if (conn.out_offset >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_offset = 0;
  } else if (conn.out_offset > kReadChunk) {
    conn.outbuf.erase(0, conn.out_offset);
    conn.out_offset = 0;
  }
}

void Server::update_write_interest(Connection& conn) {
  const bool want = conn.out_offset < conn.outbuf.size();
  if (want == conn.want_write) return;
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Server::handle_writable(Connection& conn) {
  flush(conn);
  if (conn.closing && conn.out_offset >= conn.outbuf.size()) {
    close_connection(conn.id);
    return;
  }
  update_write_interest(conn);
}

void Server::close_connection(std::uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  const int fd = it->second.fd;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conn_by_fd_.erase(fd);
  connections_.erase(it);
  open_.fetch_sub(1, std::memory_order_relaxed);
  connections_gauge_->add(-1.0);
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.at_capacity = at_capacity_.load(std::memory_order_relaxed);
  stats.open = open_.load(std::memory_order_relaxed);
  stats.frames_in = frames_in_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  stats.inflight_shed = inflight_shed_.load(std::memory_order_relaxed);
  stats.health_probes = health_probes_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  for (std::size_t s = 0; s < by_status_.size(); ++s) {
    stats.by_status[s] = by_status_[s].load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace lcaknap::net
