#include "knapsack/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lcaknap::knapsack {

namespace {

/// Capacity = fraction of the total weight, but never below the heaviest item
/// (Definition 2.2 requires every w_i <= K).
std::int64_t pick_capacity(const std::vector<Item>& items, double fraction) {
  std::int64_t total = 0;
  std::int64_t heaviest = 0;
  for (const auto& it : items) {
    total += it.weight;
    heaviest = std::max(heaviest, it.weight);
  }
  const auto cap = static_cast<std::int64_t>(
      std::llround(fraction * static_cast<double>(total)));
  return std::max<std::int64_t>({cap, heaviest, 1});
}

Instance finish(std::vector<Item> items, double fraction) {
  const std::int64_t cap = pick_capacity(items, fraction);
  return {std::move(items), cap};
}

}  // namespace

Instance uncorrelated(const GeneratorConfig& cfg, util::Xoshiro256& rng) {
  std::vector<Item> items(cfg.n);
  for (auto& it : items) {
    it.profit = rng.next_in(1, cfg.max_value);
    it.weight = rng.next_in(1, cfg.max_value);
  }
  return finish(std::move(items), cfg.capacity_fraction);
}

Instance weakly_correlated(const GeneratorConfig& cfg, util::Xoshiro256& rng) {
  const std::int64_t spread = std::max<std::int64_t>(1, cfg.max_value / 10);
  std::vector<Item> items(cfg.n);
  for (auto& it : items) {
    it.weight = rng.next_in(1, cfg.max_value);
    it.profit = std::max<std::int64_t>(1, it.weight + rng.next_in(-spread, spread));
  }
  return finish(std::move(items), cfg.capacity_fraction);
}

Instance strongly_correlated(const GeneratorConfig& cfg, util::Xoshiro256& rng) {
  const std::int64_t bonus = std::max<std::int64_t>(1, cfg.max_value / 10);
  std::vector<Item> items(cfg.n);
  for (auto& it : items) {
    it.weight = rng.next_in(1, cfg.max_value);
    it.profit = it.weight + bonus;
  }
  return finish(std::move(items), cfg.capacity_fraction);
}

Instance inverse_correlated(const GeneratorConfig& cfg, util::Xoshiro256& rng) {
  const std::int64_t bonus = std::max<std::int64_t>(1, cfg.max_value / 10);
  std::vector<Item> items(cfg.n);
  for (auto& it : items) {
    it.profit = rng.next_in(1, cfg.max_value);
    it.weight = it.profit + bonus;
  }
  return finish(std::move(items), cfg.capacity_fraction);
}

Instance subset_sum(const GeneratorConfig& cfg, util::Xoshiro256& rng) {
  std::vector<Item> items(cfg.n);
  for (auto& it : items) {
    it.weight = rng.next_in(1, cfg.max_value);
    it.profit = it.weight;
  }
  return finish(std::move(items), cfg.capacity_fraction);
}

Instance similar_weights(const GeneratorConfig& cfg, util::Xoshiro256& rng) {
  const std::int64_t base = std::max<std::int64_t>(1, cfg.max_value / 2);
  const std::int64_t jitter = std::max<std::int64_t>(1, cfg.max_value / 100);
  std::vector<Item> items(cfg.n);
  for (auto& it : items) {
    it.weight = base + rng.next_in(0, jitter);
    it.profit = rng.next_in(1, cfg.max_value);
  }
  return finish(std::move(items), cfg.capacity_fraction);
}

Instance profit_ceiling(const GeneratorConfig& cfg, util::Xoshiro256& rng) {
  std::vector<Item> items(cfg.n);
  for (auto& it : items) {
    it.weight = rng.next_in(1, cfg.max_value);
    it.profit = 3 * ((it.weight + 2) / 3);  // 3 * ceil(w / 3)
  }
  return finish(std::move(items), cfg.capacity_fraction);
}

Instance circle(const GeneratorConfig& cfg, util::Xoshiro256& rng) {
  // p(w) = d * sqrt(4 R^2 - (w - 2 R)^2) with R = max_value / 4: profits lie
  // on the upper half of a circle over the weight range, d = 2/3 as in
  // Pisinger's description.
  const double radius = static_cast<double>(cfg.max_value) / 4.0;
  std::vector<Item> items(cfg.n);
  for (auto& it : items) {
    it.weight = rng.next_in(1, cfg.max_value);
    const double x = static_cast<double>(it.weight) - 2.0 * radius;
    const double disc = std::max(0.0, 4.0 * radius * radius - x * x);
    it.profit = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(2.0 / 3.0 * std::sqrt(disc))));
  }
  return finish(std::move(items), cfg.capacity_fraction);
}

Instance needle(const NeedleConfig& cfg, util::Xoshiro256& rng) {
  if (cfg.heavy_count == 0 || cfg.heavy_count >= cfg.n) {
    throw std::invalid_argument("needle: heavy_count must be in (0, n)");
  }
  if (cfg.heavy_mass + cfg.garbage_mass >= 1.0) {
    throw std::invalid_argument("needle: heavy_mass + garbage_mass must be < 1");
  }
  // Raw profit budget: scale so that per-item profits stay integral yet the
  // target mass fractions hold closely.
  constexpr std::int64_t kBudget = 100'000'000;
  const std::size_t garbage_count = (cfg.n - cfg.heavy_count) / 3;
  const std::size_t small_count = cfg.n - cfg.heavy_count - garbage_count;

  const auto heavy_budget =
      static_cast<std::int64_t>(cfg.heavy_mass * kBudget);
  const auto garbage_budget =
      static_cast<std::int64_t>(cfg.garbage_mass * kBudget);
  const std::int64_t small_budget = kBudget - heavy_budget - garbage_budget;

  std::vector<Item> items;
  items.reserve(cfg.n);
  // Heavy items: large profit, moderate weight -> classified L(I) for
  // reasonable epsilon.
  for (std::size_t i = 0; i < cfg.heavy_count; ++i) {
    Item it;
    it.profit = std::max<std::int64_t>(
        1, heavy_budget / static_cast<std::int64_t>(cfg.heavy_count) +
               rng.next_in(-heavy_budget / 50, heavy_budget / 50));
    it.weight = rng.next_in(500, 1'500);
    items.push_back(it);
  }
  // Small items: tiny profit, high efficiency (weight comparable to profit
  // scale), spread over a range of efficiencies so the EPS has structure.
  for (std::size_t i = 0; i < small_count; ++i) {
    Item it;
    it.profit = std::max<std::int64_t>(
        1, small_budget / static_cast<std::int64_t>(small_count) +
               rng.next_in(-small_budget / (2 * static_cast<std::int64_t>(small_count)),
                           small_budget / (2 * static_cast<std::int64_t>(small_count))));
    // Efficiency varies by a factor of ~8 across small items.
    const double stretch = 0.5 + 3.5 * rng.next_double();
    it.weight = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(static_cast<double>(it.profit) * stretch));
    items.push_back(it);
  }
  // Garbage: negligible profit, disproportionately large weight (low
  // efficiency), so they land in G(I).
  for (std::size_t i = 0; i < garbage_count; ++i) {
    Item it;
    it.profit = std::max<std::int64_t>(
        1, garbage_budget / static_cast<std::int64_t>(garbage_count));
    it.weight = std::max<std::int64_t>(1, it.profit * rng.next_in(200, 2'000));
    items.push_back(it);
  }
  // Shuffle so index order carries no signal (LCAs only see what they query).
  for (std::size_t i = items.size(); i > 1; --i) {
    std::swap(items[i - 1], items[rng.next_below(i)]);
  }
  return finish(std::move(items), cfg.capacity_fraction);
}

std::string family_name(Family family) {
  switch (family) {
    case Family::kUncorrelated: return "uncorrelated";
    case Family::kWeaklyCorrelated: return "weakly_correlated";
    case Family::kStronglyCorrelated: return "strongly_correlated";
    case Family::kInverseCorrelated: return "inverse_correlated";
    case Family::kSubsetSum: return "subset_sum";
    case Family::kSimilarWeights: return "similar_weights";
    case Family::kProfitCeiling: return "profit_ceiling";
    case Family::kCircle: return "circle";
    case Family::kNeedle: return "needle";
  }
  return "unknown";
}

std::vector<Family> all_families() {
  return {Family::kUncorrelated,   Family::kWeaklyCorrelated,
          Family::kStronglyCorrelated, Family::kInverseCorrelated,
          Family::kSubsetSum,      Family::kSimilarWeights,
          Family::kProfitCeiling,  Family::kCircle,
          Family::kNeedle};
}

Instance make_family(Family family, std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  GeneratorConfig cfg;
  cfg.n = n;
  switch (family) {
    case Family::kUncorrelated: return uncorrelated(cfg, rng);
    case Family::kWeaklyCorrelated: return weakly_correlated(cfg, rng);
    case Family::kStronglyCorrelated: return strongly_correlated(cfg, rng);
    case Family::kInverseCorrelated: return inverse_correlated(cfg, rng);
    case Family::kSubsetSum: return subset_sum(cfg, rng);
    case Family::kSimilarWeights: return similar_weights(cfg, rng);
    case Family::kProfitCeiling: return profit_ceiling(cfg, rng);
    case Family::kCircle: return circle(cfg, rng);
    case Family::kNeedle: {
      NeedleConfig ncfg;
      ncfg.n = n;
      return needle(ncfg, rng);
    }
  }
  throw std::invalid_argument("make_family: unknown family");
}

}  // namespace lcaknap::knapsack
