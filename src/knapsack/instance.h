#ifndef LCAKNAP_KNAPSACK_INSTANCE_H
#define LCAKNAP_KNAPSACK_INSTANCE_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "knapsack/item.h"

/// \file instance.h
/// The Knapsack instance I = (S, K) of Definition 2.2 and the normalized view
/// used throughout Section 4: total profit is treated as 1 and total weight
/// as 1, so every profit/weight/efficiency the algorithms reason about is the
/// *normalized* one.  Raw integer values are retained so exact solvers stay
/// exact and so the finite efficiency domain (Section 4.2) is well defined.

namespace lcaknap::knapsack {

/// A selection of item indices together with its exact raw value and weight.
struct Solution {
  std::vector<std::size_t> items;
  std::int64_t value = 0;
  std::int64_t weight = 0;
};

class Instance {
 public:
  /// Validates and stores the items.  Requirements (throwing
  /// std::invalid_argument when violated): at least one item, profits >= 0
  /// with positive total, weights >= 0, capacity >= 0, and every weight at
  /// most the capacity (the paper's Definition 2.2 convention; items heavier
  /// than K could never be chosen and are excluded by instance construction).
  Instance(std::vector<Item> items, std::int64_t capacity);

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] const Item& item(std::size_t i) const { return items_.at(i); }
  [[nodiscard]] std::span<const Item> items() const noexcept { return items_; }
  [[nodiscard]] std::int64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::int64_t total_profit() const noexcept { return total_profit_; }
  [[nodiscard]] std::int64_t total_weight() const noexcept { return total_weight_; }

  /// Normalized profit p_i in (0, 1]: raw profit divided by total profit.
  [[nodiscard]] double norm_profit(std::size_t i) const {
    return static_cast<double>(item(i).profit) / static_cast<double>(total_profit_);
  }
  /// Normalized weight w_i: raw weight divided by total weight.
  [[nodiscard]] double norm_weight(std::size_t i) const {
    return static_cast<double>(item(i).weight) / static_cast<double>(total_weight_);
  }
  /// Normalized capacity K: raw capacity divided by total weight.
  [[nodiscard]] double norm_capacity() const noexcept {
    return static_cast<double>(capacity_) / static_cast<double>(total_weight_);
  }
  /// Normalized efficiency p_i / w_i (ratio of normalized profit to
  /// normalized weight); +infinity for zero-weight items.
  [[nodiscard]] double efficiency(std::size_t i) const;

  /// Exact value / weight of a selection of indices.
  [[nodiscard]] std::int64_t value_of(std::span<const std::size_t> selection) const;
  [[nodiscard]] std::int64_t weight_of(std::span<const std::size_t> selection) const;
  /// True when the selection's total weight is within the capacity.
  [[nodiscard]] bool feasible(std::span<const std::size_t> selection) const;
  /// Builds a Solution record (value/weight filled in) for a selection.
  [[nodiscard]] Solution make_solution(std::vector<std::size_t> selection) const;

  /// True when no item outside `selection` can be added without exceeding the
  /// capacity — the "maximal feasible" notion of Theorem 3.4.
  [[nodiscard]] bool is_maximal(std::span<const std::size_t> selection) const;

  /// Plain-text serialization: "n capacity" then one "profit weight" per line.
  void save(std::ostream& os) const;
  [[nodiscard]] static Instance load(std::istream& is);

 private:
  std::vector<Item> items_;
  std::int64_t capacity_;
  std::int64_t total_profit_ = 0;
  std::int64_t total_weight_ = 0;
};

}  // namespace lcaknap::knapsack

#endif  // LCAKNAP_KNAPSACK_INSTANCE_H
