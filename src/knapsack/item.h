#ifndef LCAKNAP_KNAPSACK_ITEM_H
#define LCAKNAP_KNAPSACK_ITEM_H

#include <cstdint>

/// \file item.h
/// A Knapsack item.  Profits and weights are kept as exact 64-bit integers
/// (the paper's Section 4.2 assumes integer inputs of poly(n) bit-length);
/// normalized real-valued views are derived per instance.

namespace lcaknap::knapsack {

struct Item {
  std::int64_t profit = 0;
  std::int64_t weight = 0;

  friend constexpr bool operator==(const Item&, const Item&) noexcept = default;
};

}  // namespace lcaknap::knapsack

#endif  // LCAKNAP_KNAPSACK_ITEM_H
