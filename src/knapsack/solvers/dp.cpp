#include "knapsack/solvers/dp.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace lcaknap::knapsack {

namespace {

/// Bit-packed take/skip decisions, one row per item.
class DecisionBits {
 public:
  DecisionBits(std::size_t rows, std::size_t cols)
      : cols_(cols), bits_((rows * cols + 63) / 64, 0) {}

  void set(std::size_t row, std::size_t col) noexcept {
    const std::size_t bit = row * cols_ + col;
    bits_[bit >> 6] |= (1ULL << (bit & 63));
  }
  [[nodiscard]] bool get(std::size_t row, std::size_t col) const noexcept {
    const std::size_t bit = row * cols_ + col;
    return (bits_[bit >> 6] >> (bit & 63)) & 1ULL;
  }

 private:
  std::size_t cols_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace

Solution dp_by_weight(const Instance& instance, std::size_t cell_limit) {
  const std::size_t n = instance.size();
  const auto capacity = static_cast<std::size_t>(instance.capacity());
  if (n * (capacity + 1) > cell_limit) {
    throw std::invalid_argument("dp_by_weight: table exceeds cell limit");
  }
  std::vector<std::int64_t> best(capacity + 1, 0);
  DecisionBits took(n, capacity + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const Item& it = instance.item(i);
    const auto w = static_cast<std::size_t>(it.weight);
    for (std::size_t c = capacity; c + 1 > w; --c) {  // c >= w, unsigned-safe
      const std::int64_t candidate = best[c - w] + it.profit;
      if (candidate > best[c]) {
        best[c] = candidate;
        took.set(i, c);
      }
      if (c == w) break;
    }
  }
  // Reconstruct backwards.
  std::vector<std::size_t> selection;
  std::size_t c = capacity;
  for (std::size_t i = n; i-- > 0;) {
    if (took.get(i, c)) {
      selection.push_back(i);
      c -= static_cast<std::size_t>(instance.item(i).weight);
    }
  }
  std::reverse(selection.begin(), selection.end());
  return instance.make_solution(std::move(selection));
}

Solution dp_by_profit(const Instance& instance, std::size_t cell_limit) {
  const std::size_t n = instance.size();
  const auto total_profit = static_cast<std::size_t>(instance.total_profit());
  if (n * (total_profit + 1) > cell_limit) {
    throw std::invalid_argument("dp_by_profit: table exceeds cell limit");
  }
  constexpr std::int64_t kUnreachable = std::numeric_limits<std::int64_t>::max();
  // min_weight[p] = least weight achieving profit exactly p.
  std::vector<std::int64_t> min_weight(total_profit + 1, kUnreachable);
  min_weight[0] = 0;
  DecisionBits took(n, total_profit + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const Item& it = instance.item(i);
    const auto p = static_cast<std::size_t>(it.profit);
    if (p == 0) continue;  // zero-profit items never improve a profit level
    for (std::size_t target = total_profit; target + 1 > p; --target) {
      if (min_weight[target - p] == kUnreachable) {
        if (target == p) break;
        continue;
      }
      const std::int64_t candidate = min_weight[target - p] + it.weight;
      if (candidate < min_weight[target]) {
        min_weight[target] = candidate;
        took.set(i, target);
      }
      if (target == p) break;
    }
  }
  std::size_t best_profit = 0;
  for (std::size_t p = total_profit + 1; p-- > 0;) {
    if (min_weight[p] != kUnreachable && min_weight[p] <= instance.capacity()) {
      best_profit = p;
      break;
    }
  }
  std::vector<std::size_t> selection;
  std::size_t p = best_profit;
  for (std::size_t i = n; i-- > 0;) {
    if (p > 0 && took.get(i, p)) {
      selection.push_back(i);
      p -= static_cast<std::size_t>(instance.item(i).profit);
    }
  }
  std::reverse(selection.begin(), selection.end());
  return instance.make_solution(std::move(selection));
}

}  // namespace lcaknap::knapsack
