#include "knapsack/solvers/fptas.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "knapsack/solvers/dp.h"

namespace lcaknap::knapsack {

Solution fptas(const Instance& instance, double eps, std::size_t cell_limit) {
  if (!(eps > 0.0 && eps < 1.0)) {
    throw std::invalid_argument("fptas: eps must be in (0, 1)");
  }
  std::int64_t p_max = 0;
  for (const auto& it : instance.items()) p_max = std::max(p_max, it.profit);
  const double mu =
      eps * static_cast<double>(p_max) / static_cast<double>(instance.size());
  if (mu <= 1.0) {
    // Profits are already small: the exact DP is affordable as-is.
    return dp_by_profit(instance, cell_limit);
  }
  std::vector<Item> scaled;
  scaled.reserve(instance.size());
  bool any_positive = false;
  for (const auto& it : instance.items()) {
    Item s;
    s.profit = static_cast<std::int64_t>(
        std::floor(static_cast<double>(it.profit) / mu));
    s.weight = it.weight;
    any_positive = any_positive || s.profit > 0;
    scaled.push_back(s);
  }
  if (!any_positive) {
    // Degenerate: every profit rounded to zero (cannot happen when p_max
    // scales to n/eps >= 1, but keep the guard for tiny instances).
    return instance.make_solution({});
  }
  const Instance scaled_instance(std::move(scaled), instance.capacity());
  Solution scaled_solution = dp_by_profit(scaled_instance, cell_limit);
  // Same indices, original profits.
  return instance.make_solution(std::move(scaled_solution.items));
}

}  // namespace lcaknap::knapsack
