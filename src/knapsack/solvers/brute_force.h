#ifndef LCAKNAP_KNAPSACK_SOLVERS_BRUTE_FORCE_H
#define LCAKNAP_KNAPSACK_SOLVERS_BRUTE_FORCE_H

#include "knapsack/instance.h"

/// \file brute_force.h
/// Exhaustive enumeration over all 2^n subsets.  Ground truth for property
/// tests; restricted to n <= 26.

namespace lcaknap::knapsack {

/// Returns an optimal solution.  Throws std::invalid_argument for n > 26.
[[nodiscard]] Solution brute_force(const Instance& instance);

}  // namespace lcaknap::knapsack

#endif  // LCAKNAP_KNAPSACK_SOLVERS_BRUTE_FORCE_H
