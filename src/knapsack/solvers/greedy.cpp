#include "knapsack/solvers/greedy.h"

#include <algorithm>
#include <numeric>

#include "util/rational.h"

namespace lcaknap::knapsack {

std::vector<std::size_t> efficiency_order(const Instance& instance) {
  std::vector<std::size_t> order(instance.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Item& ia = instance.item(a);
    const Item& ib = instance.item(b);
    // Zero-weight items have infinite efficiency and come first.
    if (ia.weight == 0 || ib.weight == 0) {
      if (ia.weight == 0 && ib.weight == 0) return a < b;
      return ia.weight == 0;
    }
    // p_a / w_a > p_b / w_b  <=>  p_a * w_b > p_b * w_a  (exact).
    const auto cmp = util::cmp_products(ia.profit, ib.weight, ib.profit, ia.weight);
    if (cmp != std::strong_ordering::equal) return cmp == std::strong_ordering::greater;
    return a < b;
  });
  return order;
}

double fractional_opt(const Instance& instance) {
  const auto order = efficiency_order(instance);
  std::int64_t remaining = instance.capacity();
  double value = 0.0;
  for (const auto idx : order) {
    const Item& it = instance.item(idx);
    if (it.weight <= remaining) {
      remaining -= it.weight;
      value += static_cast<double>(it.profit);
    } else {
      if (remaining > 0 && it.weight > 0) {
        value += static_cast<double>(it.profit) * static_cast<double>(remaining) /
                 static_cast<double>(it.weight);
      }
      break;
    }
  }
  return value;
}

GreedyResult greedy_half(const Instance& instance) {
  const auto order = efficiency_order(instance);
  GreedyResult result;

  std::vector<std::size_t> prefix;
  std::int64_t remaining = instance.capacity();
  std::size_t rank = 0;
  result.cutoff_rank = order.size();
  for (; rank < order.size(); ++rank) {
    const std::size_t idx = order[rank];
    const Item& it = instance.item(idx);
    if (it.weight <= remaining) {
      remaining -= it.weight;
      prefix.push_back(idx);
    } else {
      result.cutoff_rank = rank;
      result.cutoff_index = idx;
      result.cutoff_efficiency = instance.efficiency(idx);
      break;
    }
  }

  Solution prefix_solution = instance.make_solution(std::move(prefix));
  if (result.cutoff_index == GreedyResult::kNoCutoff) {
    // Everything fit: the greedy prefix is the whole instance and is optimal.
    result.solution = std::move(prefix_solution);
    return result;
  }
  // Best of the prefix and the singleton {first left-out item}.  The left-out
  // item fits on its own because Definition 2.2 bounds every weight by K.
  const std::int64_t singleton_value = instance.item(result.cutoff_index).profit;
  if (singleton_value > prefix_solution.value) {
    result.solution = instance.make_solution({result.cutoff_index});
    result.used_singleton = true;
  } else {
    result.solution = std::move(prefix_solution);
  }
  return result;
}

}  // namespace lcaknap::knapsack
