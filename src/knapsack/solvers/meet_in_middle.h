#ifndef LCAKNAP_KNAPSACK_SOLVERS_MEET_IN_MIDDLE_H
#define LCAKNAP_KNAPSACK_SOLVERS_MEET_IN_MIDDLE_H

#include "knapsack/instance.h"

/// \file meet_in_middle.h
/// Horowitz–Sahni meet-in-the-middle: exact Knapsack in O(2^{n/2} n) time and
/// O(2^{n/2}) space, independent of the magnitudes of profits and weights.
/// Complements the DPs (which need small K or P) and branch & bound (which
/// can blow up on correlated instances): for n <= ~40 this is the referee of
/// last resort, e.g. for strongly-correlated instances with huge values.

namespace lcaknap::knapsack {

/// Returns an optimal solution.  Throws std::invalid_argument for n > 40.
[[nodiscard]] Solution meet_in_middle(const Instance& instance);

}  // namespace lcaknap::knapsack

#endif  // LCAKNAP_KNAPSACK_SOLVERS_MEET_IN_MIDDLE_H
