#ifndef LCAKNAP_KNAPSACK_SOLVERS_FPTAS_H
#define LCAKNAP_KNAPSACK_SOLVERS_FPTAS_H

#include "knapsack/instance.h"

/// \file fptas.h
/// The standard profit-scaling FPTAS ([WS11, Section 3.2]): scale profits by
/// mu = eps * p_max / n, solve exactly by the profit-indexed DP, and return
/// the witness evaluated at the original profits.  Guarantees a (1 - eps)
/// approximation.  This is also the rounding scheme the paper's footnote 5
/// offers as an alternative route to a finite efficiency domain.

namespace lcaknap::knapsack {

/// Returns a (1 - eps)-approximate solution.  eps must lie in (0, 1).
/// Throws std::invalid_argument when the scaled DP table would exceed
/// `cell_limit` (the FPTAS costs O(n^3 / eps) time in general).
[[nodiscard]] Solution fptas(const Instance& instance, double eps,
                             std::size_t cell_limit = 200'000'000);

}  // namespace lcaknap::knapsack

#endif  // LCAKNAP_KNAPSACK_SOLVERS_FPTAS_H
