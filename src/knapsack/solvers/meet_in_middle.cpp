#include "knapsack/solvers/meet_in_middle.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace lcaknap::knapsack {

namespace {

struct HalfEntry {
  std::int64_t weight;
  std::int64_t value;
  std::uint64_t mask;
};

}  // namespace

Solution meet_in_middle(const Instance& instance) {
  const std::size_t n = instance.size();
  if (n > 40) throw std::invalid_argument("meet_in_middle: n > 40");

  const std::size_t left_count = n / 2;
  const std::size_t right_count = n - left_count;

  const auto enumerate = [&](std::size_t base, std::size_t count) {
    std::vector<HalfEntry> entries;
    entries.reserve(std::size_t{1} << count);
    const std::uint64_t subsets = 1ULL << count;
    for (std::uint64_t mask = 0; mask < subsets; ++mask) {
      std::int64_t weight = 0;
      std::int64_t value = 0;
      for (std::size_t b = 0; b < count; ++b) {
        if (mask & (1ULL << b)) {
          const Item& it = instance.item(base + b);
          weight += it.weight;
          value += it.profit;
        }
      }
      if (weight <= instance.capacity()) entries.push_back({weight, value, mask});
    }
    return entries;
  };

  std::vector<HalfEntry> left = enumerate(0, left_count);
  std::vector<HalfEntry> right = enumerate(left_count, right_count);

  // Sort the right half by weight and make values prefix-maximal, so the
  // best right completion for any residual capacity is a binary search away.
  std::sort(right.begin(), right.end(),
            [](const HalfEntry& a, const HalfEntry& b) { return a.weight < b.weight; });
  std::vector<HalfEntry> frontier;
  frontier.reserve(right.size());
  std::int64_t best_value = -1;
  for (const auto& entry : right) {
    if (entry.value > best_value) {
      best_value = entry.value;
      frontier.push_back(entry);
    }
  }

  std::int64_t best_total = -1;
  std::uint64_t best_left_mask = 0;
  std::uint64_t best_right_mask = 0;
  for (const auto& l : left) {
    const std::int64_t residual = instance.capacity() - l.weight;
    // Largest frontier entry with weight <= residual.
    const auto it = std::upper_bound(
        frontier.begin(), frontier.end(), residual,
        [](std::int64_t cap, const HalfEntry& e) { return cap < e.weight; });
    if (it == frontier.begin()) continue;  // not even the empty set? (weight 0 always present)
    const HalfEntry& r = *(it - 1);
    if (l.value + r.value > best_total) {
      best_total = l.value + r.value;
      best_left_mask = l.mask;
      best_right_mask = r.mask;
    }
  }

  std::vector<std::size_t> selection;
  for (std::size_t b = 0; b < left_count; ++b) {
    if (best_left_mask & (1ULL << b)) selection.push_back(b);
  }
  for (std::size_t b = 0; b < right_count; ++b) {
    if (best_right_mask & (1ULL << b)) selection.push_back(left_count + b);
  }
  return instance.make_solution(std::move(selection));
}

}  // namespace lcaknap::knapsack
