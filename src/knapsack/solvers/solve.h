#ifndef LCAKNAP_KNAPSACK_SOLVERS_SOLVE_H
#define LCAKNAP_KNAPSACK_SOLVERS_SOLVE_H

#include "knapsack/instance.h"

/// \file solve.h
/// Convenience referee: picks the cheapest exact solver that fits the
/// instance (weight DP, profit DP, then branch & bound).

namespace lcaknap::knapsack {

struct ExactResult {
  Solution solution;
  /// False only when every exact method was out of reach and a truncated
  /// branch & bound answer was returned.
  bool proven_optimal = true;
};

[[nodiscard]] ExactResult solve_exact(const Instance& instance,
                                      std::uint64_t bb_node_budget = 50'000'000);

}  // namespace lcaknap::knapsack

#endif  // LCAKNAP_KNAPSACK_SOLVERS_SOLVE_H
