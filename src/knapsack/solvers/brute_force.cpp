#include "knapsack/solvers/brute_force.h"

#include <stdexcept>

namespace lcaknap::knapsack {

Solution brute_force(const Instance& instance) {
  const std::size_t n = instance.size();
  if (n > 26) throw std::invalid_argument("brute_force: n > 26");
  const std::uint64_t subsets = 1ULL << n;
  std::int64_t best_value = -1;
  std::uint64_t best_mask = 0;
  for (std::uint64_t mask = 0; mask < subsets; ++mask) {
    std::int64_t value = 0;
    std::int64_t weight = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        value += instance.item(i).profit;
        weight += instance.item(i).weight;
      }
    }
    if (weight <= instance.capacity() && value > best_value) {
      best_value = value;
      best_mask = mask;
    }
  }
  std::vector<std::size_t> selection;
  for (std::size_t i = 0; i < n; ++i) {
    if (best_mask & (1ULL << i)) selection.push_back(i);
  }
  return instance.make_solution(std::move(selection));
}

}  // namespace lcaknap::knapsack
