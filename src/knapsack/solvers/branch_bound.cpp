#include "knapsack/solvers/branch_bound.h"

#include <vector>

#include "knapsack/solvers/greedy.h"

namespace lcaknap::knapsack {

namespace {

/// Explicit-stack DFS state: recursion would overflow the call stack on
/// large instances (depth = n), so the search walks a heap-allocated stack.
enum class Phase { kEnter, kAfterInclude, kAfterExclude };

struct Frame {
  std::size_t rank;
  std::int64_t value;
  std::int64_t remaining;
  Phase phase;
  bool included;  // whether this frame set taken[order[rank]]
};

}  // namespace

BranchBoundResult branch_bound(const Instance& instance, std::uint64_t node_budget) {
  const auto order = efficiency_order(instance);
  const std::size_t n = order.size();

  // Seed the incumbent with the 1/2-approximation so pruning bites early and
  // a truncated search is never worse than greedy.
  const GreedyResult greedy = greedy_half(instance);
  std::int64_t best_value = greedy.solution.value;
  std::vector<bool> best_taken(n, false);
  for (const auto i : greedy.solution.items) best_taken[i] = true;

  std::vector<bool> taken(n, false);
  std::uint64_t nodes = 0;
  bool truncated = false;

  // Fractional completion bound for the suffix starting at `rank`.
  const auto upper_bound = [&](std::size_t rank, std::int64_t remaining) {
    double bound = 0.0;
    for (std::size_t r = rank; r < n; ++r) {
      const Item& it = instance.item(order[r]);
      if (it.weight <= remaining) {
        remaining -= it.weight;
        bound += static_cast<double>(it.profit);
      } else {
        if (remaining > 0 && it.weight > 0) {
          bound += static_cast<double>(it.profit) * static_cast<double>(remaining) /
                   static_cast<double>(it.weight);
        }
        break;
      }
    }
    return bound;
  };

  std::vector<Frame> stack;
  stack.reserve(n + 1);
  stack.push_back({0, 0, instance.capacity(), Phase::kEnter, false});
  while (!stack.empty() && !truncated) {
    Frame& frame = stack.back();
    switch (frame.phase) {
      case Phase::kEnter: {
        if (++nodes > node_budget) {
          truncated = true;
          break;
        }
        if (frame.rank == n) {
          if (frame.value > best_value) {
            best_value = frame.value;
            best_taken = taken;
          }
          stack.pop_back();
          break;
        }
        // Prune: even the fractional completion cannot beat the incumbent.
        // (+0.5 guards against float round-off on exact ties: bounds are
        // sums of integers plus at most one fraction.)
        if (static_cast<double>(frame.value) +
                upper_bound(frame.rank, frame.remaining) <=
            static_cast<double>(best_value) + 0.5) {
          stack.pop_back();
          break;
        }
        const std::size_t idx = order[frame.rank];
        const Item& it = instance.item(idx);
        frame.phase = Phase::kAfterInclude;
        if (it.weight <= frame.remaining) {
          frame.included = true;
          taken[idx] = true;
          stack.push_back({frame.rank + 1, frame.value + it.profit,
                           frame.remaining - it.weight, Phase::kEnter, false});
        } else {
          frame.included = false;
        }
        break;
      }
      case Phase::kAfterInclude: {
        if (frame.included) taken[order[frame.rank]] = false;
        frame.phase = Phase::kAfterExclude;
        stack.push_back(
            {frame.rank + 1, frame.value, frame.remaining, Phase::kEnter, false});
        break;
      }
      case Phase::kAfterExclude: {
        stack.pop_back();
        break;
      }
    }
  }

  std::vector<std::size_t> selection;
  for (std::size_t i = 0; i < n; ++i) {
    if (best_taken[i]) selection.push_back(i);
  }
  BranchBoundResult result;
  result.solution = instance.make_solution(std::move(selection));
  result.proven_optimal = !truncated;
  result.nodes_visited = nodes;
  return result;
}

}  // namespace lcaknap::knapsack
