#ifndef LCAKNAP_KNAPSACK_SOLVERS_GREEDY_H
#define LCAKNAP_KNAPSACK_SOLVERS_GREEDY_H

#include <cstddef>
#include <vector>

#include "knapsack/instance.h"

/// \file greedy.h
/// The greedy machinery the paper builds on (Sections 1.2 and 4.1):
///
///  * `efficiency_order` — items sorted by non-increasing efficiency p/w
///    (ties broken by index, so the order is deterministic across replicas).
///  * `fractional_opt` — the exact Fractional Knapsack optimum (greedy fill).
///  * `greedy_half` — the classical 1/2-approximation: the better of the
///    greedy prefix and the first item the greedy pass cannot fully include
///    ([WS11, Exercise 3.1]).  It also reports the *efficiency cut-off*, the
///    quantity LCA-KP turns into a per-item membership rule.

namespace lcaknap::knapsack {

/// Item indices sorted by non-increasing efficiency (zero-weight items first,
/// ties by original index ascending).  Comparison is exact (128-bit cross
/// products on raw integers), never floating point.
[[nodiscard]] std::vector<std::size_t> efficiency_order(const Instance& instance);

/// Exact optimum of the fractional relaxation, in raw profit units.
[[nodiscard]] double fractional_opt(const Instance& instance);

struct GreedyResult {
  Solution solution;
  /// True when the single left-out item beat the greedy prefix.
  bool used_singleton = false;
  /// Position in the efficiency order of the first item that did not fully
  /// fit (== instance.size() when everything fit).
  std::size_t cutoff_rank = 0;
  /// Original index of that item (npos when everything fit).
  std::size_t cutoff_index = kNoCutoff;
  /// Normalized efficiency of the cut-off item (-1 when everything fit).
  double cutoff_efficiency = -1.0;

  static constexpr std::size_t kNoCutoff = static_cast<std::size_t>(-1);
};

/// Best-of-two 1/2-approximation; guarantees value >= OPT/2.
[[nodiscard]] GreedyResult greedy_half(const Instance& instance);

}  // namespace lcaknap::knapsack

#endif  // LCAKNAP_KNAPSACK_SOLVERS_GREEDY_H
