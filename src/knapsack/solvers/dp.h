#ifndef LCAKNAP_KNAPSACK_SOLVERS_DP_H
#define LCAKNAP_KNAPSACK_SOLVERS_DP_H

#include "knapsack/instance.h"

/// \file dp.h
/// Exact dynamic programs.  `dp_by_weight` is the textbook O(n*K) table;
/// `dp_by_profit` is the O(n*P) dual used by the FPTAS.  Both reconstruct a
/// witness solution and guard their table size, throwing
/// std::invalid_argument when the instance is too large for an exact table
/// (callers fall back to branch & bound).

namespace lcaknap::knapsack {

/// Exact optimum via weight-indexed DP.  Requires n*(K+1) <= cell_limit.
[[nodiscard]] Solution dp_by_weight(const Instance& instance,
                                    std::size_t cell_limit = 200'000'000);

/// Exact optimum via profit-indexed DP.  Requires n*(P+1) <= cell_limit where
/// P is the total profit.
[[nodiscard]] Solution dp_by_profit(const Instance& instance,
                                    std::size_t cell_limit = 200'000'000);

}  // namespace lcaknap::knapsack

#endif  // LCAKNAP_KNAPSACK_SOLVERS_DP_H
