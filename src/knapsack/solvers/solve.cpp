#include "knapsack/solvers/solve.h"

#include "knapsack/solvers/branch_bound.h"
#include "knapsack/solvers/dp.h"

namespace lcaknap::knapsack {

ExactResult solve_exact(const Instance& instance, std::uint64_t bb_node_budget) {
  constexpr std::size_t kCellLimit = 100'000'000;
  const std::size_t n = instance.size();
  const auto weight_cells = n * (static_cast<std::size_t>(instance.capacity()) + 1);
  const auto profit_cells = n * (static_cast<std::size_t>(instance.total_profit()) + 1);
  ExactResult result;
  if (weight_cells <= kCellLimit && weight_cells <= profit_cells) {
    result.solution = dp_by_weight(instance, kCellLimit);
    return result;
  }
  if (profit_cells <= kCellLimit) {
    result.solution = dp_by_profit(instance, kCellLimit);
    return result;
  }
  BranchBoundResult bb = branch_bound(instance, bb_node_budget);
  result.solution = std::move(bb.solution);
  result.proven_optimal = bb.proven_optimal;
  return result;
}

}  // namespace lcaknap::knapsack
