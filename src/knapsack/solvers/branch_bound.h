#ifndef LCAKNAP_KNAPSACK_SOLVERS_BRANCH_BOUND_H
#define LCAKNAP_KNAPSACK_SOLVERS_BRANCH_BOUND_H

#include <cstdint>
#include <optional>

#include "knapsack/instance.h"

/// \file branch_bound.h
/// Horowitz–Sahni style depth-first branch & bound with the fractional
/// relaxation as the upper bound.  This is the exact referee used wherever
/// the DP tables would not fit (e.g. the constructed instance Ĩ, whose
/// weights are not small integers after scaling, and large benchmark
/// instances).

namespace lcaknap::knapsack {

struct BranchBoundResult {
  Solution solution;
  bool proven_optimal = false;   ///< false when the node budget ran out
  std::uint64_t nodes_visited = 0;
};

/// Explores at most `node_budget` nodes.  When the budget is exhausted the
/// best solution found so far is returned with proven_optimal == false (it is
/// still feasible, and at least as good as greedy_half's answer because the
/// greedy prefix is the first DFS branch).
[[nodiscard]] BranchBoundResult branch_bound(const Instance& instance,
                                             std::uint64_t node_budget = 50'000'000);

}  // namespace lcaknap::knapsack

#endif  // LCAKNAP_KNAPSACK_SOLVERS_BRANCH_BOUND_H
